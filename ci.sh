#!/bin/sh
# CI smoke check: build, full test suite, lints, and a run-once pass
# over every criterion benchmark (CRITERION's --test mode executes each
# bench body a single time, so it catches bench bit-rot cheaply).
#
# The root package carries only integration tests; build and test with
# --workspace so every crate compiles and runs.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Workspace invariant checker: determinism, simtime charging, errno
# vocabulary, magic literals. Exemptions live in simlint.toml; a
# nonzero exit means a new violation (or a stale exemption config).
cargo run -p simlint --release
# Smoke-run the measured-syscall figures: drift in the dispatch path's
# charged costs moves these ratios, and figures_sanity.rs pins the
# bands — this catches a figures binary that no longer even runs.
# `faults` is the fault-injection soak: it migrates under every
# injected-fault site with a nonzero seed and asserts failure
# atomicity — exactly one live copy, zero orphaned dump files.
cargo run --release -p bench --bin figures -- fig1 fig2 fig3 faults
# Cluster-scale scheduler bench, smoke tier: event vs scan at 16 and 64
# hosts plus the at-scale fault soak (one live copy per workload
# process, zero orphaned dumps). Writes BENCH_cluster.json; the full
# tier (`figures cluster`) adds the 256-host comparison and the
# 1024-host event-only point.
cargo run --release -p bench --bin figures -- cluster-smoke
cargo bench -p bench --bench simulator -- --test
