#!/bin/sh
# CI smoke check: build, full test suite, lints, and a run-once pass
# over every criterion benchmark (CRITERION's --test mode executes each
# bench body a single time, so it catches bench bit-rot cheaply).
#
# The root package carries only integration tests; build and test with
# --workspace so every crate compiles and runs.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Workspace invariant checker: determinism, simtime charging, errno
# vocabulary, magic literals. Exemptions live in simlint.toml; a
# nonzero exit means a new violation (or a stale exemption config).
cargo run -p simlint --release
cargo bench -p bench --bench simulator -- --test
