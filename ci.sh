#!/bin/sh
# CI smoke check: build, full test suite, lints, and a run-once pass
# over every criterion benchmark (CRITERION's --test mode executes each
# bench body a single time, so it catches bench bit-rot cheaply).
#
# The root package carries only integration tests; build and test with
# --workspace so every crate compiles and runs.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Workspace invariant checker: determinism, simtime charging, errno
# vocabulary, magic literals, wake-poke dataflow, snapshot coverage,
# cross-machine coupling. Exemptions live in simlint.toml; a nonzero
# exit means a new violation (or a stale exemption config).
cargo run -p simlint --release
# Exemption ratchet: --json emits one record per finding (kept +
# allowlist-silenced); simlint.baseline pins the total. The count may
# only go down — a rise is a new finding hiding behind the allowlist,
# a drop means the baseline should be lowered to lock in the progress.
findings=$(cargo run -q -p simlint --release -- --json | wc -l)
baseline=$(cat simlint.baseline)
if [ "$findings" -gt "$baseline" ]; then
    echo "simlint ratchet: $findings findings exceed baseline $baseline — fix the new finding instead of allowlisting it" >&2
    exit 1
elif [ "$findings" -lt "$baseline" ]; then
    echo "simlint ratchet: $findings findings below baseline $baseline — lower simlint.baseline to lock in the progress" >&2
    exit 1
fi
# Coupling inventory freshness: the checked-in seam map that feeds the
# sharded world step must match a fresh render.
cargo run -q -p simlint --release -- --coupling-report | diff - simlint.coupling.json
# Coupling ratchet: every row outside src/world/ is a syscall-handler
# path that reaches across machines without going through the seam
# layer — exactly what the sharded engine has to treat as coupling.
# That set may only shrink. If you add a row, route the new effect
# through World::cross_call instead; if you remove one, lower the pin
# to lock in the progress.
seam_rows=$(grep '"file"' simlint.coupling.json | grep -vc 'src/world/')
seam_pin=13
if [ "$seam_rows" -gt "$seam_pin" ]; then
    echo "coupling ratchet: $seam_rows handler-side seam rows exceed the pin of $seam_pin — route the new cross-machine effect through the seam layer" >&2
    exit 1
elif [ "$seam_rows" -lt "$seam_pin" ]; then
    echo "coupling ratchet: $seam_rows handler-side seam rows below the pin of $seam_pin — lower seam_pin in ci.sh to lock in the progress" >&2
    exit 1
fi
# Smoke-run the measured-syscall figures: drift in the dispatch path's
# charged costs moves these ratios, and figures_sanity.rs pins the
# bands — this catches a figures binary that no longer even runs.
# `faults` is the fault-injection soak: it migrates under every
# injected-fault site with a nonzero seed and asserts failure
# atomicity — exactly one live copy, zero orphaned dump files.
cargo run --release -p bench --bin figures -- fig1 fig2 fig3 faults
# Cluster-scale scheduler bench, smoke tier: event vs scan at 16 and 64
# hosts plus the at-scale fault soak (one live copy per workload
# process, zero orphaned dumps), plus the sharded-execution matrix
# (256 hosts at 1/2/4/8 shard threads — every row bit-identical to the
# serial engine, so this doubles as a multi-thread smoke test). The
# smoke tier records throughput without asserting speedup, so a
# loaded or single-core CI host cannot flake the build; the gate
# lives in `figures parallel` / `figures cluster` and arms itself
# only on hosts with >= 4 cores. Writes BENCH_cluster.json; the full
# tier adds the 256-host comparison and the 1024-host event-only
# point.
cargo run --release -p bench --bin figures -- cluster-smoke
# Live-migration protocol comparison, smoke tier: eager vs pre-copy vs
# demand-restore moving the dirty-page hog off the loaded node, with
# pre-copy's downtime asserted strictly below eager's. The simulator is
# deterministic, so the freshly written BENCH_migration.json must match
# the checked-in copy bit for bit — a diff means the engine's costs
# moved and the committed numbers are stale.
mig_stale=$(mktemp)
cp BENCH_migration.json "$mig_stale"
cargo run --release -p bench --bin figures -- migration-smoke
diff "$mig_stale" BENCH_migration.json
rm -f "$mig_stale"
# Interpreter-engine throughput: regenerates BENCH_interp.json and
# gates the superblock engine at >= 2.5x over the uncached decoder
# (asserted inside `figures interp`; the superblock-vs-cached ratio is
# recorded but not gated — it collapses on 1-core CI boxes). The
# numbers are host-dependent so a bit-diff would always fail; instead
# the committed file must exist beforehand (the trajectory is the
# point) and its key schema must match the fresh render — a key diff
# means the committed record predates a schema change and is stale.
test -f BENCH_interp.json || {
    echo "BENCH_interp.json missing — run 'figures interp' and commit the record" >&2
    exit 1
}
interp_stale=$(mktemp)
grep -o '"[a-z_]*":' BENCH_interp.json | sort > "$interp_stale"
cargo run --release -p bench --bin figures -- interp
grep -o '"[a-z_]*":' BENCH_interp.json | sort | diff "$interp_stale" - || {
    echo "BENCH_interp.json schema drifted — commit the freshly generated record" >&2
    exit 1
}
rm -f "$interp_stale"
cargo bench -p bench --bench simulator -- --test
