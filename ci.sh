#!/bin/sh
# CI smoke check: build, full test suite, lints, and a run-once pass
# over every criterion benchmark (CRITERION's --test mode executes each
# bench body a single time, so it catches bench bit-rot cheaply).
#
# The root package carries only integration tests; build and test with
# --workspace so every crate compiles and runs.
set -eux

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Workspace invariant checker: determinism, simtime charging, errno
# vocabulary, magic literals, wake-poke dataflow, snapshot coverage,
# cross-machine coupling. Exemptions live in simlint.toml; a nonzero
# exit means a new violation (or a stale exemption config).
cargo run -p simlint --release
# Exemption ratchet: --json emits one record per finding (kept +
# allowlist-silenced); simlint.baseline pins the total. The count may
# only go down — a rise is a new finding hiding behind the allowlist,
# a drop means the baseline should be lowered to lock in the progress.
findings=$(cargo run -q -p simlint --release -- --json | wc -l)
baseline=$(cat simlint.baseline)
if [ "$findings" -gt "$baseline" ]; then
    echo "simlint ratchet: $findings findings exceed baseline $baseline — fix the new finding instead of allowlisting it" >&2
    exit 1
elif [ "$findings" -lt "$baseline" ]; then
    echo "simlint ratchet: $findings findings below baseline $baseline — lower simlint.baseline to lock in the progress" >&2
    exit 1
fi
# Coupling inventory freshness: the checked-in seam map for the future
# parallel world step must match a fresh render.
cargo run -q -p simlint --release -- --coupling-report | diff - simlint.coupling.json
# Smoke-run the measured-syscall figures: drift in the dispatch path's
# charged costs moves these ratios, and figures_sanity.rs pins the
# bands — this catches a figures binary that no longer even runs.
# `faults` is the fault-injection soak: it migrates under every
# injected-fault site with a nonzero seed and asserts failure
# atomicity — exactly one live copy, zero orphaned dump files.
cargo run --release -p bench --bin figures -- fig1 fig2 fig3 faults
# Cluster-scale scheduler bench, smoke tier: event vs scan at 16 and 64
# hosts plus the at-scale fault soak (one live copy per workload
# process, zero orphaned dumps). Writes BENCH_cluster.json; the full
# tier (`figures cluster`) adds the 256-host comparison and the
# 1024-host event-only point.
cargo run --release -p bench --bin figures -- cluster-smoke
# Live-migration protocol comparison, smoke tier: eager vs pre-copy vs
# demand-restore moving the dirty-page hog off the loaded node, with
# pre-copy's downtime asserted strictly below eager's. The simulator is
# deterministic, so the freshly written BENCH_migration.json must match
# the checked-in copy bit for bit — a diff means the engine's costs
# moved and the committed numbers are stale.
mig_stale=$(mktemp)
cp BENCH_migration.json "$mig_stale"
cargo run --release -p bench --bin figures -- migration-smoke
diff "$mig_stale" BENCH_migration.json
rm -f "$mig_stale"
cargo bench -p bench --bench simulator -- --test
