//! End-to-end migration tests: the paper's §4.2 example (move a running
//! program from `brick` to `schooner`), the command layer, and the §7
//! limitations.

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use sysdefs::{Credentials, Gid, Pid, Signal, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// Boot the paper's two-machine installation.
fn brick_and_schooner() -> (World, usize, usize) {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    (w, brick, schooner)
}

/// Spawns the §6.2 test program on a machine, runs it up to its `n`-th
/// input prompt, and returns (pid, tty handle).
fn start_test_program(w: &mut World, mid: usize, prompts: u32) -> (Pid, tty::TtyHandle) {
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(mid, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(mid);
    let pid = w
        .spawn_vm_proc(mid, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    for i in 1..prompts {
        handle.type_input(&format!("line {i}\n"));
        w.run_slices(20_000);
    }
    (pid, handle)
}

#[test]
fn paper_section_4_2_dumpproc_then_restart_on_schooner() {
    let (mut w, brick, schooner) = brick_and_schooner();
    let (pid, handle) = start_test_program(&mut w, brick, 3);
    assert!(handle.output_text().contains("R3 S3 K3"));

    // "Type dumpproc -p 1234 on a terminal on brick."
    let status = api::run_dumpproc(&mut w, brick, pid, alice()).expect("dumpproc runs");
    assert_eq!(status, 0, "dumpproc must succeed");

    // The rewritten filesXXXXX now carries /n/brick-prefixed names.
    let names = dumpfmt::dump_file_names(pid);
    let files =
        dumpfmt::FilesFile::decode(&w.host_read_file(brick, &names.files).unwrap()).unwrap();
    match &files.fds[3] {
        dumpfmt::FdRecord::File { path, .. } => {
            assert_eq!(path, "/n/brick/tmp/testout");
        }
        other => panic!("fd3: {other:?}"),
    }
    assert_eq!(files.cwd, "/n/brick");
    match &files.fds[0] {
        dumpfmt::FdRecord::File { path, .. } => assert_eq!(path, "/dev/tty"),
        other => panic!("fd0: {other:?}"),
    }

    // "Then type restart -p 1234 -h brick on a terminal on schooner."
    let (tty2, handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart succeeds");

    // The process continues on schooner: counters pick up at 4 and the
    // appended line lands in brick's file over NFS.
    w.run_slices(50_000);
    handle2.type_input("line from schooner\n");
    w.run_slices(50_000);
    let out = handle2.output_text();
    assert!(out.contains("R4 S4 K4"), "continuity: {out:?}");
    handle2.with(|t| t.close());
    let info = w.run_until_exit(schooner, new_pid, 100_000).expect("exits");
    assert_eq!(info.status, 0);
    let outfile = w.host_read_file(brick, "/tmp/testout").unwrap();
    assert_eq!(
        String::from_utf8_lossy(&outfile),
        "line 1\nline 2\nline from schooner\n"
    );
    // The restored process kept the owner's credentials.
    assert_eq!(w.finished[&(schooner, new_pid.as_u32())].status, 0);
}

#[test]
fn migrate_command_moves_process_between_machines() {
    let (mut w, brick, schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);

    let (cmd_tty, _cmd_console) = w.add_terminal(schooner);
    let new_pid = api::migrate_process(
        &mut w,
        pid,
        brick,
        schooner,
        schooner,
        Some(cmd_tty),
        alice(),
    )
    .expect("migrate succeeds");
    assert_ne!(new_pid, pid, "the process id changes after migration");

    // The old process is gone from brick; the new one lives on schooner.
    assert!(api::find_restarted(&w, brick, pid).is_none());
    let old = w.finished[&(brick, pid.as_u32())].clone();
    assert_eq!(old.status, 128 + Signal::SIGDUMP.number());
}

#[test]
fn migrate_within_one_machine() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    let (cmd_tty, _cmd_console) = w.add_terminal(brick);
    let new_pid = api::migrate_process(&mut w, pid, brick, brick, brick, Some(cmd_tty), alice())
        .expect("local migrate");
    assert_ne!(new_pid, pid);
}

#[test]
fn dumpproc_of_missing_process_fails_cleanly() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let status = api::run_dumpproc(&mut w, brick, Pid(999), alice()).unwrap();
    assert_eq!(api::status_errno(status), Some(sysdefs::Errno::ESRCH));
}

#[test]
fn restart_with_missing_dump_files_fails_cleanly() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let err = api::run_restart(
        &mut w,
        brick,
        RestartArgs {
            pid: Pid(777),
            dump_host: None,
            demand: false,
        },
        None,
        alice(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        api::MigrationError::Failed(sysdefs::Errno::ENOENT.as_u16() as u32)
    );
}

#[test]
fn restart_rejects_corrupt_magic() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // Corrupt the stack file's magic.
    let names = dumpfmt::dump_file_names(pid);
    let mut stack = w.host_read_file(brick, &names.stack).unwrap();
    stack[0] ^= 0xff;
    w.host_write_file(brick, &names.stack, &stack).unwrap();
    let err = api::run_restart(
        &mut w,
        brick,
        RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        None,
        alice(),
    )
    .unwrap_err();
    assert!(matches!(err, api::MigrationError::Failed(_)));
}

#[test]
fn only_owner_or_root_may_dump() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    let mallory = Credentials::user(Uid(666), Gid(66));
    let status = api::run_dumpproc(&mut w, brick, pid, mallory).unwrap();
    assert_eq!(api::status_errno(status), Some(sysdefs::Errno::EPERM));
    // Root can.
    let status = api::run_dumpproc(&mut w, brick, pid, Credentials::root()).unwrap();
    assert_eq!(status, 0);
}

#[test]
fn socket_fds_come_back_as_dev_null() {
    let (mut w, brick, schooner) = brick_and_schooner();
    // A program with a socket pair that also counts via the terminal.
    let obj = assemble(
        r#"
        start:  move.l  #97, d0     | socket pair
                trap    #0
        loop:   add.l   #1, d6
                move.l  #3, d0      | wait for terminal input
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #32, d3
                trap    #0
                bcs     out
                tst.l   d0
                beq     out
                bra     loop
        out:    move.l  #1, d0
                move.l  d6, d1
                trap    #0
                .bss
        buf:    .space  32
        "#,
    )
    .unwrap();
    w.install_program(brick, "/bin/sockprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/sockprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("tick\n");
    w.run_slices(20_000);

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart with sockets degraded");
    // The program still runs (its socket fds are /dev/null now).
    w.run_slices(50_000);
    handle2.type_input("tock\n");
    w.run_slices(50_000);
    handle2.with(|t| t.close());
    let info = w.run_until_exit(schooner, new_pid, 100_000).expect("exits");
    // d6 was 1 at the first prompt, 2 at the dumped prompt, and counts
    // once more for the post-migration line: exit status 3.
    assert_eq!(info.status, 3);
}

#[test]
fn editor_keeps_raw_mode_through_local_restart() {
    let (mut w, brick, schooner) = brick_and_schooner();
    let obj = assemble(workloads::EDITOR_PROGRAM).unwrap();
    w.install_program(brick, "/bin/editor", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/editor", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    // Raw mode: single keystrokes are processed immediately, unechoed.
    handle.type_input("a");
    w.run_slices(20_000);
    assert_eq!(handle.output_text(), "[a]");
    assert!(handle.with(|t| t.gtty().is_raw()));

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // Restart locally on schooner's own terminal (the §4.2 advice: run
    // restart locally so "the terminal modes are preserved").
    let (tty2, handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("editor restarts");
    w.run_slices(50_000);
    // The new terminal is already in raw mode: a single keystroke works.
    assert!(handle2.with(|t| t.gtty().is_raw()), "raw mode preserved");
    handle2.type_input("b");
    w.run_slices(50_000);
    assert!(handle2.output_text().contains("[b]"));
    handle2.type_input("q");
    w.run_slices(50_000);
    let info = w.run_until_exit(schooner, new_pid, 100_000).expect("quit");
    assert_eq!(info.status, 0);
}

#[test]
fn rsh_migrate_cannot_preserve_raw_mode() {
    // §4.1: "Because of the way that rsh is implemented, certain
    // terminal modes can not be preserved ... thus, in these cases,
    // making this command unsuitable for the migration of visually
    // oriented programs."
    let (mut w, brick, schooner) = brick_and_schooner();
    let obj = assemble(workloads::EDITOR_PROGRAM).unwrap();
    w.install_program(brick, "/bin/editor", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/editor", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("a");
    w.run_slices(20_000);

    // migrate issued on *brick*, so the restart half runs over rsh with
    // a pipe for a terminal.
    let new_pid = api::migrate_process(&mut w, pid, brick, schooner, brick, None, alice())
        .expect("migrate completes");
    w.run_slices(50_000);
    // The editor survives but its terminal is a cooked rsh pipe: single
    // keystrokes do NOT reach it.
    let p = w.proc_ref(schooner, new_pid).expect("restored process");
    let pipe_tty = p.user.tty.expect("has an rsh pipe endpoint");
    let pipe = w.terminal(pipe_tty);
    assert!(!pipe.with(|t| t.gtty().is_raw()), "mode was not preserved");
    pipe.type_input("b");
    w.run_slices(50_000);
    assert!(
        !pipe.output_text().contains("[b]"),
        "editor is useless over the rsh pipe, exactly as the paper warns"
    );
}

#[test]
fn pid_dependent_program_breaks_after_migration() {
    // §7: a process that reopens a temp file named after getpid() "will
    // no longer be able to locate that file" once migrated.
    let (mut w, brick, schooner) = brick_and_schooner();
    let obj = assemble(workloads::PID_TEMPFILE_PROGRAM).unwrap();
    w.install_program(brick, "/bin/pidprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/pidprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("go\n");
    w.run_slices(20_000);

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart itself succeeds");
    w.run_slices(50_000);
    handle2.type_input("go\n");
    let info = w.run_until_exit(schooner, new_pid, 200_000).expect("exits");
    assert_eq!(info.status, 3, "the program lost its pid-named temp file");
}

#[test]
fn pid_virtualization_extension_fixes_the_tempfile_problem() {
    // §7's proposed solution, implemented behind
    // KernelConfig::virtualize_ids: getpid() keeps answering with the
    // old pid, so the temp file name stays stable... as long as the file
    // itself is reachable, which dumpproc's /n-rewrite does not cover
    // for names the *program* builds. Migrating back to the same
    // machine demonstrates the fix cleanly.
    let mut w = World::new(KernelConfig::with_virtualized_ids());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let obj = assemble(workloads::PID_TEMPFILE_PROGRAM).unwrap();
    w.install_program(brick, "/bin/pidprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/pidprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("go\n");
    w.run_slices(20_000);

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, handle2) = w.add_terminal(brick);
    let new_pid = api::run_restart(
        &mut w,
        brick,
        RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart succeeds");
    assert_ne!(new_pid, pid, "the real pid still differs");
    w.run_slices(50_000);
    handle2.type_input("go\n");
    w.run_slices(50_000);
    handle2.with(|t| t.close());
    let info = w.run_until_exit(brick, new_pid, 200_000).expect("exits");
    assert_eq!(
        info.status, 0,
        "with getpid() virtualised the temp file stays reachable"
    );
}

#[test]
fn env_dependent_program_crashes_after_migration() {
    // §7: "a process that acts differently depending on which machine it
    // is running ... will make the wrong decision and crash" once the
    // hostname changes under it.
    let (mut w, brick, schooner) = brick_and_schooner();
    let obj = assemble(workloads::ENV_DEPENDENT_PROGRAM).unwrap();
    w.install_program(brick, "/bin/envprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/envprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("tick\n");
    w.run_slices(20_000);

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart succeeds");
    w.run_slices(50_000);
    handle2.type_input("tick\n");
    let info = w.run_until_exit(schooner, new_pid, 200_000).expect("dies");
    assert_eq!(
        info.status,
        128 + Signal::SIGSEGV.number(),
        "wrong decision, crash — as §7 predicts"
    );
}

#[test]
fn waiting_parent_gets_echild_after_migration() {
    // §7: "processes that wait for one or more of their children to
    // complete should not be migrated while waiting."
    let (mut w, brick, schooner) = brick_and_schooner();
    let obj = assemble(workloads::WAITING_PARENT_PROGRAM).unwrap();
    w.install_program(brick, "/bin/waiter", &obj).unwrap();
    let (tty, _handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/waiter", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000); // Parent is now blocked in wait().

    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, _handle2) = w.add_terminal(schooner);
    let new_pid = api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart succeeds");
    let info = w.run_until_exit(schooner, new_pid, 200_000).expect("exits");
    assert_eq!(
        info.status, 10,
        "wait() after migration fails: the children stayed behind"
    );
}

#[test]
fn heterogeneity_isa1_to_isa2_ok_but_not_back() {
    // §7: Sun-2 (68010) -> Sun-3 (68020) works; the reverse does not.
    let mut w = World::new(KernelConfig::paper());
    let sun3 = w.add_machine("sun3", IsaLevel::Isa2);
    let sun2 = w.add_machine("sun2", IsaLevel::Isa1);
    // An ISA-2 program counting on the terminal.
    let obj = assemble(
        r#"
        start:  move.l  #0, d6
        loop:   add.l   #1, d6
                extb2   d7          | an instruction only the 68020 has
                move.l  #3, d0
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #32, d3
                trap    #0
                bcs     out
                tst.l   d0
                beq     out
                bra     loop
        out:    move.l  #1, d0
                move.l  d6, d1
                trap    #0
                .bss
        buf:    .space  32
        "#,
    )
    .unwrap();
    assert_eq!(obj.required_isa, IsaLevel::Isa2);
    w.install_program(sun3, "/bin/prog020", &obj).unwrap();
    let (tty, handle) = w.add_terminal(sun3);
    let pid = w
        .spawn_vm_proc(sun3, "/bin/prog020", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("x\n");
    w.run_slices(20_000);

    let status = api::run_dumpproc(&mut w, sun3, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // Restart on the 68010 machine: rest_proc refuses the image (the
    // machine id in the dumped a.out names a superset ISA).
    let err = api::run_restart(
        &mut w,
        sun2,
        RestartArgs {
            pid,
            dump_host: Some("sun3".into()),
            demand: false,
        },
        None,
        alice(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        api::MigrationError::Failed(sysdefs::Errno::ENOEXEC.as_u16() as u32)
    );
    // Restart on another 68020-class machine would be fine — here, the
    // same machine.
    let (tty2, handle2) = w.add_terminal(sun3);
    let new_pid = api::run_restart(
        &mut w,
        sun3,
        RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("isa2 -> isa2 restart works");
    w.run_slices(50_000);
    handle2.with(|t| t.close());
    let info = w.run_until_exit(sun3, new_pid, 100_000).expect("exits");
    assert_eq!(info.status, 2, "counts from before migration survive");
}

#[test]
fn undump_command_produces_runnable_executable() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    w.host_post_signal(brick, pid, Signal::SIGQUIT);
    w.run_until_exit(brick, pid, 50_000).expect("core dumped");
    let core_path = format!("/usr/tmp/core{:05}", pid.as_u32());
    let cmd = w.spawn_native_proc(
        brick,
        "undump",
        None,
        Credentials::root(),
        Box::new(move |sys| {
            match pmig::commands::undump_cmd(sys, "/bin/testprog", &core_path, "/bin/testprog2") {
                Ok(()) => 0,
                Err(e) => e.as_u16() as u32,
            }
        }),
    );
    let info = w.run_until_exit(brick, cmd, 200_000).expect("undump runs");
    assert_eq!(info.status, 0);
    // The merged executable starts from the beginning but with the old
    // static counter value: the register and stack counters restart at 1
    // while the static counter continues from its dumped value of 2,
    // printing 3 on the first iteration.
    let (tty, handle) = w.add_terminal(brick);
    let pid2 = w
        .spawn_vm_proc(brick, "/bin/testprog2", Some(tty), Credentials::root())
        .unwrap();
    w.run_slices(50_000);
    let out = handle.output_text();
    assert!(out.contains("R1 S3 K1"), "undump semantics: {out:?}");
    handle.with(|t| t.close());
    w.run_until_exit(brick, pid2, 100_000).expect("exits");
}

#[test]
fn restart_requires_ownership() {
    // rest_proc: "only the owner of the process or the superuser is able
    // to do it" — a third user cannot restart someone else's dump.
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);

    let mallory = Credentials::user(Uid(666), Gid(66));
    let err = api::run_restart(
        &mut w,
        brick,
        RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        None,
        mallory,
    )
    .unwrap_err();
    assert!(
        matches!(err, api::MigrationError::Failed(_)),
        "non-owner restart must fail: {err:?}"
    );

    // The superuser can.
    let (tty, _c) = w.add_terminal(brick);
    let restored = api::run_restart(
        &mut w,
        brick,
        RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        Some(tty),
        Credentials::root(),
    )
    .expect("root restart");
    // And the restored process runs with the *original owner's*
    // credentials, re-established from the stack file.
    let p = w.proc_ref(brick, restored).expect("alive");
    assert_eq!(p.user.cred.ruid, Uid(100));
}

#[test]
fn dump_files_are_private_to_the_owner() {
    let (mut w, brick, _schooner) = brick_and_schooner();
    let (pid, _handle) = start_test_program(&mut w, brick, 2);
    let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // Another user cannot read the stack file (it holds the process's
    // whole memory).
    let names = dumpfmt::dump_file_names(pid);
    let stack_path = names.stack.clone();
    let snoop = w.spawn_native_proc(
        brick,
        "snoop",
        None,
        Credentials::user(Uid(666), Gid(66)),
        Box::new(move |sys| match sys.open(&stack_path, 0, 0) {
            Err(sysdefs::Errno::EACCES) => 0,
            other => {
                let _ = other;
                1
            }
        }),
    );
    let info = w.run_until_exit(brick, snoop, 100_000).expect("snoop");
    assert_eq!(info.status, 0, "dump files are mode 0600");
}
