//! The live-migration protocol engine end to end: all three protocols
//! move a process, downtime ordering holds, dirty tracking is pure
//! cache, and every exit path cleans `/usr/tmp`.

use m68vm::assemble;
use m68vm::IsaLevel;
use pmig::proto::{migrate_proto, Protocol};
use pmig::{api, workloads, Survivor};
use sysdefs::{Credentials, Gid, Pid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

/// Ten pages of ballast: big enough that copying it frozen visibly
/// costs, small enough to keep the tests quick.
const BALLAST: u32 = 10 * 0x2000;

/// Boots the two-machine installation with a dirty-page hog running on
/// `brick`, warmed up past its first progress increments.
fn hog_world() -> (World, usize, usize, Pid) {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(&workloads::dirty_hog_program(1_500, BALLAST)).unwrap();
    w.install_program(brick, "/bin/hog", &obj).unwrap();
    let pid = w.spawn_vm_proc(brick, "/bin/hog", None, alice()).unwrap();
    w.run_slices(10);
    (w, brick, schooner, pid)
}

/// Asserts no dump file of `pid` survives anywhere in the world.
fn assert_no_dumps(w: &World, pid: Pid) {
    let names = dumpfmt::dump_file_names(pid);
    for mid in 0..w.machine_count() {
        for name in [&names.a_out, &names.files, &names.stack, &names.delta] {
            assert!(
                w.host_read_file(mid, name).is_err(),
                "machine {mid} still holds {name}"
            );
        }
    }
}

/// Counts the live copies of the hog across the world: the original
/// (still running as `hog` on its source) plus restored incarnations
/// (running as `a.outXXXXX`) anywhere. The two comm shapes are
/// disjoint, so pid-number collisions across machines can't
/// double-count.
fn live_copies(w: &World, pid: Pid) -> usize {
    let mut n = 0;
    for mid in 0..w.machine_count() {
        if w.proc_ref(mid, pid).is_some()
            && !w.finished.contains_key(&(mid, pid.as_u32()))
            && w.proc_ref(mid, pid).is_some_and(|p| !p.comm.starts_with("a.out"))
        {
            n += 1;
        }
        if let Some(restored) = api::find_restarted(w, mid, pid) {
            if w.proc_ref(mid, restored).is_some()
                && !w.finished.contains_key(&(mid, restored.as_u32()))
            {
                n += 1;
            }
        }
    }
    n
}

#[test]
fn every_protocol_migrates_the_hog() {
    for proto in Protocol::ALL {
        let (mut w, brick, schooner, pid) = hog_world();
        let report = migrate_proto(&mut w, pid, brick, schooner, proto, alice())
            .unwrap_or_else(|e| panic!("{}: {e}", proto.name()));
        assert_eq!(report.status, 0, "{}: {report:?}", proto.name());
        assert_eq!(report.survivor, Survivor::Target, "{}", proto.name());
        let new_pid = report.new_pid.expect("target pid");
        assert!(report.downtime_us > 0, "{}: {report:?}", proto.name());
        assert!(
            report.total_us >= report.downtime_us,
            "{}: {report:?}",
            proto.name()
        );
        // The moved process is alive on the target and no dump remains.
        assert!(w.proc_ref(schooner, new_pid).is_some(), "{}", proto.name());
        assert_eq!(live_copies(&w, pid), 1, "{}", proto.name());
        assert_no_dumps(&w, pid);
        // It keeps running there.
        let info = w
            .run_until_exit(schooner, new_pid, 30_000_000)
            .expect("hog finishes on schooner");
        assert_eq!(info.status, 0, "{}", proto.name());
    }
}

#[test]
fn precopy_streams_and_freezes_small() {
    let (mut w, brick, schooner, pid) = hog_world();
    let report =
        migrate_proto(&mut w, pid, brick, schooner, Protocol::PreCopy, alice()).unwrap();
    assert_eq!(report.survivor, Survivor::Target);
    assert!(report.rounds >= 2, "{report:?}");
    // Round 1 streams the whole image: at least the ballast pages.
    assert!(report.pages_precopied >= 10, "{report:?}");
    assert!(w.machine(brick).stats.pages_precopied >= 10);
}

#[test]
fn demand_restart_fetches_residual_pages() {
    let (mut w, brick, schooner, pid) = hog_world();
    let report =
        migrate_proto(&mut w, pid, brick, schooner, Protocol::Demand, alice()).unwrap();
    assert_eq!(report.survivor, Survivor::Target);
    let new_pid = report.new_pid.unwrap();
    // The drain finished: the image is whole, and pages moved after the
    // restart (engine prefetches and/or kernel page faults).
    assert!(!w.host_has_absent_pages(schooner, new_pid));
    let kernel_fetched = w.machine(schooner).stats.pages_fetched;
    assert!(
        report.pages_fetched + kernel_fetched > 0,
        "{report:?} kernel={kernel_fetched}"
    );
}

#[test]
fn precopy_downtime_strictly_below_eager() {
    let (mut w_e, brick_e, schooner_e, pid_e) = hog_world();
    let eager =
        migrate_proto(&mut w_e, pid_e, brick_e, schooner_e, Protocol::Eager, alice()).unwrap();
    let (mut w_p, brick_p, schooner_p, pid_p) = hog_world();
    let precopy =
        migrate_proto(&mut w_p, pid_p, brick_p, schooner_p, Protocol::PreCopy, alice()).unwrap();
    assert_eq!(eager.survivor, Survivor::Target);
    assert_eq!(precopy.survivor, Survivor::Target);
    assert!(
        precopy.downtime_us < eager.downtime_us,
        "precopy {} must be below eager {}",
        precopy.downtime_us,
        eager.downtime_us
    );
}

#[test]
fn demand_preserves_test_program_continuity() {
    // The §4.2 continuity check under demand-restore: the counters live
    // in the (initially absent) data segment, so the first iteration on
    // the target page-faults them in from the source dump.
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    for i in 1..3 {
        handle.type_input(&format!("line {i}\n"));
        w.run_slices(20_000);
    }
    assert!(handle.output_text().contains("R3 S3 K3"));

    let report = migrate_proto(&mut w, pid, brick, schooner, Protocol::Demand, alice()).unwrap();
    assert_eq!(report.survivor, Survivor::Target, "{report:?}");
    let new_pid = report.new_pid.unwrap();

    // The restored process needs a terminal to keep prompting; restart
    // ran without one, so its reads hit /dev/null placeholders — the
    // data-segment counter continuity is what we can still check via
    // the output file the program appends to.
    let _ = new_pid;
    w.run_slices(200_000);
    let outfile = w.host_read_file(brick, "/tmp/testout").unwrap();
    let text = String::from_utf8_lossy(&outfile);
    assert!(
        text.starts_with("line 1\nline 2\n"),
        "pre-migration appends survive: {text:?}"
    );
}

#[test]
fn dirty_tracking_is_pure_cache_for_dumps() {
    // The Milanés contract: arming dirty tracking must not change a
    // byte of the dump (or anything else the migration moves). Two
    // identical worlds, one with tracking armed, produce bit-identical
    // dump triples.
    let run = |track: bool| -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let (mut w, brick, _schooner, pid) = hog_world();
        if track {
            assert!(w.host_set_dirty_tracking(brick, pid, true));
        }
        let status = api::run_dumpproc(&mut w, brick, pid, alice()).unwrap();
        assert_eq!(status, 0);
        let names = dumpfmt::dump_file_names(pid);
        (
            w.host_read_file(brick, &names.a_out).unwrap(),
            w.host_read_file(brick, &names.files).unwrap(),
            w.host_read_file(brick, &names.stack).unwrap(),
        )
    };
    let (a0, f0, s0) = run(false);
    let (a1, f1, s1) = run(true);
    assert_eq!(a0, a1, "a.outXXXXX must not see the dirty bitmap");
    assert_eq!(f0, f1);
    assert_eq!(s0, s1);
}

#[test]
fn tracked_and_untracked_migrations_restore_identically() {
    // Dump → migrate → restore with tracking on vs off: the restored
    // process's image and observable behaviour must match bit for bit.
    let run = |track: bool| -> (String, u32) {
        let (mut w, brick, schooner, pid) = hog_world();
        if track {
            assert!(w.host_set_dirty_tracking(brick, pid, true));
        }
        let new_pid = api::migrate_process(&mut w, pid, brick, schooner, schooner, None, alice())
            .expect("migrates");
        let info = w
            .run_until_exit(schooner, new_pid, 30_000_000)
            .expect("finishes");
        (w.ps(schooner), info.status)
    };
    let (ps0, st0) = run(false);
    let (ps1, st1) = run(true);
    assert_eq!(st0, st1);
    assert_eq!(ps0, ps1);
}

#[test]
fn protocol_flag_parses() {
    assert_eq!(Protocol::parse("eager"), Some(Protocol::Eager));
    assert_eq!(Protocol::parse("precopy"), Some(Protocol::PreCopy));
    assert_eq!(Protocol::parse("demand"), Some(Protocol::Demand));
    assert_eq!(Protocol::parse("lazy"), None);
    for p in Protocol::ALL {
        assert_eq!(Protocol::parse(p.name()), Some(p));
    }
}
