//! Coherence tests for the predecoded instruction cache: with the
//! cache on or off, every guest-visible artefact — dump files, restored
//! register and memory images, terminal output, exit status and all
//! simulated-time accounting — must be bit-identical. The cache is a
//! host-side accelerator only.

use m68vm::{assemble, Instr, IsaLevel, MemoryLayout, Op, Operand, Size};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use sysdefs::{Credentials, Gid, Pid, Uid};
use ukernel::proc::Body;
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn config(use_icache: bool) -> KernelConfig {
    let mut cfg = KernelConfig::paper();
    cfg.use_icache = use_icache;
    // Superblocks require the icache; keep the toggle honest when the
    // cache itself is the variable under test.
    cfg.use_superblocks = use_icache;
    cfg
}

/// Icache on in both arms; only the superblock tier toggles.
fn config_sb(use_superblocks: bool) -> KernelConfig {
    let mut cfg = KernelConfig::paper();
    cfg.use_superblocks = use_superblocks;
    cfg
}

/// Boots brick + schooner, starts the §6.2 test program on brick and
/// feeds it up to its `prompts`-th input prompt.
fn boot_and_prompt(cfg: KernelConfig, prompts: u32) -> (World, usize, usize, Pid, tty::TtyHandle) {
    let mut w = World::new(cfg);
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(brick, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(brick);
    let pid = w
        .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    for i in 1..prompts {
        handle.type_input(&format!("line {i}\n"));
        w.run_slices(20_000);
    }
    (w, brick, schooner, pid, handle)
}

/// The dumped stackXXXXX file is the full guest state (registers,
/// stack, credentials, signal dispositions) at the dump point — it must
/// not depend on which interpreter path produced it.
#[test]
fn dump_files_identical_with_icache_on_and_off() {
    let mut images = Vec::new();
    for use_icache in [true, false] {
        let (mut w, brick, _schooner, pid, _handle) = boot_and_prompt(config(use_icache), 3);
        let status = api::run_dumpproc(&mut w, brick, pid, alice()).expect("dumpproc runs");
        assert_eq!(status, 0);
        let names = dumpfmt::dump_file_names(pid);
        let stack = w.host_read_file(brick, &names.stack).unwrap();
        let aout = w.host_read_file(brick, &names.a_out).unwrap();
        let files = w.host_read_file(brick, &names.files).unwrap();
        let clock = w.machine(brick).now;
        images.push((stack, aout, files, clock));
    }
    let (a, b) = (&images[0], &images[1]);
    assert_eq!(a.0, b.0, "stack file diverges between cached and uncached");
    assert_eq!(a.1, b.1, "a.out file diverges between cached and uncached");
    assert_eq!(a.2, b.2, "files file diverges between cached and uncached");
    assert_eq!(a.3, b.3, "simulated clock diverges between cached and uncached");
}

/// The acceptance run: dump → migrate → restore, once with the cache
/// and once without, comparing the restored process's registers and
/// whole memory image mid-run, then the final output and accounting.
#[test]
fn migration_restores_identical_guest_state_with_icache_on_and_off() {
    let mut ends = Vec::new();
    for use_icache in [true, false] {
        let (mut w, brick, schooner, pid, _handle) = boot_and_prompt(config(use_icache), 3);
        let status = api::run_dumpproc(&mut w, brick, pid, alice()).expect("dumpproc runs");
        assert_eq!(status, 0);
        let (tty2, handle2) = w.add_terminal(schooner);
        let new_pid = api::run_restart(
            &mut w,
            schooner,
            RestartArgs {
                pid,
                dump_host: Some("brick".into()),
                demand: false,
            },
            Some(tty2),
            alice(),
        )
        .expect("restart succeeds");
        w.run_slices(50_000);
        // Mid-run snapshot of the restored body: registers + memory.
        let (cpu, text, data, stack) = {
            let p = w.proc_ref(schooner, new_pid).expect("restored process");
            let Body::Vm(vm) = &p.body else {
                panic!("restored body is not a VM")
            };
            assert_eq!(
                vm.icache.is_some(),
                use_icache,
                "cache presence must follow the kernel configuration"
            );
            (
                vm.cpu.clone(),
                vm.mem.text().to_vec(),
                vm.mem.data().to_vec(),
                vm.mem.stack_from(vm.cpu.a[7]).unwrap_or(&[]).to_vec(),
            )
        };
        handle2.type_input("line 3\n");
        w.run_slices(50_000);
        handle2.with(|t| t.close());
        let info = w.run_until_exit(schooner, new_pid, 100_000).expect("exits");
        let out = w.host_read_file(brick, "/tmp/testout").unwrap();
        ends.push((cpu, text, data, stack, info, out, handle2.output_text()));
    }
    let (a, b) = (&ends[0], &ends[1]);
    assert_eq!(a.0, b.0, "restored registers diverge");
    assert_eq!(a.1, b.1, "restored text diverges");
    assert_eq!(a.2, b.2, "restored data diverges");
    assert_eq!(a.3, b.3, "restored stack diverges");
    assert_eq!(a.4, b.4, "exit accounting diverges (simtime invariant)");
    assert_eq!(a.5, b.5, "output file diverges");
    assert_eq!(a.6, b.6, "terminal transcript diverges");
}

/// A SIGDUMP-interrupted run restored on a fresh machine (whose
/// rest_proc builds a brand-new icache for the restored text) must be
/// indistinguishable from the same program running uninterrupted.
#[test]
fn interrupted_and_restored_run_matches_uninterrupted_run() {
    // Uninterrupted: three lines straight through on brick.
    let (mut w_a, brick_a, _schooner_a, pid_a, handle_a) = boot_and_prompt(config(true), 3);
    handle_a.type_input("line 3\n");
    w_a.run_slices(20_000);
    handle_a.with(|t| t.close());
    let info_a = w_a.run_until_exit(brick_a, pid_a, 100_000).expect("exits");
    let out_a = w_a.host_read_file(brick_a, "/tmp/testout").unwrap();

    // Interrupted after two lines, restored on schooner, then the same
    // third line.
    let (mut w_b, brick_b, schooner_b, pid_b, _handle_b) = boot_and_prompt(config(true), 3);
    let status = api::run_dumpproc(&mut w_b, brick_b, pid_b, alice()).expect("dumpproc runs");
    assert_eq!(status, 0);
    let (tty2, handle2) = w_b.add_terminal(schooner_b);
    let new_pid = api::run_restart(
        &mut w_b,
        schooner_b,
        RestartArgs {
            pid: pid_b,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart succeeds");
    w_b.run_slices(50_000);
    handle2.type_input("line 3\n");
    w_b.run_slices(50_000);
    handle2.with(|t| t.close());
    let info_b = w_b
        .run_until_exit(schooner_b, new_pid, 100_000)
        .expect("exits");

    // The program's observable work is identical: same bytes written,
    // same exit status, same counters echoed after the third line.
    let out_b = w_b.host_read_file(brick_b, "/tmp/testout").unwrap();
    assert_eq!(out_a, out_b, "the output file must not see the migration");
    assert_eq!(info_a.status, info_b.status);
    assert!(handle_a.output_text().contains("R3 S3 K3"));
    assert!(handle2.output_text().contains("R4 S4 K4"));
}

/// The superblock tier of the same contract: dump → migrate → restore
/// with block translation on versus off must agree on every artefact
/// the icache-level test compares — the fused path is a cache of a
/// cache, and neither layer may leak into guest-visible state.
#[test]
fn migration_restores_identical_guest_state_with_superblocks_on_and_off() {
    let mut ends = Vec::new();
    for use_superblocks in [true, false] {
        let (mut w, brick, schooner, pid, _handle) = boot_and_prompt(config_sb(use_superblocks), 3);
        let status = api::run_dumpproc(&mut w, brick, pid, alice()).expect("dumpproc runs");
        assert_eq!(status, 0);
        let names = dumpfmt::dump_file_names(pid);
        let stack_file = w.host_read_file(brick, &names.stack).unwrap();
        let (tty2, handle2) = w.add_terminal(schooner);
        let new_pid = api::run_restart(
            &mut w,
            schooner,
            RestartArgs {
                pid,
                dump_host: Some("brick".into()),
                demand: false,
            },
            Some(tty2),
            alice(),
        )
        .expect("restart succeeds");
        w.run_slices(50_000);
        let (cpu, text, data, stack) = {
            let p = w.proc_ref(schooner, new_pid).expect("restored process");
            let Body::Vm(vm) = &p.body else {
                panic!("restored body is not a VM")
            };
            (
                vm.cpu.clone(),
                vm.mem.text().to_vec(),
                vm.mem.data().to_vec(),
                vm.mem.stack_from(vm.cpu.a[7]).unwrap_or(&[]).to_vec(),
            )
        };
        handle2.type_input("line 3\n");
        w.run_slices(50_000);
        handle2.with(|t| t.close());
        let info = w.run_until_exit(schooner, new_pid, 100_000).expect("exits");
        let out = w.host_read_file(brick, "/tmp/testout").unwrap();
        ends.push((stack_file, cpu, text, data, stack, info, out));
    }
    let (a, b) = (&ends[0], &ends[1]);
    assert_eq!(a.0, b.0, "dump stack file diverges across the toggle");
    assert_eq!(a.1, b.1, "restored registers diverge");
    assert_eq!(a.2, b.2, "restored text diverges");
    assert_eq!(a.3, b.3, "restored data diverges");
    assert_eq!(a.4, b.4, "restored stack diverges");
    assert_eq!(a.5, b.5, "exit accounting diverges (simtime invariant)");
    assert_eq!(a.6, b.6, "output file diverges");
}

/// A dump taken *mid-block* — the signal lands between a superblock's
/// entry and its exit, so the fused engine must have paused on exactly
/// the interior instruction the slot loop would have paused on. The
/// restored process resumes from a pc that is not a block head (the
/// target lazily translates a fresh block starting there) and must
/// still finish with the same state.
#[test]
fn mid_block_dump_restores_identically_with_superblocks_on_and_off() {
    // A tight counted loop: the loop body fuses into one 5-instruction
    // superblock. The signal-poll stride (4096 units) is not a multiple
    // of the block's 5 units, so dump pauses land inside the block.
    const LOOP_SRC: &str = r"
        start:  move.l  #500000, d6
        loop:   add.l   #1, d5
                eor.l   d5, d4
                lsr.l   #1, d4
                sub.l   #1, d6
                bgt     loop
        done:   move.l  #42, d1
                move.l  #1, d0
                trap    #0
    ";
    let obj = assemble(LOOP_SRC).unwrap();
    let loop_addr = obj.symbols["loop"];
    let done_addr = obj.symbols["done"];

    let mut ends = Vec::new();
    for use_superblocks in [true, false] {
        let mut w = World::new(config_sb(use_superblocks));
        let brick = w.add_machine("brick", IsaLevel::Isa1);
        let schooner = w.add_machine("schooner", IsaLevel::Isa1);
        w.install_program(brick, "/bin/spin", &obj).unwrap();
        let pid = w.spawn_vm_proc(brick, "/bin/spin", None, alice()).unwrap();
        // Part-way through the 2.5M-unit loop: the process is running,
        // nowhere near done.
        w.run_slices(7);
        let status = api::run_dumpproc(&mut w, brick, pid, alice()).expect("dumpproc runs");
        assert_eq!(status, 0);
        let names = dumpfmt::dump_file_names(pid);
        let stack_bytes = w.host_read_file(brick, &names.stack).unwrap();
        let dumped = dumpfmt::stack_file::StackFile::decode(&stack_bytes).unwrap();
        let pc = dumped.regs[16];
        assert!(
            loop_addr < pc && pc < done_addr,
            "dump pc {pc:#x} must land strictly inside the loop block \
             ({loop_addr:#x}..{done_addr:#x}) — adjust the slice count if \
             the workload changed"
        );
        let new_pid = api::run_restart(
            &mut w,
            schooner,
            RestartArgs {
                pid,
                dump_host: Some("brick".into()),
                demand: false,
            },
            None,
            alice(),
        )
        .expect("restart succeeds");
        let info = w
            .run_until_exit(schooner, new_pid, 10_000_000)
            .expect("restored loop finishes");
        ends.push((stack_bytes, pc, info));
    }
    let (a, b) = (&ends[0], &ends[1]);
    assert_eq!(a.0, b.0, "mid-block dump file diverges across the toggle");
    assert_eq!(a.1, b.1, "dump pc diverges across the toggle");
    assert_eq!(a.2.status, 42, "restored loop must run to its exit");
    assert_eq!(a.2, b.2, "post-restore exit accounting diverges");
}

/// Code executing from the *data* segment is invisible to the icache
/// (its slots cover text only) and runs through the live byte-window
/// decoder. A hand-built image whose text calls a data-resident
/// subroutine must behave identically under both kernels.
#[test]
fn data_segment_code_runs_via_fallback_decoder() {
    use Operand::{Abs, DReg, Imm, None as NoOp};
    // Two-pass: the text's jsr target depends only on the page-aligned
    // data base, which is stable for any text under one page.
    let data_base = MemoryLayout::data_base(0x20);
    let text_code = [
        Instr::new(Op::Jsr, Size::Long, NoOp, Abs(data_base)),
        Instr::new(Op::Move, Size::Long, DReg(3), DReg(1)),
        Instr::new(Op::Move, Size::Long, Imm(1), DReg(0)), // exit(d1)
        Instr::new(Op::Trap, Size::Long, Imm(0), NoOp),
    ];
    let data_code = [
        Instr::new(Op::Add, Size::Long, Imm(5), DReg(3)),
        Instr::new(Op::Add, Size::Long, Imm(37), DReg(3)),
        Instr::new(Op::Rts, Size::Long, NoOp, NoOp),
    ];
    let obj = m68vm::Object {
        text: m68vm::encode::encode_all(&text_code),
        data: m68vm::encode::encode_all(&data_code),
        bss_len: 0,
        entry: MemoryLayout::TEXT_BASE,
        symbols: Default::default(),
        required_isa: IsaLevel::Isa1,
    };
    assert!(obj.text.len() as u32 <= 0x20);

    let mut statuses = Vec::new();
    for use_icache in [true, false] {
        let mut w = World::new(config(use_icache));
        let brick = w.add_machine("brick", IsaLevel::Isa1);
        w.install_program(brick, "/bin/dataprog", &obj).unwrap();
        let pid = w.spawn_vm_proc(brick, "/bin/dataprog", None, alice()).unwrap();
        let info = w.run_until_exit(brick, pid, 50_000).expect("exits");
        statuses.push(info);
    }
    assert_eq!(statuses[0].status, 42, "5 + 37 accumulated in d3");
    assert_eq!(statuses[0], statuses[1], "fallback path diverges from uncached");
}
