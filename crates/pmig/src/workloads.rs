//! Guest (VM) workloads used by the evaluation, the tests and the
//! examples — including the paper's §6.2 test program.

/// The paper's §6.2 test program: "increments and prints three counters
/// (a register, a static variable allocated on the data segment and a
/// variable allocated on the stack). On each iteration it inputs a line
/// and appends it to an output file." Status lines look like
/// `R3 S3 K3`.
pub const TEST_PROGRAM: &str = r#"
        .equ    E_EXIT, 1
        .equ    E_READ, 3
        .equ    E_WRITE, 4
        .equ    E_CREAT, 8

start:  move.l  #E_CREAT, d0
        move.l  #outname, d1
        move.l  #420, d2            | 0644
        trap    #0
        move.l  d0, d7              | output fd
        move.l  #0, d6              | register counter
        move.l  #0, -(sp)           | stack counter

loop:   add.l   #1, d6              | register counter++
        add.l   #1, scount          | static counter++
        add.l   #1, (sp)            | stack counter++

        move.l  d6, d0
        jsr     digit
        move.b  d0, rdig
        move.l  scount, d0
        jsr     digit
        move.b  d0, sdig
        move.l  (sp), d0
        jsr     digit
        move.b  d0, kdig

        move.l  #E_WRITE, d0        | print the status line
        move.l  #1, d1
        move.l  #msg, d2
        move.l  #msglen, d3
        trap    #0

        move.l  #E_READ, d0         | prompt for a line
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #128, d3
        trap    #0
        bcs     done
        tst.l   d0
        beq     done                | EOF
        move.l  d0, d3              | append the line to the output file
        move.l  #E_WRITE, d0
        move.l  d7, d1
        move.l  #buf, d2
        trap    #0
        bra     loop

done:   move.l  #E_EXIT, d0
        move.l  #0, d1
        trap    #0

| digit: d0 = '0' + d0 % 10 (clobbers d1)
digit:  move.l  d0, d1
        divs.l  #10, d1
        muls.l  #10, d1
        sub.l   d1, d0
        add.l   #'0', d0
        rts

| A real 1987 test program carried the statically linked C library:
| pad the text segment to a representative ~25 KB.
libc:   .space  24576

        .data
outname:.asciz  "/tmp/testout"
msg:    .ascii  "R"
rdig:   .byte   '0'
        .ascii  " S"
sdig:   .byte   '0'
        .ascii  " K"
kdig:   .byte   '0'
        .ascii  "\n> "
        .equ    msglen, 11
scount: .long   0
statics:.space  4096                | static C-library data
        .bss
buf:    .space  128
"#;

/// Figure 1's open/close workload: "a program that opens and closes a
/// certain file" `n` times. The file (`/tmp/f`) must exist beforehand.
pub fn openclose_program(n: u32) -> String {
    format!(
        r#"
start:  move.l  #{n}, d6
loop:   move.l  #5, d0              | open("/tmp/f", RDONLY)
        move.l  #fname, d1
        move.l  #0, d2
        trap    #0
        bcs     fail
        move.l  d0, d1              | close(fd)
        move.l  #6, d0
        trap    #0
        sub.l   #1, d6
        bgt     loop
        move.l  #1, d0              | exit(0)
        move.l  #0, d1
        trap    #0
fail:   move.l  #1, d0              | exit(1)
        move.l  #1, d1
        trap    #0
        .data
fname:  .asciz  "/tmp/f"
"#
    )
}

/// Figure 1's chdir workload: `n` "sets of three calls to chdir(), one
/// with an absolute path name ..., one with the parent directory `..`
/// ... and one with a path relative to the current directory `.`".
pub fn chdir_program(n: u32) -> String {
    format!(
        r#"
start:  move.l  #{n}, d6
loop:   move.l  #12, d0             | chdir("/usr/tmp")
        move.l  #pabs, d1
        trap    #0
        bcs     fail
        move.l  #12, d0             | chdir("..")
        move.l  #pup, d1
        trap    #0
        bcs     fail
        move.l  #12, d0             | chdir(".")
        move.l  #pdot, d1
        trap    #0
        bcs     fail
        sub.l   #1, d6
        bgt     loop
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
fail:   move.l  #1, d0
        move.l  #1, d1
        trap    #0
        .data
pabs:   .asciz  "/usr/tmp"
pup:    .asciz  ".."
pdot:   .asciz  "."
"#
    )
}

/// A CPU-bound job: `rounds` rounds of a 10 000-iteration inner loop,
/// used by the load-balancing experiments. Exits 0 when done.
pub fn cpu_hog_program(rounds: u32) -> String {
    format!(
        r#"
start:  move.l  #{rounds}, d7
outer:  move.l  #10000, d6
inner:  add.l   #1, d5
        muls.l  #3, d4
        sub.l   #1, d6
        bgt     inner
        add.l   #1, progress
        sub.l   #1, d7
        bgt     outer
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
progress:
        .long   0
"#
    )
}

/// The dirty-page workload for the live-migration benchmarks: a CPU
/// hog with `ballast` bytes of bss behind it, re-dirtying a four-page
/// working set every round — the shape that separates the protocols.
/// Eager copies the whole ballast frozen; pre-copy streams it live and
/// freezes for a working-set-sized delta; demand restarts without it
/// and fetches pages as they are touched. Exits 0.
pub fn dirty_hog_program(rounds: u32, ballast: u32) -> String {
    format!(
        r#"
start:  move.l  #{rounds}, d7
outer:  move.l  #2000, d6
inner:  add.l   #1, d5
        muls.l  #3, d4
        sub.l   #1, d6
        bgt     inner
        add.l   #1, progress
        move.l  #ballast, a0
        move.l  #4, d3
sweep:  move.l  d7, (a0)
        add.l   #0x2000, a0
        sub.l   #1, d3
        bgt     sweep
        sub.l   #1, d7
        bgt     outer
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
progress:
        .long   0
        .bss
ballast:
        .space  {ballast}
"#
    )
}

/// A visual ("screen editor" style) program: switches its terminal to
/// raw+noecho, then echoes every keystroke back decorated until it sees
/// `q`. Migration must preserve the raw mode for it to stay usable.
pub const EDITOR_PROGRAM: &str = r#"
        .equ    RAWMODE, 0o40       | TtyFlags::RAW, no echo
start:  move.l  #54, d0             | ioctl(0, STTY, raw|noecho)
        move.l  #0, d1
        move.l  #1, d2
        move.l  #RAWMODE, d3
        trap    #0
loop:   move.l  #3, d0              | read one keystroke
        move.l  #0, d1
        move.l  #key, d2
        move.l  #1, d3
        trap    #0
        bcs     quit
        tst.l   d0
        beq     quit
        move.b  key, d4
        cmp.b   #'q', d4
        beq     quit
        move.b  d4, shown           | paint "[x]"
        move.l  #4, d0
        move.l  #1, d1
        move.l  #paint, d2
        move.l  #3, d3
        trap    #0
        bra     loop
quit:   move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
paint:  .byte   '['
shown:  .byte   '?'
        .byte   ']'
        .bss
key:    .space  4
"#;

/// A program that "knows" its process id (§7 limitation): on every
/// iteration it reconstructs a temp-file name from `getpid()` and
/// appends to it. After migration the pid changes, the open fails and
/// the program exits with status 3.
pub const PID_TEMPFILE_PROGRAM: &str = r#"
start:  move.l  #20, d0             | getpid
        trap    #0
        jsr     pidname             | build "/tmp/pN..." from d0
        move.l  #8, d0              | creat the temp file
        move.l  #name, d1
        move.l  #420, d2
        trap    #0
        bcs     lost
        move.l  d0, d1              | close it again
        move.l  #6, d0
        trap    #0

loop:   move.l  #20, d0             | getpid *every time* — the paper's
        trap    #0                  | problem case
        jsr     pidname
        move.l  #5, d0              | open("/tmp/pNNN", RDWR)
        move.l  #name, d1
        move.l  #2, d2
        trap    #0
        bcs     lost                | pid changed: the file is gone
        move.l  d0, d7
        move.l  #19, d0             | lseek(fd, 0, END)
        move.l  d7, d1
        move.l  #0, d2
        move.l  #2, d3
        trap    #0
        move.l  #4, d0              | append a marker byte
        move.l  d7, d1
        move.l  #mark, d2
        move.l  #1, d3
        trap    #0
        move.l  #6, d0              | close
        move.l  d7, d1
        trap    #0
        move.l  #3, d0              | read a line (lets the host pace us)
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #64, d3
        trap    #0
        bcs     out
        tst.l   d0
        beq     out
        bra     loop

lost:   move.l  #1, d0              | exit(3): lost our temp file
        move.l  #3, d1
        trap    #0
out:    move.l  #1, d0
        move.l  #0, d1
        trap    #0

| pidname: write decimal digits of d0 after the "/tmp/p" prefix.
pidname:move.l  #0, d3              | digit count
more:   move.l  d0, d1
        divs.l  #10, d1             | d1 = d0 / 10
        move.l  d1, d2
        muls.l  #10, d2
        sub.l   d2, d0              | d0 = d0 % 10
        add.l   #'0', d0
        move.l  d0, -(sp)           | push digit
        add.l   #1, d3
        move.l  d1, d0
        tst.l   d0
        bne     more
        lea     digits, a0
emit:   move.l  (sp)+, d0
        move.b  d0, (a0)+
        sub.l   #1, d3
        bgt     emit
        move.b  #0, (a0)            | terminating NUL
        rts

        .data
name:   .ascii  "/tmp/p"
digits: .space  12
mark:   .byte   '+'
        .bss
buf:    .space  64
"#;

/// A program that decides its behaviour from the machine it starts on
/// (§7's hardware-floating-point example): it records the first letter
/// of `gethostname()` once, then on every iteration re-checks it and
/// jumps through a null pointer if the machine changed — the "will make
/// the wrong decision and crash" case.
pub const ENV_DEPENDENT_PROGRAM: &str = r#"
start:  move.l  #87, d0             | gethostname(buf, 8)
        move.l  #hbuf, d1
        move.l  #8, d2
        trap    #0
        move.b  hbuf, d7            | the "decision": first letter
        move.b  d7, saved

loop:   move.l  #87, d0             | re-derive the decision input
        move.l  #hbuf, d1
        move.l  #8, d2
        trap    #0
        move.b  hbuf, d6
        move.b  saved, d7
        cmp.b   d7, d6
        bne     crash               | wrong machine for our decision
        move.l  #3, d0              | read a line (host paces us)
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #64, d3
        trap    #0
        bcs     out
        tst.l   d0
        beq     out
        bra     loop

crash:  move.l  0, d0               | null dereference: SIGSEGV
out:    move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .data
saved:  .byte   0
        .bss
hbuf:   .space  8
buf:    .space  64
"#;

/// A parent that forks a child and waits for it — the §7 "should not be
/// migrated while waiting" case. The child waits for terminal input
/// before exiting, keeping the parent blocked in `wait()`.
pub const WAITING_PARENT_PROGRAM: &str = r#"
start:  move.l  #2, d0              | fork
        trap    #0
        tst.l   d0
        beq     child
        move.l  #7, d0              | wait()
        move.l  #0, d1
        trap    #0
        bcs     waitfail
        move.l  #1, d0              | exit(0): child reaped
        move.l  #0, d1
        trap    #0
waitfail:
        move.l  #1, d0              | exit(10): ECHILD after migration
        move.l  #10, d1
        trap    #0
child:  move.l  #3, d0              | child: block on input, then exit
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #16, d3
        trap    #0
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
        .bss
buf:    .space  16
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::assemble;

    #[test]
    fn all_workloads_assemble() {
        assemble(TEST_PROGRAM).expect("test program");
        assemble(&openclose_program(100)).expect("open/close");
        assemble(&chdir_program(100)).expect("chdir");
        assemble(&cpu_hog_program(10)).expect("cpu hog");
        assemble(EDITOR_PROGRAM).expect("editor");
        assemble(PID_TEMPFILE_PROGRAM).expect("pid tempfile");
        assemble(ENV_DEPENDENT_PROGRAM).expect("env dependent");
        assemble(WAITING_PARENT_PROGRAM).expect("waiting parent");
    }

    #[test]
    fn workloads_stay_isa1() {
        for src in [TEST_PROGRAM, EDITOR_PROGRAM, PID_TEMPFILE_PROGRAM] {
            let obj = assemble(src).unwrap();
            assert_eq!(obj.required_isa, m68vm::IsaLevel::Isa1);
        }
    }
}
