//! The paper's contribution at user level: `dumpproc`, `restart`,
//! `migrate` and `undump`.
//!
//! "Most of the implementation code for process migration is at the user
//! level. By this we mean that all commands that have to do with process
//! migration are user applications." (§4.1) These commands run as native
//! processes under the simulated kernel, using only the system-call
//! interface — exactly the position the paper's C programs were in.
//!
//! * [`dumpproc`] — kill a process with `SIGDUMP`, then rewrite its
//!   `filesXXXXX`: resolve symbolic links, map terminals to `/dev/tty`,
//!   and prepend `/n/<machine>` to local paths (§4.4).
//! * [`restart`] — verify the three dump files, re-establish
//!   credentials, cwd, open files (with `/dev/null` placeholders) and
//!   terminal modes, then call `rest_proc()` (§4.4).
//! * [`migrate`] — compose the two across machines with `rsh` (§4.1).
//! * [`undump_cmd`] — combine an executable and a core dump (§4.3's freebie).
//!
//! The [`api`] module offers world-level helpers for tests, examples and
//! the benchmark harness; [`workloads`] holds the guest programs the
//! evaluation uses, including the paper's §6.2 test program.

pub mod api;
pub mod commands;
pub mod proto;
pub mod resolve;
pub mod workloads;

pub use api::{find_restarted, migrate_process, MigrationError};
pub use commands::{
    dumpproc, migrate, migrate_with, restart, undump_cmd, MigrateOutcome, RemoteRunner,
    RestartArgs, Survivor,
};
pub use proto::{migrate_proto, MigrationReport, Protocol};
pub use resolve::resolve_links;
