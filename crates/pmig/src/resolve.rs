//! User-level symbolic-link resolution, §4.3's fix for the NFS naming
//! problem.
//!
//! Dumped path names "have been constructed by combining the names given
//! by the process to the kernel ... This means that symbolic links are
//! not resolved and this may cause problems when trying to reopen a file
//! when restarting the process. ... The way to solve this problem is to
//! resolve symbolic links before files are reopened. The Sun 3.0
//! operating system provides the `readlink()` system call, which can be
//! used iteratively to resolve all symbolic links in a pathname."

use sysdefs::{Errno, SysResult};
use ukernel::Sys;

/// Maximum expansions before giving up, mirroring the kernel's own
/// symlink budget.
const MAX_EXPANSIONS: usize = 32;

/// Resolves every symbolic link in an absolute `path` using repeated
/// `readlink()` calls, returning a link-free absolute path.
///
/// Relative link targets are spliced in place; absolute targets restart
/// the prefix. Components that do not exist (yet) are kept verbatim —
/// `dumpproc` may resolve paths whose final component it has not created.
pub fn resolve_links(sys: &Sys, path: &str) -> SysResult<String> {
    if !path.starts_with('/') {
        return Err(Errno::EINVAL);
    }
    let mut components: Vec<String> = path
        .split('/')
        .filter(|c| !c.is_empty() && *c != ".")
        .map(str::to_string)
        .collect();
    let mut resolved: Vec<String> = Vec::new();
    let mut budget = MAX_EXPANSIONS;

    while !components.is_empty() {
        let comp = components.remove(0);
        if comp == ".." {
            resolved.pop();
            continue;
        }
        let prefix = format!("/{}", {
            let mut v = resolved.clone();
            v.push(comp.clone());
            v.join("/")
        });
        match sys.readlink(&prefix) {
            Ok(target) => {
                if budget == 0 {
                    return Err(Errno::ELOOP);
                }
                budget -= 1;
                let target_comps: Vec<String> = target
                    .split('/')
                    .filter(|c| !c.is_empty() && *c != ".")
                    .map(str::to_string)
                    .collect();
                if target.starts_with('/') {
                    resolved.clear();
                }
                // Splice the target in front of the remaining components.
                let mut rest = target_comps;
                rest.append(&mut components);
                components = rest;
            }
            Err(Errno::EINVAL) => {
                // Not a symlink: keep the component.
                resolved.push(comp);
            }
            Err(Errno::ENOENT) => {
                // Component (or a parent) does not exist: keep it and
                // everything after it verbatim.
                resolved.push(comp);
                resolved.append(&mut components);
            }
            Err(e) => return Err(e),
        }
    }
    if resolved.is_empty() {
        Ok("/".to_string())
    } else {
        Ok(format!("/{}", resolved.join("/")))
    }
}

/// `dumpproc`'s per-path rewrite rule (§4.4): resolve links, then map
/// terminals to `/dev/tty` and prepend `/n/<machine>` to local names.
pub fn rewrite_for_migration(sys: &Sys, path: &str, local_host: &str) -> SysResult<String> {
    // "If a file name points to a terminal, it is changed to /dev/tty,
    // to point to the current terminal of the process that will open
    // it."
    if path == "/dev/tty" || path.starts_with("/dev/tty") || path == "/dev/console" {
        return Ok("/dev/tty".to_string());
    }
    let resolved = resolve_links(sys, path)?;
    // "Otherwise, if after resolving the symbolic links, a file is found
    // to be local to the machine ... (i.e., its name does not begin with
    // /n), the string /n/<machinename> is prepended to its name."
    if resolved == "/n" || resolved.starts_with("/n/") {
        Ok(resolved)
    } else if resolved == "/" {
        Ok(format!("/n/{local_host}"))
    } else {
        Ok(format!("/n/{local_host}{resolved}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::IsaLevel;
    use sysdefs::Credentials;
    use ukernel::{KernelConfig, World};

    /// Runs a closure as a native process and returns its exit status.
    fn run_native(w: &mut World, mid: usize, f: impl FnOnce(&Sys) -> u32 + Send + 'static) -> u32 {
        let pid = w.spawn_native_proc(mid, "test", None, Credentials::root(), Box::new(f));
        w.run_until_exit(mid, pid, 200_000)
            .expect("native exits")
            .status
    }

    #[test]
    fn resolves_chained_and_relative_links() {
        let mut w = World::new(KernelConfig::paper());
        let m = w.add_machine("classic", IsaLevel::Isa1);
        let status = run_native(&mut w, m, |sys| {
            sys.mkdir("/real", 0o755).unwrap();
            sys.mkdir("/real/dir", 0o755).unwrap();
            sys.creat("/real/dir/file", 0o644).unwrap();
            sys.symlink("/real", "/alias").unwrap();
            sys.symlink("dir", "/real/sub").unwrap(); // Relative target.
            let r = resolve_links(sys, "/alias/sub/file").unwrap();
            assert_eq!(r, "/real/dir/file");
            0
        });
        assert_eq!(status, 0);
    }

    #[test]
    fn missing_tail_kept_verbatim() {
        let mut w = World::new(KernelConfig::paper());
        let m = w.add_machine("classic", IsaLevel::Isa1);
        let status = run_native(&mut w, m, |sys| {
            sys.mkdir("/real", 0o755).unwrap();
            sys.symlink("/real", "/alias").unwrap();
            let r = resolve_links(sys, "/alias/not/yet/there").unwrap();
            assert_eq!(r, "/real/not/yet/there");
            0
        });
        assert_eq!(status, 0);
    }

    #[test]
    fn loop_detected() {
        let mut w = World::new(KernelConfig::paper());
        let m = w.add_machine("classic", IsaLevel::Isa1);
        let status = run_native(&mut w, m, |sys| {
            sys.symlink("/b", "/a").unwrap();
            sys.symlink("/a", "/b").unwrap();
            match resolve_links(sys, "/a/x") {
                Err(Errno::ELOOP) => 0,
                other => {
                    let _ = other;
                    1
                }
            }
        });
        assert_eq!(status, 0);
    }

    #[test]
    fn rewrite_maps_terminals_and_prepends_host() {
        let mut w = World::new(KernelConfig::paper());
        let m = w.add_machine("brick", IsaLevel::Isa1);
        let _n = w.add_machine("brador", IsaLevel::Isa1);
        let status = run_native(&mut w, m, |sys| {
            sys.mkdir("/work", 0o777).unwrap();
            sys.creat("/work/out", 0o644).unwrap();
            assert_eq!(
                rewrite_for_migration(sys, "/dev/tty3", "brick").unwrap(),
                "/dev/tty"
            );
            assert_eq!(
                rewrite_for_migration(sys, "/work/out", "brick").unwrap(),
                "/n/brick/work/out"
            );
            // Already-remote names are left alone.
            assert_eq!(
                rewrite_for_migration(sys, "/n/brador/tmp/x", "brick").unwrap(),
                "/n/brador/tmp/x"
            );
            0
        });
        assert_eq!(status, 0);
    }

    #[test]
    fn rewrite_resolves_the_papers_nfs_case() {
        // §4.3's example: /usr2 on classic is a symlink to
        // /n/brador/usr2; the rewrite must produce the brador name, NOT
        // /n/classic/usr2 (which would hit the EREMOTE wall).
        let mut w = World::new(KernelConfig::paper());
        let classic = w.add_machine("classic", IsaLevel::Isa1);
        let brador = w.add_machine("brador", IsaLevel::Isa1);
        w.host_mkdir_p(brador, "/usr2/alice").unwrap();
        w.host_write_file(brador, "/usr2/alice/foo", b"x").unwrap();
        let status = run_native(&mut w, classic, |sys| {
            sys.symlink("/n/brador/usr2", "/usr2").unwrap();
            let r = rewrite_for_migration(sys, "/usr2/alice/foo", "classic").unwrap();
            assert_eq!(r, "/n/brador/usr2/alice/foo");
            0
        });
        assert_eq!(status, 0);
    }
}
