//! The live-migration protocol engine: eager, pre-copy, demand-restore.
//!
//! The paper's `migrate` freezes the victim for the whole dump + restart,
//! so *downtime* (how long the process is unavailable) equals *total
//! migration time*. Later work (Zarrabi, PAPERS.md) separates the two
//! with protocols that overlap copying with execution. This module
//! implements three of them behind one state machine, each holding the
//! PR-4 invariant — any failure leaves **exactly one live copy** and no
//! stranded dump files:
//!
//! * [`Protocol::Eager`] — the paper's protocol, driven from the host so
//!   its downtime and totals are measured the same way as the others:
//!   `SIGDUMP` freeze, full three-file dump, verified restart on the
//!   target, recovery restart at the source when the target refuses.
//! * [`Protocol::PreCopy`] — arm page-granular dirty tracking
//!   (`m68vm::Memory`), stream the image page by page while the source
//!   keeps running, re-send the pages each round re-dirtied, and freeze
//!   only for the final *delta* dump (`deltaXXXXX`) + registers. The
//!   engine reassembles an ordinary `a.outXXXXX` from the streamed pages
//!   and the delta, so `restart`/`rest_proc()` are unchanged.
//! * [`Protocol::Demand`] — full dump, then restart *immediately* with
//!   only header + text resident (`restart -d`): data pages are marked
//!   absent and fetched from the source dump over NFS on first touch
//!   (the kernel's `page-fetch` fault path), while the engine drains the
//!   untouched residue in the background so the dump can be released.
//!
//! Downtime is measured from the freeze that kills the source copy to
//! the instant the target copy is runnable; total time additionally
//! covers pre-copy rounds before the freeze and residual draining after
//! the restart. Both are reported on the world clock (the maximum of
//! the per-machine clocks, which the event scheduler keeps coherent by
//! always stepping the laggard).

use std::collections::BTreeMap;

use aout::encode_executable;
use dumpfmt::{dump_file_names, DeltaFile, FilesFile, StackFile};
use m68vm::MemoryLayout;
use simnet::NfsOp;
use simtime::SimDuration;
use sysdefs::{Credentials, Errno, Pid, Signal};
use ukernel::{ImageGeometry, MachineId, World};

use crate::api::{run_dumpproc, run_restart, MigrationError};
use crate::commands::{cleanup_dumps, transient, RestartArgs, Survivor, MIGRATE_TRIES};

/// Pre-copy rounds before the engine freezes regardless of how much is
/// still dirty (round 1 streams the whole image; later rounds stream
/// deltas). Bounds total migration time for workloads that dirty pages
/// faster than the network drains them.
pub const PRECOPY_MAX_ROUNDS: u32 = 4;

/// Freeze as soon as a round leaves no more than this many dirty pages:
/// the remaining delta is small enough that sending it frozen costs
/// less than another live round.
pub const PRECOPY_DIRTY_THRESHOLD: usize = 2;

/// How long the source runs between pre-copy rounds, so the workload's
/// write rate — not the engine's polling — decides the next delta.
const PRECOPY_ROUND_GAP_US: u64 = 100_000;

/// Scheduling-slice budget granted between residual-drain prefetches,
/// letting the demand-restored process run (and fault pages in itself)
/// while the engine pulls the rest.
const DRAIN_INTERLEAVE_SLICES: u64 = 2;

/// Hard cap on drain iterations — a backstop against a wedged target,
/// far above what any real image (data segment / page size) needs.
const DRAIN_MAX_STEPS: u32 = 100_000;

/// The three selectable migration protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Freeze, dump everything, restart: downtime ≈ total.
    Eager,
    /// Stream pages while running, freeze only for the final delta.
    PreCopy,
    /// Restart from registers + stack at once, fetch pages on demand.
    Demand,
}

impl Protocol {
    /// Parses the `--proto` flag spelling.
    pub fn parse(s: &str) -> Option<Protocol> {
        match s {
            "eager" => Some(Protocol::Eager),
            "precopy" => Some(Protocol::PreCopy),
            "demand" => Some(Protocol::Demand),
            _ => None,
        }
    }

    /// The flag spelling back.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Eager => "eager",
            Protocol::PreCopy => "precopy",
            Protocol::Demand => "demand",
        }
    }

    /// All protocols, in presentation order.
    pub const ALL: [Protocol; 3] = [Protocol::Eager, Protocol::PreCopy, Protocol::Demand];
}

/// What a protocol run did and what it cost.
#[derive(Clone, Debug)]
pub struct MigrationReport {
    /// Which protocol ran.
    pub protocol: Protocol,
    /// 0 = migrated to the target; otherwise the errno of the step that
    /// decided the outcome.
    pub status: u32,
    /// Which side holds the live copy now.
    pub survivor: Survivor,
    /// The live copy's pid (on the target for [`Survivor::Target`], on
    /// the source for a recovery restart); `None` when the original
    /// process simply kept running or the copy was lost.
    pub new_pid: Option<Pid>,
    /// Freeze-to-runnable: how long no copy of the process could run.
    pub downtime_us: u64,
    /// Engine start to engine finish, including pre-copy rounds and the
    /// residual drain.
    pub total_us: u64,
    /// Pre-copy rounds run (0 for the other protocols).
    pub rounds: u32,
    /// Pages streamed live before the freeze.
    pub pages_precopied: u64,
    /// Residual pages pulled after the restart (kernel page faults not
    /// included — those are in `MachineStats::pages_fetched`).
    pub pages_fetched: u64,
    /// Bytes of page payload moved outside the dump files.
    pub bytes_sent: u64,
}

impl MigrationReport {
    /// True when the process now runs on the target.
    pub fn migrated(&self) -> bool {
        self.survivor == Survivor::Target
    }
}

/// The world clock: the furthest-ahead machine. The event scheduler
/// always steps the laggard with work, so this is the coherent "wall
/// time" to difference across machines.
fn now_world(world: &World) -> u64 {
    (0..world.machine_count())
        .map(|m| world.machine(m).now.as_micros())
        .max()
        .unwrap_or(0)
}

/// Parks every idle machine's clock at the world clock and returns it.
/// Phase boundaries must sync: the cost a phase adds on a machine whose
/// clock lags the leader would otherwise vanish inside the skew — a
/// restart on an idle target looked *free* until the target caught up.
fn sync_clocks(world: &mut World) -> u64 {
    if let Some(deadline) = (0..world.machine_count()).map(|m| world.machine(m).now).max() {
        world.run_until_time(deadline, 2_000_000);
    }
    now_world(world)
}

/// True while `pid` exists on `mid` and has not exited.
fn alive(world: &World, mid: MachineId, pid: Pid) -> bool {
    world.proc_ref(mid, pid).is_some() && !world.finished.contains_key(&(mid, pid.as_u32()))
}

/// Runs the existing `cleanup` of the four dump names as a native
/// process on `mid` — best-effort, charged like any user command.
fn run_cleanup(world: &mut World, mid: MachineId, pid: Pid, cred: Credentials) {
    let cmd = world.spawn_native_proc(
        mid,
        "cleanup",
        None,
        cred,
        Box::new(move |sys| {
            cleanup_dumps(sys, "", pid);
            0
        }),
    );
    let _ = world.run_until_exit(mid, cmd, 500_000);
}

/// Which image file a freeze is expected to have produced.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DumpKind {
    Full,
    Delta,
}

/// Host-side verification that a freeze left a fully decodable dump
/// set: the engine must never walk away from (or delete) the only copy
/// of a process on the strength of files it has not read.
fn dumps_decode(world: &World, mid: MachineId, pid: Pid, kind: DumpKind) -> bool {
    let names = dump_file_names(pid);
    let image_ok = match kind {
        DumpKind::Full => world
            .host_read_file(mid, &names.a_out)
            .is_ok_and(|b| aout::parse_executable(&b).is_ok()),
        DumpKind::Delta => world
            .host_read_file(mid, &names.delta)
            .is_ok_and(|b| DeltaFile::decode(&b).is_ok()),
    };
    image_ok
        && world
            .host_read_file(mid, &names.files)
            .is_ok_and(|b| FilesFile::decode(&b).is_ok())
        && world
            .host_read_file(mid, &names.stack)
            .is_ok_and(|b| StackFile::decode(&b).is_ok())
}

/// Dump phase with the `migrate_with` retry discipline: a failed dump
/// (or a torn one with the victim still alive) is swept and redone with
/// a fresh `SIGDUMP`; a dead victim's dumps are never swept. Returns 0
/// with verified dumps on `from`, or the last status.
fn dump_with_retry(
    world: &mut World,
    from: MachineId,
    victim: Pid,
    kind: DumpKind,
    cred: Credentials,
) -> Result<u32, MigrationError> {
    let mut status = 0u32;
    for _ in 0..MIGRATE_TRIES {
        status = run_dumpproc(world, from, victim, cred.clone())?;
        if status == 0 {
            if dumps_decode(world, from, victim, kind) {
                return Ok(0);
            }
            status = Errno::EINVAL.as_u16() as u32;
        }
        if !alive(world, from, victim) {
            // The victim is dead: whatever the dump wrote is its last
            // copy. The caller recovers from it instead of retrying.
            break;
        }
        run_cleanup(world, from, victim, cred.clone());
        if !transient(status as u16) {
            break;
        }
    }
    Ok(status)
}

/// Restart on `mid`, retrying transient transport failures like the
/// `migrate` command does.
fn restart_with_retry(
    world: &mut World,
    mid: MachineId,
    args: RestartArgs,
    cred: Credentials,
) -> Result<Pid, u32> {
    let mut status = 0u32;
    for _ in 0..MIGRATE_TRIES {
        match run_restart(world, mid, args.clone(), None, cred.clone()) {
            Ok(pid) => return Ok(pid),
            Err(MigrationError::Failed(s)) => {
                status = s;
                if !transient(s as u16) {
                    break;
                }
            }
            Err(_) => {
                status = Errno::EIO.as_u16() as u32;
                break;
            }
        }
    }
    Err(status)
}

/// Charges one engine-driven NFS transfer to `mid`'s clock, retrying
/// dropped RPCs on the `migrate` schedule. The charged pid need not
/// exist on `mid` (`charge_sys` skips `stime` for foreign pids), so the
/// target side can pay for pulls of a dead source pid's files.
fn charge_transfer(world: &mut World, mid: MachineId, pid: Pid, op: NfsOp) -> bool {
    for _ in 0..MIGRATE_TRIES {
        if world.charge_kernel_rpc(mid, pid, op).1.is_ok() {
            return true;
        }
    }
    false
}

/// Migrates `victim` from `from` to `to` under `proto`, returning the
/// full accounting report. Failures that leave a live copy somewhere
/// come back as `Ok` with the survivor recorded; only a wedged command
/// process is an `Err`.
pub fn migrate_proto(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    proto: Protocol,
    cred: Credentials,
) -> Result<MigrationReport, MigrationError> {
    let mut report = MigrationReport {
        protocol: proto,
        status: 0,
        survivor: Survivor::Source,
        new_pid: None,
        downtime_us: 0,
        total_us: 0,
        rounds: 0,
        pages_precopied: 0,
        pages_fetched: 0,
        bytes_sent: 0,
    };
    let t_start = sync_clocks(world);
    match proto {
        Protocol::Eager => eager(world, victim, from, to, cred, t_start, &mut report)?,
        Protocol::PreCopy => precopy(world, victim, from, to, cred, t_start, &mut report)?,
        Protocol::Demand => demand(world, victim, from, to, cred, t_start, &mut report)?,
    }
    report.total_us = now_world(world).saturating_sub(t_start);
    Ok(report)
}

/// The eager protocol: the paper's freeze–dump–restart, host-driven.
fn eager(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    cred: Credentials,
    t_freeze: u64,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    let from_name = world.machine(from).name.clone();
    let status = dump_with_retry(world, from, victim, DumpKind::Full, cred.clone())?;
    if status != 0 {
        finish_no_dump(world, victim, from, status, cred.clone(), report)?;
        return Ok(());
    }
    let args = RestartArgs {
        pid: victim,
        dump_host: Some(from_name),
        demand: false,
    };
    sync_clocks(world);
    match restart_with_retry(world, to, args, cred.clone()) {
        Ok(new_pid) => {
            report.downtime_us = now_world(world).saturating_sub(t_freeze);
            report.survivor = Survivor::Target;
            report.new_pid = Some(new_pid);
            run_cleanup(world, from, victim, cred.clone());
        }
        Err(status) => recover_at_source(world, victim, from, status, cred.clone(), report)?,
    }
    Ok(())
}

/// The pre-copy protocol: stream live, freeze for the delta, reassemble
/// an ordinary `a.outXXXXX` on the target, restart locally there.
fn precopy(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    cred: Credentials,
    t_start: u64,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    if !world.host_set_dirty_tracking(from, victim, true) {
        // Not a VM process (or already gone): nothing to track, so the
        // protocol degenerates to eager semantics.
        return eager(world, victim, from, to, cred.clone(), t_start, report);
    }
    let Some(geom) = world.host_image_geometry(from, victim) else {
        world.host_set_dirty_tracking(from, victim, false);
        return eager(world, victim, from, to, cred.clone(), t_start, report);
    };

    // Live rounds: round 1 streams the whole image (arming marks every
    // page dirty), later rounds stream what the workload re-dirtied.
    let mut staged: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
    loop {
        report.rounds += 1;
        for (page, bytes) in world.host_take_dirty_pages(from, victim) {
            if !charge_transfer(world, from, victim, NfsOp::Write(bytes.len())) {
                // The stream is down and the victim never stopped
                // running: call the migration off, leave it untouched.
                abort_precopy(world, from, victim, Errno::ETIMEDOUT, report);
                return Ok(());
            }
            report.pages_precopied += 1;
            report.bytes_sent += bytes.len() as u64;
            staged.insert(page, bytes);
        }
        if !alive(world, from, victim) {
            // The workload finished by itself mid-stream; there is
            // nothing left to migrate.
            abort_precopy(world, from, victim, Errno::ESRCH, report);
            return Ok(());
        }
        if report.rounds >= PRECOPY_MAX_ROUNDS {
            break;
        }
        // Let the workload run (and dirty its working set) before
        // deciding: checking the dirty count right after draining it
        // would always see an empty set and freeze after one round.
        let gap = world.machine(from).now + SimDuration::micros(PRECOPY_ROUND_GAP_US);
        world.run_until_time(gap, 2_000_000);
        if !alive(world, from, victim) {
            abort_precopy(world, from, victim, Errno::ESRCH, report);
            return Ok(());
        }
        if world.host_dirty_count(from, victim) <= PRECOPY_DIRTY_THRESHOLD {
            break;
        }
    }

    // Freeze: the next SIGDUMP writes deltaXXXXX instead of a full
    // a.outXXXXX. The dirty set is read non-destructively at dump time,
    // so a torn freeze stays retryable.
    let t_freeze = sync_clocks(world);
    world.host_set_dump_delta(from, victim, true);
    let status = dump_with_retry(world, from, victim, DumpKind::Delta, cred.clone())?;
    if status != 0 {
        if alive(world, from, victim) {
            abort_precopy(world, from, victim, Errno::EIO, report);
            report.status = status;
            return Ok(());
        }
        // Dead victim, unreadable freeze: the staged pages cannot be
        // completed, so nothing can vouch for a restart. Report the
        // loss loudly rather than reanimate a torn image.
        run_cleanup(world, from, victim, cred.clone());
        report.status = status;
        report.survivor = Survivor::Lost;
        return Ok(());
    }

    // Pull the freeze triple. The charge lands on the target's clock —
    // it is the puller — against the (dead) victim pid.
    sync_clocks(world);
    let names = dump_file_names(victim);
    let delta_bytes = world.host_read_file(from, &names.delta);
    let files_bytes = world.host_read_file(from, &names.files);
    let stack_bytes = world.host_read_file(from, &names.stack);
    let (Ok(delta_bytes), Ok(files_bytes), Ok(stack_bytes)) =
        (delta_bytes, files_bytes, stack_bytes)
    else {
        // Local files that verified a moment ago cannot be read — treat
        // as a torn freeze and recover at the source via reassembly.
        return reassemble_and_recover(
            world,
            victim,
            from,
            &geom,
            &staged,
            Errno::EIO.as_u16() as u32,
            cred.clone(),
            report,
        );
    };
    let Ok(delta) = DeltaFile::decode(&delta_bytes) else {
        return reassemble_and_recover(
            world,
            victim,
            from,
            &geom,
            &staged,
            Errno::EINVAL.as_u16() as u32,
            cred.clone(),
            report,
        );
    };
    for p in &delta.pages {
        report.bytes_sent += p.bytes.len() as u64;
    }
    let pulled = delta_bytes.len() + files_bytes.len() + stack_bytes.len();
    if !charge_transfer(world, to, victim, NfsOp::Read(pulled)) {
        // The target cannot pull; the source still holds everything
        // needed to bring the process back locally.
        return reassemble_and_recover(
            world,
            victim,
            from,
            &geom,
            &staged,
            Errno::ETIMEDOUT.as_u16() as u32,
            cred.clone(),
            report,
        );
    }

    // Reassemble the ordinary a.outXXXXX the restart path expects and
    // plant the triple in the *target's* /usr/tmp: restart then runs
    // against local files, which is exactly where pre-copy's downtime
    // win over eager's cross-mount restart comes from.
    let image = reassemble(&geom, &staged, &delta);
    let planted = world.host_write_file(to, &names.a_out, &image).is_ok()
        && world.host_write_file(to, &names.files, &files_bytes).is_ok()
        && world.host_write_file(to, &names.stack, &stack_bytes).is_ok();
    if !planted {
        return reassemble_and_recover(
            world,
            victim,
            from,
            &geom,
            &staged,
            Errno::ENOSPC.as_u16() as u32,
            cred.clone(),
            report,
        );
    }
    let args = RestartArgs {
        pid: victim,
        dump_host: None,
        demand: false,
    };
    match restart_with_retry(world, to, args, cred.clone()) {
        Ok(new_pid) => {
            report.downtime_us = now_world(world).saturating_sub(t_freeze);
            report.survivor = Survivor::Target;
            report.new_pid = Some(new_pid);
            run_cleanup(world, to, victim, cred.clone());
            run_cleanup(world, from, victim, cred.clone());
            Ok(())
        }
        Err(status) => {
            run_cleanup(world, to, victim, cred.clone());
            reassemble_and_recover(world, victim, from, &geom, &staged, status, cred.clone(), report)
        }
    }
}

/// Calls a pre-copy off before anything irreversible happened: disarm
/// tracking and the delta flag, sweep any torn dump, leave the victim
/// running at the source.
fn abort_precopy(
    world: &mut World,
    from: MachineId,
    victim: Pid,
    err: Errno,
    report: &mut MigrationReport,
) {
    world.host_set_dirty_tracking(from, victim, false);
    world.host_set_dump_delta(from, victim, false);
    report.status = err.as_u16() as u32;
    report.survivor = Survivor::Source;
}

/// Pre-copy's recovery path: the victim is dead and the target did not
/// take the process. Rebuild the full image from the staged pages and
/// the freeze delta *at the source*, restart it there, and sweep every
/// dump on both sides.
#[allow(clippy::too_many_arguments)]
fn reassemble_and_recover(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    geom: &ImageGeometry,
    staged: &BTreeMap<u32, Vec<u8>>,
    status: u32,
    cred: Credentials,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    report.status = status;
    let names = dump_file_names(victim);
    let recovered = match world
        .host_read_file(from, &names.delta)
        .ok()
        .and_then(|b| DeltaFile::decode(&b).ok())
    {
        Some(delta) => {
            let image = reassemble(geom, staged, &delta);
            world.host_write_file(from, &names.a_out, &image).is_ok()
        }
        None => false,
    };
    if !recovered {
        run_cleanup(world, from, victim, cred.clone());
        report.survivor = Survivor::Lost;
        return Ok(());
    }
    let args = RestartArgs {
        pid: victim,
        dump_host: None,
        demand: false,
    };
    match restart_with_retry(world, from, args, cred.clone()) {
        Ok(pid) => {
            report.survivor = Survivor::Source;
            report.new_pid = Some(pid);
        }
        Err(_) => report.survivor = Survivor::Lost,
    }
    run_cleanup(world, from, victim, cred.clone());
    Ok(())
}

/// Rebuilds the complete data segment from the staged pre-copy pages
/// overlaid with the freeze delta, and encodes the ordinary executable
/// `rest_proc()` expects. Stack pages in the stream are skipped — the
/// `stackXXXXX` file carries the authoritative stack.
fn reassemble(geom: &ImageGeometry, staged: &BTreeMap<u32, Vec<u8>>, delta: &DeltaFile) -> Vec<u8> {
    let mut data = vec![0u8; delta.data_len as usize];
    let place = |page: u32, bytes: &[u8], data: &mut Vec<u8>| {
        let base = MemoryLayout::page_addr(page);
        if base < delta.data_base || base >= delta.data_base + delta.data_len {
            return;
        }
        let o = (base - delta.data_base) as usize;
        let end = (o + bytes.len()).min(data.len());
        data[o..end].copy_from_slice(&bytes[..end - o]);
    };
    for (page, bytes) in staged {
        place(*page, bytes, &mut data);
    }
    for p in &delta.pages {
        place(p.page, &p.bytes, &mut data);
    }
    let isa = if delta.machtype == aout::MID_ISA2 {
        m68vm::IsaLevel::Isa2
    } else {
        m68vm::IsaLevel::Isa1
    };
    encode_executable(&geom.text, &data, 0, delta.entry, isa)
}

/// The demand-restore protocol: eager dump, immediate prefix-only
/// restart, then drain the absent pages while the process runs.
fn demand(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    cred: Credentials,
    t_freeze: u64,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    let from_name = world.machine(from).name.clone();
    let status = dump_with_retry(world, from, victim, DumpKind::Full, cred.clone())?;
    if status != 0 {
        finish_no_dump(world, victim, from, status, cred.clone(), report)?;
        return Ok(());
    }
    let args = RestartArgs {
        pid: victim,
        dump_host: Some(from_name),
        demand: true,
    };
    sync_clocks(world);
    let new_pid = match restart_with_retry(world, to, args, cred.clone()) {
        Ok(pid) => pid,
        Err(status) => {
            recover_at_source(world, victim, from, status, cred.clone(), report)?;
            return Ok(());
        }
    };
    // Downtime ends here: the process is runnable with pages absent.
    report.downtime_us = now_world(world).saturating_sub(t_freeze);

    // Residual drain: the dumps must outlive the last absent page, so
    // nothing is cleaned until the image is whole. The kernel fetches
    // pages the process touches (the page-fetch fault path); the engine
    // pulls the untouched rest so the dump can be released.
    let mut strikes = 0u32;
    for _ in 0..DRAIN_MAX_STEPS {
        if !world.host_has_absent_pages(to, new_pid) {
            break;
        }
        match world.host_prefetch_absent_page(to, new_pid) {
            Some(Ok(_)) => {
                strikes = 0;
                report.pages_fetched += 1;
                report.bytes_sent += MemoryLayout::PAGE as u64;
            }
            Some(Err(_)) => {
                strikes += 1;
                if strikes >= MIGRATE_TRIES {
                    // The residual source is unreachable: the target
                    // copy can never be completed. Kill it while the
                    // dump still holds a full image, and bring the
                    // process back at the source.
                    world.host_post_signal(to, new_pid, Signal::SIGKILL);
                    world.run_slices(10_000);
                    recover_at_source(
                        world,
                        victim,
                        from,
                        Errno::ETIMEDOUT.as_u16() as u32,
                        cred.clone(),
                        report,
                    )?;
                    return Ok(());
                }
            }
            None => {}
        }
        world.run_slices(DRAIN_INTERLEAVE_SLICES);
    }
    if world.host_has_absent_pages(to, new_pid) {
        // Drain never converged (wedged target): same recovery as an
        // unreachable residual source.
        world.host_post_signal(to, new_pid, Signal::SIGKILL);
        world.run_slices(10_000);
        recover_at_source(world, victim, from, Errno::EIO.as_u16() as u32, cred.clone(), report)?;
        return Ok(());
    }
    // The target image is whole (or the process already ran to
    // completion there). The kernel kills a demand image it cannot
    // complete (three page-fetch strikes), so "gone with a nonzero
    // status" means the dump is still the only good copy.
    let killed = world
        .finished
        .get(&(to, new_pid.as_u32()))
        .is_some_and(|info| info.status != 0)
        && world.proc_ref(to, new_pid).is_none();
    if killed {
        recover_at_source(world, victim, from, Errno::EIO.as_u16() as u32, cred.clone(), report)?;
        return Ok(());
    }
    report.survivor = Survivor::Target;
    report.new_pid = Some(new_pid);
    run_cleanup(world, from, victim, cred.clone());
    Ok(())
}

/// The shared "dump never happened" exit: a live victim keeps running
/// at the source behind a swept `/usr/tmp`; a dead victim is recovered
/// from whatever the dump left.
fn finish_no_dump(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    status: u32,
    cred: Credentials,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    report.status = status;
    if alive(world, from, victim) {
        run_cleanup(world, from, victim, cred.clone());
        report.survivor = Survivor::Source;
        return Ok(());
    }
    recover_at_source(world, victim, from, status, cred.clone(), report)
}

/// Restart the dumped process back at the source (restart re-verifies
/// everything itself), then sweep the dumps. `Lost` only when even the
/// local restart fails.
fn recover_at_source(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    status: u32,
    cred: Credentials,
    report: &mut MigrationReport,
) -> Result<(), MigrationError> {
    report.status = status;
    let args = RestartArgs {
        pid: victim,
        dump_host: None,
        demand: false,
    };
    match restart_with_retry(world, from, args, cred.clone()) {
        Ok(pid) => {
            report.survivor = Survivor::Source;
            report.new_pid = Some(pid);
        }
        Err(_) => report.survivor = Survivor::Lost,
    }
    run_cleanup(world, from, victim, cred.clone());
    Ok(())
}
