//! World-level helpers: spawn the commands as processes and drive the
//! simulation, for tests, examples and the benchmark harness.

use sysdefs::{Credentials, Errno, Pid};
use ukernel::{MachineId, World};

use crate::commands::{dumpproc, restart, RestartArgs};

/// Why a scripted migration failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrationError {
    /// The `migrate` command process never finished.
    CommandHung,
    /// The command finished with a non-zero status (the inner errno).
    Failed(u32),
    /// The restarted process could not be found on the target machine.
    NotRestarted,
}

impl core::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrationError::CommandHung => write!(f, "migrate command did not finish"),
            MigrationError::Failed(s) => write!(f, "migrate failed with status {s}"),
            MigrationError::NotRestarted => write!(f, "restarted process not found"),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Finds the restarted incarnation of `orig_pid` on machine `mid`: the
/// process whose command is the dumped image name `a.outXXXXX`.
pub fn find_restarted(world: &World, mid: MachineId, orig_pid: Pid) -> Option<Pid> {
    let wanted = format!("a.out{:05}", orig_pid.as_u32());
    if let Some(p) = world.machine(mid).procs.values().find(|p| p.comm == wanted) {
        return Some(p.pid);
    }
    // The restored process may already have run to completion; the
    // overlay record still names it.
    world
        .overlaid
        .iter()
        .find(|(&(m, _), comm)| m == mid && **comm == wanted)
        .map(|(&(_, pid), _)| Pid(pid))
}

/// Runs `dumpproc -p <pid>` as a process on `mid` and waits for it.
///
/// Returns the command's exit status (0 on success).
pub fn run_dumpproc(
    world: &mut World,
    mid: MachineId,
    victim: Pid,
    cred: Credentials,
) -> Result<u32, MigrationError> {
    let cmd = world.spawn_native_proc(
        mid,
        "dumpproc",
        None,
        cred,
        Box::new(move |sys| match dumpproc(sys, victim) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = world
        .run_until_exit(mid, cmd, 2_000_000)
        .ok_or(MigrationError::CommandHung)?;
    Ok(info.status)
}

/// Runs `restart -p <pid> [-h <host>]` as a process on `mid` attached to
/// `tty`, waits until it has either failed or been overlaid, and returns
/// the pid of the restarted process.
pub fn run_restart(
    world: &mut World,
    mid: MachineId,
    args: RestartArgs,
    tty: Option<u32>,
    cred: Credentials,
) -> Result<Pid, MigrationError> {
    let orig = args.pid;
    let cmd = world.spawn_native_proc(
        mid,
        "restart",
        tty,
        cred,
        Box::new(move |sys| restart(sys, &args).as_u16() as u32),
    );
    // Run until the command either exits (failure) or its process has
    // become the restored image (success).
    for _ in 0..2_000_000u32 {
        if let Some(info) = world.finished.get(&(mid, cmd.as_u32())) {
            return Err(MigrationError::Failed(info.status));
        }
        if find_restarted(world, mid, orig) == Some(cmd) {
            return Ok(cmd);
        }
        if world.run_slices(1) == ukernel::RunOutcome::Idle {
            break;
        }
    }
    match find_restarted(world, mid, orig) {
        Some(pid) => Ok(pid),
        None => Err(MigrationError::NotRestarted),
    }
}

/// Scripts a whole migration with the `migrate` command issued from
/// `cmd_machine`: dump on `from`, restart on `to`, then locate the
/// restored process.
///
/// Returns the new pid on the target machine.
pub fn migrate_process(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    cmd_machine: MachineId,
    tty: Option<u32>,
    cred: Credentials,
) -> Result<Pid, MigrationError> {
    let from_name = world.machine(from).name.clone();
    let to_name = world.machine(to).name.clone();
    let cmd = world.spawn_native_proc(
        cmd_machine,
        "migrate",
        tty,
        cred,
        Box::new(
            move |sys| match crate::commands::migrate(sys, victim, &from_name, &to_name) {
                Ok(status) => status,
                Err(e) => e.as_u16() as u32,
            },
        ),
    );
    let info = world
        .run_until_exit(cmd_machine, cmd, 4_000_000)
        .ok_or(MigrationError::CommandHung)?;
    if info.status != 0 {
        return Err(MigrationError::Failed(info.status));
    }
    find_restarted(world, to, victim).ok_or(MigrationError::NotRestarted)
}

/// Convenience: the errno a command exit status encodes, if any (these
/// commands exit with the raw errno number on failure).
pub fn status_errno(status: u32) -> Option<Errno> {
    if status == 0 {
        None
    } else {
        errno_from_u16(status as u16)
    }
}

fn errno_from_u16(n: u16) -> Option<Errno> {
    use Errno::*;
    let all = [
        EPERM, ENOENT, ESRCH, EINTR, EIO, ENXIO, E2BIG, ENOEXEC, EBADF, ECHILD, EAGAIN, ENOMEM,
        EACCES, EFAULT, EBUSY, EEXIST, EXDEV, ENODEV, ENOTDIR, EISDIR, EINVAL, ENFILE, EMFILE,
        ENOTTY, EFBIG, ENOSPC, ESPIPE, EROFS, EMLINK, EPIPE, ELOOP, EREMOTE, ESTALE, ETIMEDOUT,
        ECONNREFUSED, EHOSTDOWN, EHOSTUNREACH,
    ];
    all.into_iter().find(|e| e.as_u16() == n)
}
