//! The three user commands of §4.1 plus `undump`, implemented exactly as
//! §4.4 describes, against the simulated kernel's system-call interface.

use aout::AoutHeader;
use dumpfmt::{dump_file_names, FdRecord, FilesFile, StackFile};
use sysdefs::limits::NOFILE;
use sysdefs::{Errno, OpenFlags, Pid, Signal, SysResult};
use ukernel::{Sys, Whence};

use crate::resolve::rewrite_for_migration;

/// How many times `dumpproc` polls for `a.outXXXXX` before giving up
/// ("aborting after ten tries").
const DUMP_POLL_TRIES: u32 = 10;

/// The 1-second poll sleep between tries.
const DUMP_POLL_SLEEP_US: u64 = 1_000_000;

/// **`dumpproc`** (§4.4): kill a process with `SIGDUMP` and rewrite its
/// `filesXXXXX` file for migration.
///
/// Returns `Ok(())` when the dump files are ready; the caller (or the
/// command wrapper) maps errors to exit statuses.
pub fn dumpproc(sys: &Sys, pid: Pid) -> SysResult<()> {
    // "Kills the specified process with a SIGDUMP signal."
    sys.kill(pid, Signal::SIGDUMP)?;

    // "When dumpproc tries to open the a.outXXXXX file, it has to wait
    // until the kernel switches its context to that of the process being
    // dumped ... To avoid busy loops, dumpproc simply sleeps for one
    // second after each unsuccessful attempt (aborting after ten tries)."
    let names = dump_file_names(pid);
    let mut opened = None;
    for _ in 0..DUMP_POLL_TRIES {
        sys.sleep_us(DUMP_POLL_SLEEP_US)?;
        match sys.open(&names.a_out, 0, 0) {
            Ok(fd) => {
                opened = Some(fd);
                break;
            }
            Err(Errno::ENOENT) => continue,
            Err(e) => return Err(e),
        }
    }
    let fd = opened.ok_or(Errno::ENOENT)?;
    sys.close(fd)?;

    // "Reads in the filesXXXXX file."
    let fd = sys.open(&names.files, 0, 0)?;
    let bytes = sys.read_all(fd)?;
    sys.close(fd)?;
    let mut files = FilesFile::decode(&bytes).map_err(|_| Errno::EINVAL)?;
    // Parsing and rebuilding the table is real work for a 1 MIPS CPU.
    sys.compute(25_000)?;

    let host = sys.gethostname_real().or_else(|_| sys.gethostname())?;

    // "Resolves symbolic links for the current working directory and all
    // open files", maps terminals to /dev/tty and prepends
    // /n/<machinename> to local names.
    files.cwd = rewrite_for_migration(sys, &files.cwd, &host)?;
    for record in &mut files.fds {
        if let FdRecord::File { path, .. } = record {
            *path = rewrite_for_migration(sys, path, &host)?;
        }
    }

    // "Overwrites the modified information on the filesXXXXX file."
    let fd = sys.creat(&names.files, 0o600)?;
    sys.write(fd, &files.encode())?;
    sys.close(fd)?;
    Ok(())
}

/// Arguments of the `restart` command.
#[derive(Clone, Debug)]
pub struct RestartArgs {
    /// The dumped process's pid (`-p`).
    pub pid: Pid,
    /// The host the process was dumped on (`-h`); `None` means the
    /// current machine.
    pub dump_host: Option<String>,
}

/// **`restart`** (§4.4): verify the dump files, rebuild the user-level
/// process environment, and call `rest_proc()`.
///
/// On success this never returns (the calling process becomes the
/// restored program); the error is returned otherwise.
pub fn restart(sys: &Sys, args: &RestartArgs) -> Errno {
    match restart_inner(sys, args) {
        Ok(never) => match never {},
        Err(e) => e,
    }
}

enum Never {}

fn restart_inner(sys: &Sys, args: &RestartArgs) -> Result<Never, Errno> {
    // Dump files live on the dumping host's /usr/tmp; reach them through
    // /n/<host> when that is not the local machine.
    let local = sys.gethostname_real().or_else(|_| sys.gethostname())?;
    let prefix = match &args.dump_host {
        Some(h) if *h != local => format!("/n/{h}"),
        _ => String::new(),
    };
    let names = dump_file_names(args.pid);
    let a_out = format!("{prefix}{}", names.a_out);
    let files_path = format!("{prefix}{}", names.files);
    let stack_path = format!("{prefix}{}", names.stack);

    // "Verifies that the three files ... exist, and that they have the
    // correct format by checking their magic numbers."
    let fd = sys.open(&a_out, 0, 0)?;
    let header = sys.read(fd, aout::AOUT_HEADER_LEN)?;
    sys.close(fd)?;
    AoutHeader::decode(&header).map_err(|_| Errno::ENOEXEC)?;

    let fd = sys.open(&files_path, 0, 0)?;
    let files_bytes = sys.read_all(fd)?;
    sys.close(fd)?;
    let files = FilesFile::decode(&files_bytes).map_err(|_| Errno::EINVAL)?;
    // Decoding the table and planning the descriptor rebuild.
    sys.compute(20_000).ok();

    // "Reads the old user credentials from the stackXXXXX file and
    // establishes them as its own. This is the only information that it
    // reads from this file."
    let fd = sys.open(&stack_path, 0, 0)?;
    let head = sys.read(fd, 2 + 16)?;
    sys.close(fd)?;
    let cred = StackFile::peek_credentials(&head).map_err(|_| Errno::EINVAL)?;
    sys.setreuid(cred.ruid.as_u32(), cred.euid.as_u32())?;

    // "Reads in the old current working directory and establishes that
    // as its own."
    sys.chdir(&files.cwd)?;

    // Rebuild the descriptor table in order. Everything we hold now
    // (our own stdio) is closed first so that each open lands on the
    // right number.
    for fd in 0..NOFILE {
        let _ = sys.close(fd);
    }
    let mut placeholders: Vec<usize> = Vec::new();
    for (i, record) in files.fds.iter().enumerate() {
        let got = match record {
            FdRecord::File {
                path,
                flags,
                offset,
            } => match sys.open(path, flags.reopen_flags().bits(), 0) {
                Ok(fd) => {
                    // "Positions the file pointer to the correct offset."
                    let _ = sys.lseek(fd, *offset as i64, Whence::Set);
                    fd
                }
                Err(_) => open_placeholder(sys, i)?,
            },
            // "If ... it was a socket, or it was unused, the null device
            // /dev/null is opened instead, so that the restarted process
            // can find an open file where it expects one, and to
            // preserve the order of open file numbers."
            FdRecord::Socket => open_placeholder(sys, i)?,
            FdRecord::Unused => {
                let fd = open_placeholder(sys, i)?;
                placeholders.push(fd);
                fd
            }
        };
        if got != i {
            return Err(Errno::EIO);
        }
    }
    // "Closes all files that were only opened to preserve the order of
    // the file numbers."
    for fd in placeholders {
        let _ = sys.close(fd);
    }

    // "Reads in the old terminal flags and sets those of the current
    // terminal appropriately."
    if let Ok(tty_fd) = sys.open("/dev/tty", OpenFlags::RDWR.bits(), 0) {
        let _ = sys.stty(tty_fd, files.tty_flags);
        let _ = sys.close(tty_fd);
    }

    // "Calls rest_proc() to restart the old program." The old identity
    // rides along for the §7 id-virtualization extension.
    let e = sys.rest_proc(&a_out, &stack_path, Some(args.pid), Some(&files.host));
    Err(e)
}

/// Opens the placeholder for an unreconstructable descriptor:
/// `/dev/null`, except that "in the case of standard input, output and
/// error output ... the terminal is opened instead of the null device,
/// so that the user may have some control over the restarted program."
fn open_placeholder(sys: &Sys, fd_no: usize) -> SysResult<usize> {
    if fd_no <= 2 {
        if let Ok(fd) = sys.open("/dev/tty", OpenFlags::RDWR.bits(), 0) {
            return Ok(fd);
        }
    }
    sys.open("/dev/null", OpenFlags::RDWR.bits(), 0)
}

/// **`migrate`** (§4.1): "move a process from one machine to another.
/// This is simply a combination of the two previous commands", executed
/// as subprocesses, "by using the remote shell command rsh ... if
/// necessary".
///
/// Returns the restart command's exit status (0 = the process is now
/// running on `to_host`).
pub fn migrate(sys: &Sys, pid: Pid, from_host: &str, to_host: &str) -> SysResult<u32> {
    let local = sys.gethostname_real().or_else(|_| sys.gethostname())?;

    // Dump on the source machine.
    let dump_status = if from_host == local {
        let p = pid;
        sys.run_local("dumpproc", move |s| match dumpproc(s, p) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        })?
    } else {
        let p = pid;
        sys.rsh(from_host, "dumpproc", move |s| match dumpproc(s, p) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        })?
    };
    if dump_status != 0 {
        return Ok(dump_status);
    }

    // Restart on the destination machine, reading the dump through
    // /n/<from> when the two differ.
    let args = RestartArgs {
        pid,
        dump_host: Some(from_host.to_string()),
    };
    let restart_status = if to_host == local {
        sys.run_local("restart", move |s| restart(s, &args).as_u16() as u32)?
    } else {
        sys.rsh(to_host, "restart", move |s| {
            restart(s, &args).as_u16() as u32
        })?
    };
    Ok(restart_status)
}

/// **`undump`**: combine an executable and a core dump into a new
/// executable — the utility §4.3 notes we get "for free".
pub fn undump_cmd(sys: &Sys, exe_path: &str, core_path: &str, out_path: &str) -> SysResult<()> {
    let fd = sys.open(exe_path, 0, 0)?;
    let exe = sys.read_all(fd)?;
    sys.close(fd)?;
    let fd = sys.open(core_path, 0, 0)?;
    let core = sys.read_all(fd)?;
    sys.close(fd)?;
    let merged = aout::undump(&exe, &core).map_err(|_| Errno::ENOEXEC)?;
    let fd = sys.creat(out_path, 0o700)?;
    sys.write(fd, &merged)?;
    sys.close(fd)?;
    Ok(())
}
