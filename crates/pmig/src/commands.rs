//! The three user commands of §4.1 plus `undump`, implemented exactly as
//! §4.4 describes, against the simulated kernel's system-call interface.

use aout::AoutHeader;
use dumpfmt::{dump_file_names, FdRecord, FilesFile, StackFile};
use sysdefs::limits::NOFILE;
use sysdefs::{Errno, OpenFlags, Pid, Signal, SysResult};
use ukernel::{Sys, Whence};

use crate::resolve::rewrite_for_migration;

/// How many times `dumpproc` polls for `a.outXXXXX` before giving up
/// ("aborting after ten tries").
const DUMP_POLL_TRIES: u32 = 10;

/// The 1-second poll sleep between tries.
const DUMP_POLL_SLEEP_US: u64 = 1_000_000;

/// The poll's simtime deadline. The try counter alone is not a bound:
/// an `open` that fails slowly (NFS soft-mount timeouts) spends far
/// more than a sleep per try, so the clock is the real budget.
const DUMP_POLL_TIMEOUT_US: u64 = DUMP_POLL_TRIES as u64 * DUMP_POLL_SLEEP_US;

/// **`dumpproc`** (§4.4): kill a process with `SIGDUMP` and rewrite its
/// `filesXXXXX` file for migration.
///
/// Returns `Ok(())` when the dump files are ready; the caller (or the
/// command wrapper) maps errors to exit statuses.
pub fn dumpproc(sys: &Sys, pid: Pid) -> SysResult<()> {
    // "Kills the specified process with a SIGDUMP signal."
    sys.kill(pid, Signal::SIGDUMP)?;

    // "When dumpproc tries to open the a.outXXXXX file, it has to wait
    // until the kernel switches its context to that of the process being
    // dumped ... To avoid busy loops, dumpproc simply sleeps for one
    // second after each unsuccessful attempt (aborting after ten tries)."
    //
    // A dump that will *never* materialize (the dump write failed with
    // ENOSPC, say, and the victim kept running) must not read as "no
    // such process": the poll gives up against a simtime deadline with
    // ETIMEDOUT, so callers can tell "dump never appeared" from
    // genuine ENOENT-class errors.
    let names = dump_file_names(pid);
    let deadline = sys.gettimeofday()?.saturating_add(DUMP_POLL_TIMEOUT_US);
    let fd = loop {
        sys.sleep_us(DUMP_POLL_SLEEP_US)?;
        // A pre-copy freeze writes `deltaXXXXX` in place of the full
        // executable, so either file counts as "the dump appeared".
        match sys
            .open(&names.a_out, 0, 0)
            .or_else(|e| match e {
                Errno::ENOENT => sys.open(&names.delta, 0, 0),
                other => Err(other),
            })
        {
            Ok(fd) => break fd,
            Err(Errno::ENOENT) => {
                if sys.gettimeofday()? >= deadline {
                    return Err(Errno::ETIMEDOUT);
                }
            }
            Err(e) => return Err(e),
        }
    };
    sys.close(fd)?;

    // "Reads in the filesXXXXX file."
    let fd = sys.open(&names.files, 0, 0)?;
    let bytes = sys.read_all(fd)?;
    sys.close(fd)?;
    let mut files = FilesFile::decode(&bytes).map_err(|_| Errno::EINVAL)?;
    // Parsing and rebuilding the table is real work for a 1 MIPS CPU.
    sys.compute(25_000)?;

    let host = sys.gethostname_real().or_else(|_| sys.gethostname())?;

    // "Resolves symbolic links for the current working directory and all
    // open files", maps terminals to /dev/tty and prepends
    // /n/<machinename> to local names.
    files.cwd = rewrite_for_migration(sys, &files.cwd, &host)?;
    for record in &mut files.fds {
        if let FdRecord::File { path, .. } = record {
            *path = rewrite_for_migration(sys, path, &host)?;
        }
    }

    // "Overwrites the modified information on the filesXXXXX file."
    let bytes = files.encode().map_err(|_| Errno::EINVAL)?;
    let fd = sys.creat(&names.files, 0o600)?;
    sys.write(fd, &bytes)?;
    sys.close(fd)?;
    Ok(())
}

/// Arguments of the `restart` command.
#[derive(Clone, Debug)]
pub struct RestartArgs {
    /// The dumped process's pid (`-p`).
    pub pid: Pid,
    /// The host the process was dumped on (`-h`); `None` means the
    /// current machine.
    pub dump_host: Option<String>,
    /// Demand-page restore (`-d`): `rest_proc()` loads only the header
    /// and text now and fetches data pages from the dump on first
    /// touch, so the dump files must outlive this command.
    pub demand: bool,
}

/// **`restart`** (§4.4): verify the dump files, rebuild the user-level
/// process environment, and call `rest_proc()`.
///
/// On success this never returns (the calling process becomes the
/// restored program); the error is returned otherwise.
pub fn restart(sys: &Sys, args: &RestartArgs) -> Errno {
    match restart_inner(sys, args) {
        Ok(never) => match never {},
        Err(e) => e,
    }
}

enum Never {}

fn restart_inner(sys: &Sys, args: &RestartArgs) -> Result<Never, Errno> {
    // Dump files live on the dumping host's /usr/tmp; reach them through
    // /n/<host> when that is not the local machine.
    let local = sys.gethostname_real().or_else(|_| sys.gethostname())?;
    let prefix = match &args.dump_host {
        Some(h) if *h != local => format!("/n/{h}"),
        _ => String::new(),
    };
    let names = dump_file_names(args.pid);
    let a_out = format!("{prefix}{}", names.a_out);
    let files_path = format!("{prefix}{}", names.files);
    let stack_path = format!("{prefix}{}", names.stack);

    // "Verifies that the three files ... exist, and that they have the
    // correct format by checking their magic numbers."
    let fd = sys.open(&a_out, 0, 0)?;
    let header = sys.read(fd, aout::AOUT_HEADER_LEN)?;
    sys.close(fd)?;
    AoutHeader::decode(&header).map_err(|_| Errno::ENOEXEC)?;

    let fd = sys.open(&files_path, 0, 0)?;
    let files_bytes = sys.read_all(fd)?;
    sys.close(fd)?;
    let files = FilesFile::decode(&files_bytes).map_err(|_| Errno::EINVAL)?;
    // Decoding the table and planning the descriptor rebuild.
    sys.compute(20_000).ok();

    // "Reads the old user credentials from the stackXXXXX file and
    // establishes them as its own. This is the only information that it
    // reads from this file."
    let fd = sys.open(&stack_path, 0, 0)?;
    let head = sys.read(fd, 2 + 16)?;
    sys.close(fd)?;
    let cred = StackFile::peek_credentials(&head).map_err(|_| Errno::EINVAL)?;
    sys.setreuid(cred.ruid.as_u32(), cred.euid.as_u32())?;

    // "Reads in the old current working directory and establishes that
    // as its own."
    sys.chdir(&files.cwd)?;

    // Rebuild the descriptor table in order. Everything we hold now
    // (our own stdio) is closed first so that each open lands on the
    // right number. A failure partway leaves the caller holding a
    // half-rebuilt table, so every fd opened so far is closed before
    // the errno propagates.
    for fd in 0..NOFILE {
        let _ = sys.close(fd);
    }
    if let Err(e) = rebuild_fds(sys, &files) {
        for fd in 0..NOFILE {
            let _ = sys.close(fd);
        }
        return Err(e);
    }

    // "Reads in the old terminal flags and sets those of the current
    // terminal appropriately."
    if let Ok(tty_fd) = sys.open("/dev/tty", OpenFlags::RDWR.bits(), 0) {
        let _ = sys.stty(tty_fd, files.tty_flags);
        let _ = sys.close(tty_fd);
    }

    // "Calls rest_proc() to restart the old program." The old identity
    // rides along for the §7 id-virtualization extension.
    let e = sys.rest_proc_mode(
        &a_out,
        &stack_path,
        Some(args.pid),
        Some(&files.host),
        args.demand,
    );
    Err(e)
}

/// The fd-table rebuild of [`restart_inner`], split out so its error
/// paths share one cleanup site in the caller.
fn rebuild_fds(sys: &Sys, files: &FilesFile) -> SysResult<()> {
    let mut placeholders: Vec<usize> = Vec::new();
    for (i, record) in files.fds.iter().enumerate() {
        let got = match record {
            FdRecord::File {
                path,
                flags,
                offset,
            } => match sys.open(path, flags.reopen_flags().bits(), 0) {
                Ok(fd) => {
                    // "Positions the file pointer to the correct offset."
                    let _ = sys.lseek(fd, *offset as i64, Whence::Set);
                    fd
                }
                Err(_) => open_placeholder(sys, i)?,
            },
            // "If ... it was a socket, or it was unused, the null device
            // /dev/null is opened instead, so that the restarted process
            // can find an open file where it expects one, and to
            // preserve the order of open file numbers."
            FdRecord::Socket => open_placeholder(sys, i)?,
            FdRecord::Unused => {
                let fd = open_placeholder(sys, i)?;
                placeholders.push(fd);
                fd
            }
        };
        if got != i {
            return Err(Errno::EIO);
        }
    }
    // "Closes all files that were only opened to preserve the order of
    // the file numbers."
    for fd in placeholders {
        let _ = sys.close(fd);
    }
    Ok(())
}

/// Opens the placeholder for an unreconstructable descriptor:
/// `/dev/null`, except that "in the case of standard input, output and
/// error output ... the terminal is opened instead of the null device,
/// so that the user may have some control over the restarted program."
fn open_placeholder(sys: &Sys, fd_no: usize) -> SysResult<usize> {
    if fd_no <= 2 {
        if let Ok(fd) = sys.open("/dev/tty", OpenFlags::RDWR.bits(), 0) {
            return Ok(fd);
        }
    }
    sys.open("/dev/null", OpenFlags::RDWR.bits(), 0)
}

/// How `migrate` reaches a remote machine for its subcommands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteRunner {
    /// The paper's original transport: `rsh`, with its expensive
    /// session establishment (Figure 4).
    Rsh,
    /// The §7 `migrated` daemon's cheap spawn path.
    Daemon,
}

/// Which machine holds the live copy of the process after `migrate`
/// finishes — the failure-atomicity report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Survivor {
    /// The process runs on the destination (the happy path).
    Target,
    /// The process still (or again) runs on the source.
    Source,
    /// Neither side has it — the invariant is broken, reported loudly
    /// rather than silently.
    Lost,
}

/// The full result of a migration attempt: the exit status the command
/// reports plus which side the process survived on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrateOutcome {
    /// 0 = migrated; otherwise the errno of the step that failed.
    pub status: u32,
    /// Where the live copy ended up.
    pub survivor: Survivor,
}

/// Remote-step attempts before giving up (first try + retries). Shared
/// with the protocol engine (`crate::proto`) so every retry policy in a
/// migration — dump, restart, page stream, residual fetch — gives up on
/// the same schedule.
pub(crate) const MIGRATE_TRIES: u32 = 3;

/// The first retry backoff; later retries double it.
const MIGRATE_BACKOFF_US: u64 = 1_000_000;

/// Errnos worth retrying with backoff: transport failures (dropped NFS
/// RPCs, dead rsh/daemon sessions) and dump-side failures that a fresh
/// `SIGDUMP` can redo because the victim survived them (torn or missing
/// dump files, transient ENOSPC).
pub(crate) fn transient(e: u16) -> bool {
    [
        Errno::ETIMEDOUT,
        Errno::EHOSTDOWN,
        Errno::EHOSTUNREACH,
        Errno::ENOENT,
        Errno::EINVAL,
        Errno::EIO,
        Errno::ENOSPC,
    ]
    .iter()
    .any(|t| t.as_u16() == e)
}

/// **`migrate`** (§4.1): "move a process from one machine to another.
/// This is simply a combination of the two previous commands", executed
/// as subprocesses, "by using the remote shell command rsh ... if
/// necessary".
///
/// Returns the restart command's exit status (0 = the process is now
/// running on `to_host`), and reports on stdout which side the process
/// survived on when the migration did not complete.
pub fn migrate(sys: &Sys, pid: Pid, from_host: &str, to_host: &str) -> SysResult<u32> {
    let out = migrate_with(sys, pid, from_host, to_host, RemoteRunner::Rsh)?;
    report_survivor(sys, &out, from_host, to_host);
    Ok(out.status)
}

/// Writes the failure-atomicity report line (best-effort; the command
/// may have no terminal).
pub fn report_survivor(sys: &Sys, out: &MigrateOutcome, from_host: &str, to_host: &str) {
    let line = match out.survivor {
        Survivor::Target => format!("migrate: process now runs on {to_host}\n"),
        Survivor::Source => format!(
            "migrate: failed (status {}); process survives on {from_host}\n",
            out.status
        ),
        Survivor::Lost => format!(
            "migrate: FAILED (status {}); process lost — runs on neither {from_host} nor {to_host}\n",
            out.status
        ),
    };
    let _ = sys.write(1, line.as_bytes());
}

/// The failure-atomic migration engine behind [`migrate`] and the §7
/// daemon path: dump with retries, verify every dump file decodes,
/// restart with retries, fall back to restarting at the *source* when
/// the target cannot take the process, and clean `/usr/tmp` up on every
/// exit path.
pub fn migrate_with(
    sys: &Sys,
    pid: Pid,
    from_host: &str,
    to_host: &str,
    runner: RemoteRunner,
) -> SysResult<MigrateOutcome> {
    let local = sys.gethostname_real().or_else(|_| sys.gethostname())?;
    // The dump files as seen from *this* command's machine.
    let prefix = if from_host == local {
        String::new()
    } else {
        format!("/n/{from_host}")
    };

    // Phases 1+2, fused: dump at the source, then verify all three dump
    // files fully decode while they are still the only recoverable copy
    // of the process — a migration must never delete dumps, or walk
    // away from them, on the strength of files it has not actually
    // read. The pair retries together because a dump failure (and a
    // verify failure with the victim still alive — a torn write the
    // kernel survived) can be redone from scratch with a fresh SIGDUMP.
    let mut status = 0u32;
    let mut dumps_ok = false;
    let mut victim_alive = true;
    for attempt in 0..MIGRATE_TRIES {
        if attempt > 0 {
            sys.sleep_us(MIGRATE_BACKOFF_US << (attempt - 1))?;
        }
        let r = run_on(sys, runner, from_host, &local, "dumpproc", move |s| {
            match dumpproc(s, pid) {
                Ok(()) => 0,
                Err(e) => e.as_u16() as u32,
            }
        });
        // Transport failures (a dead rsh session, a faulted daemon)
        // fold into the status: the dump did not happen either way.
        status = match r {
            Ok(s) => s,
            Err(e) => e.as_u16() as u32,
        };
        if status != 0 {
            // A failed dump leaves the victim alive at the source (the
            // kernel does not kill a process it could not save); sweep
            // the torn leftovers and retry.
            cleanup_dumps(sys, &prefix, pid);
            if transient(status as u16) {
                continue;
            }
            break;
        }
        match verify_dumps(sys, &prefix, pid) {
            Ok(()) => {
                dumps_ok = true;
                break;
            }
            Err(e) => {
                status = e.as_u16() as u32;
                // Only a live victim can be re-dumped. A dead one's
                // dumps are its last copy: never sweep those on a
                // retry, drop to the recovery path below instead.
                victim_alive = probe_alive(sys, runner, from_host, &local, pid)?;
                if !victim_alive {
                    break;
                }
                cleanup_dumps(sys, &prefix, pid);
                if transient(status as u16) {
                    continue;
                }
                break;
            }
        }
    }
    if !dumps_ok {
        if victim_alive {
            // Nothing was ever irrevocably done: the process still runs
            // at the source, and no usable dumps remain.
            cleanup_dumps(sys, &prefix, pid);
            return Ok(MigrateOutcome {
                status,
                survivor: Survivor::Source,
            });
        }
        // The victim is dead and this command cannot vouch for its
        // image — unreadable over a faulty mount, or genuinely corrupt.
        // Recover at the *source*, where the dumps are plain local
        // files and restart runs its own full verification; only when
        // that too fails is the process lost, and the loss is reported
        // loudly instead of a garbage restart.
        let recover = restart_with_retry(sys, runner, from_host, &local, pid, from_host)?;
        cleanup_dumps(sys, &prefix, pid);
        return Ok(MigrateOutcome {
            status,
            survivor: if recover == 0 {
                Survivor::Source
            } else {
                Survivor::Lost
            },
        });
    }

    // Phase 3: restart on the destination, retrying transient transport
    // failures. The dumps stay put until one restart has succeeded.
    let restart_status = restart_with_retry(sys, runner, to_host, &local, pid, from_host)?;
    if restart_status == 0 {
        cleanup_dumps(sys, &prefix, pid);
        return Ok(MigrateOutcome {
            status: 0,
            survivor: Survivor::Target,
        });
    }

    // Phase 4: the target would not take it. Recover the process at the
    // source from the same dumps so the user keeps a live copy.
    let recover_status = restart_with_retry(sys, runner, from_host, &local, pid, from_host)?;
    cleanup_dumps(sys, &prefix, pid);
    Ok(MigrateOutcome {
        status: restart_status,
        survivor: if recover_status == 0 {
            Survivor::Source
        } else {
            Survivor::Lost
        },
    })
}

/// Runs `prog` as a subcommand on `host`: locally when `host` is this
/// machine, otherwise over the chosen transport.
fn run_on(
    sys: &Sys,
    runner: RemoteRunner,
    host: &str,
    local: &str,
    comm: &str,
    prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
) -> SysResult<u32> {
    if host == local {
        sys.run_local(comm, prog)
    } else {
        match runner {
            RemoteRunner::Rsh => sys.rsh(host, comm, prog),
            RemoteRunner::Daemon => sys.daemon_spawn(host, comm, prog).map(|(status, _)| status),
        }
    }
}

/// Runs `restart` on `host` with transient-failure retries. A transport
/// error (`rsh` could not even start the command) is retried here; a
/// nonzero exit from a restart that *ran* is returned as-is — restart's
/// own failures closed whatever they had opened, and the caller decides
/// between target-retry and source-recovery.
fn restart_with_retry(
    sys: &Sys,
    runner: RemoteRunner,
    host: &str,
    local: &str,
    pid: Pid,
    from_host: &str,
) -> SysResult<u32> {
    let mut status = 0u32;
    for attempt in 0..MIGRATE_TRIES {
        if attempt > 0 {
            sys.sleep_us(MIGRATE_BACKOFF_US << (attempt - 1))?;
        }
        let args = RestartArgs {
            pid,
            dump_host: Some(from_host.to_string()),
            demand: false,
        };
        let r = run_on(sys, runner, host, local, "restart", move |s| {
            restart(s, &args).as_u16() as u32
        });
        status = match r {
            Ok(s) => s,
            Err(e) => e.as_u16() as u32,
        };
        if status == 0 || !transient(status as u16) {
            break;
        }
    }
    Ok(status)
}

/// Asks the source machine whether `pid` still runs there, by sending
/// the no-op `SIGCONT` (harmless to a process that is not stopped).
/// `ESRCH` is the only answer that means "dead"; any transport failure
/// reads as "maybe alive", the conservative side — restarting dumps
/// while the original may still run would *duplicate* the process.
fn probe_alive(
    sys: &Sys,
    runner: RemoteRunner,
    from_host: &str,
    local: &str,
    pid: Pid,
) -> SysResult<bool> {
    let mut status = 0u32;
    for attempt in 0..MIGRATE_TRIES {
        if attempt > 0 {
            sys.sleep_us(MIGRATE_BACKOFF_US << (attempt - 1))?;
        }
        let r = run_on(sys, runner, from_host, local, "probe", move |s| {
            match s.kill(pid, Signal::SIGCONT) {
                Ok(()) => 0,
                Err(e) => e.as_u16() as u32,
            }
        });
        status = match r {
            Ok(s) => s,
            Err(e) => e.as_u16() as u32,
        };
        if !transient(status as u16) {
            break;
        }
    }
    Ok(status != Errno::ESRCH.as_u16() as u32)
}

/// Verifies the three dump files exist and fully decode — magic
/// numbers, lengths, the lot — reading them through `prefix` (the
/// `/n/<host>` mount when the dump is remote).
fn verify_dumps(sys: &Sys, prefix: &str, pid: Pid) -> SysResult<()> {
    let names = dump_file_names(pid);

    // a.outXXXXX: valid header and a body at least as long as the
    // header promises (a torn text/data segment must not pass).
    let bytes = read_whole(sys, &format!("{prefix}{}", names.a_out))?;
    let header = AoutHeader::decode(&bytes).map_err(|_| Errno::ENOEXEC)?;
    let need = aout::AOUT_HEADER_LEN as u64 + header.a_text as u64 + header.a_data as u64;
    if (bytes.len() as u64) < need {
        return Err(Errno::ENOEXEC);
    }

    let bytes = read_whole(sys, &format!("{prefix}{}", names.files))?;
    FilesFile::decode(&bytes).map_err(|_| Errno::EINVAL)?;

    let bytes = read_whole(sys, &format!("{prefix}{}", names.stack))?;
    StackFile::decode(&bytes).map_err(|_| Errno::EINVAL)?;
    Ok(())
}

/// Reads a whole file, retrying transient NFS timeouts with backoff.
fn read_whole(sys: &Sys, path: &str) -> SysResult<Vec<u8>> {
    let mut last = Errno::EIO;
    for attempt in 0..MIGRATE_TRIES {
        if attempt > 0 {
            sys.sleep_us(MIGRATE_BACKOFF_US << (attempt - 1))?;
        }
        let r = (|| {
            let fd = sys.open(path, 0, 0)?;
            let bytes = sys.read_all(fd);
            let _ = sys.close(fd);
            bytes
        })();
        match r {
            Ok(bytes) => return Ok(bytes),
            Err(e) => {
                last = e;
                if !transient(e.as_u16()) {
                    break;
                }
            }
        }
    }
    Err(last)
}

/// Removes the dump files — the eager triple plus any pre-copy
/// `deltaXXXXX` (best-effort, two tries each: a dropped NFS Remove
/// reply usually means the unlink *landed* anyway). Anything that
/// still survives is for [`ukernel::World::host_reap_orphan_dumps`].
pub fn cleanup_dumps(sys: &Sys, prefix: &str, pid: Pid) {
    let names = dump_file_names(pid);
    for name in [&names.a_out, &names.files, &names.stack, &names.delta] {
        let path = format!("{prefix}{name}");
        if sys.unlink(&path).is_err() {
            let _ = sys.unlink(&path);
        }
    }
}

/// **`undump`**: combine an executable and a core dump into a new
/// executable — the utility §4.3 notes we get "for free".
pub fn undump_cmd(sys: &Sys, exe_path: &str, core_path: &str, out_path: &str) -> SysResult<()> {
    let fd = sys.open(exe_path, 0, 0)?;
    let exe = sys.read_all(fd)?;
    sys.close(fd)?;
    let fd = sys.open(core_path, 0, 0)?;
    let core = sys.read_all(fd)?;
    sys.close(fd)?;
    let merged = aout::undump(&exe, &core).map_err(|_| Errno::ENOEXEC)?;
    let fd = sys.creat(out_path, 0o700)?;
    sys.write(fd, &merged)?;
    sys.close(fd)?;
    Ok(())
}
