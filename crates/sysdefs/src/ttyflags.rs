//! Terminal mode flags, following the old `sgttyb` interface of 4.2BSD.
//!
//! The paper's `filesXXXXX` dump records "the terminal flags, specifying
//! such things as raw mode, echo/noecho, etc.", and `restart` re-applies
//! them so that "visual applications such as screen editors can be
//! restarted properly". This module is that flag word.

use core::fmt;

/// The `sg_flags` word of a terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TtyFlags(pub u16);

impl TtyFlags {
    /// Expand tabs on output.
    pub const XTABS: u16 = 0o0002;
    /// Echo input characters.
    pub const ECHO: u16 = 0o0010;
    /// Map CR into LF; echo LF or CR as CR-LF.
    pub const CRMOD: u16 = 0o0020;
    /// Raw mode: wake up on all characters, 8-bit interface, no input
    /// processing at all.
    pub const RAW: u16 = 0o0040;
    /// Half-duplex (historical; kept for the flag word's completeness).
    pub const TANDEM: u16 = 0o0001;
    /// Single-character wakeup but with output processing (cbreak).
    pub const CBREAK: u16 = 0o0100;

    /// The default "cooked" terminal: echo on, CR mapping, tab expansion.
    pub fn cooked() -> TtyFlags {
        TtyFlags(Self::ECHO | Self::CRMOD | Self::XTABS)
    }

    /// A raw, no-echo terminal, the mode a screen editor sets.
    pub fn raw_noecho() -> TtyFlags {
        TtyFlags(Self::RAW)
    }

    /// Returns the raw flag word.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Builds the flag word back from its raw bits (all bit patterns are
    /// representable, as on the real device).
    pub fn from_bits(bits: u16) -> TtyFlags {
        TtyFlags(bits)
    }

    /// Is the terminal in raw mode (char-at-a-time, no processing)?
    pub fn is_raw(self) -> bool {
        self.0 & Self::RAW != 0
    }

    /// Is the terminal in cbreak (char-at-a-time with output processing)?
    pub fn is_cbreak(self) -> bool {
        self.0 & Self::CBREAK != 0
    }

    /// Does the terminal echo input?
    pub fn echoes(self) -> bool {
        self.0 & Self::ECHO != 0
    }

    /// Does the terminal deliver input a character at a time (either raw
    /// or cbreak), as opposed to canonical line-at-a-time?
    pub fn char_at_a_time(self) -> bool {
        self.is_raw() || self.is_cbreak()
    }

    /// Sets or clears a flag bit.
    pub fn set(self, bit: u16, on: bool) -> TtyFlags {
        if on {
            TtyFlags(self.0 | bit)
        } else {
            TtyFlags(self.0 & !bit)
        }
    }
}

impl Default for TtyFlags {
    fn default() -> Self {
        TtyFlags::cooked()
    }
}

impl fmt::Display for TtyFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.is_raw() {
            parts.push("RAW");
        }
        if self.is_cbreak() {
            parts.push("CBREAK");
        }
        if self.echoes() {
            parts.push("ECHO");
        }
        if self.0 & Self::CRMOD != 0 {
            parts.push("CRMOD");
        }
        if self.0 & Self::XTABS != 0 {
            parts.push("XTABS");
        }
        if self.0 & Self::TANDEM != 0 {
            parts.push("TANDEM");
        }
        if parts.is_empty() {
            parts.push("(none)");
        }
        f.write_str(&parts.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooked_echoes_and_is_canonical() {
        let t = TtyFlags::cooked();
        assert!(t.echoes());
        assert!(!t.char_at_a_time());
    }

    #[test]
    fn raw_noecho_for_editors() {
        let t = TtyFlags::raw_noecho();
        assert!(t.is_raw());
        assert!(!t.echoes());
        assert!(t.char_at_a_time());
    }

    #[test]
    fn bits_round_trip() {
        let t = TtyFlags::cooked().set(TtyFlags::RAW, true);
        assert_eq!(TtyFlags::from_bits(t.bits()), t);
    }

    #[test]
    fn set_clear() {
        let t = TtyFlags::cooked().set(TtyFlags::ECHO, false);
        assert!(!t.echoes());
        let t = t.set(TtyFlags::ECHO, true);
        assert!(t.echoes());
    }

    #[test]
    fn display_names_modes() {
        assert_eq!(TtyFlags::raw_noecho().to_string(), "RAW");
        assert!(TtyFlags::cooked().to_string().contains("ECHO"));
    }
}
