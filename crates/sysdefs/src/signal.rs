//! Signal numbers and default dispositions, following 4.2BSD `signal.h`
//! plus the paper's new `SIGDUMP`.

use core::fmt;

use crate::Errno;

/// A signal number.
///
/// Values 1..=31 are the 4.2BSD signals. Value 32 is the paper's addition:
/// `SIGDUMP`, whose default action terminates the process after dumping the
/// three migration files (`a.outXXXXX`, `filesXXXXX`, `stackXXXXX`) to
/// `/usr/tmp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Signal {
    /// Hangup.
    SIGHUP = 1,
    /// Interrupt (rubout).
    SIGINT = 2,
    /// Quit (ASCII FS); dumps a `core` file.
    SIGQUIT = 3,
    /// Illegal instruction.
    SIGILL = 4,
    /// Trace trap.
    SIGTRAP = 5,
    /// IOT instruction / abort.
    SIGIOT = 6,
    /// EMT instruction.
    SIGEMT = 7,
    /// Floating point exception.
    SIGFPE = 8,
    /// Kill (cannot be caught or ignored).
    SIGKILL = 9,
    /// Bus error.
    SIGBUS = 10,
    /// Segmentation violation.
    SIGSEGV = 11,
    /// Bad argument to system call.
    SIGSYS = 12,
    /// Write on a pipe with no one to read it.
    SIGPIPE = 13,
    /// Alarm clock.
    SIGALRM = 14,
    /// Software termination signal.
    SIGTERM = 15,
    /// Urgent condition on I/O channel.
    SIGURG = 16,
    /// Sendable stop signal not from tty.
    SIGSTOP = 17,
    /// Stop signal from tty.
    SIGTSTP = 18,
    /// Continue a stopped process.
    SIGCONT = 19,
    /// To parent on child stop or exit.
    SIGCHLD = 20,
    /// To readers pgrp upon background tty read.
    SIGTTIN = 21,
    /// Like TTIN for output.
    SIGTTOU = 22,
    /// Input/output possible.
    SIGIO = 23,
    /// Exceeded CPU time limit.
    SIGXCPU = 24,
    /// Exceeded file size limit.
    SIGXFSZ = 25,
    /// Virtual time alarm.
    SIGVTALRM = 26,
    /// Profiling time alarm.
    SIGPROF = 27,
    /// Window size changes.
    SIGWINCH = 28,
    /// Information request.
    SIGINFO = 29,
    /// User defined signal 1.
    SIGUSR1 = 30,
    /// User defined signal 2.
    SIGUSR2 = 31,
    /// **New in this system**: terminate the process, dumping everything
    /// needed to restart it (the paper's migration signal).
    SIGDUMP = 32,
}

impl Signal {
    /// All signals, in numeric order.
    pub const ALL: [Signal; 32] = [
        Signal::SIGHUP,
        Signal::SIGINT,
        Signal::SIGQUIT,
        Signal::SIGILL,
        Signal::SIGTRAP,
        Signal::SIGIOT,
        Signal::SIGEMT,
        Signal::SIGFPE,
        Signal::SIGKILL,
        Signal::SIGBUS,
        Signal::SIGSEGV,
        Signal::SIGSYS,
        Signal::SIGPIPE,
        Signal::SIGALRM,
        Signal::SIGTERM,
        Signal::SIGURG,
        Signal::SIGSTOP,
        Signal::SIGTSTP,
        Signal::SIGCONT,
        Signal::SIGCHLD,
        Signal::SIGTTIN,
        Signal::SIGTTOU,
        Signal::SIGIO,
        Signal::SIGXCPU,
        Signal::SIGXFSZ,
        Signal::SIGVTALRM,
        Signal::SIGPROF,
        Signal::SIGWINCH,
        Signal::SIGINFO,
        Signal::SIGUSR1,
        Signal::SIGUSR2,
        Signal::SIGDUMP,
    ];

    /// Converts a numeric signal to the enum, failing with `EINVAL` for
    /// out-of-range numbers (as `kill(2)` does).
    pub fn from_number(n: u32) -> Result<Signal, Errno> {
        if n == 0 || n as usize > Signal::ALL.len() {
            return Err(Errno::EINVAL);
        }
        Ok(Signal::ALL[n as usize - 1])
    }

    /// Returns the signal number.
    pub fn number(self) -> u32 {
        self as u32
    }

    /// Returns the default action taken when the signal is delivered and
    /// neither caught nor ignored.
    pub fn default_action(self) -> DefaultAction {
        match self {
            Signal::SIGQUIT
            | Signal::SIGILL
            | Signal::SIGTRAP
            | Signal::SIGIOT
            | Signal::SIGEMT
            | Signal::SIGFPE
            | Signal::SIGBUS
            | Signal::SIGSEGV
            | Signal::SIGSYS => DefaultAction::CoreDump,
            Signal::SIGDUMP => DefaultAction::MigrationDump,
            Signal::SIGSTOP | Signal::SIGTSTP | Signal::SIGTTIN | Signal::SIGTTOU => {
                DefaultAction::Stop
            }
            Signal::SIGCONT => DefaultAction::Continue,
            Signal::SIGCHLD
            | Signal::SIGURG
            | Signal::SIGIO
            | Signal::SIGWINCH
            | Signal::SIGINFO => DefaultAction::Ignore,
            _ => DefaultAction::Terminate,
        }
    }

    /// True for the two signals that can be neither caught nor ignored.
    pub fn uncatchable(self) -> bool {
        matches!(self, Signal::SIGKILL | Signal::SIGSTOP)
    }

    /// The conventional name, e.g. `"SIGDUMP"`.
    pub fn name(self) -> &'static str {
        match self {
            Signal::SIGHUP => "SIGHUP",
            Signal::SIGINT => "SIGINT",
            Signal::SIGQUIT => "SIGQUIT",
            Signal::SIGILL => "SIGILL",
            Signal::SIGTRAP => "SIGTRAP",
            Signal::SIGIOT => "SIGIOT",
            Signal::SIGEMT => "SIGEMT",
            Signal::SIGFPE => "SIGFPE",
            Signal::SIGKILL => "SIGKILL",
            Signal::SIGBUS => "SIGBUS",
            Signal::SIGSEGV => "SIGSEGV",
            Signal::SIGSYS => "SIGSYS",
            Signal::SIGPIPE => "SIGPIPE",
            Signal::SIGALRM => "SIGALRM",
            Signal::SIGTERM => "SIGTERM",
            Signal::SIGURG => "SIGURG",
            Signal::SIGSTOP => "SIGSTOP",
            Signal::SIGTSTP => "SIGTSTP",
            Signal::SIGCONT => "SIGCONT",
            Signal::SIGCHLD => "SIGCHLD",
            Signal::SIGTTIN => "SIGTTIN",
            Signal::SIGTTOU => "SIGTTOU",
            Signal::SIGIO => "SIGIO",
            Signal::SIGXCPU => "SIGXCPU",
            Signal::SIGXFSZ => "SIGXFSZ",
            Signal::SIGVTALRM => "SIGVTALRM",
            Signal::SIGPROF => "SIGPROF",
            Signal::SIGWINCH => "SIGWINCH",
            Signal::SIGINFO => "SIGINFO",
            Signal::SIGUSR1 => "SIGUSR1",
            Signal::SIGUSR2 => "SIGUSR2",
            Signal::SIGDUMP => "SIGDUMP",
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What delivering an unhandled signal does to the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefaultAction {
    /// Terminate the process.
    Terminate,
    /// Terminate and write a `core` file (the `SIGQUIT` family).
    CoreDump,
    /// Terminate and write the three migration dump files (`SIGDUMP`).
    MigrationDump,
    /// Stop (suspend) the process.
    Stop,
    /// Continue a stopped process.
    Continue,
    /// Discard the signal.
    Ignore,
}

/// A per-signal disposition as set with `sigvec(2)`.
///
/// This is exactly "the information kept in the user and process structures
/// that is related to the disposition of signals" that the paper's
/// `stackXXXXX` file preserves: which signals are caught or ignored and the
/// handler addresses for the caught ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Take the default action.
    #[default]
    Default,
    /// Discard the signal.
    Ignore,
    /// Call a handler at this (guest) address.
    Handler(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigdump_is_32_and_dumps() {
        assert_eq!(Signal::SIGDUMP.number(), 32);
        assert_eq!(
            Signal::SIGDUMP.default_action(),
            DefaultAction::MigrationDump
        );
    }

    #[test]
    fn sigquit_core_dumps() {
        assert_eq!(Signal::SIGQUIT.default_action(), DefaultAction::CoreDump);
    }

    #[test]
    fn number_round_trip() {
        for s in Signal::ALL {
            assert_eq!(Signal::from_number(s.number()).unwrap(), s);
        }
        assert_eq!(Signal::from_number(0), Err(Errno::EINVAL));
        assert_eq!(Signal::from_number(33), Err(Errno::EINVAL));
    }

    #[test]
    fn kill_and_stop_uncatchable() {
        assert!(Signal::SIGKILL.uncatchable());
        assert!(Signal::SIGSTOP.uncatchable());
        assert!(!Signal::SIGDUMP.uncatchable());
    }

    #[test]
    fn chld_ignored_by_default() {
        assert_eq!(Signal::SIGCHLD.default_action(), DefaultAction::Ignore);
    }
}
