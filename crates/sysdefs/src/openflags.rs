//! Open-file flags, following 4.2BSD `file.h` / `fcntl.h`.

use core::fmt;

use crate::Errno;

/// Flags passed to `open(2)` and recorded per open-file-table entry.
///
/// These are the "file access flags (e.g., read only etc.)" that the
/// paper's `filesXXXXX` dump records for every open file so that `restart`
/// can reopen it "with the correct access modes".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpenFlags(pub u16);

impl OpenFlags {
    /// Open for reading only.
    pub const RDONLY: OpenFlags = OpenFlags(0o0);
    /// Open for writing only.
    pub const WRONLY: OpenFlags = OpenFlags(0o1);
    /// Open for reading and writing.
    pub const RDWR: OpenFlags = OpenFlags(0o2);

    /// Append on each write.
    pub const APPEND: u16 = 0o10;
    /// Create the file if it does not exist.
    pub const CREAT: u16 = 0o1000;
    /// Truncate to zero length.
    pub const TRUNC: u16 = 0o2000;
    /// Fail if the file already exists (with CREAT).
    pub const EXCL: u16 = 0o4000;

    const ACCMODE: u16 = 0o3;

    /// Returns the raw flag word.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Builds flags from a raw word, validating the access-mode field.
    pub fn from_bits(bits: u16) -> Result<OpenFlags, Errno> {
        if bits & Self::ACCMODE == 0o3 {
            return Err(Errno::EINVAL);
        }
        Ok(OpenFlags(bits))
    }

    /// Adds the given extra flag bits (`APPEND`, `CREAT`, ...).
    pub fn with(self, extra: u16) -> OpenFlags {
        OpenFlags(self.0 | extra)
    }

    /// Returns true if reads are permitted through this descriptor.
    pub fn readable(self) -> bool {
        self.0 & Self::ACCMODE != Self::WRONLY.0
    }

    /// Returns true if writes are permitted through this descriptor.
    pub fn writable(self) -> bool {
        self.0 & Self::ACCMODE != Self::RDONLY.0
    }

    /// Returns true if the append bit is set.
    pub fn append(self) -> bool {
        self.0 & Self::APPEND != 0
    }

    /// Returns true if the create bit is set.
    pub fn creat(self) -> bool {
        self.0 & Self::CREAT != 0
    }

    /// Returns true if the truncate bit is set.
    pub fn trunc(self) -> bool {
        self.0 & Self::TRUNC != 0
    }

    /// Returns true if the exclusive bit is set.
    pub fn excl(self) -> bool {
        self.0 & Self::EXCL != 0
    }

    /// The flags a *reopen* after migration should use: access mode and
    /// append bit only. `CREAT`/`TRUNC`/`EXCL` describe how the file was
    /// first opened and must not be replayed, or `restart` would truncate
    /// the very file contents the process still needs.
    pub fn reopen_flags(self) -> OpenFlags {
        OpenFlags(self.0 & (Self::ACCMODE | Self::APPEND))
    }
}

impl fmt::Display for OpenFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let acc = match self.0 & Self::ACCMODE {
            0o0 => "RDONLY",
            0o1 => "WRONLY",
            _ => "RDWR",
        };
        write!(f, "{acc}")?;
        if self.append() {
            write!(f, "|APPEND")?;
        }
        if self.creat() {
            write!(f, "|CREAT")?;
        }
        if self.trunc() {
            write!(f, "|TRUNC")?;
        }
        if self.excl() {
            write!(f, "|EXCL")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(OpenFlags::RDWR.readable());
        assert!(OpenFlags::RDWR.writable());
    }

    #[test]
    fn invalid_accmode_rejected() {
        assert_eq!(OpenFlags::from_bits(0o3), Err(Errno::EINVAL));
        assert!(OpenFlags::from_bits(0o2).is_ok());
    }

    #[test]
    fn reopen_drops_creat_trunc() {
        let f = OpenFlags::WRONLY.with(OpenFlags::CREAT | OpenFlags::TRUNC | OpenFlags::APPEND);
        let r = f.reopen_flags();
        assert!(r.writable());
        assert!(r.append());
        assert!(!r.creat());
        assert!(!r.trunc());
    }

    #[test]
    fn display_lists_bits() {
        let f = OpenFlags::RDWR.with(OpenFlags::APPEND);
        assert_eq!(f.to_string(), "RDWR|APPEND");
    }
}
