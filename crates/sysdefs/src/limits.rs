//! System limits, following Sun UNIX 3.0 / 4.2BSD `param.h`.

/// Maximum number of open files per process.
///
/// The paper's `filesXXXXX` dump records one entry "for each entry in the
/// open file table of the process (which has a fixed size)" — this is that
/// fixed size. Sun 3.0 used 30; 4.2BSD used 20. We follow Sun 3.0.
pub const NOFILE: usize = 30;

/// Maximum length of an absolute path name, including the terminating NUL
/// in the original C; here simply the maximum string length we accept.
///
/// This also bounds the fixed-size current-working-directory string the
/// paper adds to the `user` structure.
pub const MAXPATHLEN: usize = 1024;

/// Maximum length of a single path component.
pub const MAXNAMLEN: usize = 255;

/// Maximum number of symbolic links expanded during one path resolution
/// before `ELOOP` is returned (4.2BSD `MAXSYMLINKS`).
pub const MAXSYMLINKS: usize = 8;

/// Maximum number of processes per simulated machine.
pub const NPROC: usize = 256;

/// Maximum number of entries in the system-wide open-file table.
pub const NFILE: usize = 1024;

/// Maximum hostname length (`MAXHOSTNAMELEN`).
pub const MAXHOSTNAMELEN: usize = 64;

/// Number of signals, 1..=NSIG inclusive. 4.2BSD had 31 signals; the paper
/// adds `SIGDUMP` as number 32.
pub const NSIG: usize = 32;

/// Directory under which `SIGDUMP` places its three dump files.
pub const DUMP_DIR: &str = "/usr/tmp";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_are_sane() {
        // Spelled as runtime comparisons against locals so the intent
        // (documenting the floor each limit must keep) stays visible.
        let (nofile, maxpath, maxsym) = (NOFILE, MAXPATHLEN, MAXSYMLINKS);
        assert!(nofile >= 20);
        assert!(maxpath >= 256);
        assert!(maxsym >= 1);
        assert_eq!(NSIG, 32);
        assert_eq!(DUMP_DIR, "/usr/tmp");
    }
}
