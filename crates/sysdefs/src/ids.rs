//! Process, user and group identifiers.

use core::fmt;

/// A process identifier.
///
/// Pids are allocated per-machine by the simulated kernel, starting at 1
/// (`init`), exactly as in the original system. After a migration the
/// restarted process receives a *new* pid on the destination machine — the
/// source of the paper's §7 "programs that know their process id" caveat.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl Pid {
    /// The pid of `init`, the first process on every machine.
    pub const INIT: Pid = Pid(1);

    /// Returns the raw numeric pid.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A user identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Returns true if this uid is the superuser.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }

    /// Returns the raw numeric uid.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A group identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid(pub u32);

impl Gid {
    /// The wheel/system group.
    pub const WHEEL: Gid = Gid(0);

    /// Returns the raw numeric gid.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The credentials carried in the user structure and saved by `SIGDUMP`.
///
/// The paper's `stackXXXXX` file records "the user credentials (such as user
/// and group id)"; `restart` re-establishes them with `setreuid()` before
/// calling `rest_proc()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Credentials {
    /// Real user id.
    pub ruid: Uid,
    /// Effective user id.
    pub euid: Uid,
    /// Real group id.
    pub rgid: Gid,
    /// Effective group id.
    pub egid: Gid,
}

impl Credentials {
    /// Credentials of the superuser.
    pub fn root() -> Credentials {
        Credentials {
            ruid: Uid::ROOT,
            euid: Uid::ROOT,
            rgid: Gid::WHEEL,
            egid: Gid::WHEEL,
        }
    }

    /// Credentials of an ordinary user whose real and effective ids agree.
    pub fn user(uid: Uid, gid: Gid) -> Credentials {
        Credentials {
            ruid: uid,
            euid: uid,
            rgid: gid,
            egid: gid,
        }
    }

    /// Returns true if these credentials may send a signal to (or dump /
    /// restart) a process owned by `owner`.
    ///
    /// The paper: "for security reasons, only the superuser or the owner of
    /// the process can kill a process in this way".
    pub fn may_control(&self, owner: Uid) -> bool {
        self.euid.is_root() || self.ruid == owner || self.euid == owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_may_control_anyone() {
        let root = Credentials::root();
        assert!(root.may_control(Uid(123)));
    }

    #[test]
    fn owner_may_control_self() {
        let c = Credentials::user(Uid(7), Gid(7));
        assert!(c.may_control(Uid(7)));
        assert!(!c.may_control(Uid(8)));
    }

    #[test]
    fn pid_ordering_and_display() {
        assert!(Pid(2) > Pid::INIT);
        assert_eq!(Pid(1234).to_string(), "1234");
        assert_eq!(Uid::ROOT.to_string(), "0");
    }
}
