//! File modes and permission bits.

use crate::ids::{Credentials, Gid, Uid};
use core::fmt;

/// A file permission/mode word, as in `chmod(2)`.
///
/// Only the low nine permission bits are interpreted; file *type* is kept in
/// the inode kind, not the mode word, so the simulated kernel cannot get the
/// two out of sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FileMode(pub u16);

impl FileMode {
    /// `rw-r--r--`, the usual mode for created files.
    pub const REG_DEFAULT: FileMode = FileMode(0o644);
    /// `rwxr-xr-x`, the usual mode for directories and executables.
    pub const DIR_DEFAULT: FileMode = FileMode(0o755);
    /// `rw-rw-rw-`, the usual mode for devices like `/dev/null` and ttys.
    pub const DEV_DEFAULT: FileMode = FileMode(0o666);

    /// Owner-read bit.
    pub const IREAD: u16 = 0o400;
    /// Owner-write bit.
    pub const IWRITE: u16 = 0o200;
    /// Owner-execute bit.
    pub const IEXEC: u16 = 0o100;

    /// Returns the raw mode word.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Checks an access request (`want` is a mask of [`Access`] bits) by
    /// `cred` against a file owned by `owner`/`group`.
    ///
    /// The superuser passes every check, as in the original kernel.
    pub fn allows(self, cred: &Credentials, owner: Uid, group: Gid, want: Access) -> bool {
        if cred.euid.is_root() {
            return true;
        }
        let shift = if cred.euid == owner {
            6
        } else if cred.egid == group {
            3
        } else {
            0
        };
        let granted = (self.0 >> shift) & 0o7;
        (granted & want.mask()) == want.mask()
    }
}

impl fmt::Display for FileMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

/// An access request used with [`FileMode::allows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Read permission.
    Read,
    /// Write permission.
    Write,
    /// Execute (files) or search (directories) permission.
    Exec,
    /// Both read and write.
    ReadWrite,
}

impl Access {
    fn mask(self) -> u16 {
        match self {
            Access::Read => 0o4,
            Access::Write => 0o2,
            Access::Exec => 0o1,
            Access::ReadWrite => 0o6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_group_other_classes() {
        let mode = FileMode(0o640);
        let owner = Credentials::user(Uid(10), Gid(20));
        let groupie = Credentials::user(Uid(11), Gid(20));
        let other = Credentials::user(Uid(12), Gid(21));
        assert!(mode.allows(&owner, Uid(10), Gid(20), Access::ReadWrite));
        assert!(mode.allows(&groupie, Uid(10), Gid(20), Access::Read));
        assert!(!mode.allows(&groupie, Uid(10), Gid(20), Access::Write));
        assert!(!mode.allows(&other, Uid(10), Gid(20), Access::Read));
    }

    #[test]
    fn root_bypasses_mode() {
        let mode = FileMode(0o000);
        assert!(mode.allows(&Credentials::root(), Uid(10), Gid(20), Access::ReadWrite));
    }

    #[test]
    fn display_is_octal() {
        assert_eq!(FileMode(0o644).to_string(), "0644");
    }
}
