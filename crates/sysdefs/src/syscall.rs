//! System-call numbers for the simulated kernel.
//!
//! The numbering follows 4.2BSD where a call existed there; the paper's
//! additions and our few simulator conveniences are placed above 150, the
//! way local kernels customarily extended the table.

use crate::Errno;
use core::fmt;

/// A system-call number, as placed in `d0` before a `TRAP #0` by guest
/// (VM) programs, or named directly by native programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Sysno {
    /// Terminate the calling process.
    Exit = 1,
    /// Create a new process.
    Fork = 2,
    /// Read from a descriptor.
    Read = 3,
    /// Write to a descriptor.
    Write = 4,
    /// Open a file.
    Open = 5,
    /// Close a descriptor.
    Close = 6,
    /// Wait for a child to terminate.
    Wait = 7,
    /// Create a file and open it for output.
    Creat = 8,
    /// Make a hard link.
    Link = 9,
    /// Remove a directory entry.
    Unlink = 10,
    /// Change the current working directory.
    Chdir = 12,
    /// Get file status (by path).
    Stat = 18,
    /// Move the read/write pointer.
    Lseek = 19,
    /// Get the process id.
    Getpid = 20,
    /// Set real and effective user ids.
    Setreuid = 126,
    /// Get the real user id.
    Getuid = 24,
    /// Send a signal to a process.
    Kill = 37,
    /// Duplicate a descriptor.
    Dup = 41,
    /// Create a pipe.
    Pipe = 42,
    /// Set a signal disposition (simplified `sigvec`).
    Sigvec = 108,
    /// Set the blocked-signal mask, returning the old one.
    Sigsetmask = 110,
    /// Schedule a SIGALRM after N seconds (0 cancels); returns seconds
    /// that remained on any previous alarm.
    Alarm = 27,
    /// Return from a signal handler.
    Sigreturn = 139,
    /// Make a directory.
    Mkdir = 136,
    /// Make a symbolic link.
    Symlink = 57,
    /// Read the value of a symbolic link.
    Readlink = 58,
    /// Execute a file.
    Execve = 59,
    /// Get/set terminal parameters (simplified `ioctl`).
    Ioctl = 54,
    /// Create a socket (only far enough to demonstrate the limitation).
    Socket = 97,
    /// Get the hostname.
    Gethostname = 87,
    /// Get the time of day (virtual micro-seconds since boot).
    Gettimeofday = 116,
    /// Sleep for a number of micro-seconds (simulator convenience; the
    /// original used `sleep(3)` built on `alarm`/`pause`).
    Sleep = 150,
    /// **New in this system**: overlay the caller with a dumped process
    /// image, resuming it where `SIGDUMP` stopped it (the paper's addition).
    RestProc = 151,
    /// Extension (§7 of the paper): the true process id even when id
    /// virtualization is enabled.
    GetpidReal = 152,
    /// Extension (§7 of the paper): the true hostname even when id
    /// virtualization is enabled.
    GethostnameReal = 153,
    /// Get the current working directory string (the kernel knows it now —
    /// this is the paper's `user`-structure modification made visible).
    Getwd = 154,
}

impl Sysno {
    /// Decodes a raw syscall number from a trap.
    pub fn from_number(n: u32) -> Result<Sysno, Errno> {
        use Sysno::*;
        Ok(match n {
            1 => Exit,
            2 => Fork,
            3 => Read,
            4 => Write,
            5 => Open,
            6 => Close,
            7 => Wait,
            8 => Creat,
            9 => Link,
            10 => Unlink,
            12 => Chdir,
            18 => Stat,
            19 => Lseek,
            20 => Getpid,
            24 => Getuid,
            37 => Kill,
            41 => Dup,
            42 => Pipe,
            54 => Ioctl,
            57 => Symlink,
            58 => Readlink,
            59 => Execve,
            87 => Gethostname,
            97 => Socket,
            108 => Sigvec,
            110 => Sigsetmask,
            27 => Alarm,
            116 => Gettimeofday,
            126 => Setreuid,
            136 => Mkdir,
            139 => Sigreturn,
            150 => Sleep,
            151 => RestProc,
            152 => GetpidReal,
            153 => GethostnameReal,
            154 => Getwd,
            _ => return Err(Errno::EINVAL),
        })
    }

    /// Returns the raw table index.
    pub fn number(self) -> u32 {
        self as u32
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all() {
        use Sysno::*;
        for s in [
            Exit,
            Fork,
            Read,
            Write,
            Open,
            Close,
            Wait,
            Creat,
            Link,
            Unlink,
            Chdir,
            Stat,
            Lseek,
            Getpid,
            Getuid,
            Kill,
            Dup,
            Pipe,
            Ioctl,
            Symlink,
            Readlink,
            Execve,
            Gethostname,
            Socket,
            Sigvec,
            Sigsetmask,
            Alarm,
            Gettimeofday,
            Setreuid,
            Mkdir,
            Sigreturn,
            Sleep,
            RestProc,
            GetpidReal,
            GethostnameReal,
            Getwd,
        ] {
            assert_eq!(Sysno::from_number(s.number()).unwrap(), s);
        }
    }

    #[test]
    fn unknown_number_is_einval() {
        assert_eq!(Sysno::from_number(0), Err(Errno::EINVAL));
        assert_eq!(Sysno::from_number(9999), Err(Errno::EINVAL));
    }

    #[test]
    fn paper_additions_are_local_numbers() {
        assert_eq!(Sysno::RestProc.number(), 151);
        assert!(Sysno::RestProc.number() > 150 - 1);
    }
}
