//! System-call numbers for the simulated kernel.
//!
//! The numbering follows 4.2BSD where a call existed there; the paper's
//! additions and our few simulator conveniences are placed above 150, the
//! way local kernels customarily extended the table.

use crate::Errno;
use core::fmt;

/// A system-call number, as placed in `d0` before a `TRAP #0` by guest
/// (VM) programs, or named directly by native programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Sysno {
    /// Terminate the calling process.
    Exit = 1,
    /// Create a new process.
    Fork = 2,
    /// Read from a descriptor.
    Read = 3,
    /// Write to a descriptor.
    Write = 4,
    /// Open a file.
    Open = 5,
    /// Close a descriptor.
    Close = 6,
    /// Wait for a child to terminate.
    Wait = 7,
    /// Create a file and open it for output.
    Creat = 8,
    /// Make a hard link.
    Link = 9,
    /// Remove a directory entry.
    Unlink = 10,
    /// Change the current working directory.
    Chdir = 12,
    /// Get file status (by path).
    Stat = 18,
    /// Move the read/write pointer.
    Lseek = 19,
    /// Get the process id.
    Getpid = 20,
    /// Set real and effective user ids.
    Setreuid = 126,
    /// Get the real user id.
    Getuid = 24,
    /// Send a signal to a process.
    Kill = 37,
    /// Duplicate a descriptor.
    Dup = 41,
    /// Create a pipe.
    Pipe = 42,
    /// Set a signal disposition (simplified `sigvec`).
    Sigvec = 108,
    /// Set the blocked-signal mask, returning the old one.
    Sigsetmask = 110,
    /// Schedule a SIGALRM after N seconds (0 cancels); returns seconds
    /// that remained on any previous alarm.
    Alarm = 27,
    /// Return from a signal handler.
    Sigreturn = 139,
    /// Make a directory.
    Mkdir = 136,
    /// Make a symbolic link.
    Symlink = 57,
    /// Read the value of a symbolic link.
    Readlink = 58,
    /// Execute a file.
    Execve = 59,
    /// Get/set terminal parameters (simplified `ioctl`).
    Ioctl = 54,
    /// Create a socket (only far enough to demonstrate the limitation).
    Socket = 97,
    /// Get the hostname.
    Gethostname = 87,
    /// Get the time of day (virtual micro-seconds since boot).
    Gettimeofday = 116,
    /// Sleep for a number of micro-seconds (simulator convenience; the
    /// original used `sleep(3)` built on `alarm`/`pause`).
    Sleep = 150,
    /// **New in this system**: overlay the caller with a dumped process
    /// image, resuming it where `SIGDUMP` stopped it (the paper's addition).
    RestProc = 151,
    /// Extension (§7 of the paper): the true process id even when id
    /// virtualization is enabled.
    GetpidReal = 152,
    /// Extension (§7 of the paper): the true hostname even when id
    /// virtualization is enabled.
    GethostnameReal = 153,
    /// Get the current working directory string (the kernel knows it now —
    /// this is the paper's `user`-structure modification made visible).
    Getwd = 154,
}

impl Sysno {
    /// Decodes a raw syscall number from a trap.
    pub fn from_number(n: u32) -> Result<Sysno, Errno> {
        use Sysno::*;
        Ok(match n {
            1 => Exit,
            2 => Fork,
            3 => Read,
            4 => Write,
            5 => Open,
            6 => Close,
            7 => Wait,
            8 => Creat,
            9 => Link,
            10 => Unlink,
            12 => Chdir,
            18 => Stat,
            19 => Lseek,
            20 => Getpid,
            24 => Getuid,
            37 => Kill,
            41 => Dup,
            42 => Pipe,
            54 => Ioctl,
            57 => Symlink,
            58 => Readlink,
            59 => Execve,
            87 => Gethostname,
            97 => Socket,
            108 => Sigvec,
            110 => Sigsetmask,
            27 => Alarm,
            116 => Gettimeofday,
            126 => Setreuid,
            136 => Mkdir,
            139 => Sigreturn,
            150 => Sleep,
            151 => RestProc,
            152 => GetpidReal,
            153 => GethostnameReal,
            154 => Getwd,
            _ => return Err(Errno::EINVAL),
        })
    }

    /// Returns the raw table index.
    pub fn number(self) -> u32 {
        self as u32
    }
}

impl fmt::Display for Sysno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The broad cost family a system call's kernel work falls into. The
/// dispatcher charges every call the same trap cost at entry; the class
/// names the *dominant* charge of the handler body, so traces and tests
/// can group the paper's measured calls without re-deriving it from the
/// cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// Fixed-cost bodies: a `quick_call` (or less) beyond the trap.
    Quick,
    /// Path-resolving calls, dominated by `namei` and the §5.1 name
    /// bookkeeping.
    Path,
    /// Data-moving calls, dominated by copies, disk or NFS transfers.
    Io,
    /// Process-lifecycle calls (create, overlay, reap, destroy).
    ProcLife,
    /// Signal-machinery calls.
    Signal,
}

/// One row of the declarative trap table: everything the kernel entry
/// path needs to know about a system call besides its handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallMeta {
    /// The call's number.
    pub no: Sysno,
    /// The short name used in traces and statistics.
    pub name: &'static str,
    /// Dominant cost family of the handler body.
    pub cost: CostClass,
    /// Whether the call may park the process and be re-issued on wakeup
    /// (old-Unix sleep/retry); only these calls can surface `EINTR` from
    /// a signal delivered while parked, and only these are rewound by
    /// the `SIGDUMP` restart-pc logic.
    pub restartable: bool,
}

const fn row(no: Sysno, name: &'static str, cost: CostClass, restartable: bool) -> SyscallMeta {
    SyscallMeta {
        no,
        name,
        cost,
        restartable,
    }
}

/// The trap table, one row per system call, in the kernel's dispatch
/// order (the order of the `Syscall` enum). The order is stable: tools
/// index into it and tests pin it.
pub const SYSCALL_TABLE: &[SyscallMeta] = &[
    row(Sysno::Exit, "exit", CostClass::ProcLife, false),
    row(Sysno::Fork, "fork", CostClass::ProcLife, false),
    row(Sysno::Read, "read", CostClass::Io, true),
    row(Sysno::Write, "write", CostClass::Io, true),
    row(Sysno::Open, "open", CostClass::Path, false),
    row(Sysno::Creat, "creat", CostClass::Path, false),
    row(Sysno::Close, "close", CostClass::Io, false),
    row(Sysno::Wait, "wait", CostClass::ProcLife, true),
    row(Sysno::Link, "link", CostClass::Path, false),
    row(Sysno::Unlink, "unlink", CostClass::Path, false),
    row(Sysno::Chdir, "chdir", CostClass::Path, false),
    row(Sysno::Stat, "stat", CostClass::Path, false),
    row(Sysno::Lseek, "lseek", CostClass::Quick, false),
    row(Sysno::Getpid, "getpid", CostClass::Quick, false),
    row(Sysno::Getuid, "getuid", CostClass::Quick, false),
    row(Sysno::Kill, "kill", CostClass::Signal, false),
    row(Sysno::Dup, "dup", CostClass::Quick, false),
    row(Sysno::Pipe, "pipe", CostClass::Quick, false),
    row(Sysno::Ioctl, "ioctl", CostClass::Quick, false),
    row(Sysno::Symlink, "symlink", CostClass::Path, false),
    row(Sysno::Readlink, "readlink", CostClass::Path, false),
    row(Sysno::Execve, "execve", CostClass::ProcLife, false),
    row(Sysno::Gethostname, "gethostname", CostClass::Quick, false),
    row(Sysno::Socket, "socket", CostClass::Quick, false),
    row(Sysno::Sigvec, "sigvec", CostClass::Signal, false),
    row(Sysno::Sigsetmask, "sigsetmask", CostClass::Signal, false),
    row(Sysno::Alarm, "alarm", CostClass::Quick, false),
    row(Sysno::Gettimeofday, "gettimeofday", CostClass::Quick, false),
    row(Sysno::Setreuid, "setreuid", CostClass::Quick, false),
    row(Sysno::Mkdir, "mkdir", CostClass::Path, false),
    row(Sysno::Sigreturn, "sigreturn", CostClass::Signal, false),
    row(Sysno::Sleep, "sleep", CostClass::Quick, true),
    row(Sysno::RestProc, "rest_proc", CostClass::ProcLife, false),
    row(Sysno::GetpidReal, "getpid_real", CostClass::Quick, false),
    row(Sysno::GethostnameReal, "gethostname_real", CostClass::Quick, false),
    row(Sysno::Getwd, "getwd", CostClass::Quick, false),
];

impl Sysno {
    /// This call's row in [`SYSCALL_TABLE`].
    pub fn meta(self) -> &'static SyscallMeta {
        // The table is tiny and the scan is branch-predictable; an
        // index map would buy nothing at this size.
        SYSCALL_TABLE
            .iter()
            .find(|m| m.no == self)
            .expect("every Sysno has a SYSCALL_TABLE row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all() {
        use Sysno::*;
        for s in [
            Exit,
            Fork,
            Read,
            Write,
            Open,
            Close,
            Wait,
            Creat,
            Link,
            Unlink,
            Chdir,
            Stat,
            Lseek,
            Getpid,
            Getuid,
            Kill,
            Dup,
            Pipe,
            Ioctl,
            Symlink,
            Readlink,
            Execve,
            Gethostname,
            Socket,
            Sigvec,
            Sigsetmask,
            Alarm,
            Gettimeofday,
            Setreuid,
            Mkdir,
            Sigreturn,
            Sleep,
            RestProc,
            GetpidReal,
            GethostnameReal,
            Getwd,
        ] {
            assert_eq!(Sysno::from_number(s.number()).unwrap(), s);
        }
    }

    #[test]
    fn unknown_number_is_einval() {
        assert_eq!(Sysno::from_number(0), Err(Errno::EINVAL));
        assert_eq!(Sysno::from_number(9999), Err(Errno::EINVAL));
    }

    #[test]
    fn paper_additions_are_local_numbers() {
        assert_eq!(Sysno::RestProc.number(), 151);
        assert!(Sysno::RestProc.number() > 150 - 1);
    }

    #[test]
    fn table_rows_are_unique_and_complete() {
        let mut numbers = std::collections::BTreeSet::new();
        let mut names = std::collections::BTreeSet::new();
        for m in SYSCALL_TABLE {
            assert!(numbers.insert(m.no.number()), "duplicate number {}", m.no);
            assert!(names.insert(m.name), "duplicate name {}", m.name);
            assert!(!m.name.is_empty());
            // meta() must land back on the same row.
            assert_eq!(m.no.meta().name, m.name);
        }
        // Every decodable number has a row (from_number and the table
        // cannot drift apart).
        for n in 0..=200u32 {
            if let Ok(s) = Sysno::from_number(n) {
                assert!(
                    SYSCALL_TABLE.iter().any(|m| m.no == s),
                    "{s} missing from SYSCALL_TABLE"
                );
            }
        }
    }

    #[test]
    fn table_order_is_stable() {
        // The first rows are the dispatch order tools index by; pin the
        // head and the paper's addition so reordering cannot slip in.
        assert_eq!(SYSCALL_TABLE[0].name, "exit");
        assert_eq!(SYSCALL_TABLE[1].name, "fork");
        assert_eq!(SYSCALL_TABLE[2].name, "read");
        assert_eq!(SYSCALL_TABLE[4].name, "open");
        assert_eq!(SYSCALL_TABLE[32].name, "rest_proc");
        assert_eq!(SYSCALL_TABLE.len(), 36);
    }

    #[test]
    fn restartable_marks_the_parking_calls() {
        for m in SYSCALL_TABLE {
            let parks = matches!(m.name, "read" | "write" | "wait" | "sleep");
            assert_eq!(m.restartable, parks, "{}", m.name);
        }
    }
}
