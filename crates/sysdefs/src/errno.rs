//! Unix error numbers, following the 4.2BSD `errno.h` values.

use core::fmt;

/// A Unix error number as returned by a failing system call.
///
/// The numeric values match 4.2BSD so that dumped state and traces read
/// like the original system. [`Errno::EREMOTE`] is used by the simulated
/// NFS server when a lookup would cross one of the *server's own* remote
/// mounts — the condition behind the paper's observation that
/// "`/n/classic/n/brador/usr/foo` ... NFS does not allow this syntax".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// No such device or address.
    ENXIO = 6,
    /// Argument list too long.
    E2BIG = 7,
    /// Exec format error.
    ENOEXEC = 8,
    /// Bad file number.
    EBADF = 9,
    /// No children.
    ECHILD = 10,
    /// No more processes.
    EAGAIN = 11,
    /// Not enough memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Block device required.
    ENOTBLK = 15,
    /// Device busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link.
    EXDEV = 18,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// File table overflow.
    ENFILE = 23,
    /// Too many open files.
    EMFILE = 24,
    /// Not a typewriter.
    ENOTTY = 25,
    /// Text file busy.
    ETXTBSY = 26,
    /// File too large.
    EFBIG = 27,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Read-only file system.
    EROFS = 30,
    /// Too many links.
    EMLINK = 31,
    /// Broken pipe.
    EPIPE = 32,
    /// Socket operation on non-socket.
    ENOTSOCK = 38,
    /// Operation not supported on socket.
    EOPNOTSUPP = 45,
    /// Connection timed out.
    ETIMEDOUT = 60,
    /// Connection refused.
    ECONNREFUSED = 61,
    /// Too many levels of symbolic links.
    ELOOP = 62,
    /// File name too long.
    ENAMETOOLONG = 63,
    /// Host is down.
    EHOSTDOWN = 64,
    /// No route to host.
    EHOSTUNREACH = 65,
    /// Directory not empty.
    ENOTEMPTY = 66,
    /// Too many levels of remote in path.
    EREMOTE = 71,
    /// Stale NFS file handle.
    ESTALE = 70,
}

impl Errno {
    /// Returns the conventional short symbol, e.g. `"ENOENT"`.
    pub fn symbol(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::ENXIO => "ENXIO",
            Errno::E2BIG => "E2BIG",
            Errno::ENOEXEC => "ENOEXEC",
            Errno::EBADF => "EBADF",
            Errno::ECHILD => "ECHILD",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::ENOTBLK => "ENOTBLK",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENODEV => "ENODEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOTTY => "ENOTTY",
            Errno::ETXTBSY => "ETXTBSY",
            Errno::EFBIG => "EFBIG",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EROFS => "EROFS",
            Errno::EMLINK => "EMLINK",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTSOCK => "ENOTSOCK",
            Errno::EOPNOTSUPP => "EOPNOTSUPP",
            Errno::ETIMEDOUT => "ETIMEDOUT",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::ELOOP => "ELOOP",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::EHOSTDOWN => "EHOSTDOWN",
            Errno::EHOSTUNREACH => "EHOSTUNREACH",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::EREMOTE => "EREMOTE",
            Errno::ESTALE => "ESTALE",
        }
    }

    /// Returns a short human-readable description, as `perror(3)` would.
    pub fn description(self) -> &'static str {
        match self {
            Errno::EPERM => "operation not permitted",
            Errno::ENOENT => "no such file or directory",
            Errno::ESRCH => "no such process",
            Errno::EINTR => "interrupted system call",
            Errno::EIO => "i/o error",
            Errno::ENXIO => "no such device or address",
            Errno::E2BIG => "argument list too long",
            Errno::ENOEXEC => "exec format error",
            Errno::EBADF => "bad file number",
            Errno::ECHILD => "no children",
            Errno::EAGAIN => "no more processes",
            Errno::ENOMEM => "not enough memory",
            Errno::EACCES => "permission denied",
            Errno::EFAULT => "bad address",
            Errno::ENOTBLK => "block device required",
            Errno::EBUSY => "device busy",
            Errno::EEXIST => "file exists",
            Errno::EXDEV => "cross-device link",
            Errno::ENODEV => "no such device",
            Errno::ENOTDIR => "not a directory",
            Errno::EISDIR => "is a directory",
            Errno::EINVAL => "invalid argument",
            Errno::ENFILE => "file table overflow",
            Errno::EMFILE => "too many open files",
            Errno::ENOTTY => "not a typewriter",
            Errno::ETXTBSY => "text file busy",
            Errno::EFBIG => "file too large",
            Errno::ENOSPC => "no space left on device",
            Errno::ESPIPE => "illegal seek",
            Errno::EROFS => "read-only file system",
            Errno::EMLINK => "too many links",
            Errno::EPIPE => "broken pipe",
            Errno::ENOTSOCK => "socket operation on non-socket",
            Errno::EOPNOTSUPP => "operation not supported on socket",
            Errno::ETIMEDOUT => "connection timed out",
            Errno::ECONNREFUSED => "connection refused",
            Errno::ELOOP => "too many levels of symbolic links",
            Errno::ENAMETOOLONG => "file name too long",
            Errno::EHOSTDOWN => "host is down",
            Errno::EHOSTUNREACH => "no route to host",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::EREMOTE => "too many levels of remote in path",
            Errno::ESTALE => "stale remote file handle",
        }
    }

    /// Returns the numeric `errno` value (the 4.2BSD number).
    pub fn as_u16(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.description())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_values_match_bsd() {
        assert_eq!(Errno::EPERM.as_u16(), 1);
        assert_eq!(Errno::ENOENT.as_u16(), 2);
        assert_eq!(Errno::EBADF.as_u16(), 9);
        assert_eq!(Errno::EINVAL.as_u16(), 22);
        assert_eq!(Errno::ELOOP.as_u16(), 62);
        assert_eq!(Errno::EREMOTE.as_u16(), 71);
    }

    #[test]
    fn display_includes_symbol_and_text() {
        let s = Errno::ENOENT.to_string();
        assert!(s.contains("ENOENT"));
        assert!(s.contains("no such file"));
    }

    #[test]
    fn symbols_are_unique() {
        let all = [
            Errno::EPERM,
            Errno::ENOENT,
            Errno::ESRCH,
            Errno::EINTR,
            Errno::EIO,
            Errno::EBADF,
            Errno::EACCES,
            Errno::EEXIST,
            Errno::ENOTDIR,
            Errno::EISDIR,
            Errno::EINVAL,
            Errno::EMFILE,
            Errno::ENOTTY,
            Errno::ESPIPE,
            Errno::ELOOP,
            Errno::EREMOTE,
        ];
        let mut symbols: Vec<_> = all.iter().map(|e| e.symbol()).collect();
        symbols.sort();
        symbols.dedup();
        assert_eq!(symbols.len(), all.len());
    }
}
