//! Shared Unix-flavoured vocabulary for the process-migration simulation.
//!
//! This crate defines the small, dependency-free types that every other
//! crate in the workspace speaks: error numbers, process/user/group ids,
//! open-file flags, file modes, signal numbers (including the paper's new
//! [`signal::Signal::SIGDUMP`]), system-call numbers, terminal flag bits and
//! system limits.
//!
//! Names deliberately stay close to their 4.2BSD / Sun UNIX 3.0 originals
//! (`Errno::ENOENT`, `OpenFlags::RDWR`, `NOFILE`) so that code reads like
//! the system the paper describes, adjusted to Rust casing conventions where
//! the API guidelines require it.

pub mod errno;
pub mod ids;
pub mod limits;
pub mod mode;
pub mod openflags;
pub mod signal;
pub mod syscall;
pub mod ttyflags;

pub use errno::Errno;
pub use ids::{Credentials, Gid, Pid, Uid};
pub use limits::{MAXPATHLEN, NOFILE};
pub use mode::Access;
pub use mode::FileMode;
pub use openflags::OpenFlags;
pub use signal::Signal;
pub use signal::{DefaultAction, Disposition};
pub use syscall::{CostClass, Sysno, SyscallMeta, SYSCALL_TABLE};
pub use ttyflags::TtyFlags;

/// Result type used by everything that can fail with a Unix error number.
pub type SysResult<T> = Result<T, Errno>;
