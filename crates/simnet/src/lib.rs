//! The 10 Mbit Ethernet and the RPC traffic that rides on it.
//!
//! The paper's machines were "connected to each other and a file server by
//! a 10 Mbit Ethernet, which provided the physical medium for moving
//! processes from one machine to another". This crate models that medium
//! as deterministic costs: frames, NFS RPC round trips, and the expensive
//! `rsh` session establishment whose latency dominates the paper's
//! Figure 4.

use simtime::cost::{Cost, CostModel};

pub mod fault;
pub use fault::{FaultHit, FaultPlan, FaultSite, FaultSpec, NFS_SOFT_TIMEOUT_US};

/// Ethernet maximum transmission unit (payload bytes per frame).
pub const MTU: usize = 1500;

/// Per-frame header + trailer overhead bytes.
pub const FRAME_OVERHEAD: usize = 18;

/// The shared segment: tracks traffic and prices transfers.
#[derive(Clone, Debug, Default)]
pub struct Ethernet {
    /// Total frames placed on the wire.
    pub frames_sent: u64,
    /// Total payload bytes carried.
    pub bytes_sent: u64,
    /// Total messages (logical sends).
    pub messages_sent: u64,
}

impl Ethernet {
    /// A quiet segment.
    pub fn new() -> Ethernet {
        Ethernet::default()
    }

    /// Prices shipping `bytes` as one logical message (segmented into
    /// MTU-sized frames) and records the traffic.
    pub fn send(&mut self, model: &CostModel, bytes: usize) -> Cost {
        let frames = bytes.div_ceil(MTU).max(1);
        self.frames_sent += frames as u64;
        self.bytes_sent += bytes as u64;
        self.messages_sent += 1;
        let wire_bytes = bytes + frames * FRAME_OVERHEAD;
        model.ether_message(wire_bytes)
    }
}

/// The NFS operations the simulated client issues, with realistic
/// request/response payload sizes for pricing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NfsOp {
    /// Look one name up in a remote directory.
    Lookup,
    /// Fetch attributes.
    Getattr,
    /// Read `len` bytes.
    Read(usize),
    /// Write `len` bytes.
    Write(usize),
    /// Create a file.
    Create,
    /// Remove a file.
    Remove,
    /// Read a symbolic link's target.
    Readlink,
    /// List a directory.
    Readdir,
    /// Truncate/chmod style attribute set.
    Setattr,
}

impl NfsOp {
    /// (request bytes, response bytes) carried by the RPC.
    pub fn wire_sizes(self) -> (usize, usize) {
        match self {
            NfsOp::Lookup => (96, 128),
            NfsOp::Getattr => (64, 96),
            NfsOp::Read(len) => (80, 96 + len),
            NfsOp::Write(len) => (96 + len, 96),
            NfsOp::Create => (128, 128),
            NfsOp::Remove => (96, 64),
            NfsOp::Readlink => (64, 160),
            NfsOp::Readdir => (80, 512),
            NfsOp::Setattr => (96, 96),
        }
    }

    /// Prices this operation as a synchronous RPC over `ether`.
    pub fn cost(self, model: &CostModel, ether: &mut Ethernet) -> Cost {
        let (req, resp) = self.wire_sizes();
        let send = ether.send(model, req);
        let recv = ether.send(model, resp);
        Cost::cpu_us(model.rpc_overhead_cpu_us)
            .plus(send)
            .plus(recv)
    }
}

/// The `rsh` connection phases, separable so the figure harness can show
/// where the time goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RshPhase {
    /// Host name (YP) lookup.
    NameLookup,
    /// Privileged-port TCP connect to `rshd`.
    Connect,
    /// Reverse lookup plus `.rhosts` checking.
    Auth,
    /// Fork and exec of the shell and command on the remote side.
    Spawn,
    /// Status plumbing and connection teardown.
    Teardown,
}

impl RshPhase {
    /// All phases in order.
    pub const ALL: [RshPhase; 5] = [
        RshPhase::NameLookup,
        RshPhase::Connect,
        RshPhase::Auth,
        RshPhase::Spawn,
        RshPhase::Teardown,
    ];

    /// The wait cost of one phase.
    pub fn cost(self, model: &CostModel) -> Cost {
        let us = match self {
            RshPhase::NameLookup => model.rsh_name_lookup_us,
            RshPhase::Connect => model.rsh_connect_us,
            RshPhase::Auth => model.rsh_auth_us,
            RshPhase::Spawn => model.rsh_spawn_us,
            RshPhase::Teardown => model.rsh_teardown_us,
        };
        // A fixed slice of each phase is CPU (protocol work), the rest is
        // network/disk wait.
        Cost {
            cpu: simtime::SimDuration::micros(us / 20),
            wait: simtime::SimDuration::micros(us - us / 20),
        }
    }
}

/// The full cost of establishing, using and tearing down one `rsh`
/// session (excluding the remote command itself).
pub fn rsh_session_cost(model: &CostModel) -> Cost {
    RshPhase::ALL
        .iter()
        .fold(Cost::ZERO, |acc, p| acc.plus(p.cost(model)))
}

/// The latency of one minimal message on the segment: the per-link
/// floor below which nothing — not even a bare ack — can cross between
/// two machines.
pub fn link_latency_floor(model: &CostModel) -> simtime::SimDuration {
    let mut scratch = Ethernet::new();
    scratch.send(model, 1).real()
}

/// The conservative-lockstep lookahead: the smallest simulated latency
/// any *blocking* cross-machine interaction can exhibit. Every remote
/// interaction a machine can block on costs at least one full NFS RPC
/// round trip (an `rsh` session costs far more), so a machine at clock
/// `t` cannot observe another machine's doings before `t + lookahead`
/// — which is exactly how far a shard may run ahead privately
/// (`ukernel::world::shard`). Instantaneous server-side effects (a
/// client's write landing in a server's filesystem) are not covered by
/// this bound; they are handled by the seam layer's coupling
/// classification instead (DESIGN.md §14).
pub fn lookahead(model: &CostModel) -> simtime::SimDuration {
    let mut scratch = Ethernet::new();
    [
        NfsOp::Lookup,
        NfsOp::Getattr,
        NfsOp::Read(0),
        NfsOp::Write(0),
        NfsOp::Create,
        NfsOp::Remove,
        NfsOp::Readlink,
        NfsOp::Readdir,
        NfsOp::Setattr,
    ]
    .into_iter()
    .map(|op| op.cost(model, &mut scratch).real())
    .min()
    .unwrap_or_default()
    .max(link_latency_floor(model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimDuration;

    #[test]
    fn small_message_is_one_frame() {
        let model = CostModel::sun2();
        let mut e = Ethernet::new();
        e.send(&model, 100);
        assert_eq!(e.frames_sent, 1);
        assert_eq!(e.messages_sent, 1);
    }

    #[test]
    fn large_message_segments() {
        let model = CostModel::sun2();
        let mut e = Ethernet::new();
        e.send(&model, 4000);
        assert_eq!(e.frames_sent, 3);
        assert_eq!(e.bytes_sent, 4000);
    }

    #[test]
    fn bigger_transfers_cost_more() {
        let model = CostModel::sun2();
        let mut e = Ethernet::new();
        let small = e.send(&model, 100);
        let big = e.send(&model, 100_000);
        assert!(big.real() > small.real());
        // 100 KB at ~1 us/byte is ~0.1 s — the right order for moving a
        // process image over 10 Mbit Ethernet.
        assert!(big.real() > SimDuration::millis(50));
        assert!(big.real() < SimDuration::secs(2));
    }

    #[test]
    fn nfs_write_carries_payload_in_request() {
        let (req, resp) = NfsOp::Write(1024).wire_sizes();
        assert!(req > 1024);
        assert!(resp < 256);
        let (req_r, resp_r) = NfsOp::Read(1024).wire_sizes();
        assert!(resp_r > 1024);
        assert!(req_r < 256);
    }

    #[test]
    fn rsh_session_is_many_seconds() {
        let model = CostModel::sun2();
        let c = rsh_session_cost(&model);
        assert!(c.real() > SimDuration::secs(8), "rsh = {}", c.real());
        assert!(c.real() < SimDuration::secs(20));
        assert!(c.cpu < c.wait, "rsh is latency, not computation");
    }

    #[test]
    fn lookahead_is_the_cheapest_rpc() {
        let model = CostModel::sun2();
        let la = lookahead(&model);
        // The floor is the zero-payload Getattr round trip: smaller than
        // every other RPC, far smaller than an rsh session.
        let mut e = Ethernet::new();
        assert_eq!(la, NfsOp::Getattr.cost(&model, &mut e).real());
        assert!(la >= link_latency_floor(&model));
        assert!(la < rsh_session_cost(&model).real());
        assert!(la > SimDuration::ZERO);
    }

    #[test]
    fn rsh_phases_sum_to_session() {
        let model = CostModel::sun2();
        let sum: u64 = RshPhase::ALL
            .iter()
            .map(|p| p.cost(&model).real().as_micros())
            .sum();
        assert_eq!(sum, rsh_session_cost(&model).real().as_micros());
    }
}
