//! Deterministic, seeded fault injection.
//!
//! The paper's own caveats are all about what happens when a migration
//! *doesn't* complete: the victim is already dead after `SIGDUMP`, the
//! dump files sit in `/usr/tmp`, and `rsh`/NFS can fail at any phase.
//! This module models those failures as an **injection plan**: a list of
//! specs, each addressed by site, machine and simtime window, firing on
//! a seeded pseudo-random roll. Every decision is a pure function of the
//! plan's seed and the per-site event counter, so two runs of the same
//! scenario inject byte-identical faults at identical simtimes — the
//! dual-run determinism test covers a faulty scenario for exactly this
//! reason.

/// Where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// An NFS RPC is dropped on the wire. The soft-mounted client
    /// retransmits, gives up, and the operation fails with `ETIMEDOUT`.
    NfsOp,
    /// An `rsh`/daemon connection phase fails (`rshd` unreachable,
    /// `.rhosts` refusal, spawn failure). The client sees `EHOSTDOWN`.
    Rsh,
    /// The dumping kernel crashes partway through writing the three
    /// `SIGDUMP` files, leaving a genuinely torn file (cut mid-byte)
    /// and the later files unwritten.
    MidDumpCrash,
    /// `/usr/tmp` is out of space: the dump write fails with `ENOSPC`.
    DumpEnospc,
    /// A demand-restore residual page fetch is dropped on the wire: the
    /// parked process waits out the soft-mount timeout and the fetch is
    /// retried (`ETIMEDOUT` on the fetching side).
    PageFetch,
}

impl FaultSite {
    /// All sites, for matrix scenarios.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::NfsOp,
        FaultSite::Rsh,
        FaultSite::MidDumpCrash,
        FaultSite::DumpEnospc,
        FaultSite::PageFetch,
    ];

    /// Canonical short name, used in trace records and `simsh fault`.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::NfsOp => "nfs",
            FaultSite::Rsh => "rsh",
            FaultSite::MidDumpCrash => "middump",
            FaultSite::DumpEnospc => "enospc",
            FaultSite::PageFetch => "page-fetch",
        }
    }

    /// Parses the canonical short name.
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|f| f.name() == s)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::NfsOp => 0,
            FaultSite::Rsh => 1,
            FaultSite::MidDumpCrash => 2,
            FaultSite::DumpEnospc => 3,
            FaultSite::PageFetch => 4,
        }
    }
}

/// The simulated soft-mount NFS client gives up after three
/// retransmissions of 0.7 s each — the wait an injected drop charges on
/// top of the RPC itself before `ETIMEDOUT` surfaces.
pub const NFS_SOFT_TIMEOUT_US: u64 = 2_100_000;

/// One injection rule.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// The site this rule arms.
    pub site: FaultSite,
    /// Restrict to one machine id (`None` = any machine).
    pub machine: Option<usize>,
    /// Window start, micro-seconds of the *local* machine clock.
    pub from_us: u64,
    /// Window end (exclusive), micro-seconds.
    pub until_us: u64,
    /// Firing probability per eligible event, in per-mille
    /// (1000 = every eligible event fires).
    pub per_mille: u16,
    /// Budget: after this many firings the rule is spent.
    pub max_hits: u32,
    /// Firings so far.
    pub hits: u32,
}

impl FaultSpec {
    /// A rule firing on every eligible event at `site`, anywhere,
    /// any time, at most `max_hits` times.
    pub fn always(site: FaultSite, max_hits: u32) -> FaultSpec {
        FaultSpec {
            site,
            machine: None,
            from_us: 0,
            until_us: u64::MAX,
            per_mille: 1000,
            max_hits,
            hits: 0,
        }
    }

    fn matches(&self, site: FaultSite, machine: usize, now_us: u64) -> bool {
        self.site == site
            && self.machine.map(|m| m == machine).unwrap_or(true)
            && now_us >= self.from_us
            && now_us < self.until_us
            && self.hits < self.max_hits
    }
}

/// One injected fault: the per-site event sequence number it fired on
/// and a seeded roll the injection point may use for secondary choices
/// (which file to tear, at which byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultHit {
    /// The per-site eligible-event counter value this fault fired at.
    pub seq: u64,
    /// A deterministic 64-bit roll derived from the seed and `seq`.
    pub roll: u64,
}

/// The whole plan: seed, rules, per-site event counters.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The seed every decision derives from.
    pub seed: u64,
    /// The armed rules, checked in order (first match decides).
    pub specs: Vec<FaultSpec>,
    /// Per-site eligible-event counters ([`FaultSite::index`] order).
    counters: [u64; 5],
    /// Total faults injected.
    pub injected: u64,
}

/// SplitMix64: a tiny, well-mixed deterministic hash. Seeded explicitly
/// from the plan — no ambient host entropy anywhere near it.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// An empty plan: nothing ever fires.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with the given seed and no rules yet.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// True when no rule is armed (the fast path the kernel checks
    /// before anything else).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Notes one eligible event at `site` on `machine` at local time
    /// `now_us`; returns a [`FaultHit`] when a rule decides to inject.
    pub fn fire(&mut self, site: FaultSite, machine: usize, now_us: u64) -> Option<FaultHit> {
        if self.specs.is_empty() {
            return None;
        }
        let seq = self.counters[site.index()];
        self.counters[site.index()] += 1;
        let spec = self
            .specs
            .iter_mut()
            .find(|s| s.matches(site, machine, now_us))?;
        let roll = splitmix64(
            self.seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(seq)
                .wrapping_add((site.index() as u64) << 56),
        );
        if spec.per_mille < 1000 && roll % 1000 >= spec.per_mille as u64 {
            return None;
        }
        spec.hits += 1;
        self.injected += 1;
        Some(FaultHit { seq, roll })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let mut p = FaultPlan::none();
        for t in 0..1000 {
            assert!(p.fire(FaultSite::NfsOp, 0, t).is_none());
        }
        assert_eq!(p.injected, 0);
    }

    #[test]
    fn budget_is_respected() {
        let mut p = FaultPlan::seeded(7).with(FaultSpec::always(FaultSite::Rsh, 2));
        let fired: Vec<bool> = (0..10)
            .map(|t| p.fire(FaultSite::Rsh, 1, t).is_some())
            .collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 2);
        // An always-rule spends its budget on the first eligible events.
        assert_eq!(fired[0..2], [true, true]);
        assert_eq!(p.injected, 2);
    }

    #[test]
    fn window_and_machine_filters_apply() {
        let mut p = FaultPlan::seeded(1).with(FaultSpec {
            site: FaultSite::NfsOp,
            machine: Some(2),
            from_us: 100,
            until_us: 200,
            per_mille: 1000,
            max_hits: 100,
            hits: 0,
        });
        assert!(p.fire(FaultSite::NfsOp, 2, 50).is_none(), "before window");
        assert!(p.fire(FaultSite::NfsOp, 1, 150).is_none(), "wrong machine");
        assert!(p.fire(FaultSite::Rsh, 2, 150).is_none(), "wrong site");
        assert!(p.fire(FaultSite::NfsOp, 2, 150).is_some(), "in window");
        assert!(p.fire(FaultSite::NfsOp, 2, 200).is_none(), "window end is exclusive");
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<Option<FaultHit>> {
            let mut p = FaultPlan::seeded(seed).with(FaultSpec {
                per_mille: 400,
                ..FaultSpec::always(FaultSite::NfsOp, u32::MAX)
            });
            (0..64).map(|t| p.fire(FaultSite::NfsOp, 0, t)).collect()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn probabilistic_rules_fire_roughly_at_rate() {
        let mut p = FaultPlan::seeded(9).with(FaultSpec {
            per_mille: 250,
            ..FaultSpec::always(FaultSite::NfsOp, u32::MAX)
        });
        let n = (0..4000)
            .filter(|&t| p.fire(FaultSite::NfsOp, 0, t).is_some())
            .count();
        assert!((800..1200).contains(&n), "got {n} fires out of 4000 at 25%");
    }

    #[test]
    fn site_names_round_trip() {
        for site in FaultSite::ALL {
            assert_eq!(FaultSite::parse(site.name()), Some(site));
        }
        assert_eq!(FaultSite::parse("bogus"), None);
    }
}
