//! The `SIGDUMP` dump-file formats.
//!
//! When a process receives `SIGDUMP` the kernel writes three files into
//! `/usr/tmp`, "named `a.outXXXXX`, `filesXXXXX` and `stackXXXXX`, where
//! `XXXXX` is the process id of the dumped process":
//!
//! * **`a.outXXXXX`** — an ordinary executable (see the `aout` crate);
//! * **`filesXXXXX`** ([`FilesFile`], magic octal **445**) — "all the
//!   information that is not needed by the kernel to restart the process,
//!   but must be used at user level": host name, current working
//!   directory, the fixed-size open-file table (file/socket/unused per
//!   entry, with path, access flags and offset for files) and the
//!   terminal flags;
//! * **`stackXXXXX`** ([`StackFile`], magic octal **444**) — "all the
//!   information that is required by the kernel": user credentials, the
//!   stack size and contents, the registers, and the signal dispositions.
//!
//! Both formats are binary, big-endian, and validated by magic number
//! exactly as `restart` checks them.
//!
//! Pre-copy migration adds a fourth file, **`deltaXXXXX`**
//! ([`DeltaFile`], magic octal **446**): the freeze-time dump of the
//! still-dirty data pages, which replaces `a.outXXXXX` when the bulk of
//! the image has already been streamed while the process ran.

pub mod delta_file;
pub mod files_file;
pub mod naming;
pub mod stack_file;

pub use delta_file::{DeltaFile, DeltaPage, DELTA_MAGIC};
pub use files_file::{FdRecord, FilesFile, FILES_MAGIC};
pub use naming::{dump_file_names, DumpFileNames};
pub use stack_file::{SignalState, StackFile, STACK_MAGIC};

/// A dump-file decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DumpError {
    /// The file ended before its own structure did.
    Truncated,
    /// The magic number did not match.
    BadMagic {
        /// The magic the format requires.
        expected: u16,
        /// The magic found in the file.
        got: u16,
    },
    /// A structural field held an impossible value.
    Malformed(&'static str),
}

impl core::fmt::Display for DumpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DumpError::Truncated => write!(f, "dump file truncated"),
            DumpError::BadMagic { expected, got } => {
                write!(f, "bad magic: expected {expected:#o}, got {got:#o}")
            }
            DumpError::Malformed(what) => write!(f, "malformed dump file: {what}"),
        }
    }
}

impl std::error::Error for DumpError {}

/// Little codec helpers shared by the two formats.
pub(crate) mod wire {
    use super::DumpError;

    pub struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub fn new(bytes: &'a [u8]) -> Reader<'a> {
            Reader { bytes, pos: 0 }
        }

        pub fn u8(&mut self) -> Result<u8, DumpError> {
            let b = *self.bytes.get(self.pos).ok_or(DumpError::Truncated)?;
            self.pos += 1;
            Ok(b)
        }

        pub fn u16(&mut self) -> Result<u16, DumpError> {
            let s = self
                .bytes
                .get(self.pos..self.pos + 2)
                .ok_or(DumpError::Truncated)?;
            self.pos += 2;
            Ok(u16::from_be_bytes([s[0], s[1]]))
        }

        pub fn u32(&mut self) -> Result<u32, DumpError> {
            let s = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or(DumpError::Truncated)?;
            self.pos += 4;
            Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
        }

        pub fn u64(&mut self) -> Result<u64, DumpError> {
            let hi = self.u32()? as u64;
            let lo = self.u32()? as u64;
            Ok((hi << 32) | lo)
        }

        pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DumpError> {
            let s = self
                .bytes
                .get(self.pos..self.pos + n)
                .ok_or(DumpError::Truncated)?;
            self.pos += n;
            Ok(s)
        }

        pub fn string(&mut self) -> Result<String, DumpError> {
            let n = self.u16()? as usize;
            let s = self.bytes(n)?;
            Ok(String::from_utf8_lossy(s).into_owned())
        }
    }

    pub fn put_u16(out: &mut Vec<u8>, v: u16) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        put_u32(out, (v >> 32) as u32);
        put_u32(out, v as u32);
    }

    pub fn put_string(out: &mut Vec<u8>, s: &str) {
        let bytes = s.as_bytes();
        let n = bytes.len().min(u16::MAX as usize);
        put_u16(out, n as u16);
        out.extend_from_slice(&bytes[..n]);
    }
}
