//! The `deltaXXXXX` format (magic octal 446): the pre-copy freeze delta.
//!
//! Pre-copy migration streams the data and stack pages while the source
//! keeps running, then freezes and sends only what changed since. The
//! freeze dump therefore replaces the full `a.outXXXXX` executable with
//! this much smaller file: the process's geometry (entry point, machine
//! id, data-segment placement) plus the still-dirty data pages. The
//! migration engine reassembles a complete, ordinary `a.outXXXXX` on the
//! target from the pre-copied pages and this delta before `rest_proc`
//! ever sees it, so the restart path itself is unchanged.

use crate::wire::{put_u16, put_u32, Reader};
use crate::DumpError;

/// The `deltaXXXXX` magic number (octal 446, continuing the dump-file
/// sequence after `filesXXXXX`'s 445).
pub const DELTA_MAGIC: u16 = 0o446;

/// One still-dirty page: its page number (address / page size) and its
/// bytes (a full page, or shorter for the clipped last page of the
/// segment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaPage {
    /// Page number, i.e. guest address divided by the 8 KB page size.
    pub page: u32,
    /// The page's contents at freeze time.
    pub bytes: Vec<u8>,
}

/// The decoded `deltaXXXXX` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaFile {
    /// The original entry point, so the reassembled `a.outXXXXX` "can be
    /// executed as an ordinary program" like an eager dump.
    pub entry: u32,
    /// The a.out machine id (`a_machtype`) the reassembled header needs.
    pub machtype: u16,
    /// Base guest address of the data segment.
    pub data_base: u32,
    /// Total data-segment length in bytes (data + bss, as dumped).
    pub data_len: u32,
    /// The pages written since the last pre-copy round, ascending by
    /// page number.
    pub pages: Vec<DeltaPage>,
}

impl DeltaFile {
    /// Serialises the file, magic first. Refuses page payloads the
    /// decoder's sanity limit would reject.
    pub fn encode(&self) -> Result<Vec<u8>, DumpError> {
        let mut out = Vec::new();
        put_u16(&mut out, DELTA_MAGIC);
        put_u32(&mut out, self.entry);
        put_u16(&mut out, self.machtype);
        put_u32(&mut out, self.data_base);
        put_u32(&mut out, self.data_len);
        put_u32(&mut out, self.pages.len() as u32);
        for p in &self.pages {
            if p.bytes.len() > 16 << 20 {
                return Err(DumpError::Malformed("absurd delta page size"));
            }
            put_u32(&mut out, p.page);
            put_u32(&mut out, p.bytes.len() as u32);
            out.extend_from_slice(&p.bytes);
        }
        Ok(out)
    }

    /// Parses and validates the file, magic first.
    pub fn decode(bytes: &[u8]) -> Result<DeltaFile, DumpError> {
        let mut r = Reader::new(bytes);
        let magic = r.u16()?;
        if magic != DELTA_MAGIC {
            return Err(DumpError::BadMagic {
                expected: DELTA_MAGIC,
                got: magic,
            });
        }
        let entry = r.u32()?;
        let machtype = r.u16()?;
        let data_base = r.u32()?;
        let data_len = r.u32()?;
        if data_len > 16 << 20 {
            return Err(DumpError::Malformed("absurd data size"));
        }
        let count = r.u32()? as usize;
        if count > 1 << 16 {
            return Err(DumpError::Malformed("absurd delta page count"));
        }
        let mut pages = Vec::with_capacity(count);
        let mut last: Option<u32> = None;
        for _ in 0..count {
            let page = r.u32()?;
            let len = r.u32()? as usize;
            if len > 16 << 20 {
                return Err(DumpError::Malformed("absurd delta page size"));
            }
            if last.is_some_and(|l| page <= l) {
                return Err(DumpError::Malformed("delta pages out of order"));
            }
            last = Some(page);
            pages.push(DeltaPage {
                page,
                bytes: r.bytes(len)?.to_vec(),
            });
        }
        Ok(DeltaFile {
            entry,
            machtype,
            data_base,
            data_len,
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeltaFile {
        DeltaFile {
            entry: 0x1000,
            machtype: 1,
            data_base: 0x3000,
            data_len: 0x5000,
            pages: vec![
                DeltaPage {
                    page: 1,
                    bytes: vec![0xAA; 0x2000],
                },
                DeltaPage {
                    page: 3,
                    bytes: vec![0x55; 0x1000],
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let d = sample();
        assert_eq!(DeltaFile::decode(&d.encode().unwrap()).unwrap(), d);
    }

    #[test]
    fn magic_is_0446_and_checked() {
        let bytes = sample().encode().unwrap();
        assert_eq!(u16::from_be_bytes([bytes[0], bytes[1]]), 0o446);
        let mut bad = bytes;
        bad[0] ^= 0xff;
        assert!(matches!(
            DeltaFile::decode(&bad),
            Err(DumpError::BadMagic { expected: 0o446, .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode().unwrap();
        assert_eq!(
            DeltaFile::decode(&bytes[..bytes.len() - 1]),
            Err(DumpError::Truncated)
        );
    }

    #[test]
    fn unsorted_pages_rejected() {
        let mut d = sample();
        d.pages.swap(0, 1);
        let bytes = d.encode().unwrap();
        assert!(matches!(
            DeltaFile::decode(&bytes),
            Err(DumpError::Malformed("delta pages out of order"))
        ));
    }

    #[test]
    fn empty_delta_is_legal() {
        // A process that dirtied nothing between the last round and the
        // freeze still produces a well-formed (geometry-only) delta.
        let d = DeltaFile {
            pages: Vec::new(),
            ..sample()
        };
        assert_eq!(DeltaFile::decode(&d.encode().unwrap()).unwrap(), d);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn encode_decode_round_trip(
            entry in any::<u32>(),
            machtype in any::<u16>(),
            data_base in any::<u32>(),
            data_len in 0u32..(1 << 20),
            pages in proptest::collection::vec(
                (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..64)),
                0..8,
            ),
        ) {
            let mut pages: Vec<DeltaPage> = pages
                .into_iter()
                .map(|(page, bytes)| DeltaPage { page, bytes })
                .collect();
            pages.sort_by_key(|p| p.page);
            pages.dedup_by_key(|p| p.page);
            let d = DeltaFile {
                entry,
                machtype,
                data_base,
                data_len,
                pages,
            };
            prop_assert_eq!(DeltaFile::decode(&d.encode().unwrap()).unwrap(), d);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = DeltaFile::decode(&bytes);
        }
    }
}
