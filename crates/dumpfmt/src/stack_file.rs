//! The `stackXXXXX` format (magic octal 444): kernel-level restart state.

use crate::wire::{put_u16, put_u32, Reader};
use crate::DumpError;
use sysdefs::limits::NSIG;
use sysdefs::{Credentials, Disposition, Gid, Uid};

/// The `stackXXXXX` magic number, "arbitrarily set to octal 444".
pub const STACK_MAGIC: u16 = 0o444;

/// "All the information kept in the user and process structures that is
/// related to the disposition of signals, such as which signals are being
/// caught or ignored, which functions are handling those signals that are
/// caught, etc."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignalState {
    /// Per-signal dispositions, indexed by signal number - 1.
    pub dispositions: [Disposition; NSIG],
    /// The blocked-signal mask (bit *n*-1 blocks signal *n*).
    pub blocked: u32,
}

impl Default for SignalState {
    fn default() -> Self {
        SignalState {
            dispositions: [Disposition::Default; NSIG],
            blocked: 0,
        }
    }
}

/// The decoded `stackXXXXX` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackFile {
    /// "The user credentials (such as user and group id)."
    pub cred: Credentials,
    /// "The contents of the stack" (its length is "the size of the stack
    /// when the process was terminated").
    pub stack: Vec<u8>,
    /// "The contents of all the registers", in `d0..d7, a0..a7, pc, sr`
    /// order.
    pub regs: [u32; 18],
    /// The signal dispositions.
    pub sigs: SignalState,
}

impl StackFile {
    /// Serialises the file, magic first. Fails rather than emit a
    /// record [`StackFile::decode`] would reject: the stack length is
    /// carried as a `u32` and bounded by the same 16 MiB sanity limit,
    /// so an oversized stack must not be silently truncated.
    pub fn encode(&self) -> Result<Vec<u8>, DumpError> {
        if self.stack.len() > 16 << 20 {
            return Err(DumpError::Malformed("absurd stack size"));
        }
        let mut out = Vec::new();
        put_u16(&mut out, STACK_MAGIC);
        put_u32(&mut out, self.cred.ruid.as_u32());
        put_u32(&mut out, self.cred.euid.as_u32());
        put_u32(&mut out, self.cred.rgid.as_u32());
        put_u32(&mut out, self.cred.egid.as_u32());
        put_u32(&mut out, self.stack.len() as u32);
        out.extend_from_slice(&self.stack);
        for r in self.regs {
            put_u32(&mut out, r);
        }
        put_u32(&mut out, self.sigs.blocked);
        for d in self.sigs.dispositions {
            match d {
                Disposition::Default => {
                    out.push(0);
                    put_u32(&mut out, 0);
                }
                Disposition::Ignore => {
                    out.push(1);
                    put_u32(&mut out, 0);
                }
                Disposition::Handler(addr) => {
                    out.push(2);
                    put_u32(&mut out, addr);
                }
            }
        }
        Ok(out)
    }

    /// Parses and validates the file, magic first.
    pub fn decode(bytes: &[u8]) -> Result<StackFile, DumpError> {
        let mut r = Reader::new(bytes);
        let magic = r.u16()?;
        if magic != STACK_MAGIC {
            return Err(DumpError::BadMagic {
                expected: STACK_MAGIC,
                got: magic,
            });
        }
        let cred = Credentials {
            ruid: Uid(r.u32()?),
            euid: Uid(r.u32()?),
            rgid: Gid(r.u32()?),
            egid: Gid(r.u32()?),
        };
        let stack_len = r.u32()? as usize;
        if stack_len > 16 << 20 {
            return Err(DumpError::Malformed("absurd stack size"));
        }
        let stack = r.bytes(stack_len)?.to_vec();
        let mut regs = [0u32; 18];
        for reg in regs.iter_mut() {
            *reg = r.u32()?;
        }
        let blocked = r.u32()?;
        let mut dispositions = [Disposition::Default; NSIG];
        for d in dispositions.iter_mut() {
            let tag = r.u8()?;
            let addr = r.u32()?;
            *d = match tag {
                0 => Disposition::Default,
                1 => Disposition::Ignore,
                2 => Disposition::Handler(addr),
                _ => return Err(DumpError::Malformed("unknown disposition tag")),
            };
        }
        Ok(StackFile {
            cred,
            stack,
            regs,
            sigs: SignalState {
                dispositions,
                blocked,
            },
        })
    }

    /// Reads *only* the credentials, as `restart` does: "reads the old
    /// user credentials from the `stackXXXXX` file and establishes them
    /// as its own. This is the only information that it reads from this
    /// file."
    pub fn peek_credentials(bytes: &[u8]) -> Result<Credentials, DumpError> {
        let mut r = Reader::new(bytes);
        let magic = r.u16()?;
        if magic != STACK_MAGIC {
            return Err(DumpError::BadMagic {
                expected: STACK_MAGIC,
                got: magic,
            });
        }
        Ok(Credentials {
            ruid: Uid(r.u32()?),
            euid: Uid(r.u32()?),
            rgid: Gid(r.u32()?),
            egid: Gid(r.u32()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StackFile {
        let mut sigs = SignalState::default();
        sigs.dispositions[1] = Disposition::Ignore; // SIGINT ignored.
        sigs.dispositions[13] = Disposition::Handler(0x1a40); // SIGALRM caught.
        sigs.blocked = 1 << 2;
        StackFile {
            cred: Credentials::user(Uid(42), Gid(7)),
            stack: (0..=255u8).cycle().take(1000).collect(),
            regs: core::array::from_fn(|i| i as u32 * 3),
            sigs,
        }
    }

    #[test]
    fn round_trip() {
        let s = sample();
        assert_eq!(StackFile::decode(&s.encode().unwrap()).unwrap(), s);
    }

    #[test]
    fn magic_is_0444_and_checked() {
        let bytes = sample().encode().unwrap();
        assert_eq!(u16::from_be_bytes([bytes[0], bytes[1]]), 0o444);
        let mut bad = bytes;
        bad[1] ^= 0xff;
        assert!(matches!(
            StackFile::decode(&bad),
            Err(DumpError::BadMagic {
                expected: 0o444,
                ..
            })
        ));
    }

    #[test]
    fn peek_credentials_reads_only_the_header() {
        let s = sample();
        let bytes = s.encode().unwrap();
        // Truncate right after the credentials: peek still works.
        let cred = StackFile::peek_credentials(&bytes[..2 + 16]).unwrap();
        assert_eq!(cred, s.cred);
        assert_eq!(
            StackFile::decode(&bytes[..2 + 16]),
            Err(DumpError::Truncated)
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode().unwrap();
        assert_eq!(
            StackFile::decode(&bytes[..bytes.len() - 3]),
            Err(DumpError::Truncated)
        );
    }

    #[test]
    fn oversized_stack_refused_not_truncated() {
        let s = StackFile {
            stack: vec![0u8; (16 << 20) + 1],
            ..sample()
        };
        assert_eq!(s.encode(), Err(DumpError::Malformed("absurd stack size")));
    }

    #[test]
    fn absurd_stack_size_rejected() {
        let mut bytes = sample().encode().unwrap();
        // Stack length field is at offset 2 + 16.
        bytes[18..22].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            StackFile::decode(&bytes),
            Err(DumpError::Malformed(_))
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_disposition() -> impl Strategy<Value = Disposition> {
        prop_oneof![
            Just(Disposition::Default),
            Just(Disposition::Ignore),
            any::<u32>().prop_map(Disposition::Handler),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(
            ruid in any::<u32>(),
            euid in any::<u32>(),
            gid in any::<u32>(),
            stack in proptest::collection::vec(any::<u8>(), 0..2048),
            regs in proptest::array::uniform18(any::<u32>()),
            blocked in any::<u32>(),
            disps in proptest::collection::vec(arb_disposition(), NSIG),
        ) {
            let mut dispositions = [Disposition::Default; NSIG];
            dispositions.copy_from_slice(&disps);
            let s = StackFile {
                cred: Credentials {
                    ruid: Uid(ruid),
                    euid: Uid(euid),
                    rgid: Gid(gid),
                    egid: Gid(gid),
                },
                stack,
                regs,
                sigs: SignalState { dispositions, blocked },
            };
            prop_assert_eq!(StackFile::decode(&s.encode().unwrap()).unwrap(), s);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = StackFile::decode(&bytes);
            let _ = StackFile::peek_credentials(&bytes);
        }
    }
}
