//! The dump files' naming convention.

use sysdefs::limits::DUMP_DIR;
use sysdefs::Pid;

/// The three absolute path names of a process's dump files.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpFileNames {
    /// `/usr/tmp/a.outXXXXX` — the executable image.
    pub a_out: String,
    /// `/usr/tmp/filesXXXXX` — the user-level restart information.
    pub files: String,
    /// `/usr/tmp/stackXXXXX` — the kernel-level restart information.
    pub stack: String,
    /// `/usr/tmp/deltaXXXXX` — the pre-copy freeze delta (written
    /// instead of `a.outXXXXX` when the dump runs in delta mode).
    pub delta: String,
}

/// Names the dump files for `pid`, "where `XXXXX` is the process id of
/// the dumped process".
pub fn dump_file_names(pid: Pid) -> DumpFileNames {
    DumpFileNames {
        a_out: format!("{DUMP_DIR}/a.out{:05}", pid.as_u32()),
        files: format!("{DUMP_DIR}/files{:05}", pid.as_u32()),
        stack: format!("{DUMP_DIR}/stack{:05}", pid.as_u32()),
        delta: format!("{DUMP_DIR}/delta{:05}", pid.as_u32()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_paper() {
        let n = dump_file_names(Pid(1234));
        assert_eq!(n.a_out, "/usr/tmp/a.out01234");
        assert_eq!(n.files, "/usr/tmp/files01234");
        assert_eq!(n.stack, "/usr/tmp/stack01234");
        assert_eq!(n.delta, "/usr/tmp/delta01234");
    }

    #[test]
    fn wide_pids_extend_the_field() {
        let n = dump_file_names(Pid(1234567));
        assert_eq!(n.a_out, "/usr/tmp/a.out1234567");
    }
}
