//! The `filesXXXXX` format (magic octal 445): user-level restart state.

use crate::wire::{put_string, put_u16, put_u64, Reader};
use crate::DumpError;
use sysdefs::{OpenFlags, TtyFlags};

/// The `filesXXXXX` magic number, "arbitrarily set to octal 445".
pub const FILES_MAGIC: u16 = 0o445;

/// One entry of the dumped open-file table.
///
/// "For each entry in the open file table of the process (which has a
/// fixed size), an indicator specifying whether the entry refers to an
/// open socket, open file or is unused. For open files, this indicator is
/// followed by the absolute path name of the file, the file access flags
/// (e.g., read only etc.), and the file offset. Since the process
/// migration mechanism does not currently support sockets, no extra
/// information is kept in the case of a socket."
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FdRecord {
    /// The slot was empty.
    Unused,
    /// The slot held a socket; nothing else is recorded.
    Socket,
    /// The slot held an open file.
    File {
        /// Absolute path as the kernel's name bookkeeping recorded it
        /// (symbolic links unresolved until `dumpproc` rewrites them).
        path: String,
        /// Access flags to reopen with.
        flags: OpenFlags,
        /// Offset to reposition to.
        offset: u64,
    },
}

/// The decoded `filesXXXXX` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilesFile {
    /// "The name of the host on which the process was currently running
    /// at the time it was killed."
    pub host: String,
    /// "The absolute path name of the current working directory."
    pub cwd: String,
    /// The fixed-size open-file table, one record per slot.
    pub fds: Vec<FdRecord>,
    /// "The terminal flags, specifying such things as raw mode,
    /// echo/noecho, etc."
    pub tty_flags: TtyFlags,
}

impl FilesFile {
    /// Serialises the file, magic first. Fails rather than emit a
    /// record [`FilesFile::decode`] would reject: the fd count is
    /// carried as a `u16` and bounded by the same 1024-slot sanity
    /// limit, so a table longer than that must not be silently
    /// truncated onto the wire.
    pub fn encode(&self) -> Result<Vec<u8>, DumpError> {
        if self.fds.len() > 1024 {
            return Err(DumpError::Malformed("absurd fd table size"));
        }
        let mut out = Vec::new();
        put_u16(&mut out, FILES_MAGIC);
        put_string(&mut out, &self.host);
        put_string(&mut out, &self.cwd);
        put_u16(&mut out, self.fds.len() as u16);
        for fd in &self.fds {
            match fd {
                FdRecord::Unused => out.push(0),
                FdRecord::File {
                    path,
                    flags,
                    offset,
                } => {
                    out.push(1);
                    put_string(&mut out, path);
                    put_u16(&mut out, flags.bits());
                    put_u64(&mut out, *offset);
                }
                FdRecord::Socket => out.push(2),
            }
        }
        put_u16(&mut out, self.tty_flags.bits());
        Ok(out)
    }

    /// Parses and validates the file, checking the magic number first —
    /// the same check `restart` performs before trusting the contents.
    pub fn decode(bytes: &[u8]) -> Result<FilesFile, DumpError> {
        let mut r = Reader::new(bytes);
        let magic = r.u16()?;
        if magic != FILES_MAGIC {
            return Err(DumpError::BadMagic {
                expected: FILES_MAGIC,
                got: magic,
            });
        }
        let host = r.string()?;
        let cwd = r.string()?;
        let nfds = r.u16()? as usize;
        if nfds > 1024 {
            return Err(DumpError::Malformed("absurd fd table size"));
        }
        let mut fds = Vec::with_capacity(nfds);
        for _ in 0..nfds {
            fds.push(match r.u8()? {
                0 => FdRecord::Unused,
                1 => {
                    let path = r.string()?;
                    let flags = OpenFlags(r.u16()?);
                    let offset = r.u64()?;
                    FdRecord::File {
                        path,
                        flags,
                        offset,
                    }
                }
                2 => FdRecord::Socket,
                _ => return Err(DumpError::Malformed("unknown fd record tag")),
            });
        }
        let tty_flags = TtyFlags::from_bits(r.u16()?);
        Ok(FilesFile {
            host,
            cwd,
            fds,
            tty_flags,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysdefs::limits::NOFILE;

    fn sample() -> FilesFile {
        let mut fds = vec![FdRecord::Unused; NOFILE];
        fds[0] = FdRecord::File {
            path: "/dev/tty0".into(),
            flags: OpenFlags::RDONLY,
            offset: 0,
        };
        fds[1] = FdRecord::File {
            path: "/dev/tty0".into(),
            flags: OpenFlags::WRONLY,
            offset: 0,
        };
        fds[3] = FdRecord::File {
            path: "/n/brador/usr/alice/out.log".into(),
            flags: OpenFlags::WRONLY.with(OpenFlags::APPEND),
            offset: 8192,
        };
        fds[4] = FdRecord::Socket;
        FilesFile {
            host: "brick".into(),
            cwd: "/usr/alice/work".into(),
            fds,
            tty_flags: TtyFlags::raw_noecho(),
        }
    }

    #[test]
    fn round_trip() {
        let f = sample();
        let bytes = f.encode().unwrap();
        let back = FilesFile::decode(&bytes).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn magic_is_0445_and_checked() {
        let f = sample();
        let bytes = f.encode().unwrap();
        assert_eq!(u16::from_be_bytes([bytes[0], bytes[1]]), 0o445);
        let mut bad = bytes.clone();
        bad[1] = 0;
        assert!(matches!(
            FilesFile::decode(&bad),
            Err(DumpError::BadMagic {
                expected: 0o445,
                ..
            })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode().unwrap();
        for cut in [1, 3, 10, bytes.len() - 1] {
            assert_eq!(
                FilesFile::decode(&bytes[..cut]),
                Err(DumpError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let f = sample();
        let mut bytes = f.encode().unwrap();
        // First record tag sits right after magic + 2 strings + count.
        let tag_pos = 2 + (2 + 5) + (2 + 15) + 2;
        assert_eq!(bytes[tag_pos], 1);
        bytes[tag_pos] = 9;
        assert!(matches!(
            FilesFile::decode(&bytes),
            Err(DumpError::Malformed(_))
        ));
    }

    #[test]
    fn fixed_size_table_is_preserved() {
        let f = sample();
        let back = FilesFile::decode(&f.encode().unwrap()).unwrap();
        assert_eq!(back.fds.len(), NOFILE);
        assert_eq!(back.fds[4], FdRecord::Socket);
        assert_eq!(back.fds[29], FdRecord::Unused);
    }

    #[test]
    fn oversized_fd_table_refused_not_truncated() {
        // 70000 % 65536 = 4464: the old `as u16` cast would have
        // emitted a wrong-but-plausible count instead of failing.
        let f = FilesFile {
            fds: vec![FdRecord::Unused; 70_000],
            ..sample()
        };
        assert_eq!(f.encode(), Err(DumpError::Malformed("absurd fd table size")));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_record() -> impl Strategy<Value = FdRecord> {
        prop_oneof![
            Just(FdRecord::Unused),
            Just(FdRecord::Socket),
            ("(/[a-z]{1,6}){1,4}", 0u16..0o7777, any::<u64>()).prop_map(|(path, f, offset)| {
                FdRecord::File {
                    path,
                    // Mask out the invalid access-mode 3.
                    flags: OpenFlags(if f & 3 == 3 { f & !1 } else { f }),
                    offset,
                }
            }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(
            host in "[a-z]{1,10}",
            cwd in "(/[a-z]{1,6}){1,5}",
            fds in proptest::collection::vec(arb_record(), 0..40),
            tty in any::<u16>(),
        ) {
            let f = FilesFile {
                host,
                cwd,
                fds,
                tty_flags: TtyFlags::from_bits(tty),
            };
            prop_assert_eq!(FilesFile::decode(&f.encode().unwrap()).unwrap(), f);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = FilesFile::decode(&bytes);
        }
    }
}
