//! The Sun-2-calibrated cost model.
//!
//! Every constant here is an estimate for a ~1 MIPS Sun-2 workstation with
//! a local SCSI-era disk doing synchronous directory writes, on a 10 Mbit
//! Ethernet, circa 1987. The constants are deliberately *component-level*
//! (a syscall trap, a directory lookup, a byte copied) so that the paper's
//! figure ratios emerge from how much component work each operation
//! performs rather than being asserted directly.
//!
//! Costs separate **CPU time** (charged to the running process and to the
//! machine, the paper's "system CPU execution time") from **wait time**
//! (disk rotation/seek, network propagation — elapsed real time during
//! which the CPU is free). Figure 1 measures CPU only; Figures 2-4 report
//! both CPU and real time, which is exactly the split that makes
//! `dumpproc`'s 4x CPU vs 6x real discrepancy visible.

use crate::clock::SimDuration;

/// A cost: CPU time charged to the caller plus non-CPU wait time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cost {
    /// Time the CPU is busy on behalf of the operation.
    pub cpu: SimDuration,
    /// Additional elapsed time during which the CPU is *not* busy
    /// (device waits). Real time for the operation is `cpu + wait`.
    pub wait: SimDuration,
}

impl Cost {
    /// A pure-CPU cost.
    pub const fn cpu_us(us: u64) -> Cost {
        Cost {
            cpu: SimDuration::micros(us),
            wait: SimDuration::ZERO,
        }
    }

    /// A pure-wait cost.
    pub const fn wait_us(us: u64) -> Cost {
        Cost {
            cpu: SimDuration::ZERO,
            wait: SimDuration::micros(us),
        }
    }

    /// The zero cost.
    pub const ZERO: Cost = Cost {
        cpu: SimDuration::ZERO,
        wait: SimDuration::ZERO,
    };

    /// Total elapsed (real) time of the operation.
    pub fn real(self) -> SimDuration {
        self.cpu + self.wait
    }

    /// Component-wise sum.
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            cpu: self.cpu + other.cpu,
            wait: self.wait + other.wait,
        }
    }
}

/// The tunable constants of the simulated hardware and kernel.
///
/// Each field documents its calibration anchor. [`CostModel::sun2`] is the
/// configuration used by every experiment in EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Micro-seconds per simple VM instruction. Sun-2 (10 MHz MC68010)
    /// executed roughly one million simple instructions per second.
    pub instr_us: u64,
    /// System-call trap entry + exit (mode switch, register save/restore,
    /// argument fetch). ~150 us on a Sun-2.
    pub syscall_trap_us: u64,
    /// CPU cost of looking up one path component in the (cached) namei
    /// path: directory scan and inode check.
    pub namei_component_cpu_us: u64,
    /// Average disk wait per path component for lookups that miss the
    /// buffer cache. Applied per component on first touch of a file.
    pub namei_component_disk_us: u64,
    /// Allocating or freeing a slot in the system open-file table and the
    /// per-process descriptor array.
    pub file_struct_op_us: u64,
    /// One call to the kernel memory allocator (the paper's §5.1 uses it
    /// for the dynamically allocated file-name strings).
    pub kernel_malloc_us: u64,
    /// Releasing kernel allocator memory on `close()`.
    pub kernel_free_us: u64,
    /// Kernel byte-at-a-time string/structure copy, per byte. This prices
    /// the paper's path-name bookkeeping: copying names into the `user`
    /// and `file` structures.
    pub copy_per_byte_us: u64,
    /// Fixed cost of the cwd-combination logic the paper adds to
    /// `chdir()`: deciding absolute vs relative and splicing `.`/`..`.
    pub path_combine_us: u64,
    /// CPU part of creating a file: inode allocation and directory
    /// update code (filesystem code was a real CPU burner at 1 MIPS).
    pub disk_create_cpu_us: u64,
    /// Wait part of creating a file: the two synchronous directory
    /// writes 4.2BSD-era filesystems performed.
    pub disk_create_wait_us: u64,
    /// Seek + rotational latency when a transfer to a file begins.
    pub disk_seek_us: u64,
    /// Disk write, per byte (~0.4 MB/s effective on a Sun-2 shoebox disk).
    pub disk_write_per_byte_us: u64,
    /// Disk read, per byte (reads stream a little faster than synchronous
    /// writes).
    pub disk_read_per_byte_us: u64,
    /// CPU part of the final flush of a written file.
    pub disk_sync_close_cpu_us: u64,
    /// Wait part of the final flush of a written file.
    pub disk_sync_close_wait_us: u64,
    /// A full context switch between processes.
    pub context_switch_us: u64,
    /// Scheduler quantum: how long a process runs before preemption.
    pub quantum_us: u64,
    /// Posting and taking a signal (not counting what the action then
    /// does).
    pub signal_delivery_us: u64,
    /// Process teardown in `exit()`: closing descriptors is billed
    /// separately; this is the proc/user structure release.
    pub proc_teardown_us: u64,
    /// Fixed part of `fork()`; the copied bytes are billed per byte.
    pub fork_base_us: u64,
    /// Fixed part of `execve()`: argument shuffling, old image release,
    /// header validation, page table setup.
    pub exec_base_us: u64,
    /// Ethernet propagation + controller latency per frame.
    pub ether_latency_us: u64,
    /// Ethernet transfer per byte (10 Mbit/s is 1.25 MB/s; protocol
    /// overhead brings it to ~0.9 MB/s effective).
    pub ether_per_byte_us: u64,
    /// Client + server CPU per NFS/RPC round trip (XDR encode/decode,
    /// server dispatch).
    pub rpc_overhead_cpu_us: u64,
    /// Name (YP/hosts) lookup performed by `rsh` before connecting.
    pub rsh_name_lookup_us: u64,
    /// TCP connection establishment to `rshd` (privileged port dance).
    pub rsh_connect_us: u64,
    /// `rshd` authentication: reverse lookup plus `.rhosts`/`hosts.equiv`
    /// checks (several disk and network round trips).
    pub rsh_auth_us: u64,
    /// `rshd` forking and `exec`ing the shell and remote command.
    pub rsh_spawn_us: u64,
    /// Connection teardown and exit-status plumbing.
    pub rsh_teardown_us: u64,
    /// The 1-second poll sleep `dumpproc` takes between attempts to open
    /// `a.outXXXXX` (fixed by the paper).
    pub dumpproc_poll_sleep_us: u64,
    /// The in-kernel body of a "quick" system call — one that only reads
    /// or updates a field of the proc/user structure (`getpid`, `alarm`,
    /// `sigsetmask`, `lseek`, ...). Small next to the trap cost, but not
    /// zero: simlint's charging rule insists every handler charges for
    /// its own work.
    pub quick_call_us: u64,
}

impl CostModel {
    /// The Sun-2 calibration used throughout the evaluation.
    pub fn sun2() -> CostModel {
        CostModel {
            instr_us: 1,
            syscall_trap_us: 300,
            namei_component_cpu_us: 400,
            namei_component_disk_us: 9_000,
            file_struct_op_us: 200,
            kernel_malloc_us: 500,
            kernel_free_us: 250,
            copy_per_byte_us: 4,
            path_combine_us: 230,
            disk_create_cpu_us: 12_000,
            disk_create_wait_us: 70_000,
            disk_seek_us: 15_000,
            disk_write_per_byte_us: 3,
            disk_read_per_byte_us: 1,
            disk_sync_close_cpu_us: 4_000,
            disk_sync_close_wait_us: 25_000,
            context_switch_us: 2_000,
            quantum_us: 100_000,
            signal_delivery_us: 300,
            proc_teardown_us: 2_000,
            fork_base_us: 5_000,
            exec_base_us: 15_000,
            ether_latency_us: 1_000,
            ether_per_byte_us: 1,
            rpc_overhead_cpu_us: 2_000,
            rsh_name_lookup_us: 1_200_000,
            rsh_connect_us: 1_200_000,
            rsh_auth_us: 3_000_000,
            rsh_spawn_us: 2_400_000,
            rsh_teardown_us: 1_200_000,
            dumpproc_poll_sleep_us: 1_000_000,
            quick_call_us: 50,
        }
    }

    /// Cost of executing `n` simple VM instructions.
    pub fn instructions(&self, n: u64) -> Cost {
        Cost::cpu_us(self.instr_us.saturating_mul(n))
    }

    /// The trap in and out of the kernel for one system call.
    pub fn syscall_trap(&self) -> Cost {
        Cost::cpu_us(self.syscall_trap_us)
    }

    /// Looking up `components` path components; `cold` components also pay
    /// the buffer-cache-miss disk wait.
    pub fn namei(&self, components: usize, cold: bool) -> Cost {
        let n = components as u64;
        Cost {
            cpu: SimDuration::micros(self.namei_component_cpu_us * n),
            wait: if cold {
                SimDuration::micros(self.namei_component_disk_us * n)
            } else {
                SimDuration::ZERO
            },
        }
    }

    /// Allocating or freeing descriptor-table and file-table slots.
    pub fn file_struct_op(&self) -> Cost {
        Cost::cpu_us(self.file_struct_op_us)
    }

    /// One kernel allocator call (the paper's dynamic name strings).
    pub fn kernel_malloc(&self) -> Cost {
        Cost::cpu_us(self.kernel_malloc_us)
    }

    /// One kernel allocator release.
    pub fn kernel_free(&self) -> Cost {
        Cost::cpu_us(self.kernel_free_us)
    }

    /// Copying `n` bytes inside the kernel.
    pub fn copy_bytes(&self, n: usize) -> Cost {
        Cost::cpu_us(self.copy_per_byte_us.saturating_mul(n as u64))
    }

    /// The cwd-combination bookkeeping added to `chdir()`/`open()`.
    pub fn path_combine(&self) -> Cost {
        Cost::cpu_us(self.path_combine_us)
    }

    /// Creating a new file on disk (synchronous directory update).
    pub fn disk_create(&self) -> Cost {
        Cost {
            cpu: SimDuration::micros(self.disk_create_cpu_us),
            wait: SimDuration::micros(self.disk_create_wait_us),
        }
    }

    /// Writing `n` bytes to disk, including the initial seek.
    pub fn disk_write(&self, n: usize) -> Cost {
        Cost {
            // Writing through the buffer cache costs real CPU on a
            // 1 MIPS machine: about a micro-second per byte.
            cpu: SimDuration::micros(n as u64),
            wait: SimDuration::micros(self.disk_seek_us + self.disk_write_per_byte_us * n as u64),
        }
    }

    /// Reading `n` bytes from disk, including the initial seek.
    pub fn disk_read(&self, n: usize) -> Cost {
        Cost {
            cpu: SimDuration::micros((n as u64) / 2),
            wait: SimDuration::micros(self.disk_seek_us + self.disk_read_per_byte_us * n as u64),
        }
    }

    /// Final flush of a written file.
    pub fn disk_sync_close(&self) -> Cost {
        Cost {
            cpu: SimDuration::micros(self.disk_sync_close_cpu_us),
            wait: SimDuration::micros(self.disk_sync_close_wait_us),
        }
    }

    /// One context switch.
    pub fn context_switch(&self) -> Cost {
        Cost::cpu_us(self.context_switch_us)
    }

    /// Posting/taking a signal.
    pub fn signal_delivery(&self) -> Cost {
        Cost::cpu_us(self.signal_delivery_us)
    }

    /// Releasing the proc/user structures at exit.
    pub fn proc_teardown(&self) -> Cost {
        Cost::cpu_us(self.proc_teardown_us)
    }

    /// `fork()` copying `image_bytes` of data + stack.
    pub fn fork(&self, image_bytes: usize) -> Cost {
        Cost::cpu_us(self.fork_base_us).plus(self.copy_bytes(image_bytes))
    }

    /// The fixed part of `execve()`.
    pub fn exec_base(&self) -> Cost {
        Cost::cpu_us(self.exec_base_us)
    }

    /// Shipping `n` bytes as one network message.
    pub fn ether_message(&self, n: usize) -> Cost {
        Cost {
            cpu: SimDuration::micros(200), // Driver + protocol CPU.
            wait: SimDuration::micros(self.ether_latency_us + self.ether_per_byte_us * n as u64),
        }
    }

    /// One NFS/RPC round trip carrying `req` request and `resp` reply bytes.
    pub fn rpc(&self, req: usize, resp: usize) -> Cost {
        Cost::cpu_us(self.rpc_overhead_cpu_us)
            .plus(self.ether_message(req))
            .plus(self.ether_message(resp))
    }

    /// Everything `rsh` pays before the remote command starts, plus
    /// teardown afterwards. Almost entirely wait time, which is why the
    /// paper's Figure 4 shows `migrate` real time ballooning while CPU
    /// time stays modest.
    pub fn rsh_session_overhead(&self) -> Cost {
        Cost {
            cpu: SimDuration::micros(400_000), // Local+remote shell CPU.
            wait: SimDuration::micros(
                self.rsh_name_lookup_us
                    + self.rsh_connect_us
                    + self.rsh_auth_us
                    + self.rsh_spawn_us
                    + self.rsh_teardown_us,
            ),
        }
    }

    /// The fixed poll sleep in `dumpproc`.
    pub fn dumpproc_poll_sleep(&self) -> SimDuration {
        SimDuration::micros(self.dumpproc_poll_sleep_us)
    }

    /// The body of a quick, proc-structure-only system call.
    pub fn quick_call(&self) -> Cost {
        Cost::cpu_us(self.quick_call_us)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sun2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_algebra() {
        let a = Cost::cpu_us(100).plus(Cost::wait_us(50));
        assert_eq!(a.cpu.as_micros(), 100);
        assert_eq!(a.wait.as_micros(), 50);
        assert_eq!(a.real().as_micros(), 150);
    }

    #[test]
    fn namei_cold_pays_disk() {
        let m = CostModel::sun2();
        let warm = m.namei(3, false);
        let cold = m.namei(3, true);
        assert_eq!(warm.cpu, cold.cpu);
        assert_eq!(warm.wait, SimDuration::ZERO);
        assert!(cold.wait > SimDuration::ZERO);
    }

    #[test]
    fn rsh_overhead_is_seconds_of_wait() {
        let m = CostModel::sun2();
        let c = m.rsh_session_overhead();
        assert!(c.wait > SimDuration::secs(5));
        assert!(c.cpu < SimDuration::secs(1));
    }

    #[test]
    fn disk_write_scales_with_bytes() {
        let m = CostModel::sun2();
        let small = m.disk_write(1_000);
        let big = m.disk_write(100_000);
        assert!(big.wait > small.wait);
        assert!(big.real() > small.real());
    }

    #[test]
    fn instructions_scale_linearly() {
        let m = CostModel::sun2();
        assert_eq!(m.instructions(1_000).cpu.as_micros(), 1_000 * m.instr_us);
    }
}
