//! Virtual instants and durations measured in simulated micro-seconds.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A duration of simulated time, in micro-seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration of `us` micro-seconds.
    pub const fn micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// A duration of `ms` milli-seconds.
    pub const fn millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// A duration of `s` seconds.
    pub const fn secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// The duration in micro-seconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milli-seconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales the duration by an integer factor.
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The ratio of this duration to another, as used when normalising
    /// figure series ("performance of the original kernel normalised to 1").
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero; figure baselines are always non-zero.
    pub fn ratio_to(self, base: SimDuration) -> f64 {
        assert!(base.0 != 0, "cannot normalise to a zero baseline");
        self.0 as f64 / base.0 as f64
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An instant of simulated time: micro-seconds since world boot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The boot instant.
    pub const BOOT: SimTime = SimTime(0);

    /// Micro-seconds since boot.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration elapsed since an earlier instant.
    ///
    /// Saturates to zero if `earlier` is actually later, so interval
    /// arithmetic in measurement code cannot underflow.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

/// The world clock: a monotonically advancing [`SimTime`].
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock reading boot time.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t` if `t` is in the future; never moves
    /// backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimDuration(5);
        let b = SimDuration(9);
        assert_eq!((a - b).as_micros(), 0);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!(SimTime(3).since(SimTime(10)).as_micros(), 0);
    }

    #[test]
    fn ratio_normalisation() {
        let base = SimDuration::millis(10);
        let x = SimDuration::millis(14);
        assert!((x.ratio_to(base) - 1.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn ratio_to_zero_panics() {
        let _ = SimDuration(1).ratio_to(SimDuration::ZERO);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance(SimDuration::secs(1));
        let t1 = c.now();
        c.advance_to(SimTime(10)); // In the past; must not move back.
        assert_eq!(c.now(), t1);
        c.advance_to(t1 + SimDuration::secs(1));
        assert!(c.now() > t1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration(12).to_string(), "12us");
        assert_eq!(SimDuration::millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::secs(12).to_string(), "12.000s");
    }
}
