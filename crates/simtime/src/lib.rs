//! Virtual time and the Sun-2-calibrated cost model.
//!
//! Every measurement in the paper's evaluation (Figures 1-4) is a CPU or
//! real time on a Sun-2 workstation. Since our substrate is a simulator,
//! all times in this workspace are *virtual*: a [`SimTime`] is a count of
//! simulated micro-seconds since world boot, and a [`CostModel`] assigns a
//! [`SimDuration`] to every primitive operation (instruction, syscall trap,
//! byte copied, disk transfer, network frame, ...).
//!
//! The figure ratios reported by the benchmark harness are *outputs* of
//! this model plus the simulated work actually performed — e.g. `SIGDUMP`
//! costs more than `SIGQUIT` because it genuinely writes three files — not
//! hard-coded constants.

pub mod clock;
pub mod cost;

pub use clock::{Clock, SimDuration, SimTime};
pub use cost::CostModel;
