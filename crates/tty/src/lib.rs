//! Terminals: the old `sgttyb` modes plus a small line discipline.
//!
//! The paper's `restart` "reads in the old terminal flags and sets those
//! of the current terminal appropriately, so that the current terminal
//! modes are those of the original process" — which is what lets screen
//! editors survive migration. Conversely, `migrate` via `rsh` cannot
//! preserve modes ("because of the way that rsh is implemented"), so a
//! terminal can also be a [`Terminal::remote_pipe`]: a degraded endpoint
//! on which mode changes do not stick, reproducing that caveat.
//!
//! A terminal has two sides:
//!
//! * the **host side** ([`Terminal::type_input`], [`Terminal::output`]) —
//!   the human at the keyboard, driven by tests and examples;
//! * the **process side** ([`Terminal::process_read`],
//!   [`Terminal::process_write`], [`Terminal::gtty`]/[`Terminal::stty`]) —
//!   what the simulated kernel calls on behalf of a process.
//!
//! In cooked (canonical) mode, reads block until a full line is typed,
//! the erase character edits the pending line, and input echoes. In raw
//! or cbreak mode, every byte is delivered immediately — the paper's
//! "process input characters as soon as they are typed".

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use sysdefs::TtyFlags;

/// The erase (backspace) character in cooked mode.
pub const ERASE_CHAR: u8 = 0x08;

/// A terminal or terminal-like endpoint.
#[derive(Debug)]
pub struct Terminal {
    flags: TtyFlags,
    /// Raw bytes available to the process (complete lines in cooked mode).
    input: VecDeque<u8>,
    /// The line being typed, not yet delivered (cooked mode only).
    pending_line: Vec<u8>,
    /// Everything the process (or echo) has written to the screen.
    output: Vec<u8>,
    /// True for rsh-style pipe endpoints where `stty` has no effect.
    degraded: bool,
    /// Closed endpoints deliver EOF.
    closed: bool,
}

impl Terminal {
    /// A real terminal in the default cooked mode.
    pub fn new() -> Terminal {
        Terminal {
            flags: TtyFlags::cooked(),
            input: VecDeque::new(),
            pending_line: Vec::new(),
            output: Vec::new(),
            degraded: false,
            closed: false,
        }
    }

    /// An rsh-style remote pipe: behaves like a cooked terminal but mode
    /// changes are silently ignored, so visual programs cannot switch it
    /// to raw mode — the paper's `migrate`-to-remote-host limitation.
    pub fn remote_pipe() -> Terminal {
        Terminal {
            degraded: true,
            ..Terminal::new()
        }
    }

    /// Is this a degraded (rsh pipe) endpoint?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    // ------------------------------------------------------------------
    // Host (keyboard/screen) side.
    // ------------------------------------------------------------------

    /// Types `text` at the keyboard.
    pub fn type_input(&mut self, text: &str) {
        for &b in text.as_bytes() {
            self.type_byte(b);
        }
    }

    fn type_byte(&mut self, b: u8) {
        if self.flags.char_at_a_time() {
            // Raw/cbreak: deliver immediately; raw mode never echoes
            // through the discipline.
            self.input.push_back(b);
            if self.flags.echoes() && !self.flags.is_raw() {
                self.echo(b);
            }
            return;
        }
        // Cooked mode: line editing.
        if b == ERASE_CHAR {
            if self.pending_line.pop().is_some() && self.flags.echoes() {
                self.output.extend_from_slice(b"\x08 \x08");
            }
            return;
        }
        self.pending_line.push(b);
        if self.flags.echoes() {
            self.echo(b);
        }
        if b == b'\n' {
            self.input.extend(self.pending_line.drain(..));
        }
    }

    fn echo(&mut self, b: u8) {
        if b == b'\n' && self.flags.bits() & TtyFlags::CRMOD != 0 {
            self.output.extend_from_slice(b"\r\n");
        } else {
            self.output.push(b);
        }
    }

    /// Everything shown on the screen so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The screen contents as text.
    pub fn output_text(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Discards the screen contents (e.g. after a window redraw).
    pub fn clear_output(&mut self) {
        self.output.clear();
    }

    /// Marks the endpoint closed; subsequent reads see EOF.
    pub fn close(&mut self) {
        self.closed = true;
    }

    // ------------------------------------------------------------------
    // Process side (called by the kernel).
    // ------------------------------------------------------------------

    /// Can a `read` complete right now? In cooked mode this requires a
    /// complete line; in raw/cbreak any byte is enough.
    pub fn read_ready(&self) -> bool {
        if self.closed {
            return true;
        }
        if self.flags.char_at_a_time() {
            !self.input.is_empty()
        } else {
            self.input.contains(&b'\n')
        }
    }

    /// Reads up to `n` bytes on behalf of the process.
    ///
    /// Returns `None` when no data is ready (the kernel blocks the
    /// process); `Some(empty)` is EOF after [`Terminal::close`].
    pub fn process_read(&mut self, n: usize) -> Option<Vec<u8>> {
        if !self.read_ready() {
            return None;
        }
        if self.closed && self.input.is_empty() {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        if self.flags.char_at_a_time() {
            while out.len() < n {
                match self.input.pop_front() {
                    Some(b) => out.push(b),
                    None => break,
                }
            }
        } else {
            // Cooked: at most one line per read, as the old discipline did.
            while out.len() < n {
                match self.input.pop_front() {
                    Some(b) => {
                        out.push(b);
                        if b == b'\n' {
                            break;
                        }
                    }
                    None => break,
                }
            }
        }
        Some(out)
    }

    /// Writes process output to the screen.
    pub fn process_write(&mut self, bytes: &[u8]) -> usize {
        if self.flags.is_raw() {
            self.output.extend_from_slice(bytes);
        } else {
            for &b in bytes {
                self.echo(b);
            }
        }
        bytes.len()
    }

    /// `ioctl(TIOCGETP)`: reads the terminal flags.
    pub fn gtty(&self) -> TtyFlags {
        if self.degraded {
            TtyFlags::cooked()
        } else {
            self.flags
        }
    }

    /// `ioctl(TIOCSETP)`: sets the terminal flags.
    ///
    /// On a degraded rsh pipe the call is accepted but has no effect,
    /// exactly the silent failure that makes migrated screen editors
    /// "become useless" in the paper's §4.1.
    pub fn stty(&mut self, flags: TtyFlags) {
        if self.degraded {
            return;
        }
        self.flags = flags;
        if flags.char_at_a_time() && !self.pending_line.is_empty() {
            // Switching to raw flushes the partial line to the reader.
            self.input.extend(self.pending_line.drain(..));
        }
    }
}

impl Default for Terminal {
    fn default() -> Self {
        Terminal::new()
    }
}

/// A shareable terminal handle: the kernel holds one per `/dev/ttyN`,
/// tests and examples hold clones to type and inspect.
#[derive(Clone, Debug)]
pub struct TtyHandle(Arc<Mutex<Terminal>>);

impl TtyHandle {
    /// Wraps a terminal for sharing.
    pub fn new(t: Terminal) -> TtyHandle {
        TtyHandle(Arc::new(Mutex::new(t)))
    }

    /// Runs `f` with the locked terminal.
    pub fn with<R>(&self, f: impl FnOnce(&mut Terminal) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Host convenience: types text.
    pub fn type_input(&self, text: &str) {
        self.with(|t| t.type_input(text));
    }

    /// Host convenience: current screen text.
    pub fn output_text(&self) -> String {
        self.with(|t| t.output_text())
    }

    /// Host convenience: clears the screen capture.
    pub fn clear_output(&self) {
        self.with(|t| t.clear_output());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooked_mode_lines_and_echo() {
        let mut t = Terminal::new();
        t.type_input("hel");
        assert!(!t.read_ready(), "no newline yet");
        assert_eq!(t.process_read(100), None);
        t.type_input("lo\n");
        assert!(t.read_ready());
        assert_eq!(t.process_read(100).unwrap(), b"hello\n");
        // Echo with CRMOD maps \n to \r\n.
        assert_eq!(t.output_text(), "hello\r\n");
    }

    #[test]
    fn cooked_mode_erase_edits_pending_line() {
        let mut t = Terminal::new();
        t.type_input("cax");
        t.type_byte(ERASE_CHAR);
        t.type_input("t\n");
        assert_eq!(t.process_read(100).unwrap(), b"cat\n");
    }

    #[test]
    fn one_line_per_cooked_read() {
        let mut t = Terminal::new();
        t.type_input("one\ntwo\n");
        assert_eq!(t.process_read(100).unwrap(), b"one\n");
        assert_eq!(t.process_read(100).unwrap(), b"two\n");
    }

    #[test]
    fn raw_mode_delivers_immediately_without_echo() {
        let mut t = Terminal::new();
        t.stty(TtyFlags::raw_noecho());
        t.type_input("x");
        assert!(t.read_ready());
        assert_eq!(t.process_read(10).unwrap(), b"x");
        assert_eq!(t.output_text(), "", "raw+noecho must not echo");
    }

    #[test]
    fn switching_to_raw_flushes_pending_line() {
        let mut t = Terminal::new();
        t.type_input("par");
        t.stty(TtyFlags::raw_noecho());
        assert_eq!(t.process_read(10).unwrap(), b"par");
    }

    #[test]
    fn mode_round_trip_for_restart() {
        // What restart does: gtty on the old terminal was saved in the
        // dump; stty applies it to the new terminal.
        let mut old = Terminal::new();
        old.stty(TtyFlags::raw_noecho());
        let saved = old.gtty();
        let mut new = Terminal::new();
        new.stty(saved);
        assert!(new.gtty().is_raw());
        assert!(!new.gtty().echoes());
    }

    #[test]
    fn degraded_pipe_ignores_stty() {
        let mut t = Terminal::remote_pipe();
        t.stty(TtyFlags::raw_noecho());
        assert!(!t.gtty().is_raw(), "rsh pipes cannot enter raw mode");
        // Input still needs full lines: a screen editor is useless here.
        t.type_input("q");
        assert!(!t.read_ready());
    }

    #[test]
    fn close_delivers_eof() {
        let mut t = Terminal::new();
        t.close();
        assert_eq!(t.process_read(10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn process_write_applies_crmod() {
        let mut t = Terminal::new();
        t.process_write(b"a\nb");
        assert_eq!(t.output_text(), "a\r\nb");
        let mut r = Terminal::new();
        r.stty(TtyFlags::raw_noecho());
        r.process_write(b"a\nb");
        assert_eq!(r.output_text(), "a\nb");
    }

    #[test]
    fn handle_shares_state() {
        let h = TtyHandle::new(Terminal::new());
        let h2 = h.clone();
        h.type_input("hi\n");
        let got = h2.with(|t| t.process_read(100)).unwrap();
        assert_eq!(got, b"hi\n");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// In cooked mode, whatever full lines are typed come back as
        /// exactly those lines, one per read.
        #[test]
        fn cooked_lines_round_trip(
            lines in proptest::collection::vec("[a-zA-Z0-9 ]{0,20}", 1..8)
        ) {
            let mut t = Terminal::new();
            for l in &lines {
                t.type_input(&format!("{l}\n"));
            }
            for l in &lines {
                let got = t.process_read(256).expect("line ready");
                prop_assert_eq!(got, format!("{l}\n").into_bytes());
            }
            prop_assert_eq!(t.process_read(256), None);
        }

        /// In raw mode, bytes arrive exactly as typed, in order,
        /// regardless of read chunking.
        #[test]
        fn raw_bytes_round_trip(
            text in "[ -~]{0,64}",
            chunk in 1usize..16,
        ) {
            let mut t = Terminal::new();
            t.stty(sysdefs::TtyFlags::raw_noecho());
            t.type_input(&text);
            let mut got = Vec::new();
            while let Some(bytes) = t.process_read(chunk) {
                if bytes.is_empty() {
                    break;
                }
                got.extend_from_slice(&bytes);
                if got.len() >= text.len() {
                    break;
                }
            }
            prop_assert_eq!(got, text.clone().into_bytes());
        }

        /// Erase handling never panics and never leaks erased characters
        /// into a delivered line.
        #[test]
        fn erase_never_leaks(
            keeps in "[a-z]{1,8}",
            noise in "[a-z]{0,8}",
        ) {
            let mut t = Terminal::new();
            t.type_input(&noise);
            for _ in 0..noise.len() + 2 {
                t.type_input("\x08");
            }
            t.type_input(&format!("{keeps}\n"));
            let got = t.process_read(256).expect("line");
            prop_assert_eq!(got, format!("{keeps}\n").into_bytes());
        }
    }
}
