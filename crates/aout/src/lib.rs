//! The a.out object-file format, core dumps, and `undump`.
//!
//! The paper's `SIGDUMP` writes an `a.outXXXXX` file that is "an executable
//! obtained by dumping the text and data segments of the process, and
//! prepending a suitable header that will make UNIX recognise the file as
//! an executable. This file can be executed as an ordinary program" — with
//! all static variables holding the values they had at dump time, "which
//! gives us, incidentally, the `undump` utility for free."
//!
//! This crate provides exactly that header and encoding:
//!
//! * [`AoutHeader`] — the classic 32-byte big-endian a.out exec header
//!   (OMAGIC `0407`), with the machine id in the upper half of the magic
//!   word selecting the required ISA level, as Sun's a.out did for the
//!   68010/68020;
//! * [`encode_executable`] / [`parse_executable`] — whole-file codecs
//!   between segment sets and bytes;
//! * [`CoreFile`] — the `core` file `SIGQUIT` produces (registers, data
//!   and stack segments);
//! * [`undump`] — combine an executable and a core dump into a new
//!   executable whose initialised data is the core's.

pub mod core_dump;
pub mod header;

pub use core_dump::{required_isa, undump, CoreError, CoreFile, UndumpError, CORE_MAGIC};
pub use header::{
    encode_executable, encode_object, parse_executable, AoutError, AoutHeader, Executable,
    AOUT_HEADER_LEN, MID_ISA1, MID_ISA2, OMAGIC,
};
