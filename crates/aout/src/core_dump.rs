//! The `core` file written by `SIGQUIT` and the `undump` combinator.
//!
//! A 4.2BSD core dump held the u-area, the data segment and the stack —
//! "a subset of the information we dump for our new signal", as the paper
//! puts it when comparing `SIGDUMP` to `SIGQUIT`. Our core file keeps the
//! same content: registers (the interesting part of the u-area), the data
//! segment and the live stack.

use crate::header::{parse_executable, AoutError, Executable};
use m68vm::IsaLevel;

/// Magic number identifying a core file (locally chosen, in the spirit of
/// the paper's octal 444/445 dump magics).
pub const CORE_MAGIC: u32 = 0o443;

/// A parsed core dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreFile {
    /// Registers in dump order (`d0..d7, a0..a7, pc, sr`).
    pub regs: [u32; 18],
    /// The data segment (data + bss) at the time of death.
    pub data: Vec<u8>,
    /// The live stack (from `sp` to the stack top) at the time of death.
    pub stack: Vec<u8>,
}

/// A core encoding/decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// Wrong magic number.
    BadMagic(u32),
    /// File shorter than its own length fields claim.
    Truncated,
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::BadMagic(m) => write!(f, "bad core magic {m:#o}"),
            CoreError::Truncated => write!(f, "core file truncated"),
        }
    }
}

impl std::error::Error for CoreError {}

impl CoreFile {
    /// Serialises the core file.
    ///
    /// Layout: magic, data length, stack length (big-endian words), 18
    /// register words, data bytes, stack bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 18 * 4 + self.data.len() + self.stack.len());
        out.extend_from_slice(&CORE_MAGIC.to_be_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&(self.stack.len() as u32).to_be_bytes());
        for r in self.regs {
            out.extend_from_slice(&r.to_be_bytes());
        }
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&self.stack);
        out
    }

    /// Parses a core file.
    pub fn decode(bytes: &[u8]) -> Result<CoreFile, CoreError> {
        let word = |i: usize| -> Result<u32, CoreError> {
            bytes
                .get(i * 4..i * 4 + 4)
                .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
                .ok_or(CoreError::Truncated)
        };
        let magic = word(0)?;
        if magic != CORE_MAGIC {
            return Err(CoreError::BadMagic(magic));
        }
        let data_len = word(1)? as usize;
        let stack_len = word(2)? as usize;
        let mut regs = [0u32; 18];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = word(3 + i)?;
        }
        let body = 12 + 18 * 4;
        let data = bytes
            .get(body..body + data_len)
            .ok_or(CoreError::Truncated)?
            .to_vec();
        let stack = bytes
            .get(body + data_len..body + data_len + stack_len)
            .ok_or(CoreError::Truncated)?
            .to_vec();
        Ok(CoreFile { regs, data, stack })
    }
}

/// Combines an executable and a core dump into a new executable whose
/// initialised data is the core's data segment — the classic `undump`.
///
/// The resulting program starts *from the beginning* (its entry point),
/// but every static variable holds the value it had when the core was
/// written. The dumped bss is folded into initialised data, so the new
/// header has `a_bss == 0`.
pub fn undump(executable: &[u8], core: &[u8]) -> Result<Vec<u8>, UndumpError> {
    let exe: Executable = parse_executable(executable).map_err(UndumpError::Aout)?;
    let core = CoreFile::decode(core).map_err(UndumpError::Core)?;
    let expected = exe.header.a_data as usize + exe.header.a_bss as usize;
    if core.data.len() != expected {
        return Err(UndumpError::SizeMismatch {
            core_data: core.data.len(),
            exe_data_bss: expected,
        });
    }
    Ok(crate::header::encode_executable(
        &exe.text,
        &core.data,
        0,
        exe.header.a_entry,
        exe.isa(),
    ))
}

/// Why `undump` refused to combine its inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UndumpError {
    /// The executable did not parse.
    Aout(AoutError),
    /// The core did not parse.
    Core(CoreError),
    /// The core's data segment does not match the executable's data+bss.
    SizeMismatch {
        /// Bytes of data in the core.
        core_data: usize,
        /// Bytes of data+bss the executable expects.
        exe_data_bss: usize,
    },
}

impl core::fmt::Display for UndumpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UndumpError::Aout(e) => write!(f, "executable: {e}"),
            UndumpError::Core(e) => write!(f, "core: {e}"),
            UndumpError::SizeMismatch {
                core_data,
                exe_data_bss,
            } => write!(
                f,
                "core data ({core_data} bytes) does not match executable data+bss ({exe_data_bss} bytes)"
            ),
        }
    }
}

impl std::error::Error for UndumpError {}

/// Helper: the ISA level of an executable file without a full parse.
pub fn required_isa(executable: &[u8]) -> Result<IsaLevel, AoutError> {
    crate::header::AoutHeader::decode(executable)?.isa()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::encode_object;
    use m68vm::{assemble, Cpu, StepEvent};

    fn counting_program() -> Vec<u8> {
        encode_object(
            &assemble(
                r"
            start:  add.l   #1, counter
                    move.l  counter, d0
                    trap    #0
                    .data
            counter:.long   0
            ",
            )
            .unwrap(),
        )
    }

    fn run_once(file: &[u8]) -> (u32, CoreFile) {
        let exe = parse_executable(file).unwrap();
        let mut mem = exe.to_memory();
        let mut cpu = Cpu::at_entry(exe.header.a_entry);
        loop {
            match cpu.step(&mut mem, m68vm::IsaLevel::Isa2) {
                StepEvent::Executed { .. } => {}
                StepEvent::Trap { .. } => break,
                StepEvent::Faulted(f) => panic!("fault {f:?}"),
            }
        }
        let core = CoreFile {
            regs: cpu.to_regs(),
            data: mem.data().to_vec(),
            stack: mem.stack_from(cpu.sp()).unwrap().to_vec(),
        };
        (cpu.d[0], core)
    }

    #[test]
    fn core_round_trip() {
        let (_, core) = run_once(&counting_program());
        let bytes = core.encode();
        let back = CoreFile::decode(&bytes).unwrap();
        assert_eq!(core, back);
    }

    #[test]
    fn corrupt_core_rejected() {
        let (_, core) = run_once(&counting_program());
        let mut bytes = core.encode();
        bytes[0] = 0xff;
        assert!(matches!(
            CoreFile::decode(&bytes),
            Err(CoreError::BadMagic(_))
        ));
        let bytes = core.encode();
        assert_eq!(
            CoreFile::decode(&bytes[..bytes.len() - 1]),
            Err(CoreError::Truncated)
        );
    }

    #[test]
    fn undump_preserves_static_state() {
        let exe = counting_program();
        // First run: counter goes 0 -> 1.
        let (v1, core) = run_once(&exe);
        assert_eq!(v1, 1);
        // Undump and run again: counter continues 1 -> 2, "restarted from
        // the beginning, except that all static variables are initialised
        // to the values that they had when the process was killed".
        let merged = undump(&exe, &core.encode()).unwrap();
        let (v2, core2) = run_once(&merged);
        assert_eq!(v2, 2);
        // And it chains.
        let merged2 = undump(&merged, &core2.encode()).unwrap();
        let (v3, _) = run_once(&merged2);
        assert_eq!(v3, 3);
    }

    #[test]
    fn undump_size_mismatch_rejected() {
        let exe = counting_program();
        let (_, mut core) = run_once(&exe);
        core.data.push(0);
        assert!(matches!(
            undump(&exe, &core.encode()),
            Err(UndumpError::SizeMismatch { .. })
        ));
    }
}
