//! The classic a.out exec header and whole-file executable codec.

use m68vm::{IsaLevel, Object};

/// OMAGIC: text is not write-protected by the original loaders; we keep
/// text read-only regardless, but the magic value is the traditional 0407.
pub const OMAGIC: u16 = 0o407;

/// Length of the encoded header in bytes: eight big-endian 32-bit words.
pub const AOUT_HEADER_LEN: usize = 32;

/// Machine id for the baseline ISA (Sun's `M_68010 == 1`).
pub const MID_ISA1: u16 = 1;
/// Machine id for the superset ISA (Sun's `M_68020 == 2`).
pub const MID_ISA2: u16 = 2;

/// An a.out parsing/validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AoutError {
    /// The file is shorter than its header claims.
    Truncated,
    /// The magic word is not OMAGIC.
    BadMagic(u16),
    /// The machine id names no known ISA level.
    BadMachine(u16),
    /// The entry point lies outside the text segment.
    BadEntry(u32),
}

impl core::fmt::Display for AoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AoutError::Truncated => write!(f, "a.out file truncated"),
            AoutError::BadMagic(m) => write!(f, "bad a.out magic {m:#o}"),
            AoutError::BadMachine(m) => write!(f, "unknown a.out machine id {m}"),
            AoutError::BadEntry(e) => write!(f, "entry point {e:#x} outside text"),
        }
    }
}

impl std::error::Error for AoutError {}

/// The 4.3BSD/SunOS `struct exec`, big-endian on disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AoutHeader {
    /// Machine id (upper half of the first word on SunOS).
    pub a_machtype: u16,
    /// Magic number (lower half of the first word).
    pub a_magic: u16,
    /// Size of the text segment in bytes.
    pub a_text: u32,
    /// Size of the initialised data segment in bytes.
    pub a_data: u32,
    /// Size of the zero-filled bss in bytes.
    pub a_bss: u32,
    /// Size of the symbol table in bytes (always zero here).
    pub a_syms: u32,
    /// Entry point virtual address.
    pub a_entry: u32,
    /// Size of text relocation (always zero: images are pre-linked).
    pub a_trsize: u32,
    /// Size of data relocation (always zero).
    pub a_drsize: u32,
}

impl AoutHeader {
    /// Builds a header for the given segment sizes and ISA requirement.
    pub fn new(text: u32, data: u32, bss: u32, entry: u32, isa: IsaLevel) -> AoutHeader {
        AoutHeader {
            a_machtype: match isa {
                IsaLevel::Isa1 => MID_ISA1,
                IsaLevel::Isa2 => MID_ISA2,
            },
            a_magic: OMAGIC,
            a_text: text,
            a_data: data,
            a_bss: bss,
            a_syms: 0,
            a_entry: entry,
            a_trsize: 0,
            a_drsize: 0,
        }
    }

    /// The ISA level this executable requires.
    pub fn isa(&self) -> Result<IsaLevel, AoutError> {
        match self.a_machtype {
            MID_ISA1 => Ok(IsaLevel::Isa1),
            MID_ISA2 => Ok(IsaLevel::Isa2),
            m => Err(AoutError::BadMachine(m)),
        }
    }

    /// Serialises the header to its 32 on-disk bytes.
    pub fn encode(&self) -> [u8; AOUT_HEADER_LEN] {
        let mut out = [0u8; AOUT_HEADER_LEN];
        let word0 = ((self.a_machtype as u32) << 16) | self.a_magic as u32;
        let words = [
            word0,
            self.a_text,
            self.a_data,
            self.a_bss,
            self.a_syms,
            self.a_entry,
            self.a_trsize,
            self.a_drsize,
        ];
        for (i, w) in words.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Parses and validates the header from the front of a file.
    pub fn decode(bytes: &[u8]) -> Result<AoutHeader, AoutError> {
        if bytes.len() < AOUT_HEADER_LEN {
            return Err(AoutError::Truncated);
        }
        let word = |i: usize| {
            u32::from_be_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ])
        };
        let w0 = word(0);
        let header = AoutHeader {
            a_machtype: (w0 >> 16) as u16,
            a_magic: (w0 & 0xffff) as u16,
            a_text: word(1),
            a_data: word(2),
            a_bss: word(3),
            a_syms: word(4),
            a_entry: word(5),
            a_trsize: word(6),
            a_drsize: word(7),
        };
        if header.a_magic != OMAGIC {
            return Err(AoutError::BadMagic(header.a_magic));
        }
        header.isa()?;
        Ok(header)
    }
}

/// A fully parsed executable: header plus segment bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Executable {
    /// The validated header.
    pub header: AoutHeader,
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Initialised data segment bytes.
    pub data: Vec<u8>,
}

impl Executable {
    /// The ISA level required to run this image.
    pub fn isa(&self) -> IsaLevel {
        self.header.isa().expect("validated at parse time")
    }

    /// Builds a fresh memory image (data at its dumped values, bss
    /// zeroed, empty stack).
    pub fn to_memory(&self) -> m68vm::Memory {
        m68vm::Memory::new(self.text.clone(), self.data.clone(), self.header.a_bss)
    }
}

/// Encodes segments into a complete a.out file.
pub fn encode_executable(text: &[u8], data: &[u8], bss: u32, entry: u32, isa: IsaLevel) -> Vec<u8> {
    let header = AoutHeader::new(text.len() as u32, data.len() as u32, bss, entry, isa);
    let mut out = Vec::with_capacity(AOUT_HEADER_LEN + text.len() + data.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(text);
    out.extend_from_slice(data);
    out
}

/// Encodes an assembled [`Object`] into a complete a.out file.
pub fn encode_object(obj: &Object) -> Vec<u8> {
    encode_executable(
        &obj.text,
        &obj.data,
        obj.bss_len,
        obj.entry,
        obj.required_isa,
    )
}

/// Parses and validates a complete a.out file.
pub fn parse_executable(bytes: &[u8]) -> Result<Executable, AoutError> {
    let header = AoutHeader::decode(bytes)?;
    let text_start = AOUT_HEADER_LEN;
    let text_end = text_start + header.a_text as usize;
    let data_end = text_end + header.a_data as usize;
    if bytes.len() < data_end {
        return Err(AoutError::Truncated);
    }
    let text = bytes[text_start..text_end].to_vec();
    let data = bytes[text_end..data_end].to_vec();
    let text_base = m68vm::MemoryLayout::TEXT_BASE;
    if header.a_text > 0
        && (header.a_entry < text_base || header.a_entry >= text_base + header.a_text)
    {
        return Err(AoutError::BadEntry(header.a_entry));
    }
    Ok(Executable { header, text, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::assemble;

    fn sample() -> Object {
        assemble(
            r#"
            start:  move.l  counter, d0
                    trap    #0
                    .data
            counter:.long   123
            "#,
        )
        .unwrap()
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let h = AoutHeader::new(100, 200, 300, 0x1000, IsaLevel::Isa2);
        let bytes = h.encode();
        let back = AoutHeader::decode(&bytes).unwrap();
        assert_eq!(h, back);
        assert_eq!(back.isa().unwrap(), IsaLevel::Isa2);
    }

    #[test]
    fn magic_is_0407() {
        let h = AoutHeader::new(0, 0, 0, 0x1000, IsaLevel::Isa1);
        assert_eq!(h.a_magic, 0o407);
        let bytes = h.encode();
        // Second on-disk halfword is the magic.
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 0o407);
    }

    #[test]
    fn executable_round_trip() {
        let obj = sample();
        let file = encode_object(&obj);
        let exe = parse_executable(&file).unwrap();
        assert_eq!(exe.text, obj.text);
        assert_eq!(exe.data, obj.data);
        assert_eq!(exe.header.a_entry, obj.entry);
        assert_eq!(exe.isa(), IsaLevel::Isa1);
    }

    #[test]
    fn bad_magic_rejected() {
        let obj = sample();
        let mut file = encode_object(&obj);
        file[3] = 0; // Corrupt low byte of magic.
        assert!(matches!(
            parse_executable(&file),
            Err(AoutError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let obj = sample();
        let file = encode_object(&obj);
        assert_eq!(
            parse_executable(&file[..file.len() - 1]),
            Err(AoutError::Truncated)
        );
        assert_eq!(parse_executable(&file[..10]), Err(AoutError::Truncated));
    }

    #[test]
    fn unknown_machine_rejected() {
        let mut h = AoutHeader::new(0, 0, 0, 0x1000, IsaLevel::Isa1);
        h.a_machtype = 99;
        let bytes = h.encode();
        assert_eq!(AoutHeader::decode(&bytes), Err(AoutError::BadMachine(99)));
    }

    #[test]
    fn entry_outside_text_rejected() {
        let file = encode_executable(&[0u8; 8], &[], 0, 0x9999_0000, IsaLevel::Isa1);
        assert!(matches!(
            parse_executable(&file),
            Err(AoutError::BadEntry(_))
        ));
    }

    #[test]
    fn parsed_executable_runs() {
        use m68vm::{Cpu, IsaLevel, StepEvent};
        let obj = sample();
        let exe = parse_executable(&encode_object(&obj)).unwrap();
        let mut mem = exe.to_memory();
        let mut cpu = Cpu::at_entry(exe.header.a_entry);
        loop {
            match cpu.step(&mut mem, IsaLevel::Isa1) {
                StepEvent::Executed { .. } => {}
                StepEvent::Trap { .. } => break,
                StepEvent::Faulted(f) => panic!("fault {f:?}"),
            }
        }
        assert_eq!(cpu.d[0], 123);
    }
}
