//! Integration tests for the §8 applications.

use m68vm::{assemble, IsaLevel};
use pmig::workloads;
use simtime::SimDuration;
use sysdefs::{Credentials, Gid, Pid, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

#[test]
fn checkpointer_takes_snapshots_and_restore_resumes() {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("before ckpt\n");
    w.run_slices(20_000);
    assert!(handle.output_text().contains("R2 S2 K2"));

    // Take two snapshots, 5 simulated seconds apart.
    let plan = apps::CheckpointPlan {
        pid,
        interval_us: 5_000_000,
        count: 2,
        dir: "/u/ckpts".into(),
    };
    let plan2 = plan.clone();
    let daemon = w.spawn_native_proc(
        m,
        "checkpointd",
        Some(tty),
        alice(),
        Box::new(move |sys| match apps::run_checkpointer(sys, &plan2) {
            Ok((records, _final_pid)) => {
                assert_eq!(records.len(), 2);
                0
            }
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w.run_until_exit(m, daemon, 3_000_000).expect("daemon done");
    assert_eq!(info.status, 0, "checkpointer must succeed");

    // The archives exist.
    for n in 1..=2 {
        for f in ["a.out", "files", "stack"] {
            assert!(
                w.host_read_file(m, &format!("/u/ckpts/ckpt{n:03}/{f}"))
                    .is_ok(),
                "archive {n}/{f} missing"
            );
        }
    }
    // The surviving incarnation is still running; find and stop it.
    let live: Vec<Pid> = w
        .machine(m)
        .procs
        .values()
        .filter(|p| p.comm.starts_with("a.out"))
        .map(|p| p.pid)
        .collect();
    assert_eq!(live.len(), 1, "exactly one live incarnation");

    // Restore checkpoint 1 on a fresh terminal: the program resumes at
    // its dumped prompt with the counters it had then.
    let pid_at_dump = pid; // Checkpoint 1 dumped the original incarnation.
    let (tty2, handle2) = w.add_terminal(m);
    let restorer = w.spawn_native_proc(
        m,
        "restore",
        Some(tty2),
        alice(),
        Box::new(move |sys| {
            apps::restore_checkpoint(sys, "/u/ckpts", 1, pid_at_dump).as_u16() as u32
        }),
    );
    w.run_slices(100_000);
    handle2.type_input("after restore\n");
    w.run_slices(100_000);
    let out = handle2.output_text();
    assert!(
        out.contains("R3 S3 K3"),
        "restored from checkpoint 1 continues at the dumped state: {out:?}"
    );
    let _ = restorer;
}

#[test]
fn checkpoint_preserves_consistent_file_copies() {
    // The restored program must see the output file as it was at the
    // checkpoint, even though the live program kept appending afterwards.
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    handle.type_input("one\n");
    w.run_slices(20_000);

    let plan = apps::CheckpointPlan {
        pid,
        interval_us: 1_000_000,
        count: 1,
        dir: "/u/cc".into(),
    };
    let daemon = w.spawn_native_proc(
        m,
        "checkpointd",
        Some(tty),
        alice(),
        Box::new(move |sys| match apps::run_checkpointer(sys, &plan) {
            Ok(_) => 0,
            Err(e) => e.as_u16() as u32,
        }),
    );
    let info = w.run_until_exit(m, daemon, 3_000_000).expect("done");
    assert_eq!(info.status, 0);
    // Live program keeps appending through the (possibly new) terminal.
    let archived = w.host_read_file(m, "/u/cc/ckpt001/file00").unwrap();
    assert_eq!(
        String::from_utf8_lossy(&archived),
        "one\n",
        "the copy holds the checkpoint-time contents"
    );
}

#[test]
fn load_balancer_improves_makespan_on_unbalanced_cluster() {
    // Six CPU hogs on one of three machines: balanced vs unbalanced
    // completion time. The balanced run must finish significantly
    // earlier (who-wins shape; the exact factor depends on migration
    // overhead).
    fn build(n_jobs: u32) -> (World, Vec<Pid>) {
        let mut w = World::new(KernelConfig::paper());
        let a = w.add_machine("node0", IsaLevel::Isa1);
        let _b = w.add_machine("node1", IsaLevel::Isa1);
        let _c = w.add_machine("node2", IsaLevel::Isa1);
        let obj = assemble(&pmig::workloads::cpu_hog_program(120)).unwrap();
        w.install_program(a, "/bin/hog", &obj).unwrap();
        let pids = (0..n_jobs)
            .map(|_| w.spawn_vm_proc(a, "/bin/hog", None, alice()).unwrap())
            .collect();
        (w, pids)
    }
    let all_hogs_done = |w: &World| -> bool {
        (0..w.machine_count()).all(|m| {
            !w.machine(m)
                .procs
                .values()
                .any(|p| p.comm.contains("hog") || p.comm.starts_with("a.out"))
        })
    };

    // Unbalanced run.
    let (mut w1, _) = build(6);
    for _ in 0..200 {
        if all_hogs_done(&w1) {
            break;
        }
        let t = w1.machine(0).now + SimDuration::secs(2);
        w1.run_until_time(t, 10_000_000);
    }
    assert!(all_hogs_done(&w1), "unbalanced jobs finish");
    let unbalanced = w1.machine(0).now;

    // Balanced run.
    let (mut w2, _) = build(6);
    let lb = apps::LoadBalancer {
        min_age: SimDuration::millis(500),
        imbalance_threshold: 2,
        cred: Credentials::root(),
    };
    lb.run_balanced(&mut w2, 2_000_000, 200, all_hogs_done);
    assert!(all_hogs_done(&w2), "balanced jobs finish");
    let balanced = (0..3).map(|m| w2.machine(m).now).max().unwrap();

    assert!(
        balanced < unbalanced,
        "balancing must win: balanced {balanced}, unbalanced {unbalanced}"
    );
}

#[test]
fn daemon_migration_is_much_faster_than_rsh() {
    // A1 ablation: same remote->remote migration, rsh vs daemon.
    fn timed_migration(use_daemon: bool) -> SimDuration {
        let mut w = World::new(KernelConfig::paper());
        let brick = w.add_machine("brick", IsaLevel::Isa1);
        let schooner = w.add_machine("schooner", IsaLevel::Isa1);
        let obj = assemble(workloads::TEST_PROGRAM).unwrap();
        w.install_program(brick, "/bin/testprog", &obj).unwrap();
        let (tty, handle) = w.add_terminal(brick);
        let pid = w
            .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice())
            .unwrap();
        w.run_slices(20_000);
        handle.type_input("x\n");
        w.run_slices(20_000);
        // Issue the command from a third machine so both halves are
        // remote (the paper's worst case).
        let third = w.add_machine("third", IsaLevel::Isa1);
        let start = w.machine(third).now;
        let new_pid = if use_daemon {
            apps::migrated::migrate_via_daemon_scripted(
                &mut w,
                pid,
                brick,
                schooner,
                Credentials::root(),
            )
            .map(Some)
            .unwrap_or(None)
        } else {
            pmig::migrate_process(
                &mut w,
                pid,
                brick,
                schooner,
                third,
                None,
                Credentials::root(),
            )
            .map(Some)
            .unwrap_or(None)
        };
        assert!(new_pid.is_some(), "migration must succeed");
        w.machine(third)
            .now
            .since(start)
            .max(w.machine(schooner).now.since(start))
    }
    let rsh_time = timed_migration(false);
    let daemon_time = timed_migration(true);
    assert!(
        rsh_time > daemon_time.times(3),
        "daemon must be several times faster: rsh {rsh_time}, daemon {daemon_time}"
    );
}

#[test]
fn nightbatch_spreads_jobs_at_night() {
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("node0", IsaLevel::Isa1);
    let _b = w.add_machine("node1", IsaLevel::Isa1);
    let _c = w.add_machine("node2", IsaLevel::Isa1);
    let obj = assemble(&pmig::workloads::cpu_hog_program(2000)).unwrap();
    w.install_program(a, "/bin/hog", &obj).unwrap();
    let mut batch = apps::NightBatch::new(a);
    let mut pids = Vec::new();
    for _ in 0..3 {
        let pid = w.spawn_vm_proc(a, "/bin/hog", None, alice()).unwrap();
        batch.submit(&mut w, pid);
        pids.push(pid);
    }
    // During the day the jobs are stopped.
    let t = w.machine(a).now + SimDuration::secs(5);
    w.run_until_time(t, 1_000_000);
    for pid in &pids {
        assert!(
            !w.finished.contains_key(&(a, pid.as_u32())),
            "stopped jobs make no progress during the day"
        );
    }
    // Nightfall: one job per machine.
    let placements = batch.nightfall(&mut w);
    assert_eq!(placements.len(), 3);
    let machines: std::collections::BTreeSet<usize> =
        placements.iter().map(|(_, m, _)| *m).collect();
    assert_eq!(machines.len(), 3, "jobs spread across all machines");
    // They all finish.
    for (_, m, pid) in &placements {
        assert!(
            w.run_until_exit(*m, *pid, 10_000_000).is_some(),
            "job on machine {m} finishes"
        );
    }
}
