//! `migrate` over the migration daemon (§6.4's proposed improvement).
//!
//! "Since the problem lies with the application and not with the process
//! migration mechanism, it is always possible to write a better
//! application which, by use of a UNIX daemon process and a well known
//! port can achieve more satisfactory results: instead of using rsh to
//! start processes remotely, applications will simply send messages to
//! the daemon, who will start the processes on their behalf."

use pmig::commands::{migrate_with, report_survivor, RemoteRunner};
use sysdefs::{Credentials, Pid, SysResult};
use ukernel::{MachineId, Sys, World};

/// The daemon-based `migrate`: identical logic to
/// [`pmig::commands::migrate`] — the same failure-atomic engine, with
/// the same dump verification, retries and cleanup — but remote halves
/// go through one daemon message instead of an `rsh` session.
///
/// Returns the restart step's exit status.
pub fn migrate_via_daemon(sys: &Sys, pid: Pid, from_host: &str, to_host: &str) -> SysResult<u32> {
    let out = migrate_with(sys, pid, from_host, to_host, RemoteRunner::Daemon)?;
    report_survivor(sys, &out, from_host, to_host);
    Ok(out.status)
}

/// World-level wrapper: runs [`migrate_via_daemon`] as a process on the
/// destination machine and returns the restored pid there.
pub fn migrate_via_daemon_scripted(
    world: &mut World,
    victim: Pid,
    from: MachineId,
    to: MachineId,
    cred: Credentials,
) -> Result<Pid, pmig::MigrationError> {
    let from_name = world.machine(from).name.clone();
    let to_name = world.machine(to).name.clone();
    let cmd = world.spawn_native_proc(
        to,
        "migrated",
        None,
        cred,
        Box::new(
            move |sys| match migrate_via_daemon(sys, victim, &from_name, &to_name) {
                Ok(status) => status,
                Err(e) => e.as_u16() as u32,
            },
        ),
    );
    let info = world
        .run_until_exit(to, cmd, 4_000_000)
        .ok_or(pmig::MigrationError::CommandHung)?;
    if info.status != 0 {
        return Err(pmig::MigrationError::Failed(info.status));
    }
    pmig::find_restarted(world, to, victim).ok_or(pmig::MigrationError::NotRestarted)
}
