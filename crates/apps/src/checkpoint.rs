//! Process checkpointing (§8).
//!
//! "If we have a program that has been running for a long time and for
//! which it would be undesirable to have it restarted from the beginning
//! in case of a system crash, we may write an application to take
//! periodic snapshots of it and save those snapshots by moving them to a
//! directory managed by the application ... which would then allow us to
//! restart a program at its n-th checkpoint. The application should also
//! make copies of all files that were open when the process was
//! checkpointed, so that if the actual files were modified after the
//! checkpoint, the copies can be used instead of the modified ones, thus
//! presenting a consistent view of the files to the checkpointed
//! program."
//!
//! A checkpoint is taken by dumping the process (`dumpproc`), archiving
//! the three dump files plus a copy of every open regular file, and
//! immediately restarting the process locally so it keeps running.

use dumpfmt::{dump_file_names, FdRecord, FilesFile};
use pmig::commands::{dumpproc, restart, RestartArgs};
use sysdefs::{Errno, OpenFlags, Pid, SysResult};
use ukernel::Sys;

/// What and how to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointPlan {
    /// The process to snapshot (its pid at the time the checkpointer
    /// starts; it changes at every snapshot because a snapshot is a
    /// dump + restart).
    pub pid: Pid,
    /// Snapshot period in simulated micro-seconds.
    pub interval_us: u64,
    /// How many snapshots to take.
    pub count: u32,
    /// The directory managed by the application.
    pub dir: String,
}

/// One archived snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Snapshot index (1-based).
    pub n: u32,
    /// Pid the process had when this snapshot was taken.
    pub pid_at_dump: Pid,
    /// Archive directory of this snapshot.
    pub dir: String,
}

fn copy_file(sys: &Sys, from: &str, to: &str) -> SysResult<u64> {
    let src = sys.open(from, OpenFlags::RDONLY.bits(), 0)?;
    let data = sys.read_all(src)?;
    sys.close(src)?;
    let dst = sys.creat(to, 0o600)?;
    sys.write(dst, &data)?;
    sys.close(dst)?;
    Ok(data.len() as u64)
}

fn archive_dir(base: &str, n: u32) -> String {
    format!("{base}/ckpt{n:03}")
}

/// Takes one snapshot of `pid`: dump, archive, restart. Returns the pid
/// of the restarted incarnation.
pub fn snapshot_once(sys: &Sys, pid: Pid, dir: &str, n: u32) -> SysResult<Pid> {
    dumpproc(sys, pid)?;
    let names = dump_file_names(pid);
    let adir = archive_dir(dir, n);
    sys.mkdir(&adir, 0o700).ok();

    // Archive the three dump files under stable names.
    copy_file(sys, &names.a_out, &format!("{adir}/a.out"))?;
    copy_file(sys, &names.stack, &format!("{adir}/stack"))?;

    // Copy every open regular file next to them and record a files file
    // whose paths point at the copies — the "consistent view".
    let fd = sys.open(&names.files, OpenFlags::RDONLY.bits(), 0)?;
    let bytes = sys.read_all(fd)?;
    sys.close(fd)?;
    let mut files = FilesFile::decode(&bytes).map_err(|_| Errno::EINVAL)?;
    let mut copies = 0u32;
    for record in &mut files.fds {
        if let FdRecord::File { path, .. } = record {
            if path.starts_with("/dev/") {
                continue;
            }
            let copy_name = format!("{adir}/file{copies:02}");
            if copy_file(sys, path, &copy_name).is_ok() {
                *path = copy_name;
                copies += 1;
            }
        }
    }
    let bytes = files.encode().map_err(|_| Errno::EINVAL)?;
    let fd = sys.creat(&format!("{adir}/files"), 0o600)?;
    sys.write(fd, &bytes)?;
    sys.close(fd)?;

    // Restart the process locally so it keeps running.
    let args = RestartArgs {
        pid,
        dump_host: None,
        demand: false,
    };
    let (status, child) =
        sys.run_local_pid("restart", move |s| restart(s, &args).as_u16() as u32)?;
    if status != 0 {
        return Err(Errno::EIO);
    }
    child.ok_or(Errno::EIO)
}

/// The checkpointer daemon body: takes [`CheckpointPlan::count`]
/// snapshots, one per interval, and returns the records plus the final
/// incarnation's pid.
pub fn run_checkpointer(
    sys: &Sys,
    plan: &CheckpointPlan,
) -> SysResult<(Vec<CheckpointRecord>, Pid)> {
    sys.mkdir(&plan.dir, 0o700).ok();
    let mut pid = plan.pid;
    let mut records = Vec::new();
    for n in 1..=plan.count {
        sys.sleep_us(plan.interval_us)?;
        let new_pid = snapshot_once(sys, pid, &plan.dir, n)?;
        records.push(CheckpointRecord {
            n,
            pid_at_dump: pid,
            dir: archive_dir(&plan.dir, n),
        });
        pid = new_pid;
    }
    Ok((records, pid))
}

/// Restores the `n`-th checkpoint from `dir`: copies the archived open
/// files back over the originals? No — the archived `files` file already
/// points at the copies, so the restored program reads the snapshot's
/// consistent view directly. The caller's process is overlaid.
///
/// Never returns on success (the caller becomes the restored program);
/// the error is returned otherwise.
pub fn restore_checkpoint(sys: &Sys, dir: &str, n: u32, pid_at_dump: Pid) -> Errno {
    let adir = archive_dir(dir, n);
    // Recreate the /usr/tmp dump files the restart command expects,
    // using the archived (consistent) versions.
    let names = dump_file_names(pid_at_dump);
    if let Err(e) = copy_file(sys, &format!("{adir}/a.out"), &names.a_out) {
        return e;
    }
    if let Err(e) = copy_file(sys, &format!("{adir}/stack"), &names.stack) {
        return e;
    }
    if let Err(e) = copy_file(sys, &format!("{adir}/files"), &names.files) {
        return e;
    }
    restart(
        sys,
        &RestartArgs {
            pid: pid_at_dump,
            dump_host: None,
            demand: false,
        },
    )
}
