//! Load balancing (§8).
//!
//! "CPU bound jobs can be moved from busy nodes of the network to others
//! that are idle, or have a much smaller load. Candidates for migration
//! can be best selected from the processes that have been running for
//! more than a certain amount of time. This will ensure that there is a
//! high probability that the candidate program will keep running for
//! some time, and that it is worth paying the overhead of moving it to
//! another machine."
//!
//! The balancer is a world-level orchestrator (a "systemwide
//! application"): it inspects per-machine run-queue lengths, picks aged
//! VM processes on the busiest machine, and moves them to the least
//! loaded one with the real `dumpproc`/`restart` commands — via the
//! migration daemon, because "in the case of load balancing, the migrate
//! application may be too slow in terms of real time response".

use simtime::SimDuration;
use sysdefs::{Credentials, Pid};
use ukernel::{Body, MachineId, ProcState, World};

use crate::migrated::migrate_via_daemon_scripted;

/// One completed migration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Source machine.
    pub from: MachineId,
    /// Destination machine.
    pub to: MachineId,
    /// Pid on the source.
    pub old_pid: Pid,
    /// Pid on the destination.
    pub new_pid: Pid,
}

/// The balancing policy.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    /// Minimum age before a process is a migration candidate.
    pub min_age: SimDuration,
    /// Minimum run-queue-length difference between the busiest and the
    /// idlest machine before a migration is worthwhile.
    pub imbalance_threshold: usize,
    /// Credentials the balancer acts with (the superuser, normally).
    pub cred: Credentials,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        LoadBalancer {
            min_age: SimDuration::secs(2),
            imbalance_threshold: 2,
            cred: Credentials::root(),
        }
    }
}

impl LoadBalancer {
    /// Counts the runnable VM jobs on a machine (the load metric).
    pub fn load_of(world: &World, mid: MachineId) -> usize {
        world
            .machine(mid)
            .procs
            .values()
            .filter(|p| matches!(p.body, Body::Vm(_)) && matches!(p.state, ProcState::Runnable))
            .count()
    }

    /// Picks the oldest eligible candidate on `mid`.
    pub fn pick_candidate(&self, world: &World, mid: MachineId) -> Option<Pid> {
        let m = world.machine(mid);
        let now = m.now;
        m.procs
            .values()
            .filter(|p| {
                matches!(p.body, Body::Vm(_))
                    && matches!(p.state, ProcState::Runnable)
                    && now.since(p.start_time) >= self.min_age
            })
            .min_by_key(|p| p.start_time)
            .map(|p| p.pid)
    }

    /// Performs at most one balancing migration; returns its record.
    pub fn balance_once(&self, world: &mut World) -> Option<MigrationRecord> {
        let n = world.machine_count();
        let loads: Vec<usize> = (0..n).map(|m| Self::load_of(world, m)).collect();
        let (busiest, &max) = loads.iter().enumerate().max_by_key(|&(_, l)| l)?;
        let (idlest, &min) = loads.iter().enumerate().min_by_key(|&(_, l)| l)?;
        if max.saturating_sub(min) < self.imbalance_threshold {
            return None;
        }
        let candidate = self.pick_candidate(world, busiest)?;
        let new_pid =
            migrate_via_daemon_scripted(world, candidate, busiest, idlest, self.cred.clone())
                .ok()?;
        Some(MigrationRecord {
            from: busiest,
            to: idlest,
            old_pid: candidate,
            new_pid,
        })
    }

    /// Runs the world while balancing every `period_us`, until all the
    /// watched pids have finished (on any machine) or the slice budget
    /// runs out. Returns the migrations performed.
    pub fn run_balanced(
        &self,
        world: &mut World,
        period_us: u64,
        max_rounds: u32,
        all_done: impl Fn(&World) -> bool,
    ) -> Vec<MigrationRecord> {
        let mut records = Vec::new();
        for _ in 0..max_rounds {
            if all_done(world) {
                break;
            }
            let deadline = (0..world.machine_count())
                .map(|m| world.machine(m).now)
                .max()
                .unwrap_or_default()
                + SimDuration::micros(period_us);
            world.run_until_time(deadline, 5_000_000);
            if let Some(r) = self.balance_once(world) {
                records.push(r);
            }
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::{assemble, IsaLevel};
    use sysdefs::{Gid, Uid};
    use ukernel::KernelConfig;

    fn cluster_with_hogs(n: u32) -> (World, MachineId) {
        let mut w = World::new(KernelConfig::paper());
        let a = w.add_machine("node0", IsaLevel::Isa1);
        let _ = w.add_machine("node1", IsaLevel::Isa1);
        let obj = assemble(&pmig::workloads::cpu_hog_program(400)).unwrap();
        w.install_program(a, "/bin/hog", &obj).unwrap();
        for _ in 0..n {
            w.spawn_vm_proc(a, "/bin/hog", None, Credentials::user(Uid(1), Gid(1)))
                .unwrap();
        }
        (w, a)
    }

    #[test]
    fn load_of_counts_runnable_vm_jobs() {
        let (w, a) = cluster_with_hogs(4);
        assert_eq!(LoadBalancer::load_of(&w, a), 4);
        assert_eq!(LoadBalancer::load_of(&w, 1), 0);
    }

    #[test]
    fn candidates_respect_min_age() {
        let (mut w, a) = cluster_with_hogs(2);
        let lb = LoadBalancer {
            min_age: SimDuration::secs(1),
            ..LoadBalancer::default()
        };
        // Immediately after spawn nothing is old enough.
        assert!(lb.pick_candidate(&w, a).is_none());
        // After a second of running, the oldest job qualifies.
        let t = w.machine(a).now + SimDuration::millis(1_200);
        w.run_until_time(t, 1_000_000);
        let c = lb.pick_candidate(&w, a).expect("aged candidate");
        // The oldest (smallest start time) is picked: that is the first
        // spawned pid.
        assert_eq!(c, Pid(2));
    }

    #[test]
    fn balance_noop_below_threshold() {
        let (mut w, a) = cluster_with_hogs(1);
        let t = w.machine(a).now + SimDuration::secs(1);
        w.run_until_time(t, 1_000_000);
        let lb = LoadBalancer {
            min_age: SimDuration::millis(1),
            imbalance_threshold: 2,
            cred: Credentials::root(),
        };
        assert!(
            lb.balance_once(&mut w).is_none(),
            "one job on one machine is not an imbalance worth a migration"
        );
    }
}
