//! The paper's §8 applications, built on the migration mechanism:
//!
//! * [`checkpoint`] — periodic snapshots of a long-running process, with
//!   copies of its open files for a consistent restore at the n-th
//!   checkpoint;
//! * [`loadbal`] — a load balancer that moves long-running CPU-bound
//!   jobs from busy machines to idle ones;
//! * [`nightbatch`] — the "CPU hogs" day/night scheduler: jobs are kept
//!   stopped (or on one machine) during the day and spread across the
//!   network at night;
//! * [`migrated`] — `migrate` rebuilt on the §6.4 daemon proposal
//!   instead of `rsh`, for the A1 ablation.
//!
//! The paper lists these as applications one *could* build ("another
//! interesting subject for future work is to implement one of the
//! applications described in Section 8"); implementing them is part of
//! this reproduction's extension scope, and the ablation benches measure
//! them.

pub mod checkpoint;
pub mod loadbal;
pub mod migrated;
pub mod nightbatch;
pub mod policy;

pub use checkpoint::{restore_checkpoint, run_checkpointer, CheckpointPlan, CheckpointRecord};
pub use loadbal::{LoadBalancer, MigrationRecord};
pub use migrated::migrate_via_daemon;
pub use nightbatch::NightBatch;
pub use policy::{Decision, FirstTouch, LoadGradient, MigrationPolicy, PolicyEngine, Random};
