//! Pluggable migration policies.
//!
//! §8's load balancer hard-wires one placement strategy (move the
//! oldest job from the busiest machine to the idlest). Real clusters
//! mix strategies — Migration-Profiler-style tooling swaps them per
//! workload — so the decision logic is factored behind
//! [`MigrationPolicy`]: a policy looks at the world and proposes at
//! most one migration per round; the [`PolicyEngine`] executes the
//! proposal with the real daemon-scripted `dumpproc`/`restart` pipeline
//! and handles per-candidate failure by *evicting* the candidate (the
//! moral equivalent of dropping a profiled pid on `ESRCH`: a process
//! that vanished or refused to move once is not retried every round).
//!
//! Three built-in policies:
//!
//! * [`LoadGradient`] — the paper's strategy, bit-compatible with
//!   [`crate::loadbal::LoadBalancer`]'s selection;
//! * [`FirstTouch`] — locality-flavored: the destination is the first
//!   less-loaded machine scanning outward from the source, so jobs move
//!   as little as possible;
//! * [`Random`] — seeded random source/victim/destination, the classic
//!   baseline a smarter policy must beat.

use simtime::SimDuration;
use std::collections::BTreeSet;
use sysdefs::{Credentials, Pid};
use ukernel::{Body, MachineId, ProcState, World};

use crate::loadbal::{LoadBalancer, MigrationRecord};
use crate::migrated::migrate_via_daemon_scripted;

/// One proposed migration: move `victim` from `from` to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Pid on the source machine.
    pub victim: Pid,
    /// Source machine.
    pub from: MachineId,
    /// Destination machine.
    pub to: MachineId,
}

/// A placement strategy: inspect the world, propose at most one
/// migration. Policies must skip candidates in `evicted` (pids the
/// engine failed to move before) and must be deterministic given the
/// world state — any randomness comes from owned, seeded generators.
pub trait MigrationPolicy {
    /// Short name, used in benchmark output.
    fn name(&self) -> &'static str;
    /// Proposes the next migration, or `None` to sit this round out.
    fn decide(&mut self, world: &World, evicted: &BTreeSet<(MachineId, u32)>) -> Option<Decision>;
}

/// The oldest process on `mid` that is runnable, VM-bodied, at least
/// `min_age` old and not evicted — [`LoadBalancer::pick_candidate`]
/// plus the eviction filter.
fn aged_candidate(
    world: &World,
    mid: MachineId,
    min_age: SimDuration,
    evicted: &BTreeSet<(MachineId, u32)>,
) -> Option<Pid> {
    let m = world.machine(mid);
    let now = m.now;
    m.procs
        .values()
        .filter(|p| {
            matches!(p.body, Body::Vm(_))
                && matches!(p.state, ProcState::Runnable)
                && now.since(p.start_time) >= min_age
                && !evicted.contains(&(mid, p.pid.as_u32()))
        })
        .min_by_key(|p| p.start_time)
        .map(|p| p.pid)
}

/// The paper's strategy: busiest machine to idlest machine, oldest
/// aged job, only when the load gap clears a threshold. Selection is
/// deliberately identical to [`LoadBalancer::balance_once`] — including
/// `max_by_key` keeping the *last* maximum and `min_by_key` the *first*
/// minimum — so the engine running this policy reproduces the original
/// balancer's trajectory.
#[derive(Clone, Debug)]
pub struct LoadGradient {
    /// Minimum age before a process is a migration candidate.
    pub min_age: SimDuration,
    /// Minimum busiest-to-idlest load difference worth a migration.
    pub imbalance_threshold: usize,
}

impl Default for LoadGradient {
    fn default() -> Self {
        let lb = LoadBalancer::default();
        LoadGradient {
            min_age: lb.min_age,
            imbalance_threshold: lb.imbalance_threshold,
        }
    }
}

impl MigrationPolicy for LoadGradient {
    fn name(&self) -> &'static str {
        "load-gradient"
    }

    fn decide(&mut self, world: &World, evicted: &BTreeSet<(MachineId, u32)>) -> Option<Decision> {
        let n = world.machine_count();
        let loads: Vec<usize> = (0..n).map(|m| LoadBalancer::load_of(world, m)).collect();
        let (busiest, &max) = loads.iter().enumerate().max_by_key(|&(_, l)| l)?;
        let (idlest, &min) = loads.iter().enumerate().min_by_key(|&(_, l)| l)?;
        if max.saturating_sub(min) < self.imbalance_threshold {
            return None;
        }
        let victim = aged_candidate(world, busiest, self.min_age, evicted)?;
        Some(Decision {
            victim,
            from: busiest,
            to: idlest,
        })
    }
}

/// Locality-first placement: take the busiest machine's oldest job, but
/// send it to the *nearest* machine (scanning outward from the source,
/// wrapping) whose load is at least the threshold below the source's —
/// jobs stay close to where they first ran instead of all piling onto
/// the single idlest host.
#[derive(Clone, Debug)]
pub struct FirstTouch {
    /// Minimum age before a process is a migration candidate.
    pub min_age: SimDuration,
    /// Minimum source-to-destination load difference worth a migration.
    pub imbalance_threshold: usize,
}

impl Default for FirstTouch {
    fn default() -> Self {
        let g = LoadGradient::default();
        FirstTouch {
            min_age: g.min_age,
            imbalance_threshold: g.imbalance_threshold,
        }
    }
}

impl MigrationPolicy for FirstTouch {
    fn name(&self) -> &'static str {
        "first-touch"
    }

    fn decide(&mut self, world: &World, evicted: &BTreeSet<(MachineId, u32)>) -> Option<Decision> {
        let n = world.machine_count();
        let loads: Vec<usize> = (0..n).map(|m| LoadBalancer::load_of(world, m)).collect();
        let (busiest, &max) = loads.iter().enumerate().max_by_key(|&(_, l)| l)?;
        let to = (1..n)
            .map(|d| (busiest + d) % n)
            .find(|&m| max.saturating_sub(loads[m]) >= self.imbalance_threshold)?;
        let victim = aged_candidate(world, busiest, self.min_age, evicted)?;
        Some(Decision {
            victim,
            from: busiest,
            to,
        })
    }
}

/// Seeded random placement (splitmix64, no host entropy): a random
/// source among machines with an eligible candidate, its oldest aged
/// job, and a random destination other than the source. The baseline
/// policy — and a stress generator, since it migrates without looking
/// at loads at all.
#[derive(Clone, Debug)]
pub struct Random {
    /// Minimum age before a process is a migration candidate.
    pub min_age: SimDuration,
    state: u64,
}

impl Random {
    /// A policy drawing from the given seed.
    pub fn seeded(seed: u64) -> Random {
        Random {
            min_age: LoadGradient::default().min_age,
            state: seed,
        }
    }

    fn next(&mut self) -> u64 {
        // splitmix64: tiny, well-distributed, and owned by the policy,
        // so runs are reproducible from the seed alone.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl MigrationPolicy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn decide(&mut self, world: &World, evicted: &BTreeSet<(MachineId, u32)>) -> Option<Decision> {
        let n = world.machine_count();
        if n < 2 {
            return None;
        }
        let sources: Vec<(MachineId, Pid)> = (0..n)
            .filter_map(|m| aged_candidate(world, m, self.min_age, evicted).map(|p| (m, p)))
            .collect();
        if sources.is_empty() {
            return None;
        }
        let (from, victim) = sources[(self.next() % sources.len() as u64) as usize];
        let mut to = (self.next() % (n as u64 - 1)) as usize;
        if to >= from {
            to += 1;
        }
        Some(Decision { victim, from, to })
    }
}

/// Executes a policy's decisions with the real migration pipeline and
/// Migration-Profiler-style per-candidate error handling: a victim the
/// pipeline fails on (vanished mid-dump, restart refused, command hung)
/// is evicted and never proposed again, instead of wedging the balancer
/// in a retry loop.
pub struct PolicyEngine<P: MigrationPolicy> {
    /// The placement strategy.
    pub policy: P,
    /// Credentials migrations run with (the superuser, normally).
    pub cred: Credentials,
    /// Candidates struck off after a failed migration.
    pub evicted: BTreeSet<(MachineId, u32)>,
    /// Completed migrations, in order.
    pub records: Vec<MigrationRecord>,
    /// Failed migration attempts (each one evicted a candidate).
    pub failures: u64,
}

impl<P: MigrationPolicy> PolicyEngine<P> {
    /// An engine acting as the superuser.
    pub fn new(policy: P) -> PolicyEngine<P> {
        PolicyEngine {
            policy,
            cred: Credentials::root(),
            evicted: BTreeSet::new(),
            records: Vec::new(),
            failures: 0,
        }
    }

    /// One decide-and-execute round. Returns the completed migration,
    /// if the policy proposed one and the pipeline delivered it.
    pub fn step(&mut self, world: &mut World) -> Option<MigrationRecord> {
        let d = self.policy.decide(world, &self.evicted)?;
        match migrate_via_daemon_scripted(world, d.victim, d.from, d.to, self.cred.clone()) {
            Ok(new_pid) => {
                let rec = MigrationRecord {
                    from: d.from,
                    to: d.to,
                    old_pid: d.victim,
                    new_pid,
                };
                self.records.push(rec.clone());
                Some(rec)
            }
            Err(_) => {
                // The candidate is gone or refuses to move: strike it
                // off rather than retrying it every round.
                self.failures += 1;
                self.evicted.insert((d.from, d.victim.as_u32()));
                None
            }
        }
    }

    /// Runs the world while deciding every `period_us` of simulated
    /// time, for at most `max_rounds` rounds or until `all_done`.
    /// Returns the number of completed migrations.
    pub fn run(
        &mut self,
        world: &mut World,
        period_us: u64,
        max_rounds: u32,
        all_done: impl Fn(&World) -> bool,
    ) -> usize {
        let before = self.records.len();
        for _ in 0..max_rounds {
            if all_done(world) {
                break;
            }
            let deadline = (0..world.machine_count())
                .map(|m| world.machine(m).now)
                .max()
                .unwrap_or_default()
                + SimDuration::micros(period_us);
            world.run_until_time(deadline, 5_000_000);
            self.step(world);
        }
        self.records.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::{assemble, IsaLevel};
    use sysdefs::{Gid, Uid};
    use ukernel::KernelConfig;

    fn cluster_with_hogs(machines: usize, hogs: u32) -> World {
        let mut w = World::new(KernelConfig::paper());
        for i in 0..machines {
            w.add_machine(&format!("node{i}"), IsaLevel::Isa1);
        }
        let obj = assemble(&pmig::workloads::cpu_hog_program(400)).unwrap();
        w.install_program(0, "/bin/hog", &obj).unwrap();
        for _ in 0..hogs {
            w.spawn_vm_proc(0, "/bin/hog", None, Credentials::user(Uid(1), Gid(1)))
                .unwrap();
        }
        w
    }

    fn aged(w: &mut World) {
        let t = w.machine(0).now + SimDuration::millis(2_500);
        w.run_until_time(t, 10_000_000);
    }

    #[test]
    fn load_gradient_matches_loadbalancer_selection() {
        let mut w = cluster_with_hogs(3, 4);
        aged(&mut w);
        let lb = LoadBalancer::default();
        let mut pol = LoadGradient::default();
        let d = pol
            .decide(&w, &BTreeSet::new())
            .expect("imbalance above threshold");
        assert_eq!(d.from, 0);
        assert_eq!(
            Some(d.victim),
            lb.pick_candidate(&w, 0),
            "policy and balancer must pick the same victim"
        );
    }

    #[test]
    fn first_touch_prefers_nearest_idle_machine() {
        let mut w = cluster_with_hogs(4, 4);
        aged(&mut w);
        let mut pol = FirstTouch::default();
        let d = pol.decide(&w, &BTreeSet::new()).expect("decision");
        assert_eq!(d.from, 0);
        assert_eq!(d.to, 1, "nearest less-loaded machine, not the idlest");
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let mut w = cluster_with_hogs(4, 3);
        aged(&mut w);
        let a = Random::seeded(7).decide(&w, &BTreeSet::new());
        let b = Random::seeded(7).decide(&w, &BTreeSet::new());
        let c = Random::seeded(8).decide(&w, &BTreeSet::new());
        assert!(a.is_some());
        assert_eq!(a, b, "same seed, same decision");
        // A different seed is *allowed* to coincide, but the decision
        // must still be well-formed.
        let c = c.expect("decision");
        assert_ne!(c.from, c.to);
    }

    #[test]
    fn eviction_filter_skips_struck_candidates() {
        let mut w = cluster_with_hogs(2, 2);
        aged(&mut w);
        let all = BTreeSet::new();
        let first = aged_candidate(&w, 0, SimDuration::millis(1), &all).expect("candidate");
        let mut evicted = BTreeSet::new();
        evicted.insert((0usize, first.as_u32()));
        let second = aged_candidate(&w, 0, SimDuration::millis(1), &evicted).expect("next oldest");
        assert_ne!(first, second, "evicted candidate must be skipped");
    }

    #[test]
    fn engine_evicts_failed_victims() {
        use simnet::{FaultPlan, FaultSite, FaultSpec};
        let mut w = cluster_with_hogs(3, 4);
        aged(&mut w);
        let mut engine = PolicyEngine::new(LoadGradient {
            min_age: SimDuration::millis(1),
            imbalance_threshold: 2,
        });
        let doomed = engine
            .policy
            .decide(&w, &engine.evicted)
            .expect("decision")
            .victim;
        // Every dump attempt crashes mid-flight: the failure-atomic
        // pipeline leaves the victim alive at the source, so without
        // eviction the engine would re-propose it forever.
        w.faults = FaultPlan::seeded(1).with(FaultSpec::always(FaultSite::MidDumpCrash, u32::MAX));
        assert!(engine.step(&mut w).is_none());
        assert_eq!(engine.failures, 1);
        assert!(engine.evicted.contains(&(0, doomed.as_u32())));
        let next = engine.policy.decide(&w, &engine.evicted);
        assert_ne!(
            next.map(|d| d.victim),
            Some(doomed),
            "evicted victim must not be proposed again"
        );
    }
}
