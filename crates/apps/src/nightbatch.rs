//! The day/night batch scheduler (§8).
//!
//! "These jobs can be run in one machine during the day (or not at
//! all!), when users want to use the majority of the machines in the
//! network. At night, when the load on most machines is low, these jobs
//! can be distributed evenly throughout the system, and thus make
//! efficient use of the network resources."
//!
//! Submitted jobs are stopped (`SIGSTOP`) on the day machine. At
//! nightfall they are continued and spread round-robin across every
//! machine with the migration mechanism.

use sysdefs::{Credentials, Pid, Signal};
use ukernel::{MachineId, World};

use crate::migrated::migrate_via_daemon_scripted;

/// The batch queue and its day machine.
#[derive(Clone, Debug)]
pub struct NightBatch {
    /// The machine that holds (stopped) jobs during the day.
    pub day_machine: MachineId,
    /// Jobs currently queued (pids on the day machine).
    pub queued: Vec<Pid>,
    /// Credentials the scheduler acts with.
    pub cred: Credentials,
}

impl NightBatch {
    /// An empty queue on `day_machine`.
    pub fn new(day_machine: MachineId) -> NightBatch {
        NightBatch {
            day_machine,
            queued: Vec::new(),
            cred: Credentials::root(),
        }
    }

    /// Submits a running job: it is stopped until nightfall.
    pub fn submit(&mut self, world: &mut World, pid: Pid) {
        world.host_post_signal(self.day_machine, pid, Signal::SIGSTOP);
        world.run_slices(1_000);
        self.queued.push(pid);
    }

    /// Nightfall: continue every job and spread them round-robin over
    /// all machines. Returns `(old pid, machine, new pid)` per job.
    pub fn nightfall(&mut self, world: &mut World) -> Vec<(Pid, MachineId, Pid)> {
        let n = world.machine_count();
        let mut placements = Vec::new();
        let jobs = std::mem::take(&mut self.queued);
        for (i, pid) in jobs.into_iter().enumerate() {
            // Wake the job just enough to be dumpable; the real running
            // happens on its night-time machine.
            world.host_post_signal(self.day_machine, pid, Signal::SIGCONT);
            world.run_slices(4);
            let target = i % n;
            if target == self.day_machine {
                placements.push((pid, self.day_machine, pid));
                continue;
            }
            match migrate_via_daemon_scripted(
                world,
                pid,
                self.day_machine,
                target,
                self.cred.clone(),
            ) {
                Ok(new_pid) => placements.push((pid, target, new_pid)),
                Err(_) => placements.push((pid, self.day_machine, pid)),
            }
        }
        placements
    }
}
