//! Kernel build configuration: which of the paper's changes are compiled
//! in, and the hardware cost model.

use simtime::CostModel;

/// Which scheduler drives [`crate::World`]'s run loops.
///
/// Both produce bit-identical trajectories (the wake-parity test holds
/// them to the same ktrace and determinism snapshot); they differ only
/// in host cost per scheduling slice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sched {
    /// Event-driven: a global `(now, MachineId)` ready index plus
    /// per-machine wait indexes. Per-slice cost is O(log machines).
    #[default]
    Event,
    /// The original reference path: every slice scans all machines and
    /// every blocked process. Kept for the cluster benchmark's
    /// before/after comparison and as the parity oracle.
    Scan,
}

/// How the world's run loops execute machines on the host.
///
/// Both modes produce bit-identical trajectories for scenarios whose
/// cross-machine traffic respects the `simnet::lookahead` floor (see
/// DESIGN.md §14); `tests/parallel_determinism.rs` pins the equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Exec {
    /// One host thread steps every machine (the reference engine).
    #[default]
    Serial,
    /// Machines are partitioned into shards stepped by a pool of host
    /// threads under conservative lockstep windows; cross-machine
    /// syscalls gate-park at the shard boundary and are replayed
    /// serially by the coordinator (`world::shard`).
    Parallel {
        /// Host worker threads (each owns one shard). `Parallel{1}` is
        /// the windowed engine on a single worker — the 1-vs-N oracle's
        /// baseline.
        threads: usize,
    },
}

/// Compile-time choices of the simulated kernel build.
///
/// `Figure 1` compares a kernel with [`KernelConfig::track_names`] off
/// (the "original UNIX kernel") against one with it on (the paper's
/// kernel); the other flags correspond to the paper's proposed
/// extensions and our ablations.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// §5.1: maintain path-name strings in the `user` and `file`
    /// structures. Without this the kernel cannot service `SIGDUMP`
    /// (there is nothing to dump the names from), exactly like the
    /// unmodified Sun 3.0 kernel.
    pub track_names: bool,
    /// §7 extension: remember the pre-migration pid and hostname and
    /// serve them from `getpid()`/`gethostname()`, with
    /// `getpid_real()`/`gethostname_real()` exposing the true values.
    pub virtualize_ids: bool,
    /// A3 ablation: use fixed-size (`MAXPATHLEN`) name fields in the
    /// open-file table instead of dynamically allocated strings. Saves
    /// the allocator calls but, as §5.1 argues, "would have led to
    /// wasting large amounts of kernel memory". The memory effect shows
    /// up in [`crate::machine::Machine::name_bytes_peak`].
    pub fixed_name_strings: bool,
    /// Host-side optimisation: predecode a process's text segment into
    /// an instruction cache at overlay time and interpret through it.
    /// Simulated time is unaffected (the cached path charges the same
    /// per-instruction units); turning this off forces the byte-window
    /// decoder on every step, which the coherence tests use to prove
    /// both paths are bit-identical.
    pub use_icache: bool,
    /// Host-side optimisation layered on the icache: fuse straight-line
    /// runs of predecoded slots into superblocks and retire them whole
    /// (see DESIGN.md §15). Requires [`KernelConfig::use_icache`]; a
    /// quantum still charges the same per-instruction units and pauses
    /// on exactly the same instruction, so simulated time, ktrace and
    /// dump images are bit-identical with this on or off (the coherence
    /// tests toggle it to prove that).
    pub use_superblocks: bool,
    /// The hardware/kernel cost calibration.
    pub cost: CostModel,
    /// Scheduler implementation (event-driven by default).
    pub sched: Sched,
    /// Host execution mode (serial by default).
    pub exec: Exec,
}

impl KernelConfig {
    /// The paper's kernel: name tracking on, extensions off.
    pub fn paper() -> KernelConfig {
        KernelConfig {
            track_names: true,
            virtualize_ids: false,
            fixed_name_strings: false,
            use_icache: true,
            use_superblocks: true,
            cost: CostModel::sun2(),
            sched: Sched::default(),
            exec: Exec::default(),
        }
    }

    /// The unmodified Sun 3.0 kernel (the Figure 1 baseline).
    pub fn original() -> KernelConfig {
        KernelConfig {
            track_names: false,
            ..KernelConfig::paper()
        }
    }

    /// The paper's kernel plus §7 id virtualization.
    pub fn with_virtualized_ids() -> KernelConfig {
        KernelConfig {
            virtualize_ids: true,
            ..KernelConfig::paper()
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(KernelConfig::paper().track_names);
        assert!(KernelConfig::paper().use_icache);
        assert!(KernelConfig::paper().use_superblocks);
        assert!(!KernelConfig::original().track_names);
        assert!(KernelConfig::with_virtualized_ids().virtualize_ids);
        assert!(KernelConfig::default().track_names);
        assert_eq!(KernelConfig::default().exec, Exec::Serial);
    }
}
