//! Cross-machine path resolution: local walking, `/n/<host>` mount
//! crossing, and the Sun 3.0 NFS symlink rules.
//!
//! Resolution semantics, matching the paper's environment:
//!
//! * On the **client** (the machine issuing the call), symbolic links are
//!   expanded against the client's own namespace; an absolute target
//!   restarts at the client's root and may enter the client's `/n`
//!   mounts. This is why a program on `classic` can open `/usr/foo` when
//!   `/usr` is a symlink to `/n/brador/usr`.
//! * On a **server** (a machine reached through `/n/<host>`), component
//!   lookups are NFS RPCs. A symbolic link found on the server is
//!   expanded against the *server's* namespace — but the server refuses
//!   to cross its own remote mounts, failing with `EREMOTE`. This
//!   reproduces the paper's observation that `/n/classic/usr/foo` (where
//!   `classic:/usr → /n/brador/usr`) "would actually be
//!   `/n/classic/n/brador/usr/foo`. Unfortunately, NFS does not allow
//!   this syntax" — the exact failure `dumpproc`'s `readlink()` loop
//!   exists to avoid.

use simnet::NfsOp;
use sysdefs::limits::MAXSYMLINKS;
use sysdefs::{Credentials, Errno, SysResult};
use vfs::{path as vpath, WalkOutcome};

use crate::machine::MachineId;
use crate::user::FileRef;
use crate::world::World;

/// How the final component should be treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FollowLast {
    /// Follow a symlink in the final position (the `open(2)` behaviour).
    Yes,
    /// Return the link itself (`readlink`, `unlink`, `lstat`).
    No,
}

/// The result of a resolution: where the inode lives, plus accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Resolved {
    /// The inode and its owning machine.
    pub fref: FileRef,
    /// Total path components traversed (for cost charging).
    pub components: usize,
    /// NFS lookups among them.
    pub remote_lookups: usize,
}

/// Resolves `path` (absolute, or relative to `cwd`) as seen from
/// `client`.
///
/// Charges nothing; the caller prices the traversal from the returned
/// counts (CPU per component, RPC per remote lookup, disk for cold
/// paths). Checks search permission with `cred` on every directory.
pub fn namei(
    world: &World,
    client: MachineId,
    cred: &Credentials,
    cwd: FileRef,
    path: &str,
    follow_last: FollowLast,
) -> SysResult<Resolved> {
    let mut counts = Resolved {
        fref: cwd,
        components: 0,
        remote_lookups: 0,
    };
    // Current position: machine + directory inode. Relative paths start
    // at the cwd (which may itself be remote), absolute ones at the
    // client's root.
    let mut cur = if vpath::is_absolute(path) {
        FileRef {
            machine: client,
            ino: world.machine(client).fs.root(),
        }
    } else {
        cwd
    };
    let mut remaining: Vec<String> = vpath::raw_components(path).map(str::to_string).collect();

    let mut symlink_budget = MAXSYMLINKS;
    loop {
        if remaining.is_empty() {
            counts.fref = cur;
            return Ok(counts);
        }
        let on_client = cur.machine == client;
        let m = world.machine(cur.machine);

        // Mount interception: at the client's own /n directory the next
        // component names a host.
        if on_client && cur.ino == m.n_dir {
            let host = remaining.remove(0);
            counts.components += 1;
            match m.mounts.get(&host) {
                Some(&server) => {
                    cur = FileRef {
                        machine: server,
                        ino: world.machine(server).fs.root(),
                    };
                    continue;
                }
                None => return Err(Errno::ENOENT),
            }
        }
        // A *server's* /n is off limits: crossing it would need the
        // server to forward the request, which NFS does not do.
        if !on_client && cur.ino == m.n_dir {
            return Err(Errno::EREMOTE);
        }

        // Walk one component at a time so mounts and symlinks can be
        // intercepted machine-by-machine.
        let comp = remaining.remove(0);
        counts.components += 1;
        if comp == ".." {
            // `..` follows the directory's parent link; the root (and a
            // server's exported root) is its own parent, as in NFS.
            let parent = m.fs.parent_of(cur.ino)?;
            cur = FileRef {
                machine: cur.machine,
                ino: parent,
            };
            continue;
        }
        if !on_client {
            counts.remote_lookups += 1;
        }
        // The root → /n hop is on the front of every NFS path a client
        // issues; memoise it per machine, keyed by filesystem mutation
        // generation and credentials, so the directory scan and
        // permission check run once per epoch instead of once per
        // resolution. Simulated accounting is unchanged: the component
        // was already counted above.
        let root_n_hop = on_client && comp == "n" && cur.ino == m.fs.root();
        if root_n_hop {
            if let Some(ino) = m.namei_cache_get(cred) {
                cur = FileRef {
                    machine: cur.machine,
                    ino,
                };
                continue;
            }
        }
        let outcome =
            m.fs.walk(cur.ino, std::slice::from_ref(&comp), Some(cred))?;
        match outcome {
            WalkOutcome::Done(ino) => {
                if root_n_hop {
                    m.namei_cache_fill(cred, ino);
                }
                cur = FileRef {
                    machine: cur.machine,
                    ino,
                };
            }
            WalkOutcome::Symlink { ino, target, .. } => {
                let last = remaining.is_empty();
                if last && follow_last == FollowLast::No {
                    counts.fref = FileRef {
                        machine: cur.machine,
                        ino,
                    };
                    return Ok(counts);
                }
                if symlink_budget == 0 {
                    return Err(Errno::ELOOP);
                }
                symlink_budget -= 1;
                let mut spliced: Vec<String> =
                    vpath::raw_components(&target).map(str::to_string).collect();
                if spliced.iter().any(|c| c == "..") {
                    // Normalise `..` in link targets lexically against
                    // the target itself (absolute targets only).
                    if vpath::is_absolute(&target) {
                        spliced = vpath::components(&target);
                    } else {
                        return Err(Errno::EINVAL);
                    }
                }
                spliced.append(&mut remaining);
                remaining = spliced;
                if vpath::is_absolute(&target) {
                    // Expansion namespace: the machine where the link
                    // lives. Client-side links restart at the client
                    // root (and may enter /n); server-side links restart
                    // at the *server's* root, where any /n crossing will
                    // hit the EREMOTE rule above.
                    cur = FileRef {
                        machine: cur.machine,
                        ino: m.fs.root(),
                    };
                }
                // Relative target: continue from the link's directory,
                // i.e. `cur` unchanged.
            }
        }
    }
}

/// The NFS operations implied by a resolution, for cost charging.
pub fn remote_ops_of(res: &Resolved) -> Vec<NfsOp> {
    (0..res.remote_lookups).map(|_| NfsOp::Lookup).collect()
}

/// A stop-at-the-seam mirror of [`namei`]: would resolving `path` from
/// `client` leave the client machine?
///
/// Returns the first foreign machine the walk would reach — determined
/// *before* touching that machine's state, so a shard world where the
/// foreign machine is absent can ask safely. `None` means the walk
/// completes (or fails) entirely on the client: Phase A may run the
/// call locally.
///
/// The probe is deliberately conservative where it diverges from the
/// caller's exact resolution mode: it always follows a final symlink
/// (some callers use [`FollowLast::No`]), so a call that the real
/// resolution would have kept local can still classify as crossing.
/// That only costs a trip through the serial phase; the reverse error
/// would corrupt a parallel run.
pub(crate) fn foreign_target(
    world: &World,
    client: MachineId,
    cred: &Credentials,
    cwd: FileRef,
    path: &str,
) -> Option<MachineId> {
    let m = world.machine(client);
    let mut cur = if vpath::is_absolute(path) {
        m.fs.root()
    } else {
        // A foreign working directory makes every relative walk start
        // on the foreign machine.
        if cwd.machine != client {
            return Some(cwd.machine);
        }
        cwd.ino
    };
    let mut remaining: Vec<String> = vpath::raw_components(path).map(str::to_string).collect();
    let mut symlink_budget = MAXSYMLINKS;
    loop {
        if remaining.is_empty() {
            return None;
        }
        if cur == m.n_dir {
            // The next component names a host: a known mount is the
            // crossing; an unknown one fails locally with ENOENT.
            let host = remaining.remove(0);
            return m.mounts.get(&host).copied();
        }
        let comp = remaining.remove(0);
        if comp == ".." {
            match m.fs.parent_of(cur) {
                Ok(parent) => cur = parent,
                Err(_) => return None,
            }
            continue;
        }
        let outcome = match m.fs.walk(cur, std::slice::from_ref(&comp), Some(cred)) {
            Ok(o) => o,
            // Local resolution failure: the real call will fail on the
            // client without crossing.
            Err(_) => return None,
        };
        match outcome {
            WalkOutcome::Done(ino) => cur = ino,
            WalkOutcome::Symlink { target, .. } => {
                if symlink_budget == 0 {
                    return None;
                }
                symlink_budget -= 1;
                let mut spliced: Vec<String> =
                    vpath::raw_components(&target).map(str::to_string).collect();
                if spliced.iter().any(|c| c == "..") {
                    if vpath::is_absolute(&target) {
                        spliced = vpath::components(&target);
                    } else {
                        return None;
                    }
                }
                spliced.append(&mut remaining);
                remaining = spliced;
                if vpath::is_absolute(&target) {
                    cur = m.fs.root();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KernelConfig;
    use m68vm::IsaLevel;
    use sysdefs::FileMode;

    /// Two machines, cross mounted, with the paper's §4.3 symlink
    /// scenario: on `classic`, `/usr2` is a symlink to `/n/brador/usr2`.
    fn two_machine_world() -> (World, MachineId, MachineId) {
        let mut w = World::new(KernelConfig::paper());
        let classic = w.add_machine("classic", IsaLevel::Isa1);
        let brador = w.add_machine("brador", IsaLevel::Isa1);
        let cred = Credentials::root();
        {
            let m = w.machine_mut(brador);
            let usr = m.fs.lookup(m.fs.root(), "usr").unwrap();
            let u2 = m.fs.mkdir(usr, "alice", FileMode(0o777), &cred).unwrap();
            let f =
                m.fs.create_file(u2, "foo", FileMode::REG_DEFAULT, &cred)
                    .unwrap();
            m.fs.write(f, 0, b"remote contents").unwrap();
        }
        {
            let m = w.machine_mut(classic);
            let root = m.fs.root();
            m.fs.symlink(root, "usr2", "/n/brador/usr/alice", &cred)
                .unwrap();
        }
        (w, classic, brador)
    }

    fn root_at(w: &World, mid: MachineId) -> FileRef {
        FileRef {
            machine: mid,
            ino: w.machine(mid).fs.root(),
        }
    }

    #[test]
    fn plain_local_resolution() {
        let (w, classic, _) = two_machine_world();
        let cwd = root_at(&w, classic);
        let r = namei(
            &w,
            classic,
            &Credentials::root(),
            cwd,
            "/usr/tmp",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(r.fref.machine, classic);
        assert_eq!(r.remote_lookups, 0);
        assert_eq!(r.components, 2);
    }

    #[test]
    fn explicit_n_path_crosses_to_server() {
        let (w, classic, brador) = two_machine_world();
        let cwd = root_at(&w, classic);
        let r = namei(
            &w,
            classic,
            &Credentials::root(),
            cwd,
            "/n/brador/usr/alice/foo",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(r.fref.machine, brador);
        assert!(r.remote_lookups >= 3);
    }

    #[test]
    fn client_side_symlink_into_mount_works() {
        // open("/usr2/foo") on classic: /usr2 -> /n/brador/usr/alice is a
        // *client* link, so it may enter the client's mounts.
        let (w, classic, brador) = two_machine_world();
        let cwd = root_at(&w, classic);
        let r = namei(
            &w,
            classic,
            &Credentials::root(),
            cwd,
            "/usr2/foo",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(r.fref.machine, brador);
    }

    #[test]
    fn server_side_symlink_into_servers_mount_fails_eremote() {
        // The paper's failing case: from a third vantage point (or the
        // restart machine), /n/classic/usr2/foo reaches classic and then
        // hits the symlink there; classic would have to forward through
        // its own /n/brador mount, which NFS refuses.
        let (w, _classic, brador) = two_machine_world();
        let cwd = root_at(&w, brador);
        let err = namei(
            &w,
            brador,
            &Credentials::root(),
            cwd,
            "/n/classic/usr2/foo",
            FollowLast::Yes,
        )
        .unwrap_err();
        assert_eq!(err, Errno::EREMOTE);
    }

    #[test]
    fn follow_last_no_returns_the_link() {
        let (w, classic, _) = two_machine_world();
        let cwd = root_at(&w, classic);
        let r = namei(
            &w,
            classic,
            &Credentials::root(),
            cwd,
            "/usr2",
            FollowLast::No,
        )
        .unwrap();
        assert_eq!(r.fref.machine, classic);
        let target = w.machine(classic).fs.readlink(r.fref.ino).unwrap();
        assert_eq!(target, "/n/brador/usr/alice");
    }

    #[test]
    fn unknown_host_is_enoent() {
        let (w, classic, _) = two_machine_world();
        let cwd = root_at(&w, classic);
        assert_eq!(
            namei(
                &w,
                classic,
                &Credentials::root(),
                cwd,
                "/n/ghost/usr",
                FollowLast::Yes
            )
            .unwrap_err(),
            Errno::ENOENT
        );
    }

    #[test]
    fn symlink_loop_is_eloop() {
        let (mut w, classic, _) = two_machine_world();
        let cred = Credentials::root();
        {
            let m = w.machine_mut(classic);
            let root = m.fs.root();
            m.fs.symlink(root, "a", "/b", &cred).unwrap();
            m.fs.symlink(root, "b", "/a", &cred).unwrap();
        }
        let cwd = root_at(&w, classic);
        assert_eq!(
            namei(&w, classic, &cred, cwd, "/a", FollowLast::Yes).unwrap_err(),
            Errno::ELOOP
        );
    }

    #[test]
    fn probe_matches_resolution_locality() {
        let (w, classic, brador) = two_machine_world();
        let cred = Credentials::root();
        let cwd = root_at(&w, classic);
        // Purely local paths — including locally-failing ones — do not
        // cross.
        assert_eq!(foreign_target(&w, classic, &cred, cwd, "/usr/tmp"), None);
        assert_eq!(foreign_target(&w, classic, &cred, cwd, "/no/such"), None);
        assert_eq!(foreign_target(&w, classic, &cred, cwd, "/n/ghost/x"), None);
        // Mount hops cross, named before the server is touched.
        assert_eq!(
            foreign_target(&w, classic, &cred, cwd, "/n/brador/usr/alice/foo"),
            Some(brador)
        );
        // A client-side symlink into the mount crosses too.
        assert_eq!(
            foreign_target(&w, classic, &cred, cwd, "/usr2/foo"),
            Some(brador)
        );
        // A foreign cwd makes every relative path foreign.
        let foreign_cwd = root_at(&w, brador);
        assert_eq!(
            foreign_target(&w, classic, &cred, foreign_cwd, "anything"),
            Some(brador)
        );
    }

    #[test]
    fn root_n_cache_survives_reads_and_invalidates_on_mutation() {
        let (mut w, classic, _brador) = two_machine_world();
        let cred = Credentials::root();
        let cwd = root_at(&w, classic);
        let first = namei(
            &w,
            classic,
            &cred,
            cwd,
            "/n/brador/usr/alice/foo",
            FollowLast::Yes,
        )
        .unwrap();
        assert!(w.machine(classic).namei_cache_get(&cred).is_some());
        // A cache hit resolves identically, with identical accounting.
        let second = namei(
            &w,
            classic,
            &cred,
            cwd,
            "/n/brador/usr/alice/foo",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(first, second);
        // Different credentials miss (permission checks differ).
        let alice = Credentials::user(sysdefs::Uid(7), sysdefs::Gid(7));
        assert!(w.machine(classic).namei_cache_get(&alice).is_none());
        // Any client filesystem mutation invalidates the entry.
        {
            let m = w.machine_mut(classic);
            let root = m.fs.root();
            m.fs.create_file(root, "newfile", FileMode::REG_DEFAULT, &cred)
                .unwrap();
        }
        assert!(w.machine(classic).namei_cache_get(&cred).is_none());
        let third = namei(
            &w,
            classic,
            &cred,
            cwd,
            "/n/brador/usr/alice/foo",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(first.fref, third.fref);
    }

    #[test]
    fn relative_resolution_from_cwd() {
        let (w, classic, _) = two_machine_world();
        let usr = {
            let m = w.machine(classic);
            m.fs.lookup(m.fs.root(), "usr").unwrap()
        };
        let cwd = FileRef {
            machine: classic,
            ino: usr,
        };
        let r = namei(
            &w,
            classic,
            &Credentials::root(),
            cwd,
            "tmp",
            FollowLast::Yes,
        )
        .unwrap();
        assert_eq!(r.fref.machine, classic);
        assert_eq!(r.components, 1);
    }
}
