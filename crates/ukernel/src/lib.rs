//! The simulated Sun UNIX 3.0 kernel.
//!
//! This crate is the substrate the paper modified: a multi-machine Unix
//! with processes, a scheduler, signals, a filesystem namespace joined by
//! NFS `/n/<host>` mounts, terminals and `rsh` — plus the paper's
//! additions, which are clearly marked where they appear:
//!
//! * **§5.1 kernel modifications** (behind [`KernelConfig::track_names`]):
//!   the `user` structure carries the current-working-directory path
//!   string, maintained by `chdir()`; every open-file structure carries a
//!   dynamically allocated absolute path name, set by `open()`/`creat()`
//!   and released by `close()`.
//! * **§5.2 kernel additions**: the `SIGDUMP` signal, whose default
//!   action terminates the process after writing `a.outXXXXX`,
//!   `filesXXXXX` and `stackXXXXX` into `/usr/tmp`; and the
//!   `rest_proc()` system call, built on an `execve()` that honours the
//!   migration flag and exact-initial-stack-size variable.
//! * **§7 extension** (behind [`KernelConfig::virtualize_ids`]): old-pid
//!   and old-hostname fields in the user structure, virtualised
//!   `getpid()`/`gethostname()`, and the `*_real` system calls.
//!
//! # Structure
//!
//! A [`World`] owns every [`Machine`]; each machine has its own
//! filesystem, process table, open-file table and virtual clock. Guest
//! workloads are `m68vm` programs executed instruction by instruction;
//! utility programs (`dumpproc`, `restart`, daemons) are *native
//! processes*: Rust closures on dedicated OS threads that rendezvous with
//! the kernel for every system call, with every call charged simulated
//! time from the [`simtime::CostModel`].

pub mod config;
pub mod file;
pub mod ktrace;
pub mod machine;
pub mod namei;
pub mod native;
pub mod proc;
pub mod signal;
pub mod sys;
pub mod user;
pub mod world;

pub use config::{Exec, KernelConfig, Sched};
pub use file::{Fd, FileKind, FileStruct};
pub use ktrace::{Ktrace, KtraceEvent, KtraceRecord, KtraceResult};
pub use machine::{Machine, MachineId};
pub use native::{NativeProgram, Sys};
pub use proc::{Body, ExitInfo, Proc, ProcState};
pub use sys::args::{IoctlReq, Syscall, SyscallResult, Whence};
pub use sys::ctx::SysCtx;
pub use user::{FileRef, UserArea};
pub use world::{ImageGeometry, RunOutcome, World};
