//! The seam layer: every cross-machine effect, named and ordered.
//!
//! Sharded execution (`Exec::Parallel`, see [`super::shard`]) only works
//! because machines interact through a small set of explicit seams — the
//! NFS calls, `rsh` sessions, migration dumps and terminal plumbing the
//! PR-6 coupling inventory (`simlint.coupling.json`) catalogued. This
//! module makes those seams first-class:
//!
//! * [`CrossCall`] — a foreign-filesystem mutation a syscall handler
//!   wants performed on a server machine. Handlers no longer index a
//!   foreign machine's `&mut` state directly; they send a `CrossCall`
//!   through [`World::cross_call`], the single funnel (and the only
//!   place outside this directory allowed to take a foreign `&mut`,
//!   enforced by simlint's `cross-shard` rule).
//! * [`CrossEffect`] — a wake-up whose target machine is not resident
//!   in the executing world (a shard poking across its boundary). These
//!   are queued, not applied, and the coordinator delivers them in
//!   [`SeamKey`] order, so delivery order never depends on host thread
//!   timing.
//! * [`crossing`] — the classifier the shard gate uses to decide, at
//!   dispatch time and without touching any foreign machine, whether a
//!   syscall would reach across the shard boundary.

use simtime::SimTime;
use sysdefs::{Credentials, FileMode, Pid, SysResult};
use vfs::{DeviceId, Ino};

use crate::file::FileKind;
use crate::machine::MachineId;
use crate::namei;
use sysdefs::Signal;
use crate::sys::args::Syscall;
use crate::world::World;

/// Deterministic delivery order for cross-machine effects:
/// simulated time first, then source machine, then per-world sequence
/// number. Two effects can never tie — `seq` is unique — so delivery
/// order is a total order independent of host scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeamKey {
    /// Simulated time the effect was emitted (the source's clock).
    pub time: SimTime,
    /// The machine whose slice emitted the effect.
    pub src: MachineId,
    /// Emission sequence within the emitting world.
    pub seq: u64,
}

/// A foreign-filesystem mutation, routed through [`World::cross_call`]
/// instead of a direct `&mut machines[server]` reach from a syscall
/// handler. The variants mirror exactly the server-side mutations the
/// coupling inventory found in `fsops`: create, truncate, write,
/// unlink, link, symlink, mkdir.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrossCall {
    /// `create_file` in a server directory.
    FsCreate {
        /// Parent directory on the server.
        parent: Ino,
        /// New name.
        name: String,
        /// Permission bits.
        mode: FileMode,
    },
    /// Truncate a server file (`O_TRUNC`, NFS `Setattr`).
    FsTruncate {
        /// The file.
        ino: Ino,
    },
    /// Write bytes into a server file (NFS `Write`).
    FsWrite {
        /// The file.
        ino: Ino,
        /// Byte offset.
        off: u64,
        /// Payload.
        bytes: Vec<u8>,
    },
    /// Remove a name from a server directory (NFS `Remove`).
    FsUnlink {
        /// Parent directory.
        parent: Ino,
        /// Name to remove.
        name: String,
    },
    /// Hard-link a server inode under a new name.
    FsLink {
        /// Parent directory.
        parent: Ino,
        /// New name.
        name: String,
        /// Target inode.
        target: Ino,
    },
    /// Create a symlink in a server directory.
    FsSymlink {
        /// Parent directory.
        parent: Ino,
        /// Link name.
        name: String,
        /// Link contents.
        target: String,
    },
    /// Create a directory on the server (NFS `Create`).
    FsMkdir {
        /// Parent directory.
        parent: Ino,
        /// New directory name.
        name: String,
        /// Permission bits.
        mode: FileMode,
    },
}

/// What a [`CrossCall`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossRet {
    /// A created inode.
    Ino(Ino),
    /// A byte count.
    Len(usize),
    /// Nothing beyond success.
    Unit,
}

/// A wake-up aimed at a machine that is not resident in the executing
/// world. Shards queue these instead of panicking on the missing slot;
/// the coordinator applies them in [`SeamKey`] order after the merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossEffect {
    /// Re-evaluate one blocked process ([`World::poke_proc`]).
    Poke {
        /// Target machine.
        mid: MachineId,
        /// Target process.
        pid: u32,
    },
    /// Re-evaluate every waiter of a terminal ([`World::poke_tty`]).
    TtyPoke {
        /// The terminal.
        tty: u32,
    },
    /// Waiters of remote process `(server, pid)` can complete
    /// ([`World::poke_remote_done`]).
    RemoteDone {
        /// The serving machine.
        server: MachineId,
        /// The finished/overlaid pid on it.
        pid: u32,
    },
}

/// An ordered queue of [`CrossEffect`]s keyed by [`SeamKey`]. Pushing
/// assigns the next sequence number; draining yields key order.
#[derive(Debug, Default)]
pub struct SeamQueue {
    q: std::collections::BTreeMap<SeamKey, CrossEffect>,
    next_seq: u64,
}

impl SeamQueue {
    /// An empty queue.
    pub fn new() -> SeamQueue {
        SeamQueue::default()
    }

    /// Queues an effect emitted by `src` at `time`, returning its key.
    pub fn push(&mut self, time: SimTime, src: MachineId, effect: CrossEffect) -> SeamKey {
        let key = SeamKey {
            time,
            src,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.q.insert(key, effect);
        key
    }

    /// Takes every queued effect in delivery order.
    pub fn drain(&mut self) -> Vec<(SeamKey, CrossEffect)> {
        std::mem::take(&mut self.q).into_iter().collect()
    }

    /// Whether anything is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Queued effect count.
    pub fn len(&self) -> usize {
        self.q.len()
    }
}

/// Would dispatching `sc` for `(mid, pid)` reach another machine (or a
/// globally-ordered resource like the fault plan)? Evaluated *without
/// touching any foreign machine*, so a shard can ask it safely; `Some`
/// names the machine the call would reach (`mid` itself for calls that
/// merely need global serialisation, like `SIGDUMP` delivery).
///
/// The classification is conservative: `Some` for a call that would
/// have stayed local only costs a round through the coordinator's
/// serial phase, while a missed crossing would corrupt the run — so
/// every doubt resolves to `Some`.
pub(crate) fn crossing(w: &World, mid: MachineId, pid: Pid, sc: &Syscall) -> Option<MachineId> {
    let p = w.proc_ref(mid, pid)?;
    let cred = p.user.cred.clone();
    let cwd = p.user.cwd;
    // A path resolution that would jump into a remote mount (or start
    // from a remote cwd) crosses; a purely local walk — including one
    // that fails locally — does not.
    let probe = |path: &str| namei::foreign_target(w, mid, &cred, cwd, path);
    // An open descriptor crosses when it points at a remote inode or at
    // a terminal this machine does not own (remote-pipe terminals have
    // no owner and always cross).
    let fd_probe = |fd: usize| -> Option<MachineId> {
        let idx = p.user.fds.get(fd).copied().flatten()?;
        match &w.machine(mid).files.get(idx)?.kind {
            FileKind::Remote { host, .. } => Some(*host),
            FileKind::Device(DeviceId::Tty(tty)) => match w.tty_owner(*tty) {
                Some(owner) if owner == mid => None,
                Some(owner) => Some(owner),
                None => Some(mid),
            },
            _ => None,
        }
    };
    match sc {
        Syscall::Open { path, .. }
        | Syscall::Creat { path, .. }
        | Syscall::Chdir { path }
        | Syscall::Stat { path }
        | Syscall::Unlink { path }
        | Syscall::Readlink { path, .. }
        | Syscall::Mkdir { path, .. }
        | Syscall::Execve { path } => probe(path),
        Syscall::Link { old, new } => probe(old).or_else(|| probe(new)),
        Syscall::Symlink { link, .. } => probe(link),
        Syscall::Read { fd, .. }
        | Syscall::Write { fd, .. }
        | Syscall::Lseek { fd, .. }
        | Syscall::Ioctl { fd, .. } => fd_probe(*fd),
        // SIGDUMP delivery writes dump files under fault-plan sites
        // whose counters are globally ordered; posting it must happen
        // in the serial phase even when the target is local.
        Syscall::Kill { sig, .. } if *sig == Signal::SIGDUMP.number() => Some(mid),
        // rest_proc touches the world-shared `overlaid` map and wakes
        // remote waiters; always a seam.
        Syscall::RestProc { .. } => Some(mid),
        _ => None,
    }
}

impl World {
    /// Executes one foreign-filesystem mutation on `server` on behalf of
    /// a handler running on `src` — the single place a system-call
    /// handler's effect is allowed to touch another machine's mutable
    /// state. `server == src` degenerates to the local filesystem (same
    /// funnel, no seam). Charging stays with the caller: the handler
    /// prices the RPC exactly as before.
    pub fn cross_call(
        &mut self,
        src: MachineId,
        server: MachineId,
        cred: &Credentials,
        call: CrossCall,
    ) -> SysResult<CrossRet> {
        debug_assert!(
            !self.shard_gate || server == src,
            "cross_call from {src} reached machine {server} inside a shard \
             (the gate should have staged this syscall)"
        );
        let fs = self.fs_mut(server);
        match call {
            CrossCall::FsCreate { parent, name, mode } => {
                let ino = fs.create_file(parent, &name, mode, cred)?;
                self.machine_mut(server).note_dump_create(parent, &name);
                Ok(CrossRet::Ino(ino))
            }
            CrossCall::FsTruncate { ino } => {
                fs.truncate(ino)?;
                Ok(CrossRet::Unit)
            }
            CrossCall::FsWrite { ino, off, bytes } => {
                Ok(CrossRet::Len(fs.write(ino, off, &bytes)?))
            }
            CrossCall::FsUnlink { parent, name } => {
                fs.unlink(parent, &name, cred)?;
                self.machine_mut(server).note_dump_unlink(parent, &name);
                Ok(CrossRet::Unit)
            }
            CrossCall::FsLink {
                parent,
                name,
                target,
            } => {
                fs.link(parent, &name, target, cred)?;
                Ok(CrossRet::Unit)
            }
            CrossCall::FsSymlink {
                parent,
                name,
                target,
            } => {
                fs.symlink(parent, &name, &target, cred)?;
                Ok(CrossRet::Unit)
            }
            CrossCall::FsMkdir { parent, name, mode } => {
                fs.mkdir(parent, &name, mode, cred)?;
                Ok(CrossRet::Unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtime::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::BOOT + SimDuration::micros(us)
    }

    #[test]
    fn seam_key_orders_time_then_src_then_seq() {
        let a = SeamKey {
            time: t(10),
            src: 5,
            seq: 9,
        };
        let b = SeamKey {
            time: t(11),
            src: 0,
            seq: 0,
        };
        assert!(a < b, "time dominates");
        let c = SeamKey {
            time: t(10),
            src: 6,
            seq: 0,
        };
        assert!(a < c, "src breaks time ties");
        let d = SeamKey {
            time: t(10),
            src: 5,
            seq: 10,
        };
        assert!(a < d, "seq breaks (time, src) ties");
    }

    #[test]
    fn seam_queue_drains_in_key_order_not_push_order() {
        let mut q = SeamQueue::new();
        // Pushed out of time order and out of src order: drain must
        // come back sorted by (time, src, seq) — the serial oracle's
        // delivery order.
        q.push(t(30), 1, CrossEffect::TtyPoke { tty: 3 });
        q.push(t(10), 7, CrossEffect::Poke { mid: 2, pid: 4 });
        q.push(
            t(10),
            2,
            CrossEffect::RemoteDone { server: 0, pid: 9 },
        );
        q.push(t(10), 2, CrossEffect::Poke { mid: 1, pid: 1 });
        assert_eq!(q.len(), 4);
        let drained = q.drain();
        assert!(q.is_empty());
        let order: Vec<(SimTime, MachineId)> =
            drained.iter().map(|(k, _)| (k.time, k.src)).collect();
        assert_eq!(order, vec![(t(10), 2), (t(10), 2), (t(10), 7), (t(30), 1)]);
        // Same (time, src): push order (seq) decides.
        assert_eq!(
            drained[0].1,
            CrossEffect::RemoteDone { server: 0, pid: 9 }
        );
        assert_eq!(drained[1].1, CrossEffect::Poke { mid: 1, pid: 1 });
    }

    #[test]
    fn seam_keys_are_unique_across_pushes() {
        let mut q = SeamQueue::new();
        let k1 = q.push(t(5), 0, CrossEffect::TtyPoke { tty: 0 });
        let k2 = q.push(t(5), 0, CrossEffect::TtyPoke { tty: 0 });
        assert_ne!(k1, k2);
        assert_eq!(q.len(), 2, "identical effects never collide");
    }
}
