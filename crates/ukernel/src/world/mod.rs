//! The world: machines, terminals, the Ethernet, and the scheduler.

pub mod seam;
pub mod shard;

pub use seam::{CrossCall, CrossEffect, CrossRet, SeamKey, SeamQueue};

use m68vm::{IsaLevel, StepEvent};
use simnet::{Ethernet, FaultPlan, FaultSite, NfsOp, RshPhase, NFS_SOFT_TIMEOUT_US};
use simtime::cost::Cost;
use simtime::{SimDuration, SimTime};
use sysdefs::{Credentials, Errno, Pid, Signal, SysResult};
use tty::{Terminal, TtyHandle};
use vfs::{path as vpath, DeviceId, Filesystem, WalkOutcome};

use crate::config::{Exec, KernelConfig, Sched};
use crate::file::{FileKind, FileStruct};
use crate::machine::{Machine, MachineId};
use crate::native::{spawn_native, NativeProgram, Request, Response};
use crate::proc::{Body, ExitInfo, Proc, ProcState};
use crate::signal::deliver_pending;
use crate::sys::args::{SysRetval, Syscall, SyscallResult};
use crate::sys::ctx::SysCtx;
use crate::sys::{dispatch, vmabi};
use crate::user::{FileRef, UserArea};

/// Why a run loop stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every machine is idle: no runnable, wakeable or sleeping process.
    Idle,
    /// The slice budget ran out first.
    BudgetExhausted,
}

/// The fixed part of a VM image a pre-copy target stages before any
/// data page arrives: everything the reassembled `a.outXXXXX` needs
/// besides the page contents themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageGeometry {
    /// The (immutable, never dirty) text segment.
    pub text: Vec<u8>,
    /// The original entry point.
    pub entry: u32,
    /// The a.out machine id (`a_machtype`) of the required ISA.
    pub machtype: u16,
    /// Base guest address of the data segment.
    pub data_base: u32,
    /// Data segment length in bytes (data + bss).
    pub data_len: u32,
}

/// The machine table, with optional occupancy.
///
/// Under sharded execution ([`shard`]) machines are moved out to shard
/// worlds for a window and merged back afterwards, so the table must
/// represent absence. Index syntax is preserved for the many
/// `machines[mid]` sites; indexing an absent slot panics, which is
/// exactly the property the shard design wants — code that touches a
/// machine outside its resident partition dies loudly and
/// deterministically instead of racing. In a serial world every slot is
/// always occupied and the wrapper is pure plumbing.
#[derive(Debug, Default)]
pub(crate) struct MachineSlots(Vec<Option<Machine>>);

impl MachineSlots {
    /// Slot count (absent slots included): machine ids stay dense.
    pub(crate) fn len(&self) -> usize {
        self.0.len()
    }

    fn push(&mut self, m: Machine) {
        self.0.push(Some(m));
    }

    /// Whether `mid` is resident in this world right now.
    pub(crate) fn present(&self, mid: MachineId) -> bool {
        self.0.get(mid).is_some_and(Option::is_some)
    }

    /// Moves a machine out (to a shard), leaving the slot empty.
    pub(crate) fn take(&mut self, mid: MachineId) -> Machine {
        self.0[mid].take().expect("machine slot already vacated")
    }

    /// Moves a machine back into its slot.
    pub(crate) fn put(&mut self, mid: MachineId, m: Machine) {
        debug_assert_eq!(m.id, mid, "machine returned to the wrong slot");
        debug_assert!(self.0[mid].is_none(), "machine slot already occupied");
        self.0[mid] = Some(m);
    }

    /// Grows the table to `n` empty slots (shard-world construction).
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        while self.0.len() < n {
            self.0.push(None);
        }
    }

    /// Every resident machine, in id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Machine> {
        self.0.iter().filter_map(Option::as_ref)
    }

    /// Every resident machine mutably, in id order.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Machine> {
        self.0.iter_mut().filter_map(Option::as_mut)
    }
}

impl std::ops::Index<MachineId> for MachineSlots {
    type Output = Machine;
    fn index(&self, mid: MachineId) -> &Machine {
        self.0[mid]
            .as_ref()
            .expect("machine not resident in this world")
    }
}

impl std::ops::IndexMut<MachineId> for MachineSlots {
    fn index_mut(&mut self, mid: MachineId) -> &mut Machine {
        self.0[mid]
            .as_mut()
            .expect("machine not resident in this world")
    }
}

/// The whole simulated installation.
pub struct World {
    /// Kernel build configuration (all machines run the same build, as
    /// in the paper's installation).
    pub config: KernelConfig,
    machines: MachineSlots,
    /// The shared 10 Mbit segment.
    pub ether: Ethernet,
    terminals: Vec<TtyHandle>,
    /// Exit records, kept forever for measurement:
    /// `(machine, pid) -> info`.
    pub finished: std::collections::BTreeMap<(MachineId, u32), ExitInfo>,
    /// Processes successfully overlaid by `rest_proc()`, mapped to the
    /// image name they became. An `rsh` or `run_local` waiter treats an
    /// overlaid command as complete (status 0): the restored program
    /// keeps running, but the session detaches — the practical reading
    /// of `restart`'s "there is no return from this system call".
    pub overlaid: std::collections::BTreeMap<(MachineId, u32), String>,
    /// Waiters whose remote command was started through the migration
    /// daemon rather than `rsh` (no teardown cost on completion).
    daemon_waiters: std::collections::BTreeSet<(MachineId, u32)>,
    /// The armed fault-injection plan (empty by default: nothing fires).
    pub faults: FaultPlan,
    /// Event-scheduler work list: machines with pending wake candidates
    /// to service before the next pick. Mid-ordered so the drain visits
    /// machines in the same order the reference scan does.
    wake_queue: std::collections::BTreeSet<MachineId>,
    /// Event-scheduler ready index: `(local clock at enrolment,
    /// machine)` for every machine believed to have work. Keys go stale
    /// when a clock advances after enrolment (clocks only move forward,
    /// so a stale key is always an underestimate); [`World::next_ready`]
    /// re-keys stale entries as they surface. The `MachineId` tie-break
    /// keeps dual runs bit-identical.
    ready: std::collections::BTreeSet<(SimTime, MachineId)>,
    /// Terminal wait index: tty id to blocked `(machine, pid)` readers.
    tty_waiters: std::collections::BTreeMap<u32, std::collections::BTreeSet<(MachineId, u32)>>,
    /// Remote-completion wait index: `(server, remote pid)` to the
    /// `(machine, pid)` waiters parked in `RemoteWait` on it.
    remote_waiters:
        std::collections::BTreeMap<(MachineId, u32), std::collections::BTreeSet<(MachineId, u32)>>,
    /// Scratch pid buffer reused by every wake pass so the steady state
    /// allocates nothing per slice.
    wake_scratch: Vec<u32>,
    /// Scheduling slices executed across all run loops. Host-side
    /// observability for the cluster benchmark — never part of
    /// simulated state or the determinism snapshot.
    pub slices: u64,
    /// Which machine owns each terminal's `/dev` node (`None` for
    /// remote-pipe endpoints, which have no node and no owner). Pure
    /// topology, fixed at terminal creation; the shard gate's crossing
    /// classifier reads it to decide whether a tty operation leaves the
    /// issuing machine.
    tty_owners: Vec<Option<MachineId>>,
    /// True in a shard world: system calls that would cross the machine
    /// boundary are staged ([`crate::machine::StagedTrap`]) for the
    /// coordinator's serial phase instead of dispatched. Always false
    /// in the main world, where the gate must not perturb serial
    /// semantics.
    pub(crate) shard_gate: bool,
    /// Cross-machine effects aimed at machines not resident here,
    /// queued for ordered delivery by the coordinator. Empty whenever
    /// every machine is resident (i.e. always, in a serial world).
    pub(crate) seam: SeamQueue,
    /// The machine currently inside `step_machine_inner`, for seam
    /// effect attribution. Host-side scratch only.
    stepping: MachineId,
}

impl World {
    /// An empty world.
    pub fn new(config: KernelConfig) -> World {
        World {
            config,
            machines: MachineSlots::default(),
            ether: Ethernet::new(),
            terminals: Vec::new(),
            finished: std::collections::BTreeMap::new(),
            overlaid: std::collections::BTreeMap::new(),
            daemon_waiters: std::collections::BTreeSet::new(),
            faults: FaultPlan::none(),
            wake_queue: std::collections::BTreeSet::new(),
            ready: std::collections::BTreeSet::new(),
            tty_waiters: std::collections::BTreeMap::new(),
            remote_waiters: std::collections::BTreeMap::new(),
            wake_scratch: Vec::new(),
            slices: 0,
            tty_owners: Vec::new(),
            shard_gate: false,
            seam: SeamQueue::new(),
            stepping: 0,
        }
    }

    // ------------------------------------------------------------------
    // Topology.
    // ------------------------------------------------------------------

    /// Boots a machine and NFS-cross-mounts it with every existing one
    /// (the paper's convention "of mounting the root directory of a
    /// machine to the /n subdirectory of the root directory of all other
    /// machines").
    pub fn add_machine(&mut self, name: &str, isa: IsaLevel) -> MachineId {
        let id = self.machines.len();
        let mut m = Machine::boot(id, name, isa);
        for other in self.machines.iter_mut() {
            other.mounts.insert(name.to_string(), id);
            m.mounts.insert(other.name.clone(), other.id);
        }
        // A machine also reaches itself as /n/<self>, so names rewritten
        // by dumpproc keep working when the restart happens locally.
        m.mounts.insert(name.to_string(), id);
        // init: pid 1, never scheduled, the reparenting target. Its cwd
        // string is initialised by the boot-time absolute chdir("/").
        let mut user = UserArea::new(
            Credentials::root(),
            FileRef {
                machine: id,
                ino: m.fs.root(),
            },
        );
        if self.config.track_names {
            user.cwd_path = Some("/".to_string());
        }
        let init = Proc {
            pid: Pid::INIT,
            ppid: Pid::INIT,
            state: ProcState::Stopped,
            body: Body::Idle,
            user,
            sig_pending: 0,
            utime: SimDuration::ZERO,
            stime: SimDuration::ZERO,
            start_time: SimTime::BOOT,
            pending_syscall: None,
            restart_pc: None,
            comm: "init".into(),
            alarm_at: None,
            dump_delta: false,
        };
        m.procs.insert(Pid::INIT.as_u32(), init);
        self.machines.push(m);
        id
    }

    /// Finds a machine by host name.
    pub fn find_machine(&self, name: &str) -> Option<MachineId> {
        (0..self.machines.len())
            .find(|&mid| self.machines.present(mid) && self.machines[mid].name == name)
    }

    /// Borrows a machine.
    pub fn machine(&self, mid: MachineId) -> &Machine {
        &self.machines[mid]
    }

    /// Mutably borrows a machine.
    pub fn machine_mut(&mut self, mid: MachineId) -> &mut Machine {
        &mut self.machines[mid]
    }

    /// Number of machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Mutably borrows a machine's filesystem (possibly a *remote* one
    /// from the caller's point of view — the RPC cost is charged
    /// separately).
    pub fn fs_mut(&mut self, mid: MachineId) -> &mut Filesystem {
        &mut self.machines[mid].fs
    }

    /// Creates a terminal attached to `mid` (a `/dev/ttyN` node appears
    /// there) and returns its world id and host-side handle.
    pub fn add_terminal(&mut self, mid: MachineId) -> (u32, TtyHandle) {
        let id = self.terminals.len() as u32;
        let handle = TtyHandle::new(Terminal::new());
        self.terminals.push(handle.clone());
        self.tty_owners.push(Some(mid));
        let m = &mut self.machines[mid];
        let name = format!("tty{id}");
        m.fs.mknod(m.dev_dir, &name, DeviceId::Tty(id), &Credentials::root())
            .expect("mknod tty");
        (id, handle)
    }

    /// Creates a degraded rsh-pipe endpoint (no device node; reachable
    /// only as a controlling terminal).
    pub fn add_remote_pipe(&mut self) -> (u32, TtyHandle) {
        let id = self.terminals.len() as u32;
        let handle = TtyHandle::new(Terminal::remote_pipe());
        self.terminals.push(handle.clone());
        self.tty_owners.push(None);
        (id, handle)
    }

    /// The machine owning terminal `tty`'s device node, `None` for
    /// remote-pipe endpoints.
    pub(crate) fn tty_owner(&self, tty: u32) -> Option<MachineId> {
        self.tty_owners.get(tty as usize).copied().flatten()
    }

    /// A terminal handle by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id — terminal ids are world-assigned and
    /// never reclaimed.
    pub fn terminal(&self, id: u32) -> TtyHandle {
        self.terminals[id as usize].clone()
    }

    /// Every terminal in id order, for the determinism snapshot: the
    /// transcripts are simulated output and must be bit-identical
    /// across runs like any other state.
    pub fn terminals(&self) -> &[TtyHandle] {
        &self.terminals
    }

    /// The daemon-started remote-command waiters, for the determinism
    /// snapshot.
    pub fn daemon_waiters(&self) -> &std::collections::BTreeSet<(MachineId, u32)> {
        &self.daemon_waiters
    }

    // ------------------------------------------------------------------
    // Small accessors used by the syscall handlers.
    // ------------------------------------------------------------------

    /// Borrows a process.
    pub fn proc_ref(&self, mid: MachineId, pid: Pid) -> Option<&Proc> {
        self.machines[mid].proc_ref(pid)
    }

    /// Mutably borrows a process.
    pub fn proc_mut(&mut self, mid: MachineId, pid: Pid) -> Option<&mut Proc> {
        self.machines[mid].proc_mut(pid)
    }

    /// The credentials of a process.
    pub fn cred_of(&self, mid: MachineId, pid: Pid) -> SysResult<Credentials> {
        self.proc_ref(mid, pid)
            .map(|p| p.user.cred.clone())
            .ok_or(Errno::ESRCH)
    }

    /// The working directory of a process.
    pub fn cwd_of(&self, mid: MachineId, pid: Pid) -> SysResult<FileRef> {
        self.proc_ref(mid, pid)
            .map(|p| p.user.cwd)
            .ok_or(Errno::ESRCH)
    }

    /// Best-effort absolute form of a path argument (used for the name
    /// bookkeeping and the buffer-cache key).
    pub fn abs_guess(&self, mid: MachineId, pid: Pid, arg: &str) -> Option<String> {
        if vpath::is_absolute(arg) {
            return Some(vpath::normalize(arg));
        }
        self.proc_ref(mid, pid)
            .and_then(|p| p.user.cwd_path.as_deref())
            .map(|cwd| vpath::combine(cwd, arg))
    }

    /// Resolves a descriptor to its file-table index.
    pub fn file_idx(&self, mid: MachineId, pid: Pid, fd: usize) -> SysResult<usize> {
        self.proc_ref(mid, pid)
            .ok_or(Errno::ESRCH)?
            .user
            .fds
            .get(fd)
            .copied()
            .flatten()
            .ok_or(Errno::EBADF)
    }

    /// Charges a cost to a machine and process. Kernel-internal paths
    /// (teardown, signal frames, dump writing) call this directly;
    /// system-call handlers must charge through their
    /// [`crate::sys::ctx::SysCtx`] instead so the cost lands in the
    /// call's accounting.
    pub fn charge_kernel(&mut self, mid: MachineId, pid: Pid, cost: Cost) {
        self.machines[mid].charge_sys(Some(pid), cost);
    }

    /// Consults the fault plan for one eligible event at `site` on
    /// `mid`. When a rule fires: bumps the machine's injection counter,
    /// cuts a ktrace `Fault` record (part of the determinism snapshot),
    /// and returns the hit's secondary roll.
    pub fn fault_fire(
        &mut self,
        site: FaultSite,
        mid: MachineId,
        pid: Pid,
        err: Errno,
    ) -> Option<u64> {
        if self.faults.is_empty() {
            return None;
        }
        let now_us = self.machines[mid].now.as_micros();
        let hit = self.faults.fire(site, mid, now_us)?;
        let m = &mut self.machines[mid];
        m.stats.faults_injected += 1;
        m.ktrace.push(
            m.now,
            pid,
            "fault",
            crate::ktrace::KtraceEvent::Fault {
                site: site.name(),
                err,
            },
        );
        Some(hit.roll)
    }

    /// Sweeps `/usr/tmp` on `mid` for dump files no live migration owns
    /// — the `a.outXXXXX`/`filesXXXXX`/`stackXXXXX` triples (and the
    /// pre-copy `deltaXXXXX` files) a source-machine crash strands — and
    /// unlinks them. Returns the names removed, sorted, so callers can
    /// report (and tests assert) exactly what was reaped.
    ///
    /// Driven by the machine's incremental [`Machine::pending_dumps`]
    /// index rather than a directory scan: every dump-artifact create
    /// (kernel dump writer, local `creat`, NFS cross-call) adds its pid
    /// to the set and every unlink of a triple's last file removes it,
    /// so the sweep probes only names that can exist. The index is a
    /// superset of the truth and the probe evicts entries whose files
    /// are already gone, keeping it self-cleaning.
    pub fn host_reap_orphan_dumps(&mut self, mid: MachineId) -> Vec<String> {
        let m = &mut self.machines[mid];
        let dir = m.dump_dir;
        let root = sysdefs::Credentials::root();
        let mut reaped = Vec::new();
        for pid in std::mem::take(&mut m.pending_dumps) {
            for prefix in crate::machine::DUMP_ARTIFACT_PREFIXES {
                let name = format!("{prefix}{pid:05}");
                if m.fs.unlink(dir, &name, &root).is_ok() {
                    reaped.push(name);
                }
            }
        }
        reaped.sort();
        reaped
    }

    /// Charges one NFS RPC to the client; returns the charged cost and
    /// whether the RPC survived the fault plan. Same contract as
    /// [`World::charge_kernel`]: handlers go through
    /// `SysCtx::charge_rpc`, kernel paths may call this directly.
    ///
    /// When the fault plan drops this RPC the client still pays the op's
    /// cost *plus* the soft-mount retransmission window, and the call
    /// surfaces `ETIMEDOUT`. The server-side mutation may have landed
    /// anyway — exactly the at-least-once ambiguity a dropped NFS reply
    /// gives a real client — so callers must treat `ETIMEDOUT` as
    /// "unknown", not "not done".
    pub fn charge_kernel_rpc(
        &mut self,
        mid: MachineId,
        pid: Pid,
        op: NfsOp,
    ) -> (Cost, SysResult<()>) {
        let cost = op.cost(&self.config.cost, &mut self.ether);
        let m = &mut self.machines[mid];
        m.stats.nfs_rpcs += 1;
        m.charge_sys(Some(pid), cost);
        if self
            .fault_fire(FaultSite::NfsOp, mid, pid, Errno::ETIMEDOUT)
            .is_some()
        {
            let wait = Cost::wait_us(NFS_SOFT_TIMEOUT_US);
            self.machines[mid].charge_sys(Some(pid), wait);
            return (cost.plus(wait), Err(Errno::ETIMEDOUT));
        }
        (cost, Ok(()))
    }

    // ------------------------------------------------------------------
    // Host-level filesystem helpers (no simulated cost): test fixtures,
    // program installation, result inspection.
    // ------------------------------------------------------------------

    /// Creates every missing directory along `path` (absolute) on `mid`.
    pub fn host_mkdir_p(&mut self, mid: MachineId, path: &str) -> SysResult<()> {
        let cred = Credentials::root();
        let m = &mut self.machines[mid];
        let mut dir = m.fs.root();
        for comp in vpath::components(path) {
            dir = match m.fs.lookup(dir, &comp) {
                Ok(ino) => ino,
                Err(_) => m.fs.mkdir(dir, &comp, sysdefs::FileMode(0o777), &cred)?,
            };
        }
        Ok(())
    }

    /// Writes a file at an absolute local path on `mid`, creating parent
    /// directories as needed.
    pub fn host_write_file(&mut self, mid: MachineId, path: &str, bytes: &[u8]) -> SysResult<()> {
        let dir_path = vpath::dirname(path);
        self.host_mkdir_p(mid, &dir_path)?;
        let cred = Credentials::root();
        let m = &mut self.machines[mid];
        let comps = vpath::components(&dir_path);
        let dir = match m.fs.walk(m.fs.root(), &comps, None)? {
            WalkOutcome::Done(ino) => ino,
            _ => return Err(Errno::ENOENT),
        };
        let name = vpath::basename(path);
        let ino = match m.fs.lookup(dir, name) {
            Ok(ino) => {
                m.fs.truncate(ino)?;
                ino
            }
            Err(_) => {
                m.fs.create_file(dir, name, sysdefs::FileMode(0o755), &cred)?
            }
        };
        m.note_dump_create(dir, name);
        m.fs.write(ino, 0, bytes)?;
        Ok(())
    }

    /// Reads a file at an absolute local path on `mid` (no symlink
    /// following).
    pub fn host_read_file(&self, mid: MachineId, path: &str) -> SysResult<Vec<u8>> {
        let m = &self.machines[mid];
        let comps = vpath::components(path);
        match m.fs.walk(m.fs.root(), &comps, None)? {
            WalkOutcome::Done(ino) => {
                let len = m.fs.file_len(ino)?;
                m.fs.read(ino, 0, len as usize)
            }
            _ => Err(Errno::ENOENT),
        }
    }

    /// Installs an assembled program as an executable a.out file.
    pub fn install_program(
        &mut self,
        mid: MachineId,
        path: &str,
        obj: &m68vm::Object,
    ) -> SysResult<()> {
        self.host_write_file(mid, path, &aout::encode_object(obj))
    }

    // ------------------------------------------------------------------
    // Pre-copy migration hooks: the protocol engine watches and drains a
    // running VM process's pages through these. Host-side state flips
    // carry no simulated cost — the engine charges every transferred
    // byte through `charge_kernel_rpc` itself.
    // ------------------------------------------------------------------

    /// Arms (or disarms) page-granular dirty tracking on a VM process.
    /// Arming starts with every page dirty — the first pre-copy round
    /// sends the whole image. Returns false for missing or non-VM pids.
    pub fn host_set_dirty_tracking(&mut self, mid: MachineId, pid: Pid, on: bool) -> bool {
        match self.proc_mut(mid, pid) {
            Some(p) => match &mut p.body {
                Body::Vm(vm) => {
                    if on {
                        vm.mem.enable_dirty_tracking();
                    } else {
                        vm.mem.disable_dirty_tracking();
                    }
                    true
                }
                _ => false,
            },
            None => false,
        }
    }

    /// Flips the freeze-mode flag: with it set, the next `SIGDUMP`
    /// writes a `deltaXXXXX` of the still-dirty pages instead of the
    /// full `a.outXXXXX`. Returns false for missing pids.
    pub fn host_set_dump_delta(&mut self, mid: MachineId, pid: Pid, on: bool) -> bool {
        match self.proc_mut(mid, pid) {
            Some(p) => {
                p.dump_delta = on;
                true
            }
            None => false,
        }
    }

    /// The fixed image geometry a pre-copy target needs before any page
    /// arrives: text bytes, entry point, machine id, and the data
    /// segment's placement. `None` for missing or non-VM pids.
    pub fn host_image_geometry(&self, mid: MachineId, pid: Pid) -> Option<ImageGeometry> {
        let p = self.proc_ref(mid, pid)?;
        let Body::Vm(vm) = &p.body else {
            return None;
        };
        Some(ImageGeometry {
            text: vm.mem.text().to_vec(),
            entry: vm.entry,
            machtype: match vm.isa_required {
                m68vm::IsaLevel::Isa1 => aout::MID_ISA1,
                m68vm::IsaLevel::Isa2 => aout::MID_ISA2,
            },
            data_base: vm.mem.data_base(),
            data_len: vm.mem.data().len() as u32,
        })
    }

    /// How many pages the process has dirtied since the last drain
    /// (0 when tracking is off or the pid is gone).
    pub fn host_dirty_count(&self, mid: MachineId, pid: Pid) -> usize {
        self.proc_ref(mid, pid)
            .and_then(|p| match &p.body {
                Body::Vm(vm) => Some(vm.mem.dirty_count()),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Drains one pre-copy round: takes the dirty set and returns each
    /// page's current bytes, bumping the source's `pages_precopied`.
    /// Tracking stays armed, so writes from here on dirty the next
    /// round's set.
    pub fn host_take_dirty_pages(&mut self, mid: MachineId, pid: Pid) -> Vec<(u32, Vec<u8>)> {
        let Some(p) = self.proc_mut(mid, pid) else {
            return Vec::new();
        };
        let Body::Vm(vm) = &mut p.body else {
            return Vec::new();
        };
        let pages: Vec<(u32, Vec<u8>)> = vm
            .mem
            .take_dirty()
            .into_iter()
            .filter_map(|pg| Some((pg, vm.mem.page_slice(pg)?.to_vec())))
            .collect();
        self.machines[mid].stats.pages_precopied += pages.len() as u64;
        pages
    }

    /// Fetches one absent page of a demand-restored process from the
    /// host side — the migration engine's residual drain, which pulls
    /// the pages the process has not happened to touch yet so the
    /// source dump can eventually be released. Charges a fault-consulted
    /// NFS read like the fault path does. Returns `None` when nothing is
    /// absent (or the pid is gone/non-VM), `Some(Ok(page))` on success,
    /// `Some(Err(e))` on a dropped RPC or an unreadable source dump.
    pub fn host_prefetch_absent_page(
        &mut self,
        mid: MachineId,
        pid: Pid,
    ) -> Option<SysResult<u32>> {
        let (page, residual, data_base, data_len) =
            self.proc_ref(mid, pid).and_then(|p| match &p.body {
                Body::Vm(vm) => Some((
                    *vm.mem.absent_pages().first()?,
                    vm.residual.clone()?,
                    vm.mem.data_base(),
                    vm.mem.data().len(),
                )),
                _ => None,
            })?;
        let page_off = (m68vm::MemoryLayout::page_addr(page) - data_base) as usize;
        let len = (m68vm::MemoryLayout::PAGE as usize).min(data_len - page_off);
        let (_, r) = self.charge_kernel_rpc(mid, pid, NfsOp::Read(len));
        if let Err(e) = r {
            return Some(Err(e));
        }
        let off = residual.data_off + page_off;
        let bytes = match self.host_read_file(residual.server, &residual.aout_path) {
            Ok(b) if b.len() >= off + len => b[off..off + len].to_vec(),
            Ok(_) => return Some(Err(Errno::EIO)),
            Err(e) => return Some(Err(e)),
        };
        let m = &mut self.machines[mid];
        m.stats.pages_fetched += 1;
        if let Some(p) = m.proc_mut(pid) {
            if let Body::Vm(vm) = &mut p.body {
                vm.mem.install_page(page, &bytes);
                if !vm.mem.has_absent() {
                    vm.residual = None;
                }
            }
        }
        Some(Ok(page))
    }

    /// True while `pid` on `mid` is a demand-restored image still
    /// missing pages.
    pub fn host_has_absent_pages(&self, mid: MachineId, pid: Pid) -> bool {
        self.proc_ref(mid, pid)
            .map(|p| match &p.body {
                Body::Vm(vm) => vm.mem.has_absent(),
                _ => false,
            })
            .unwrap_or(false)
    }

    // ------------------------------------------------------------------
    // Spawning.
    // ------------------------------------------------------------------

    fn fresh_user(&self, mid: MachineId, cred: Credentials, tty: Option<u32>) -> UserArea {
        let mut user = UserArea::new(
            cred,
            FileRef {
                machine: mid,
                ino: self.machines[mid].fs.root(),
            },
        );
        if self.config.track_names {
            // Inherited from init, whose boot-time chdir("/") initialised
            // the field.
            user.cwd_path = Some("/".to_string());
        }
        user.tty = tty;
        user
    }

    fn attach_stdio(&mut self, mid: MachineId, user: &mut UserArea, tty: Option<u32>) {
        let Some(tty) = tty else { return };
        let m = &mut self.machines[mid];
        let mut f = FileStruct::new(
            FileKind::Device(DeviceId::Tty(tty)),
            sysdefs::OpenFlags::RDWR,
        );
        if self.config.track_names {
            f.path = Some(format!("/dev/tty{tty}"));
        }
        let idx = m.files.insert(f);
        m.files.incref(idx);
        m.files.incref(idx);
        user.fds[0] = Some(idx);
        user.fds[1] = Some(idx);
        user.fds[2] = Some(idx);
    }

    fn insert_proc(
        &mut self,
        mid: MachineId,
        body: Body,
        user: UserArea,
        ppid: Pid,
        comm: &str,
    ) -> Pid {
        let pid = self.machines[mid].alloc_pid();
        let now = self.machines[mid].now;
        let proc = Proc {
            pid,
            ppid,
            state: ProcState::Runnable,
            body,
            user,
            sig_pending: 0,
            utime: SimDuration::ZERO,
            stime: SimDuration::ZERO,
            start_time: now,
            pending_syscall: None,
            restart_pc: None,
            comm: comm.to_string(),
            alarm_at: None,
            dump_delta: false,
        };
        self.machines[mid].procs.insert(pid.as_u32(), proc);
        self.machines[mid].make_runnable(pid);
        // The machine gained work — enroll it in the ready index even
        // when the spawn comes from outside a scheduling slice.
        self.wake_queue.insert(mid);
        pid
    }

    /// Spawns a native (Rust) program as a process on `mid`.
    pub fn spawn_native_proc(
        &mut self,
        mid: MachineId,
        comm: &str,
        tty: Option<u32>,
        cred: Credentials,
        prog: NativeProgram,
    ) -> Pid {
        let mut user = self.fresh_user(mid, cred, tty);
        self.attach_stdio(mid, &mut user, tty);
        let chan = spawn_native(prog);
        self.insert_proc(mid, Body::Native(chan), user, Pid::INIT, comm)
    }

    /// Spawns a VM program from an executable file on `mid`'s namespace.
    pub fn spawn_vm_proc(
        &mut self,
        mid: MachineId,
        exe_path: &str,
        tty: Option<u32>,
        cred: Credentials,
    ) -> SysResult<Pid> {
        let mut user = self.fresh_user(mid, cred, tty);
        self.attach_stdio(mid, &mut user, tty);
        let comm = exe_path.rsplit('/').next().unwrap_or(exe_path).to_string();
        let pid = self.insert_proc(mid, Body::Idle, user, Pid::INIT, &comm);
        // Boot-time load, not a trap: no entry hook, so no trap charge
        // or trace record — only the handler's own costs, as before.
        let mut cx = SysCtx::new(self, mid, pid);
        match crate::sys::exec::sys_execve(&mut cx, exe_path) {
            SyscallResult::Gone => Ok(pid),
            SyscallResult::Done(ret) => {
                let e = ret.val.err().unwrap_or(Errno::ENOEXEC);
                self.do_exit(mid, pid, 127);
                Err(e)
            }
            SyscallResult::Blocked => unreachable!("execve never blocks"),
        }
    }

    // ------------------------------------------------------------------
    // Exit.
    // ------------------------------------------------------------------

    /// Terminates a process: closes descriptors, records accounting,
    /// reparents children, wakes the parent.
    pub fn do_exit(&mut self, mid: MachineId, pid: Pid, status: u32) {
        // Close every descriptor (charging the owning process).
        let fds: Vec<usize> = match self.proc_ref(mid, pid) {
            Some(p) => p
                .user
                .fds
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|_| i))
                .collect(),
            None => return,
        };
        {
            let mut cx = SysCtx::new(self, mid, pid);
            for fd in fds {
                let _ = crate::sys::fsops::close_common(&mut cx, fd);
            }
        }
        let c = self.config.cost.proc_teardown();
        self.charge_kernel(mid, pid, c);

        let (ppid, info) = {
            let m = &mut self.machines[mid];
            let now = m.now;
            let p = m.proc_mut(pid).expect("exiting process exists");
            p.state = ProcState::Zombie { status };
            // Dropping the body releases VM memory or unblocks the
            // native thread.
            p.body = Body::Idle;
            p.pending_syscall = None;
            (
                p.ppid,
                ExitInfo {
                    status,
                    utime: p.utime,
                    stime: p.stime,
                    started: p.start_time,
                    ended: now,
                },
            )
        };
        self.finished.insert((mid, pid.as_u32()), info);
        // Anyone in RemoteWait on this process can now complete.
        self.poke_remote_done(mid, pid.as_u32());
        {
            let m = &mut self.machines[mid];
            m.run_queue.retain(|&q| q != pid);
            if m.last_run == Some(pid) {
                m.last_run = None;
            }
            // Reparent children to init.
            let child_pids: Vec<u32> = m
                .procs
                .values()
                .filter(|p| p.ppid == pid && p.pid != pid)
                .map(|p| p.pid.as_u32())
                .collect();
            for cp in child_pids {
                if let Some(c) = m.procs.get_mut(&cp) {
                    c.ppid = Pid::INIT;
                    // Zombie orphans are reaped by init immediately.
                    if matches!(c.state, ProcState::Zombie { .. }) {
                        m.procs.remove(&cp);
                    }
                }
            }
        }
        // Wake a waiting parent and post SIGCHLD.
        if ppid != Pid::INIT {
            let wake = {
                let m = &self.machines[mid];
                m.proc_ref(ppid)
                    .map(|p| matches!(p.state, ProcState::ChildWait))
                    .unwrap_or(false)
            };
            if let Some(parent) = self.proc_mut(mid, ppid) {
                parent.post_signal(Signal::SIGCHLD);
            }
            if wake {
                self.machines[mid].make_runnable(ppid);
            }
            // Parents waiting with signals blocked, or racing into
            // ChildWait, are caught by the poke at the next service.
            self.poke_proc(mid, ppid);
        } else {
            // Children of init: reap immediately.
            self.machines[mid].procs.remove(&pid.as_u32());
        }
        // An exit can change the machine's work state (last runnable
        // process gone) even outside a scheduling slice.
        self.wake_queue.insert(mid);
    }

    // ------------------------------------------------------------------
    // Scheduling.
    // ------------------------------------------------------------------

    /// Checks every blocked process on `mid` and wakes those whose
    /// condition holds — the reference [`crate::config::Sched::Scan`]
    /// wake pass. The per-slice pid lists live in a scratch buffer owned
    /// by the world, so the steady state allocates nothing.
    fn wake_scan(&mut self, mid: MachineId) {
        // A staged machine is frozen mid-slice (shard gate): waking
        // anything now would land *inside* the slice, which the serial
        // engine never does. Wakes wait until the resume completes.
        if self.machines[mid].staged.is_some() {
            return;
        }
        // The full scan supersedes any queued event pokes.
        self.machines[mid].wait_pending.clear();
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        // Fire due alarms first: they may turn blocked processes
        // signal-wakeable.
        scratch.clear();
        {
            let m = &self.machines[mid];
            let now = m.now;
            scratch.extend(
                m.procs
                    .values()
                    .filter(|p| p.alarm_at.map(|t| now >= t).unwrap_or(false))
                    .map(|p| p.pid.as_u32()),
            );
        }
        for &pid in &scratch {
            self.fire_alarm(mid, Pid(pid));
        }
        scratch.clear();
        scratch.extend(
            self.machines[mid]
                .procs
                .values()
                .filter(|p| p.state.is_blocked())
                .map(|p| p.pid.as_u32()),
        );
        for &pid in &scratch {
            self.wake_one(mid, Pid(pid));
        }
        self.wake_scratch = scratch;
    }

    /// Clears a due alarm and posts `SIGALRM` (nudging the target so a
    /// runnable process takes it promptly).
    fn fire_alarm(&mut self, mid: MachineId, pid: Pid) {
        let m = &mut self.machines[mid];
        if let Some(p) = m.proc_mut(pid) {
            p.alarm_at = None;
            p.post_signal(Signal::SIGALRM);
        }
        m.nudge(pid);
    }

    /// Evaluates one blocked process's wake condition and applies the
    /// resulting action. Shared verbatim by the reference scan and the
    /// event scheduler's wake service: identical evaluation in identical
    /// pid order is what keeps the two paths bit-identical.
    fn wake_one(&mut self, mid: MachineId, pid: Pid) {
        {
            enum Action {
                Nothing,
                Wake,
                CompleteSleep,
                CompleteRemote(u32, MachineId, Pid),
                CompletePageFetch(u32),
            }
            let action = {
                let p = match self.proc_ref(mid, pid) {
                    Some(p) => p,
                    None => return,
                };
                let signal_wake = p.signal_pending()
                    && !matches!(p.state, ProcState::Stopped)
                    && self.signal_would_act(mid, pid);
                match &p.state {
                    ProcState::Sleeping { until } => {
                        if self.machines[mid].now >= *until {
                            Action::CompleteSleep
                        } else if signal_wake {
                            Action::Wake
                        } else {
                            Action::Nothing
                        }
                    }
                    ProcState::TtyWait { tty } => {
                        if self.terminals[*tty as usize].with(|t| t.read_ready()) || signal_wake {
                            Action::Wake
                        } else {
                            Action::Nothing
                        }
                    }
                    ProcState::PipeWait => {
                        if signal_wake || self.pipe_ready(mid, pid) {
                            Action::Wake
                        } else {
                            Action::Nothing
                        }
                    }
                    ProcState::ChildWait => {
                        let m = &self.machines[mid];
                        let has_zombie = m
                            .procs
                            .values()
                            .any(|c| c.ppid == pid && matches!(c.state, ProcState::Zombie { .. }));
                        let has_children = m.procs.values().any(|c| c.ppid == pid);
                        if has_zombie || !has_children || signal_wake {
                            Action::Wake
                        } else {
                            Action::Nothing
                        }
                    }
                    ProcState::RemoteWait { server, pid: rp } => {
                        match self.finished.get(&(*server, rp.as_u32())) {
                            Some(info) => Action::CompleteRemote(info.status, *server, *rp),
                            None if self.overlaid.contains_key(&(*server, rp.as_u32())) => {
                                Action::CompleteRemote(0, *server, *rp)
                            }
                            None => Action::Nothing,
                        }
                    }
                    ProcState::PageWait { until, addr } => {
                        if self.machines[mid].now >= *until {
                            Action::CompletePageFetch(*addr)
                        } else if signal_wake {
                            // The signal interrupts the wait; if the
                            // process survives delivery it replays the
                            // faulting instruction and re-parks.
                            Action::Wake
                        } else {
                            Action::Nothing
                        }
                    }
                    ProcState::Stopped => {
                        // SIGCONT/SIGKILL handling happens at kill time.
                        Action::Nothing
                    }
                    ProcState::Runnable | ProcState::Zombie { .. } => Action::Nothing,
                }
            };
            match action {
                Action::Nothing => {}
                Action::Wake => self.machines[mid].make_runnable(pid),
                Action::CompleteSleep => {
                    self.complete_pending(mid, pid, SysRetval::ok(0));
                    self.machines[mid].make_runnable(pid);
                }
                Action::CompletePageFetch(addr) => self.complete_page_fetch(mid, pid, addr),
                Action::CompleteRemote(status, server, rp) => {
                    // rsh teardown: sync clocks and charge the teardown
                    // phase; local and daemon completions skip it (the
                    // daemon marker is remembered per waiter).
                    let server_now = self.machines[server].now;
                    let teardown =
                        server != mid && !self.daemon_waiters.remove(&(mid, pid.as_u32()));
                    let m = &mut self.machines[mid];
                    m.now = m.now.max(server_now);
                    if teardown {
                        let c = RshPhase::Teardown.cost(&self.config.cost);
                        m.charge_sys(Some(pid), c);
                    }
                    self.complete_pending(
                        mid,
                        pid,
                        SysRetval::with_data(status, rp.as_u32().to_be_bytes().to_vec()),
                    );
                    self.machines[mid].make_runnable(pid);
                }
            }
        }
    }

    /// Parks a VM process that faulted on an absent page of its
    /// demand-restored image: the residual-page fetch is in flight, and
    /// the process sleeps out the RPC's latency on the timer heap (the
    /// same lazy-deletion discipline as `sleep`). The faulting
    /// instruction's pc is preserved, so the wake replays it.
    pub(crate) fn park_page_fetch(&mut self, mid: MachineId, pid: Pid, addr: u32) {
        let page = m68vm::MemoryLayout::page_of(addr);
        let len = self
            .proc_ref(mid, pid)
            .and_then(|p| match &p.body {
                Body::Vm(vm) => {
                    let base = m68vm::MemoryLayout::page_addr(page);
                    let data_end = vm.mem.data_base() + vm.mem.data().len() as u32;
                    Some((data_end - base).min(m68vm::MemoryLayout::PAGE))
                }
                _ => None,
            })
            .unwrap_or(m68vm::MemoryLayout::PAGE);
        let cost = NfsOp::Read(len as usize).cost(&self.config.cost, &mut self.ether);
        let m = &mut self.machines[mid];
        let until = m.now + cost.cpu + cost.wait;
        if let Some(p) = m.proc_mut(pid) {
            p.state = ProcState::PageWait { until, addr };
        }
        m.push_timer(pid, until);
        self.wake_queue.insert(mid);
    }

    /// Completes (or retries, or abandons) a parked residual-page
    /// fetch: the page travels from the source machine's dump file into
    /// the waiting image. A fault-plan drop at the `page-fetch` site
    /// costs the soft-mount window and retries; three consecutive drops
    /// — or a vanished/torn dump — declare the residual dependency dead
    /// and kill the process, leaving the source dump as the single
    /// recoverable copy (the migration engine restarts from it).
    fn complete_page_fetch(&mut self, mid: MachineId, pid: Pid, addr: u32) {
        /// Consecutive timed-out fetches before the kernel gives up on
        /// the source (matches the migration engine's transient-retry
        /// budget).
        const PAGE_FETCH_TRIES: u32 = 3;

        let page = m68vm::MemoryLayout::page_of(addr);
        // The page may have landed while we were parked (the migration
        // engine's drain prefetches absent pages from the host side);
        // nothing left to fetch, just resume.
        let already_resident = self
            .proc_ref(mid, pid)
            .map(|p| match &p.body {
                Body::Vm(vm) => !vm.mem.absent_pages().contains(&page),
                _ => false,
            })
            .unwrap_or(false);
        if already_resident {
            self.machines[mid].make_runnable(pid);
            return;
        }
        let info = self.proc_ref(mid, pid).and_then(|p| match &p.body {
            Body::Vm(vm) => vm
                .residual
                .clone()
                .map(|r| (r, vm.mem.data_base(), vm.mem.data().len())),
            _ => None,
        });
        let Some((residual, data_base, data_len)) = info else {
            self.kill_residual(mid, pid);
            return;
        };
        if self
            .fault_fire(FaultSite::PageFetch, mid, pid, Errno::ETIMEDOUT)
            .is_some()
        {
            let until =
                self.machines[mid].now + SimDuration::micros(simnet::NFS_SOFT_TIMEOUT_US);
            let give_up = residual.tries + 1 >= PAGE_FETCH_TRIES;
            if let Some(p) = self.proc_mut(mid, pid) {
                if let Body::Vm(vm) = &mut p.body {
                    if let Some(r) = &mut vm.residual {
                        r.tries += 1;
                    }
                }
            }
            if give_up {
                self.kill_residual(mid, pid);
            } else {
                let m = &mut self.machines[mid];
                if let Some(p) = m.proc_mut(pid) {
                    p.state = ProcState::PageWait { until, addr };
                }
                m.push_timer(pid, until);
            }
            return;
        }
        let page_off = (m68vm::MemoryLayout::page_addr(page) - data_base) as usize;
        let off = residual.data_off + page_off;
        let len = (m68vm::MemoryLayout::PAGE as usize).min(data_len - page_off);
        let bytes = match self.host_read_file(residual.server, &residual.aout_path) {
            Ok(b) if b.len() >= off + len => b[off..off + len].to_vec(),
            _ => {
                self.kill_residual(mid, pid);
                return;
            }
        };
        let m = &mut self.machines[mid];
        m.stats.nfs_rpcs += 1;
        m.stats.pages_fetched += 1;
        if let Some(p) = m.proc_mut(pid) {
            if let Body::Vm(vm) = &mut p.body {
                vm.mem.install_page(page, &bytes);
                if let Some(r) = &mut vm.residual {
                    r.tries = 0;
                }
                if !vm.mem.has_absent() {
                    vm.residual = None;
                }
            }
        }
        m.make_runnable(pid);
    }

    /// Kills a demand-restored process whose residual dependency
    /// failed: without its source dump the copy on this machine cannot
    /// make progress, and the dump remains the one recoverable copy.
    fn kill_residual(&mut self, mid: MachineId, pid: Pid) {
        if let Some(p) = self.proc_mut(mid, pid) {
            p.post_signal(Signal::SIGKILL);
        }
        self.machines[mid].make_runnable(pid);
        self.poke_proc(mid, pid);
    }

    /// Would delivering the pending signals do anything (i.e. are they
    /// not all ignored)? Used to decide whether to interrupt a sleep.
    fn signal_would_act(&self, mid: MachineId, pid: Pid) -> bool {
        let Some(p) = self.proc_ref(mid, pid) else {
            return false;
        };
        let deliverable = p.sig_pending & !p.user.sigs.blocked;
        for sig in Signal::ALL {
            if deliverable & (1 << (sig.number() - 1)) == 0 {
                continue;
            }
            let disp = p.user.sigs.dispositions[(sig.number() - 1) as usize];
            let acts = match disp {
                sysdefs::Disposition::Ignore => false,
                sysdefs::Disposition::Handler(_) => true,
                sysdefs::Disposition::Default => !matches!(
                    sig.default_action(),
                    sysdefs::DefaultAction::Ignore | sysdefs::DefaultAction::Continue
                ),
            };
            if acts {
                return true;
            }
        }
        false
    }

    /// Is the pipe/socket a `PipeWait` process is parked on ready for
    /// its pending operation?
    fn pipe_ready(&self, mid: MachineId, pid: Pid) -> bool {
        let Some(p) = self.proc_ref(mid, pid) else {
            return false;
        };
        let (fd, is_read, len) = match &p.pending_syscall {
            Some(Syscall::Read { fd, len, .. }) => (*fd, true, *len),
            Some(Syscall::Write { fd, bytes }) => (*fd, false, bytes.len()),
            _ => return true, // Unknown op: wake and let the retry sort it out.
        };
        let Some(idx) = p.user.fds.get(fd).copied().flatten() else {
            return true;
        };
        let m = &self.machines[mid];
        let Some(f) = m.files.get(idx) else {
            return true;
        };
        let buf = match &f.kind {
            FileKind::Pipe { id, .. } => m.pipes.get(*id).and_then(|x| x.as_ref()),
            FileKind::Socket { id, side } => {
                let b = m.sockets.get(*id).and_then(|x| x.as_ref());
                b.map(|s| {
                    if is_read {
                        &s.bufs[1 - *side]
                    } else {
                        &s.bufs[*side]
                    }
                })
            }
            _ => return true,
        };
        let Some(buf) = buf else {
            return true;
        };
        if is_read {
            !buf.data.is_empty() || buf.writers == 0
        } else {
            buf.readers == 0 || buf.data.len() + len <= 4096
        }
    }

    /// Delivers a completed blocked call: write VM registers or send the
    /// native response, then clear the pending record.
    pub(crate) fn complete_pending(&mut self, mid: MachineId, pid: Pid, ret: SysRetval) {
        let Some(p) = self.proc_mut(mid, pid) else {
            return;
        };
        let sc = p.pending_syscall.take();
        p.restart_pc = None;
        let name = sc.as_ref().map(|s| s.name());
        let result = match ret.val {
            Ok(v) => crate::ktrace::KtraceResult::Ok(v),
            Err(e) => crate::ktrace::KtraceResult::Err(e),
        };
        match &mut p.body {
            Body::Vm(vm) => {
                if let Some(sc) = sc {
                    vmabi::writeback(&mut vm.cpu, &mut vm.mem, &sc, &ret);
                }
            }
            Body::Native(chan) => {
                let _ = chan.resp_tx.send(Response {
                    val: ret.val,
                    data: ret.data,
                    overlaid: false,
                });
            }
            Body::Idle => {}
        }
        // The parked call finished outside dispatch (sleep expiry,
        // remote completion, EINTR): cut the trace record here.
        if let Some(name) = name {
            let m = &mut self.machines[mid];
            let at = m.now;
            m.ktrace
                .push(at, pid, name, crate::ktrace::KtraceEvent::Complete { result });
        }
    }

    /// The earliest timer (sleep or alarm) on a machine, served from
    /// the machine's lazy-deletion deadline heap instead of a full
    /// process-table scan.
    fn earliest_deadline(&mut self, mid: MachineId) -> Option<SimTime> {
        self.machines[mid].next_deadline()
    }

    /// One wake pass over a machine, dispatched by the configured
    /// scheduler: the reference path sweeps every blocked process, the
    /// event path services only poked processes and due timers.
    fn wake(&mut self, mid: MachineId) {
        match self.config.sched {
            Sched::Scan => self.wake_scan(mid),
            Sched::Event => self.service_machine(mid),
        }
    }

    /// The event scheduler's wake pass: drain the machine's poke set and
    /// due-timer heap, fire due alarms, then evaluate exactly those
    /// processes — in pid order, mirroring the reference scan's
    /// alarm-sweep-then-blocked-sweep structure, so the two paths make
    /// identical state transitions in identical order.
    fn service_machine(&mut self, mid: MachineId) {
        // A staged machine is frozen mid-slice: servicing wakes now
        // would reorder its run queue relative to the serial engine,
        // which services only between slices. The pokes stay queued
        // (`wait_pending`) and are serviced after the resume.
        if self.machines[mid].staged.is_some() {
            return;
        }
        let mut pending = std::mem::take(&mut self.machines[mid].wait_pending);
        self.machines[mid].take_due_timers(&mut pending);
        if pending.is_empty() {
            self.machines[mid].wait_pending = pending;
            return;
        }
        let mut scratch = std::mem::take(&mut self.wake_scratch);
        scratch.clear();
        scratch.extend(pending.iter().copied());
        pending.clear();
        self.machines[mid].wait_pending = pending;
        // Alarms first: a fired SIGALRM may turn a blocked process
        // signal-wakeable for the second phase. The due-ness filter is
        // the same `alarm_at` check the scan applies, so stale timer
        // heap entries (lazy deletion) fire nothing.
        let now = self.machines[mid].now;
        for &raw in &scratch {
            let pid = Pid(raw);
            let due = self.machines[mid]
                .proc_ref(pid)
                .and_then(|p| p.alarm_at)
                .map(|t| now >= t)
                .unwrap_or(false);
            if due {
                self.fire_alarm(mid, pid);
            }
        }
        for &pid in &scratch {
            self.wake_one(mid, Pid(pid));
        }
        self.wake_scratch = scratch;
    }

    /// Re-keys a machine in the global ready index after its clock,
    /// run queue or timer heap changed. The stored key only ever
    /// *underestimates* the machine's clock (clocks are monotonic), so
    /// the index minimum is a lower bound that [`World::next_ready`]
    /// tightens lazily on pop.
    fn mark_ready(&mut self, mid: MachineId) {
        let has_work = {
            let m = &mut self.machines[mid];
            m.staged.is_some() || !m.run_queue.is_empty() || m.next_deadline().is_some()
        };
        let old = self.machines[mid].ready_key;
        if has_work {
            let now = self.machines[mid].sched_key();
            if old == Some(now) {
                return;
            }
            if let Some(k) = old {
                self.ready.remove(&(k, mid));
            }
            self.ready.insert((now, mid));
            self.machines[mid].ready_key = Some(now);
        } else if let Some(k) = old {
            self.ready.remove(&(k, mid));
            self.machines[mid].ready_key = None;
        }
    }

    /// Pops the ready machine with the smallest clock (MachineId breaks
    /// ties, matching the scan's first-lowest-index pick). Entries with
    /// stale keys are re-keyed and retried; entries without work are
    /// dropped. With a `deadline`, returns `None` once the earliest
    /// candidate's true clock has reached it.
    fn next_ready(&mut self, deadline: Option<SimTime>) -> Option<MachineId> {
        loop {
            let &(key, mid) = self.ready.first()?;
            let has_work = {
                let m = &mut self.machines[mid];
                m.staged.is_some() || !m.run_queue.is_empty() || m.next_deadline().is_some()
            };
            if !has_work {
                self.ready.remove(&(key, mid));
                self.machines[mid].ready_key = None;
                continue;
            }
            // A staged machine is keyed at its frozen slice's *start*
            // clock, which is how the serial engine ordered the slice —
            // and is always inside the window that froze it.
            let now = self.machines[mid].sched_key();
            if key != now {
                self.ready.remove(&(key, mid));
                self.ready.insert((now, mid));
                self.machines[mid].ready_key = Some(now);
                continue;
            }
            if let Some(d) = deadline {
                if now >= d {
                    return None;
                }
            }
            return Some(mid);
        }
    }

    /// Services every poked machine (in MachineId order, like the scan)
    /// and refreshes its ready-index entry.
    fn drain_wake_queue(&mut self) {
        while let Some(mid) = self.wake_queue.pop_first() {
            self.service_machine(mid);
            self.mark_ready(mid);
        }
    }

    /// Event-mode entry into a run loop. Terminals are the one piece of
    /// sim state the host mutates without a `World` hook (`TtyHandle`
    /// hands out the `Arc<Mutex<Terminal>>` directly, so typed input
    /// and closes are invisible to us), so poke every registered tty
    /// waiter once per run call; `poke_tty` re-checks the wait
    /// condition and evicts stale registrations. Every other host entry
    /// point (`host_post_signal`, `host_reap`, …) pokes at the mutation
    /// site — enforced statically by simlint's `wake-poke` rule — which
    /// is what lets this pass be O(tty waiters) instead of the
    /// conservative every-blocked-process sweep it replaced.
    fn enter_run(&mut self) {
        if self.config.sched != Sched::Event {
            return;
        }
        let ttys: Vec<u32> = self.tty_waiters.keys().copied().collect();
        for tty in ttys {
            self.poke_tty(tty);
        }
    }

    /// Marks one process for wake evaluation at the machine's next
    /// service. Over-poking is always safe (a false condition evaluates
    /// to no action, exactly as under the scan); *missing* a poke is the
    /// only hazard, so every state mutation that can flip a wake
    /// condition true calls one of these hooks.
    pub(crate) fn poke_proc(&mut self, mid: MachineId, pid: Pid) {
        if !self.machines.present(mid) {
            // The target lives outside this world (a shard poking across
            // its boundary): queue the effect for ordered delivery by
            // the coordinator instead of applying it here.
            let t = self.machines[self.stepping].now;
            self.seam.push(
                t,
                self.stepping,
                CrossEffect::Poke {
                    mid,
                    pid: pid.as_u32(),
                },
            );
            return;
        }
        self.machines[mid].wait_pending.insert(pid.as_u32());
        self.wake_queue.insert(mid);
    }

    /// Pokes the registered waiters of a pipe/socket buffer after its
    /// readable/writable state may have changed.
    pub(crate) fn poke_queue(&mut self, mid: MachineId, q: crate::machine::QueueId) {
        if self.machines[mid].poke_queue(q) {
            self.wake_queue.insert(mid);
        }
    }

    /// Records that `pid` on `mid` is blocked reading terminal `tty`.
    pub(crate) fn tty_wait_register(&mut self, tty: u32, mid: MachineId, pid: Pid) {
        self.tty_waiters
            .entry(tty)
            .or_default()
            .insert((mid, pid.as_u32()));
    }

    /// Pokes every process blocked on terminal `tty`, evicting entries
    /// whose process has since moved on.
    pub(crate) fn poke_tty(&mut self, tty: u32) {
        let Some(mut set) = self.tty_waiters.remove(&tty) else {
            return;
        };
        // Waiters on machines not resident here are kept registered and
        // forwarded to the coordinator as one seam effect.
        let mut foreign = false;
        set.retain(|&(mid, pid)| {
            if !self.machines.present(mid) {
                foreign = true;
                return true;
            }
            matches!(
                self.machines[mid].procs.get(&pid).map(|p| &p.state),
                Some(ProcState::TtyWait { .. })
            )
        });
        for &(mid, pid) in &set {
            if !self.machines.present(mid) {
                continue;
            }
            self.machines[mid].wait_pending.insert(pid);
            self.wake_queue.insert(mid);
        }
        if !set.is_empty() {
            self.tty_waiters.insert(tty, set);
        }
        if foreign {
            let t = self.machines[self.stepping].now;
            self.seam
                .push(t, self.stepping, CrossEffect::TtyPoke { tty });
        }
    }

    /// Records that `(mid, pid)` is in `RemoteWait` on `(server, rp)`.
    pub(crate) fn remote_wait_register(
        &mut self,
        server: MachineId,
        rp: u32,
        mid: MachineId,
        pid: Pid,
    ) {
        self.remote_waiters
            .entry((server, rp))
            .or_default()
            .insert((mid, pid.as_u32()));
    }

    /// Pokes every waiter parked on remote process `(server, rp)` once
    /// it has finished or been overlaid.
    pub(crate) fn poke_remote_done(&mut self, server: MachineId, rp: u32) {
        let Some(set) = self.remote_waiters.remove(&(server, rp)) else {
            return;
        };
        for (mid, pid) in set {
            if !self.machines.present(mid) {
                // The registration is consumed here, so forward the
                // wake per-waiter: a plain poke re-evaluates the
                // waiter's RemoteWait condition on the coordinator.
                let t = self.machines[self.stepping].now;
                self.seam
                    .push(t, self.stepping, CrossEffect::Poke { mid, pid });
                continue;
            }
            self.machines[mid].wait_pending.insert(pid);
            self.wake_queue.insert(mid);
        }
    }

    /// Runs one scheduling action on a machine. Returns false if the
    /// machine is idle (nothing runnable, wakeable or sleeping).
    pub fn step_machine(&mut self, mid: MachineId) -> bool {
        let progressed = self.step_machine_inner(mid);
        if self.config.sched == Sched::Event {
            // The slice may have advanced the clock, armed timers or
            // changed the run queue; queue a re-key (and a service pass
            // for any pokes the slice emitted).
            self.wake_queue.insert(mid);
        }
        progressed
    }

    fn step_machine_inner(&mut self, mid: MachineId) -> bool {
        self.stepping = mid;
        // A slice frozen by the shard gate resumes exactly where it
        // stopped: no second wake pass, no second context switch — those
        // already happened when the slice started on the shard.
        if let Some(st) = self.machines[mid].staged.take() {
            return self.resume_staged(mid, st);
        }
        // The slice's scheduling key: the clock the engine picked this
        // machine at. If the gate freezes this slice, the resume is
        // ordered by this key — reproducing the serial engine's
        // pick-by-slice-start order.
        self.machines[mid].slice_key = self.machines[mid].now;
        self.wake(mid);
        if self.machines[mid].run_queue.is_empty() {
            // Jump the clock to the earliest timer, if any.
            let Some(t) = self.earliest_deadline(mid) else {
                return false;
            };
            self.machines[mid].now = self.machines[mid].now.max(t);
            self.wake(mid);
            if self.machines[mid].run_queue.is_empty() {
                return false;
            }
        }
        let Some(pid) = self.machines[mid].run_queue.pop_front() else {
            return false;
        };
        let runnable = self
            .proc_ref(mid, pid)
            .map(|p| p.state.is_runnable())
            .unwrap_or(false);
        if !runnable {
            return true;
        }
        // Context switch.
        if self.machines[mid].last_run != Some(pid) {
            let c = self.config.cost.context_switch();
            let m = &mut self.machines[mid];
            m.stats.ctx_switches += 1;
            m.charge_sys(None, c);
            m.last_run = Some(pid);
        }
        // Signals first — this is where a posted SIGDUMP takes effect,
        // in the context of the dumped process.
        if !deliver_pending(self, mid, pid) {
            return true;
        }
        self.dispatch_and_run(mid, pid)
    }

    /// The tail of a slice: retry a parked system call, run a quantum,
    /// requeue. Split from [`World::step_machine_inner`] so a staged
    /// retry can re-enter here without repeating the slice's wake,
    /// context switch and signal delivery.
    fn dispatch_and_run(&mut self, mid: MachineId, pid: Pid) -> bool {
        // Retry a blocked system call.
        if let Some(sc) = self
            .proc_ref(mid, pid)
            .and_then(|p| p.pending_syscall.clone())
        {
            if self.shard_gate && seam::crossing(self, mid, pid, &sc).is_some() {
                // Freeze the slice at the retry-dispatch point; the pid
                // goes back to the head so the resume finds the queue
                // exactly as it is now.
                let key = self.machines[mid].slice_key;
                self.machines[mid].run_queue.push_front(pid);
                self.machines[mid].staged = Some(crate::machine::StagedTrap {
                    pid,
                    sc,
                    spent: 0,
                    retry: true,
                    key,
                });
                return true;
            }
            match dispatch(self, mid, pid, &sc) {
                SyscallResult::Done(ret) => {
                    self.complete_pending(mid, pid, ret);
                }
                SyscallResult::Blocked => return true, // Re-parked.
                SyscallResult::Gone => return true,
            }
        }
        // Run a quantum.
        let body_kind = match self.proc_ref(mid, pid).map(|p| &p.body) {
            Some(Body::Vm(_)) => 0,
            Some(Body::Native(_)) => 1,
            _ => 2,
        };
        match body_kind {
            0 => self.run_vm_quantum(mid, pid),
            1 => self.run_native_quantum(mid, pid),
            _ => {}
        }
        self.requeue_if_runnable(mid, pid);
        true
    }

    fn requeue_if_runnable(&mut self, mid: MachineId, pid: Pid) {
        let requeue = self
            .proc_ref(mid, pid)
            .map(|p| p.state.is_runnable())
            .unwrap_or(false);
        if requeue {
            let m = &mut self.machines[mid];
            if !m.run_queue.contains(&pid) {
                m.run_queue.push_back(pid);
            }
        }
    }

    /// Continues a slice the shard gate froze. A `retry` freeze happened
    /// before the parked call was re-dispatched: the slice's wake,
    /// context switch and signal delivery already ran, so re-enter at
    /// the dispatch. A fresh-trap freeze happened mid-quantum: continue
    /// the quantum at the trapped call with the already-spent units
    /// carried over, so the slice charges — and traces — exactly like
    /// an unfrozen one.
    fn resume_staged(&mut self, mid: MachineId, st: crate::machine::StagedTrap) -> bool {
        let pid = st.pid;
        if st.retry {
            let front = self.machines[mid].run_queue.pop_front();
            debug_assert_eq!(front, Some(pid), "staged retry lost its queue head");
            return self.dispatch_and_run(mid, pid);
        }
        self.run_vm_quantum_inner(mid, pid, st.spent, Some(st.sc));
        self.requeue_if_runnable(mid, pid);
        true
    }

    /// Puts a VM body taken by [`World::run_vm_quantum`] back into its
    /// process-table slot. The slot may legitimately be occupied again
    /// (a syscall dispatched mid-quantum exited the process, leaving
    /// `Body::Idle` on a zombie): the taken body is stale then and is
    /// simply dropped.
    fn return_vm_body(&mut self, mid: MachineId, pid: Pid, vm: crate::proc::VmBody) {
        if let Some(p) = self.machines[mid].proc_mut(pid) {
            if matches!(p.state, ProcState::Zombie { .. }) {
                return;
            }
            p.body = Body::Vm(vm);
        }
    }

    /// Interprets VM instructions for up to one quantum.
    ///
    /// The body is moved out of the process table for the duration of
    /// the quantum so the interpreter's inner loop touches nothing but
    /// the CPU, the memory image and (when built) the predecoded
    /// instruction cache — no per-step process lookup, no per-step
    /// signal poll. The process table is re-entered only at trap,
    /// fault and signal-check boundaries. Nothing else runs while a
    /// quantum is in progress, so a signal can only appear through a
    /// syscall dispatched *from this loop*; the periodic check exists
    /// for the pathological case of a quantum set far larger than the
    /// default and costs one process lookup per `SIG_CHECK_UNITS`.
    fn run_vm_quantum(&mut self, mid: MachineId, pid: Pid) {
        self.run_vm_quantum_inner(mid, pid, 0, None);
    }

    /// The quantum body. `spent`/`staged` are the resume interface for
    /// slices frozen by the shard gate: a staged call is dispatched
    /// first (that is exactly where the quantum stopped), and the units
    /// already interpreted on the shard are carried so the slice is
    /// charged once, in full, at the end — identical to a slice that
    /// never froze.
    fn run_vm_quantum_inner(
        &mut self,
        mid: MachineId,
        pid: Pid,
        mut spent: u64,
        mut staged: Option<Syscall>,
    ) {
        /// Cost units interpreted between signal-flag polls.
        const SIG_CHECK_UNITS: u64 = 4_096;

        let isa = self.machines[mid].isa;
        let quantum_units = self.config.cost.quantum_us / self.config.cost.instr_us.max(1);
        let use_superblocks = self.config.use_superblocks;
        // Units retired through the superblock engine this quantum
        // (host observability; folded into stats once at the end).
        let mut sb_retired: u64 = 0;

        enum Pause {
            Quantum,
            SignalCheck,
            Event(StepEvent),
        }

        'quantum: loop {
            // Replay a staged dispatch before touching the body — the
            // frozen quantum stopped exactly here, with the body already
            // returned to the table.
            if let Some(sc) = staged.take() {
                match dispatch(self, mid, pid, &sc) {
                    SyscallResult::Done(ret) => {
                        if let Some(p) = self.proc_mut(mid, pid) {
                            if let Body::Vm(vm) = &mut p.body {
                                vmabi::writeback(&mut vm.cpu, &mut vm.mem, &sc, &ret);
                            }
                        }
                    }
                    SyscallResult::Blocked => break 'quantum,
                    SyscallResult::Gone => break 'quantum,
                }
                if spent >= quantum_units {
                    break 'quantum;
                }
            }
            // Take the body (checking liveness and pending signals
            // exactly where the per-step loop used to).
            let mut vm = {
                let Some(p) = self.machines[mid].proc_mut(pid) else {
                    break;
                };
                if p.signal_pending() {
                    break;
                }
                match std::mem::replace(&mut p.body, Body::Idle) {
                    Body::Vm(vm) => vm,
                    other => {
                        p.body = other;
                        break;
                    }
                }
            };
            // A demand-restored image can fault on an absent page, and
            // the interpreter applies post-increment/pre-decrement
            // side effects *before* an operand fault surfaces — so while
            // any page is absent, save the register file each step and
            // roll it back on a PageAbsent fault, making the parked
            // instruction cleanly replayable. Pages only appear while
            // the process is parked, so the flag is stable per take-out;
            // ordinary processes pay one boolean test per step.
            let demand_active = vm.mem.has_absent();
            let mut saved_cpu: Option<m68vm::Cpu> = None;
            // Borrow-free inner loop.
            // Superblocks need the icache and bypass demand-restored
            // images entirely: the fused path never snapshots registers
            // per step, so the saved_cpu rollback below would not work.
            let use_sb = use_superblocks && !demand_active && vm.icache.is_some();
            loop {
                let checkpoint = spent.saturating_add(SIG_CHECK_UNITS);
                let pause = if use_sb {
                    // Run whole fused blocks up to the next visible
                    // boundary (quantum end or signal poll). The engine
                    // retires a block only when it fits the remaining
                    // budget and single-steps otherwise, so the pause
                    // lands on exactly the instruction the slot loop
                    // would pause on — simtime and ktrace bit-identical.
                    let boundary = quantum_units.min(checkpoint);
                    let budget = boundary.saturating_sub(spent);
                    let ic = vm.icache.as_ref().expect("use_sb implies icache");
                    let (used, exit) = vm.cpu.step_superblock(&mut vm.mem, ic, budget);
                    spent += used;
                    sb_retired += used;
                    match exit {
                        m68vm::SbExit::Paused => {
                            if spent >= quantum_units {
                                Pause::Quantum
                            } else {
                                Pause::SignalCheck
                            }
                        }
                        // Block totals already include the trap's units
                        // (counted in `used`), so the event carries 0.
                        m68vm::SbExit::Trap { vector } => {
                            Pause::Event(StepEvent::Trap { vector, units: 0 })
                        }
                        m68vm::SbExit::Faulted(f) => Pause::Event(StepEvent::Faulted(f)),
                    }
                } else {
                    loop {
                        if demand_active {
                            saved_cpu = Some(vm.cpu.clone());
                        }
                        let ev = match &vm.icache {
                            Some(ic) => vm.cpu.step_cached(&mut vm.mem, ic),
                            None => vm.cpu.step(&mut vm.mem, isa),
                        };
                        match ev {
                            StepEvent::Executed { units } => {
                                spent += units as u64;
                                if spent >= quantum_units {
                                    break Pause::Quantum;
                                }
                                if spent >= checkpoint {
                                    break Pause::SignalCheck;
                                }
                            }
                            other => break Pause::Event(other),
                        }
                    }
                };
                match pause {
                    Pause::Quantum => {
                        self.return_vm_body(mid, pid, vm);
                        break 'quantum;
                    }
                    Pause::SignalCheck => {
                        let pending = self
                            .proc_ref(mid, pid)
                            .map(|p| p.signal_pending())
                            .unwrap_or(true);
                        if pending {
                            self.return_vm_body(mid, pid, vm);
                            break 'quantum;
                        }
                        continue; // Same body, fresh checkpoint.
                    }
                    Pause::Event(StepEvent::Trap { vector: 0, units }) => {
                        spent += units as u64;
                        // Decode against the taken body, then put it
                        // back: the syscall handlers (and their
                        // writeback) expect `Body::Vm` in the table.
                        let decoded = vmabi::decode_trap(&vm.cpu, &vm.mem);
                        self.return_vm_body(mid, pid, vm);
                        match decoded {
                            Err(e) => {
                                if let Some(p) = self.proc_mut(mid, pid) {
                                    if let Body::Vm(vm) = &mut p.body {
                                        vmabi::write_errno(&mut vm.cpu, e);
                                    }
                                }
                            }
                            Ok(sc) => {
                                if self.shard_gate
                                    && seam::crossing(self, mid, pid, &sc).is_some()
                                {
                                    // Freeze the quantum at the dispatch
                                    // point for the coordinator's serial
                                    // phase. `spent` is carried, *not*
                                    // charged: the resume charges the
                                    // whole slice once, so clocks and
                                    // traces match the serial run.
                                    let key = self.machines[mid].slice_key;
                                    self.machines[mid].staged =
                                        Some(crate::machine::StagedTrap {
                                            pid,
                                            sc,
                                            spent,
                                            retry: false,
                                            key,
                                        });
                                    if sb_retired > 0 {
                                        self.machines[mid].stats.sb_retired += sb_retired;
                                    }
                                    return;
                                }
                                match dispatch(self, mid, pid, &sc) {
                                    SyscallResult::Done(ret) => {
                                        if let Some(p) = self.proc_mut(mid, pid) {
                                            if let Body::Vm(vm) = &mut p.body {
                                                vmabi::writeback(
                                                    &mut vm.cpu,
                                                    &mut vm.mem,
                                                    &sc,
                                                    &ret,
                                                );
                                            }
                                        }
                                    }
                                    // dispatch() saved the pending call
                                    // and the restart pc.
                                    SyscallResult::Blocked => break 'quantum,
                                    SyscallResult::Gone => break 'quantum,
                                }
                            }
                        }
                        if spent >= quantum_units {
                            break 'quantum;
                        }
                        // Re-take the (possibly replaced) body at the
                        // top of the outer loop, which also re-checks
                        // signals the syscall may have posted.
                        continue 'quantum;
                    }
                    Pause::Event(StepEvent::Trap { units, .. }) => {
                        // Unknown trap vector: SIGSYS.
                        spent += units as u64;
                        self.return_vm_body(mid, pid, vm);
                        if let Some(p) = self.proc_mut(mid, pid) {
                            p.post_signal(Signal::SIGSYS);
                        }
                        break 'quantum;
                    }
                    Pause::Event(StepEvent::Faulted(m68vm::Fault::PageAbsent { addr })) => {
                        // Not an error: park for the residual-page fetch
                        // with the pre-step registers restored, so the
                        // wake replays the faulting instruction.
                        if let Some(saved) = saved_cpu.take() {
                            vm.cpu = saved;
                        }
                        self.return_vm_body(mid, pid, vm);
                        self.park_page_fetch(mid, pid, addr);
                        break 'quantum;
                    }
                    Pause::Event(StepEvent::Faulted(f)) => {
                        let sig = match f {
                            m68vm::Fault::Unmapped { .. } | m68vm::Fault::StackOverflow { .. } => {
                                Signal::SIGSEGV
                            }
                            m68vm::Fault::WriteToText { .. } => Signal::SIGBUS,
                            m68vm::Fault::IllegalInstruction { .. }
                            | m68vm::Fault::IsaViolation { .. } => Signal::SIGILL,
                            m68vm::Fault::DivZero { .. } => Signal::SIGFPE,
                            m68vm::Fault::PageAbsent { .. } => {
                                unreachable!("PageAbsent is handled above")
                            }
                        };
                        self.return_vm_body(mid, pid, vm);
                        if let Some(p) = self.proc_mut(mid, pid) {
                            p.post_signal(sig);
                        }
                        break 'quantum;
                    }
                    Pause::Event(StepEvent::Executed { .. }) => {
                        unreachable!("Executed is handled in the inner loop")
                    }
                }
            }
        }
        if sb_retired > 0 {
            self.machines[mid].stats.sb_retired += sb_retired;
        }
        if spent > 0 {
            let cpu = SimDuration::micros(spent * self.config.cost.instr_us);
            self.machines[mid].charge_user(pid, cpu);
        }
    }

    /// Services native requests for one scheduling slice.
    fn run_native_quantum(&mut self, mid: MachineId, pid: Pid) {
        let mut budget = 64u32;
        while budget > 0 {
            budget -= 1;
            // Receive the next request (host-blocking rendezvous) and
            // keep a response sender that survives a body swap.
            let (req, resp_tx) = {
                let Some(p) = self.proc_mut(mid, pid) else {
                    return;
                };
                let Body::Native(chan) = &p.body else { return };
                let resp_tx = chan.resp_tx.clone();
                match chan.req_rx.recv() {
                    Ok(r) => (r, resp_tx),
                    Err(_) => {
                        // Thread gone without an exit request.
                        self.do_exit(mid, pid, 255);
                        return;
                    }
                }
            };
            // A little user-level CPU per call (libc and argument
            // marshalling).
            self.machines[mid].charge_user(pid, SimDuration::micros(50));
            match req {
                Request::Syscall(sc) => {
                    let was_overlay_call =
                        matches!(sc, Syscall::Execve { .. } | Syscall::RestProc { .. });
                    match dispatch(self, mid, pid, &sc) {
                        SyscallResult::Done(ret) => {
                            if resp_tx
                                .send(Response {
                                    val: ret.val,
                                    data: ret.data,
                                    overlaid: false,
                                })
                                .is_err()
                            {
                                self.do_exit(mid, pid, 255);
                                return;
                            }
                        }
                        // dispatch() saved the pending call; the response
                        // is sent by complete_pending when it finishes.
                        SyscallResult::Blocked => return,
                        SyscallResult::Gone => {
                            if was_overlay_call {
                                // execve/rest_proc succeeded: the body is
                                // now a VM image; unwind the old thread.
                                let _ = resp_tx.send(Response {
                                    val: Ok(0),
                                    data: Vec::new(),
                                    overlaid: true,
                                });
                            }
                            return;
                        }
                    }
                }
                Request::Compute { units } => {
                    let cpu = SimDuration::micros(units * self.config.cost.instr_us);
                    self.machines[mid].charge_user(pid, cpu);
                    let _ = resp_tx.send(Response {
                        val: Ok(0),
                        data: Vec::new(),
                        overlaid: false,
                    });
                }
                Request::RunLocal { prog, comm } => {
                    let cred = self
                        .cred_of(mid, pid)
                        .unwrap_or_else(|_| Credentials::root());
                    let tty = self.proc_ref(mid, pid).and_then(|p| p.user.tty);
                    let child = self.spawn_native_proc(mid, &comm, tty, cred, prog);
                    if let Some(p) = self.proc_mut(mid, pid) {
                        p.state = ProcState::RemoteWait {
                            server: mid,
                            pid: child,
                        };
                    }
                    self.remote_wait_register(mid, child.as_u32(), mid, pid);
                    return;
                }
                Request::Daemon { host, prog, comm } => {
                    let Some(server) = self.find_machine(&host) else {
                        let _ = resp_tx.send(Response {
                            val: Err(Errno::EHOSTUNREACH),
                            data: Vec::new(),
                            overlaid: false,
                        });
                        continue;
                    };
                    // One message to the daemon's well-known port, plus
                    // the daemon's fork/exec of the command.
                    let msg = self.ether.send(&self.config.cost, 256);
                    self.machines[mid].charge_sys(Some(pid), msg);
                    // The daemon's port may be dead (machine down, no
                    // migrated running) — the message is paid for, the
                    // connection fails.
                    if self
                        .fault_fire(FaultSite::Rsh, mid, pid, Errno::EHOSTDOWN)
                        .is_some()
                    {
                        let _ = resp_tx.send(Response {
                            val: Err(Errno::EHOSTDOWN),
                            data: Vec::new(),
                            overlaid: false,
                        });
                        continue;
                    }
                    let dispatch = Cost::cpu_us(20_000).plus(Cost::wait_us(100_000));
                    self.machines[mid].charge_sys(Some(pid), dispatch);
                    let client_now = self.machines[mid].now;
                    let s = &mut self.machines[server];
                    s.now = s.now.max(client_now);
                    let (pipe_id, _handle) = self.add_remote_pipe();
                    let cred = self
                        .cred_of(mid, pid)
                        .unwrap_or_else(|_| Credentials::root());
                    let child = self.spawn_native_proc(server, &comm, Some(pipe_id), cred, prog);
                    self.daemon_waiters.insert((mid, pid.as_u32()));
                    if let Some(p) = self.proc_mut(mid, pid) {
                        p.state = ProcState::RemoteWait { server, pid: child };
                    }
                    self.remote_wait_register(server, child.as_u32(), mid, pid);
                    return;
                }
                Request::Rsh { host, prog, comm } => {
                    let Some(server) = self.find_machine(&host) else {
                        let _ = resp_tx.send(Response {
                            val: Err(Errno::EHOSTUNREACH),
                            data: Vec::new(),
                            overlaid: false,
                        });
                        continue;
                    };
                    // Connection establishment, all charged to the
                    // caller's clock before the remote command starts.
                    // Any phase can fail (rshd unreachable, `.rhosts`
                    // refusal, remote fork failure); the caller pays for
                    // every phase up to and including the one that died.
                    let mut session_up = true;
                    for phase in [
                        RshPhase::NameLookup,
                        RshPhase::Connect,
                        RshPhase::Auth,
                        RshPhase::Spawn,
                    ] {
                        let c = phase.cost(&self.config.cost);
                        self.machines[mid].charge_sys(Some(pid), c);
                        if self
                            .fault_fire(FaultSite::Rsh, mid, pid, Errno::EHOSTDOWN)
                            .is_some()
                        {
                            session_up = false;
                            break;
                        }
                    }
                    if !session_up {
                        let _ = resp_tx.send(Response {
                            val: Err(Errno::EHOSTDOWN),
                            data: Vec::new(),
                            overlaid: false,
                        });
                        continue;
                    }
                    // The remote side starts no earlier than the client's
                    // current time.
                    let client_now = self.machines[mid].now;
                    let s = &mut self.machines[server];
                    s.now = s.now.max(client_now);
                    // rshd gives the command a degraded pipe terminal —
                    // the reason migrate cannot preserve terminal modes
                    // remotely.
                    let (pipe_id, _handle) = self.add_remote_pipe();
                    let cred = self
                        .cred_of(mid, pid)
                        .unwrap_or_else(|_| Credentials::root());
                    let child = self.spawn_native_proc(server, &comm, Some(pipe_id), cred, prog);
                    if let Some(p) = self.proc_mut(mid, pid) {
                        p.state = ProcState::RemoteWait { server, pid: child };
                    }
                    self.remote_wait_register(server, child.as_u32(), mid, pid);
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Run loops.
    // ------------------------------------------------------------------

    /// Picks the machine to step next under the reference scan: wake
    /// every machine, then take the smallest clock among machines with
    /// work (strict `<`, so the first/lowest MachineId wins ties —
    /// the tie-break the event index reproduces with its `(now, mid)`
    /// key order). O(machines × procs) per slice; kept as the parity
    /// oracle and the benchmark baseline.
    fn pick_scan(&mut self, deadline: Option<SimTime>) -> Option<MachineId> {
        let mut best: Option<(MachineId, SimTime)> = None;
        for mid in 0..self.machines.len() {
            if !self.machines.present(mid) {
                continue;
            }
            self.wake_scan(mid);
            let now = self.machines[mid].sched_key();
            if deadline.map(|d| now >= d).unwrap_or(false) {
                continue;
            }
            let has_work = self.machines[mid].staged.is_some()
                || !self.machines[mid].run_queue.is_empty()
                || self.earliest_deadline(mid).is_some();
            if has_work && best.map(|(_, t)| now < t).unwrap_or(true) {
                best = Some((mid, now));
            }
        }
        best.map(|(mid, _)| mid)
    }

    /// Picks the machine to step next: drain pending pokes, then pop
    /// the ready index (event mode) or run the full scan (scan mode).
    fn pick_next(&mut self, deadline: Option<SimTime>) -> Option<MachineId> {
        match self.config.sched {
            Sched::Scan => self.pick_scan(deadline),
            Sched::Event => {
                self.drain_wake_queue();
                self.next_ready(deadline)
            }
        }
    }

    /// Picks the machine with work and the smallest local clock; returns
    /// false when every machine is idle.
    fn step_world(&mut self) -> bool {
        match self.pick_next(None) {
            Some(mid) => {
                self.slices += 1;
                self.step_machine(mid)
            }
            None => false,
        }
    }

    /// Runs until idle or until `max_slices` scheduling actions.
    pub fn run_slices(&mut self, max_slices: u64) -> RunOutcome {
        if let Exec::Parallel { threads } = self.config.exec {
            return shard::run_windows(self, threads, None, None, max_slices);
        }
        self.enter_run();
        for _ in 0..max_slices {
            if !self.step_world() {
                return RunOutcome::Idle;
            }
        }
        RunOutcome::BudgetExhausted
    }

    /// Runs until the given process has exited, returning its record.
    pub fn run_until_exit(
        &mut self,
        mid: MachineId,
        pid: Pid,
        max_slices: u64,
    ) -> Option<ExitInfo> {
        if let Exec::Parallel { threads } = self.config.exec {
            return shard::run_until_exit_windows(self, threads, mid, pid, max_slices);
        }
        self.enter_run();
        let key = (mid, pid.as_u32());
        for _ in 0..max_slices {
            if self.finished.contains_key(&key) {
                break;
            }
            if !self.step_world() {
                break;
            }
        }
        self.finished.get(&key).cloned()
    }

    /// Runs until every machine's clock passes `deadline` or the world
    /// goes idle; clocks of machines without work park at the deadline.
    pub fn run_until_time(&mut self, deadline: SimTime, max_slices: u64) -> RunOutcome {
        if let Exec::Parallel { threads } = self.config.exec {
            return shard::run_windows(self, threads, Some(deadline), None, max_slices);
        }
        self.enter_run();
        for _ in 0..max_slices {
            match self.pick_next(Some(deadline)) {
                Some(mid) => {
                    self.slices += 1;
                    self.step_machine(mid);
                }
                None => {
                    // Everyone is past the deadline or idle: park the
                    // remaining clocks at the deadline.
                    for m in self.machines.iter_mut() {
                        m.now = m.now.max(deadline);
                    }
                    return RunOutcome::Idle;
                }
            }
        }
        RunOutcome::BudgetExhausted
    }

    /// Reaps a zombie from outside (tests and the figure harness).
    pub fn host_reap(&mut self, mid: MachineId, pid: Pid) {
        let ppid = self.proc_ref(mid, pid).map(|p| p.ppid);
        self.machines[mid].procs.remove(&pid.as_u32());
        // Losing a child can wake a ChildWait parent (the
        // no-children-left arm of the wake condition).
        if let Some(ppid) = ppid {
            self.poke_proc(mid, ppid);
        }
    }

    /// A `ps`-style listing of a machine's processes, for diagnostics,
    /// examples and the interactive driver.
    pub fn ps(&self, mid: MachineId) -> String {
        let m = &self.machines[mid];
        let mut out = format!(
            "{:<6} {:<6} {:<10} {:>10} {:>10} {:<12} COMM\n",
            "PID", "PPID", "STATE", "UTIME", "STIME", "TTY"
        );
        for p in m.procs.values() {
            let state = match &p.state {
                ProcState::Runnable => "run".to_string(),
                ProcState::Sleeping { .. } => "sleep".to_string(),
                ProcState::TtyWait { .. } => "ttyin".to_string(),
                ProcState::PipeWait => "pipe".to_string(),
                ProcState::ChildWait => "wait".to_string(),
                ProcState::RemoteWait { .. } => "remote".to_string(),
                ProcState::PageWait { .. } => "pagein".to_string(),
                ProcState::Stopped => "stopped".to_string(),
                ProcState::Zombie { status } => format!("zombie({status})"),
            };
            let tty = p
                .user
                .tty
                .map(|t| format!("tty{t}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<6} {:<6} {:<10} {:>10} {:>10} {:<12} {}\n",
                p.pid.as_u32(),
                p.ppid.as_u32(),
                state,
                p.utime.to_string(),
                p.stime.to_string(),
                tty,
                p.comm
            ));
        }
        out
    }

    /// Posts a signal from outside the simulation (tests and the figure
    /// harness), bypassing credential checks like a console operator.
    pub fn host_post_signal(&mut self, mid: MachineId, pid: Pid, sig: Signal) {
        if let Some(p) = self.proc_mut(mid, pid) {
            if sig == Signal::SIGCONT && matches!(p.state, ProcState::Stopped) {
                p.state = ProcState::Runnable;
            }
            p.post_signal(sig);
        }
        self.machines[mid].nudge(pid);
        self.poke_proc(mid, pid);
    }

    /// Per-host run-queue depth, served straight from the scheduler's
    /// own queues (no process-table walk) — the `simsh load` view.
    pub fn run_queue_depths(&self) -> Vec<usize> {
        self.machines.iter().map(|m| m.run_queue_depth()).collect()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("machines", &self.machines.len())
            .field("terminals", &self.terminals.len())
            .field("finished", &self.finished.len())
            .finish()
    }
}
