//! Conservative-lockstep parallel execution: the world partitioned into
//! shards stepped by a pool of host threads.
//!
//! The engine alternates two phases per **window**:
//!
//! * **Phase A** — machines classified *uncoupled* (no native bodies, no
//!   migration in flight, no open cross-machine files, …) are moved out
//!   to per-thread shard worlds and stepped privately until each one's
//!   scheduling key reaches `window_end`. The shard gate
//!   ([`World::shard_gate`]) freezes any slice whose system call would
//!   cross the machine boundary ([`seam::crossing`]) as a
//!   [`crate::machine::StagedTrap`].
//! * **Phase B** — everything moves back, queued [`CrossEffect`]s are
//!   delivered in [`SeamKey`] order, and the unmodified serial engine
//!   runs the *coupled* machines and the staged resumes, bounded by
//!   `window_end`. Staged slices are scheduled by their frozen slice's
//!   start clock ([`crate::machine::Machine::sched_key`]), reproducing
//!   the serial engine's pick-by-slice-start order.
//!
//! `window_end = min(deadline, floor + lookahead)` where `floor` is the
//! earliest next event across all machines and
//! [`simnet::lookahead`] is the cheapest blocking cross-machine
//! interaction (one zero-payload NFS round trip). `lookahead > 0`
//! guarantees the machines at the floor always fit at least one slice
//! per window, so the engine cannot stall.
//!
//! Windows are computed on the merged world, so their boundaries — and
//! therefore every machine's private stopping points — are independent
//! of the thread count: `Parallel{1}` and `Parallel{N}` are
//! bit-identical by construction, which is the oracle
//! `tests/parallel_determinism.rs` checks (and checks against
//! `Exec::Serial`). See DESIGN.md §14 for the window math and the
//! equivalence argument's limits.

use std::collections::{BTreeMap, BTreeSet};

use crossbeam::channel;
use simtime::SimTime;
use sysdefs::{Pid, Signal};
use tty::TtyHandle;
use vfs::DeviceId;

use crate::config::{Exec, KernelConfig, Sched};
use crate::file::FileKind;
use crate::machine::{Machine, MachineId};
use crate::proc::{Body, ExitInfo, ProcState};

use super::seam::{CrossEffect, SeamKey};
use super::{RunOutcome, World};

/// One window's work for one shard thread.
struct WindowJob {
    /// The machines of this shard, moved out of the main world.
    machines: Vec<Machine>,
    /// Private execution bound: a machine stops once its scheduling key
    /// reaches this (the slice that starts before it may overshoot,
    /// exactly like a serial atomic slice).
    window_end: SimTime,
}

/// What a shard hands back after a window.
struct WindowResult {
    machines: Vec<Machine>,
    /// Exits recorded on the shard (local processes may finish in
    /// Phase A).
    finished: BTreeMap<(MachineId, u32), ExitInfo>,
    /// Machines with pending wake service.
    wake_queue: BTreeSet<MachineId>,
    /// Terminal-wait registrations made on the shard.
    tty_waiters: BTreeMap<u32, BTreeSet<(MachineId, u32)>>,
    /// Cross-boundary effects, to be delivered in key order.
    seam: Vec<(SeamKey, CrossEffect)>,
    /// Scheduling slices executed.
    slices: u64,
    /// Ethernet messages sent by the shard — must be zero: every
    /// network interaction is gated into Phase B.
    net_messages: u64,
}

/// Is `mid` coupled to some other machine this window? Coupled machines
/// stay in the main world and execute in the serial phase. The test is
/// deliberately one-sided conservative: anything that *could* interact
/// across the boundary — or whose execution consults globally-ordered
/// state like the fault plan — counts.
fn self_coupled(world: &World, mid: MachineId) -> bool {
    let m = &world.machines[mid];
    if m.staged.is_some() {
        return true;
    }
    let dump_mask = 1u32 << (Signal::SIGDUMP.number() - 1);
    for p in m.procs.values() {
        match &p.body {
            // Native utilities (dumpproc, restart, daemons, rsh) talk
            // to servers and the fault plan freely.
            Body::Native(_) => return true,
            Body::Vm(vm) => {
                // Demand-restored images fetch residual pages from the
                // source machine's dump on fault.
                if vm.residual.is_some() || vm.mem.has_absent() {
                    return true;
                }
            }
            Body::Idle => {}
        }
        if matches!(
            p.state,
            ProcState::RemoteWait { .. } | ProcState::PageWait { .. }
        ) {
            return true;
        }
        // A pending SIGDUMP delivers at the next slice and writes dump
        // files under fault-plan sites.
        if p.sig_pending & dump_mask != 0 {
            return true;
        }
    }
    false
}

/// The full coupling partition: per-machine flags plus the two-sided
/// couplings (an open remote file couples the client *and* the serving
/// host; a foreign-owned terminal couples reader and owner; a machine
/// serving a registered remote wait must stay serial so its completion
/// wakes in order).
///
/// One flag is world-wide: a machine hosting a native utility (or a
/// process in a remote/page wait, which implies one ran) can contact
/// *any* machine by name with zero protocol latency — `rsh`/daemon
/// dispatch syncs the server's clock to the client's
/// (`s.now = s.now.max(client_now)`) the moment the request fires,
/// inside the lookahead the window promised the target. The target is
/// picked from a string argument at run time, so it cannot be read off
/// the merged state at window start; while any such machine exists the
/// whole world is coupled and the window runs on the serial engine.
/// VM-only couplings (NFS files, terminals) name both endpoints and
/// stay pairwise, so pure-VM phases — the scaling benchmark — shard
/// fully.
fn coupled_set(world: &World) -> BTreeSet<MachineId> {
    let mut coupled = BTreeSet::new();
    if (0..world.machines.len()).any(|mid| self_coupled(world, mid)) {
        coupled.extend(0..world.machines.len());
        return coupled;
    }
    for mid in 0..world.machines.len() {
        let m = &world.machines[mid];
        for (_, f) in m.files.iter() {
            match &f.kind {
                FileKind::Remote { host, .. } => {
                    coupled.insert(mid);
                    coupled.insert(*host);
                }
                FileKind::Device(DeviceId::Tty(t)) => match world.tty_owner(*t) {
                    Some(owner) if owner == mid => {}
                    Some(owner) => {
                        coupled.insert(mid);
                        coupled.insert(owner);
                    }
                    None => {
                        coupled.insert(mid);
                    }
                },
                _ => {}
            }
        }
    }
    for &(server, _) in world.remote_waiters.keys() {
        coupled.insert(server);
    }
    coupled
}

/// The smallest scheduling key across all machines with work — exactly
/// the key `next_ready` would pop in the serial engine. `None` when the
/// world is idle. Call after a wake pass so freshly-wakeable work is
/// already on the run queues.
///
/// The key is the machine's *clock* (or its staged slice's start), not
/// its next event time: the serial engine steps a sleeping machine
/// whose clock is below the deadline and lets the slice jump past it,
/// so the window scheduler must use the same gate or 1-vs-N runs would
/// disagree about the final slice at every deadline boundary.
fn next_event_floor(world: &mut World) -> Option<SimTime> {
    let mut floor: Option<SimTime> = None;
    for mid in 0..world.machines.len() {
        let m = &mut world.machines[mid];
        let has_work =
            m.staged.is_some() || !m.run_queue.is_empty() || m.next_deadline().is_some();
        if has_work {
            let t = m.sched_key();
            floor = Some(floor.map_or(t, |f| f.min(t)));
        }
    }
    floor
}

fn apply_effect(world: &mut World, eff: CrossEffect) {
    match eff {
        CrossEffect::Poke { mid, pid } => world.poke_proc(mid, Pid(pid)),
        CrossEffect::TtyPoke { tty } => world.poke_tty(tty),
        CrossEffect::RemoteDone { server, pid } => world.poke_remote_done(server, pid),
    }
}

fn merge_result(
    world: &mut World,
    res: WindowResult,
    effects: &mut BTreeMap<SeamKey, CrossEffect>,
) {
    debug_assert_eq!(
        res.net_messages, 0,
        "a shard put traffic on the Ethernet; the gate missed a network interaction"
    );
    for m in res.machines {
        let mid = m.id;
        world.machines.put(mid, m);
        // Queue a service/re-key: the clock (and possibly staged state)
        // changed while the machine was away.
        world.wake_queue.insert(mid);
    }
    world.finished.extend(res.finished);
    world.wake_queue.extend(res.wake_queue);
    for (tty, set) in res.tty_waiters {
        world.tty_waiters.entry(tty).or_default().extend(set);
    }
    world.slices += res.slices;
    effects.extend(res.seam);
}

/// One shard thread: a persistent private world that machines move
/// through window by window.
fn worker(
    config: KernelConfig,
    terminals: Vec<TtyHandle>,
    tty_owners: Vec<Option<MachineId>>,
    slots: usize,
    jobs: channel::Receiver<WindowJob>,
    results: channel::Sender<WindowResult>,
) {
    let mut sw = World::new(config);
    // The shard world is itself serial, gated, and fault-free: every
    // fault site sits behind a gated interaction, so the global fault
    // counters only advance in the coordinator's serial phase — in the
    // same order as a fully serial run.
    sw.config.exec = Exec::Serial;
    sw.shard_gate = true;
    sw.machines.ensure_slots(slots);
    sw.terminals = terminals;
    sw.tty_owners = tty_owners;
    let mut resident: Vec<MachineId> = Vec::new();
    while let Ok(job) = jobs.recv() {
        resident.clear();
        for m in job.machines {
            let mid = m.id;
            sw.machines.put(mid, m);
            resident.push(mid);
        }
        for &mid in &resident {
            loop {
                let m = &sw.machines[mid];
                // Stop at a frozen slice or once the next slice would
                // start at/after the window end. The slice that starts
                // before the end may overshoot it — the same atomic
                // slice the serial engine runs.
                if m.staged.is_some() || m.sched_key() >= job.window_end {
                    break;
                }
                sw.slices += 1;
                if !sw.step_machine(mid) {
                    break;
                }
            }
        }
        let machines = resident.iter().map(|&mid| sw.machines.take(mid)).collect();
        let res = WindowResult {
            machines,
            finished: std::mem::take(&mut sw.finished),
            wake_queue: std::mem::take(&mut sw.wake_queue),
            tty_waiters: std::mem::take(&mut sw.tty_waiters),
            seam: sw.seam.drain(),
            slices: std::mem::take(&mut sw.slices),
            net_messages: std::mem::replace(&mut sw.ether.messages_sent, 0),
        };
        if results.send(res).is_err() {
            return;
        }
    }
}

/// The windowed engine behind every `Exec::Parallel` run loop.
///
/// Stops at `deadline` (parking clocks there, like the serial
/// `run_until_time`), when `until_exit`'s record appears in
/// `finished` (checked once per window, so the run may overshoot the
/// exit by at most one window), when the world goes idle, or when
/// `max_slices` runs out.
pub(crate) fn run_windows(
    world: &mut World,
    threads: usize,
    deadline: Option<SimTime>,
    until_exit: Option<(MachineId, u32)>,
    max_slices: u64,
) -> RunOutcome {
    let threads = threads.max(1);
    world.enter_run();
    let lookahead = simnet::lookahead(&world.config.cost);
    let mut slices_left = max_slices;
    std::thread::scope(|s| {
        let mut job_txs = Vec::with_capacity(threads);
        let mut res_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (jtx, jrx) = channel::unbounded::<WindowJob>();
            let (rtx, rrx) = channel::unbounded::<WindowResult>();
            let config = world.config.clone();
            let terminals = world.terminals.clone();
            let tty_owners = world.tty_owners.clone();
            let slots = world.machines.len();
            s.spawn(move || worker(config, terminals, tty_owners, slots, jrx, rtx));
            job_txs.push(jtx);
            res_rxs.push(rrx);
        }
        loop {
            if let Some(k) = until_exit {
                if world.finished.contains_key(&k) {
                    return RunOutcome::Idle;
                }
            }
            if slices_left == 0 {
                return RunOutcome::BudgetExhausted;
            }
            // Wake pass: get every wakeable process onto a run queue so
            // the floor sees it.
            match world.config.sched {
                Sched::Event => world.drain_wake_queue(),
                Sched::Scan => {
                    for mid in 0..world.machines.len() {
                        world.wake_scan(mid);
                    }
                }
            }
            let floor = next_event_floor(world);
            let stop = match (floor, deadline) {
                (None, _) => true,
                (Some(f), Some(d)) => f >= d,
                (Some(_), None) => false,
            };
            if stop {
                if let Some(d) = deadline {
                    for m in world.machines.iter_mut() {
                        m.now = m.now.max(d);
                    }
                }
                return RunOutcome::Idle;
            }
            let mut window_end = floor.expect("stop handled idle") + lookahead;
            if let Some(d) = deadline {
                window_end = window_end.min(d);
            }
            // Phase A: ship the uncoupled machines out.
            let coupled = coupled_set(world);
            let mut batches: Vec<Vec<Machine>> = (0..threads).map(|_| Vec::new()).collect();
            for mid in 0..world.machines.len() {
                if !coupled.contains(&mid) {
                    batches[mid % threads].push(world.machines.take(mid));
                }
            }
            let mut active = Vec::with_capacity(threads);
            for (i, batch) in batches.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                job_txs[i]
                    .send(WindowJob {
                        machines: batch,
                        window_end,
                    })
                    .expect("shard worker died");
                active.push(i);
            }
            let mut effects: BTreeMap<SeamKey, CrossEffect> = BTreeMap::new();
            for &i in &active {
                let res = res_rxs[i].recv().expect("shard worker died");
                slices_left = slices_left.saturating_sub(res.slices);
                merge_result(world, res, &mut effects);
            }
            for (_, eff) in effects {
                apply_effect(world, eff);
            }
            // Phase B: the unmodified serial engine finishes the window
            // — coupled machines, staged resumes, and any wakes the
            // merge produced.
            loop {
                if slices_left == 0 {
                    break;
                }
                if let Some(k) = until_exit {
                    if world.finished.contains_key(&k) {
                        break;
                    }
                }
                match world.pick_next(Some(window_end)) {
                    Some(mid) => {
                        world.slices += 1;
                        slices_left -= 1;
                        world.step_machine(mid);
                    }
                    None => break,
                }
            }
        }
    })
}

/// `run_until_exit` on the windowed engine.
pub(crate) fn run_until_exit_windows(
    world: &mut World,
    threads: usize,
    mid: MachineId,
    pid: Pid,
    max_slices: u64,
) -> Option<ExitInfo> {
    let key = (mid, pid.as_u32());
    run_windows(world, threads, None, Some(key), max_slices);
    world.finished.get(&key).cloned()
}
