//! Processes: VM guests, native utilities, and their lifecycle.

use m68vm::{Cpu, IsaLevel, Memory};
use simtime::{SimDuration, SimTime};
use sysdefs::{Pid, Uid};

use crate::native::NativeChan;
use crate::sys::args::Syscall;
use crate::user::UserArea;

/// What a process is currently doing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Ready to run.
    Runnable,
    /// Blocked until a timer fires (`sleep`).
    Sleeping {
        /// Absolute wake-up time.
        until: SimTime,
    },
    /// Blocked in `read(2)` on a terminal with no data ready.
    TtyWait {
        /// World terminal id being read.
        tty: u32,
    },
    /// Blocked in `read(2)` on an empty pipe or socket (or `write(2)` on
    /// a full one).
    PipeWait,
    /// Blocked in `wait(2)` for a child to exit.
    ChildWait,
    /// Blocked in `rsh`, waiting for a remote command to finish.
    RemoteWait {
        /// The machine running the remote command.
        server: usize,
        /// The remote command's pid there.
        pid: Pid,
    },
    /// Parked on an absent page of a demand-restored image, waiting for
    /// the residual-page fetch from the source dump to land.
    PageWait {
        /// When the fetch (or its soft-mount timeout) completes.
        until: SimTime,
        /// The faulting address; the page is `addr / PAGE`.
        addr: u32,
    },
    /// Stopped by `SIGSTOP`/`SIGTSTP`.
    Stopped,
    /// Dead, waiting to be reaped by the parent.
    Zombie {
        /// Exit status.
        status: u32,
    },
}

impl ProcState {
    /// Is the process eligible for CPU time right now?
    pub fn is_runnable(&self) -> bool {
        matches!(self, ProcState::Runnable)
    }

    /// Is the process blocked but alive?
    pub fn is_blocked(&self) -> bool {
        !matches!(self, ProcState::Runnable | ProcState::Zombie { .. })
    }
}

/// The executable body of a process.
// Nearly every live entry is the large `Vm` variant (Native bodies are
// short-lived utilities, Idle is init), so boxing it would buy nothing
// and cost an indirection on the interpreter's hottest path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Body {
    /// A guest program interpreted by the VM.
    Vm(VmBody),
    /// A native utility on its own OS thread, speaking syscalls over
    /// rendezvous channels.
    Native(NativeChan),
    /// `init` and other placeholder processes that never run.
    Idle,
}

/// The machine state of a VM process.
#[derive(Clone, Debug)]
pub struct VmBody {
    /// CPU registers.
    pub cpu: Cpu,
    /// The memory image.
    pub mem: Memory,
    /// Predecoded text segment, built at overlay time (execve or
    /// rest_proc) for the hosting machine's ISA level; `None` when the
    /// kernel is configured without the cache. Shared with forked
    /// children — text is write-protected, so the cache never goes
    /// stale. Purely a host-side accelerator: simulated charging is
    /// identical with or without it.
    pub icache: Option<std::sync::Arc<m68vm::ICache>>,
    /// The ISA level the loaded executable requires (from its a.out
    /// machine id) — checked against the machine at `execve` time and
    /// dumped so a migration target can check it again.
    pub isa_required: IsaLevel,
    /// The original entry point from the a.out header, re-recorded in
    /// dumped images so they stay runnable as ordinary programs.
    pub entry: u32,
    /// Where a demand-restored image fetches its absent pages from;
    /// `None` once every page is resident (or for ordinary processes).
    pub residual: Option<ResidualSource>,
}

/// The residual dependency of a demand-restored process: the source
/// dump its absent pages are fetched from, page by page, on fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResidualSource {
    /// The machine still holding the dump.
    pub server: usize,
    /// The dump's `a.outXXXXX` path on that machine.
    pub aout_path: String,
    /// Byte offset of the data segment image inside that file.
    pub data_off: usize,
    /// Consecutive timed-out fetches (reset on success); the kernel
    /// declares the dependency dead after three strikes.
    pub tries: u32,
}

/// A process-table entry (4.2BSD `struct proc` + our accounting).
#[derive(Debug)]
pub struct Proc {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Scheduler state.
    pub state: ProcState,
    /// The running body.
    pub body: Body,
    /// The swappable user area.
    pub user: UserArea,
    /// Pending (posted, undelivered) signals as a bit mask
    /// (bit *n*-1 = signal *n*).
    pub sig_pending: u32,
    /// User-mode CPU time consumed.
    pub utime: SimDuration,
    /// System (kernel) CPU time consumed.
    pub stime: SimDuration,
    /// When the process was created (for the load balancer's age-based
    /// candidate selection).
    pub start_time: SimTime,
    /// A blocked system call to re-attempt when the process is next
    /// scheduled (the kernel's "sleep and retry the operation" pattern).
    pub pending_syscall: Option<Syscall>,
    /// For a VM process blocked in a system call: the pc of the `trap`
    /// instruction itself, so that a `SIGDUMP` arriving mid-syscall
    /// backs up and lets the restarted process re-issue the call.
    pub restart_pc: Option<u32>,
    /// Command name for diagnostics (`ps`-style).
    pub comm: String,
    /// Pending `alarm(2)` deadline; `SIGALRM` is posted when the
    /// machine clock passes it.
    pub alarm_at: Option<SimTime>,
    /// Pre-copy freeze mode: the next `SIGDUMP` writes a `deltaXXXXX`
    /// of the still-dirty pages instead of the full `a.outXXXXX`. Set
    /// by the migration engine once the bulk of the image has been
    /// streamed; cleared with the process (never inherited — `fork`
    /// children are whole processes, not half-sent images).
    pub dump_delta: bool,
}

impl Proc {
    /// The owning (real) uid, used for kill/dump permission checks.
    pub fn owner(&self) -> Uid {
        self.user.cred.ruid
    }

    /// Total CPU time (user + system).
    pub fn cpu_time(&self) -> SimDuration {
        self.utime + self.stime
    }

    /// Is a given signal pending?
    pub fn signal_pending(&self) -> bool {
        self.sig_pending & !self.user.sigs.blocked != 0
    }

    /// Posts a signal (sets its pending bit).
    pub fn post_signal(&mut self, sig: sysdefs::Signal) {
        self.sig_pending |= 1 << (sig.number() - 1);
    }

    /// Takes (clears and returns) the lowest-numbered deliverable
    /// pending signal.
    pub fn take_signal(&mut self) -> Option<sysdefs::Signal> {
        let deliverable = self.sig_pending & !self.user.sigs.blocked;
        if deliverable == 0 {
            return None;
        }
        let n = deliverable.trailing_zeros() + 1;
        self.sig_pending &= !(1 << (n - 1));
        sysdefs::Signal::from_number(n).ok()
    }
}

/// Final accounting for an exited process, kept by the world so that
/// measurements survive reaping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExitInfo {
    /// Exit status (or 128+signal for signal deaths).
    pub status: u32,
    /// User CPU time.
    pub utime: SimDuration,
    /// System CPU time.
    pub stime: SimDuration,
    /// Creation time.
    pub started: SimTime,
    /// Exit time.
    pub ended: SimTime,
}

impl ExitInfo {
    /// Total CPU time.
    pub fn cpu(&self) -> SimDuration {
        self.utime + self.stime
    }

    /// Wall-clock lifetime.
    pub fn real(&self) -> SimDuration {
        self.ended.since(self.started)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysdefs::Signal;

    fn proc_fixture() -> Proc {
        Proc {
            pid: Pid(2),
            ppid: Pid(1),
            state: ProcState::Runnable,
            body: Body::Idle,
            user: UserArea::new(
                sysdefs::Credentials::user(Uid(5), sysdefs::Gid(5)),
                crate::user::FileRef { machine: 0, ino: 0 },
            ),
            sig_pending: 0,
            utime: SimDuration::ZERO,
            stime: SimDuration::ZERO,
            start_time: SimTime::BOOT,
            pending_syscall: None,
            restart_pc: None,
            comm: "test".into(),
            alarm_at: None,
            dump_delta: false,
        }
    }

    #[test]
    fn signal_post_and_take_in_order() {
        let mut p = proc_fixture();
        p.post_signal(Signal::SIGTERM);
        p.post_signal(Signal::SIGHUP);
        assert!(p.signal_pending());
        assert_eq!(p.take_signal(), Some(Signal::SIGHUP));
        assert_eq!(p.take_signal(), Some(Signal::SIGTERM));
        assert_eq!(p.take_signal(), None);
    }

    #[test]
    fn blocked_signals_not_deliverable() {
        let mut p = proc_fixture();
        p.user.sigs.blocked = 1 << (Signal::SIGTERM.number() - 1);
        p.post_signal(Signal::SIGTERM);
        assert!(!p.signal_pending());
        assert_eq!(p.take_signal(), None);
        p.user.sigs.blocked = 0;
        assert_eq!(p.take_signal(), Some(Signal::SIGTERM));
    }

    #[test]
    fn state_predicates() {
        assert!(ProcState::Runnable.is_runnable());
        assert!(ProcState::ChildWait.is_blocked());
        assert!(!ProcState::Zombie { status: 0 }.is_blocked());
        assert!(!ProcState::Zombie { status: 0 }.is_runnable());
    }

    #[test]
    fn exit_info_arithmetic() {
        let e = ExitInfo {
            status: 0,
            utime: SimDuration::millis(10),
            stime: SimDuration::millis(5),
            started: SimTime(1_000),
            ended: SimTime(500_000),
        };
        assert_eq!(e.cpu(), SimDuration::micros(15_000));
        assert_eq!(e.real(), SimDuration::micros(499_000));
    }
}
