//! One workstation: filesystem, process table, open-file table, clock.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use m68vm::IsaLevel;
use simtime::cost::Cost;
use simtime::{SimDuration, SimTime};
use sysdefs::{Credentials, FileMode, Pid};
use vfs::{DeviceId, Filesystem, Ino};

use crate::file::FileTable;
use crate::proc::Proc;

fn cred_key(cred: &Credentials) -> (u32, u32, u32, u32) {
    (
        cred.ruid.as_u32(),
        cred.euid.as_u32(),
        cred.rgid.as_u32(),
        cred.egid.as_u32(),
    )
}

/// One cached `namei` root-walk: the resolution of the client-side
/// `/n` component every NFS path starts with. Valid only while the
/// filesystem generation and the resolving credentials both match; the
/// cache elides the host-side directory walk but the caller still
/// charges the component exactly as an uncached resolution would, so
/// simulated time is unaffected (a pure host-cost cache).
#[derive(Clone, Copy, Debug)]
pub(crate) struct NameiCache {
    /// [`vfs::Filesystem::generation`] at fill time.
    pub gen: u64,
    /// Raw (ruid, euid, rgid, egid) of the credentials that walked.
    pub cred: (u32, u32, u32, u32),
    /// The resolved inode of `/n`.
    pub ino: Ino,
}

/// A system call caught at the shard boundary (`World::shard_gate`):
/// the slice is frozen exactly at the dispatch point and replayed by
/// the coordinator's serial phase, so a cross-machine call never
/// executes on a shard thread. See `crate::world::shard`.
#[derive(Clone, Debug)]
pub(crate) struct StagedTrap {
    /// The process whose slice is frozen.
    pub pid: Pid,
    /// The decoded call (fresh traps; retries re-read `pending_syscall`).
    pub sc: crate::sys::args::Syscall,
    /// Interpreter units already executed this quantum, not yet charged
    /// (the resumed quantum charges the full total once, as one slice).
    pub spent: u64,
    /// True when the gate caught a blocked-call retry rather than a
    /// fresh trap: the resume re-enters at the retry dispatch.
    pub retry: bool,
    /// The machine clock at the start of the frozen slice — the key the
    /// coordinator schedules the resume by, preserving the serial
    /// engine's pick-by-slice-start order.
    pub key: SimTime,
}

/// Index of a machine within the world.
pub type MachineId = usize;

/// Identity of a byte queue a `PipeWait` process can park on, the key
/// of the per-machine wait index. Waiters are indexed per *object*, not
/// per direction: a poke re-evaluates both readers and writers of the
/// queue, which the wake check then filters precisely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueueId {
    /// A pipe, by slot in [`Machine::pipes`].
    Pipe(usize),
    /// A socket pair, by slot in [`Machine::sockets`].
    Socket(usize),
}

/// A byte queue shared by pipe/socket endpoints.
#[derive(Clone, Debug, Default)]
pub struct PipeBuf {
    /// Buffered bytes.
    pub data: VecDeque<u8>,
    /// Live read-side references.
    pub readers: u32,
    /// Live write-side references.
    pub writers: u32,
}

/// A connected socket pair: two one-directional byte queues.
#[derive(Clone, Debug, Default)]
pub struct SocketPair {
    /// `bufs[0]` carries side-0-to-side-1 traffic; `bufs[1]` the reverse.
    pub bufs: [PipeBuf; 2],
}

/// Per-syscall aggregate, maintained by the dispatcher's exit hook.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyscallAgg {
    /// Dispatch attempts (blocked retries count, like `syscalls`).
    pub count: u64,
    /// Total simtime charged across attempts, micro-seconds.
    pub total_us: u64,
    /// The single most expensive attempt, micro-seconds.
    pub max_us: u64,
}

impl SyscallAgg {
    /// Folds one dispatch attempt's charge into the aggregate.
    pub fn note(&mut self, charged_us: u64) {
        self.count += 1;
        self.total_us += charged_us;
        self.max_us = self.max_us.max(charged_us);
    }
}

/// Per-machine event counters.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// System calls executed.
    pub syscalls: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Signals delivered.
    pub signals: u64,
    /// NFS RPCs issued as a client.
    pub nfs_rpcs: u64,
    /// Forks.
    pub forks: u64,
    /// Successful `execve`s (including from `rest_proc`).
    pub execs: u64,
    /// `SIGDUMP` dumps written.
    pub dumps: u64,
    /// `rest_proc` restores completed.
    pub restores: u64,
    /// Faults injected by the world's [`simnet::FaultPlan`].
    pub faults_injected: u64,
    /// Pages shipped by pre-copy migration rounds while this machine was
    /// the source (final frozen delta included).
    pub pages_precopied: u64,
    /// Residual pages fetched on demand-restore page faults while this
    /// machine was the target.
    pub pages_fetched: u64,
    /// Instruction units retired through the superblock engine (fused
    /// blocks plus its slot-by-slot fallback steps). Host-side
    /// observability only: the count exists solely when
    /// [`crate::KernelConfig::use_superblocks`] is on, which must not
    /// change the trajectory, so this field is excluded from
    /// determinism snapshots (pure cache, like `m68vm`'s icache).
    pub sb_retired: u64,
    /// Kernel-side per-syscall aggregates (count, total and max charged
    /// simtime), keyed by trap-table name. Ordered so iteration — and
    /// the figures JSON built from it — is deterministic.
    pub per_syscall: BTreeMap<&'static str, SyscallAgg>,
}

/// Kernel-side timing of one system call (the paper's Fig. 3 is
/// measured "by adding timing code inside the kernel, as these system
/// calls destroy the process that invoked them").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallTiming {
    /// CPU time charged during the call.
    pub cpu: SimDuration,
    /// Elapsed real time of the call.
    pub real: SimDuration,
}

/// One workstation.
#[derive(Debug)]
pub struct Machine {
    /// Index within the world.
    pub id: MachineId,
    /// Host name.
    pub name: String,
    /// CPU generation: programs requiring a superset ISA fault here.
    pub isa: IsaLevel,
    /// The local filesystem.
    pub fs: Filesystem,
    /// Process table, keyed by pid.
    pub procs: BTreeMap<u32, Proc>,
    /// Run queue (round robin).
    pub run_queue: VecDeque<Pid>,
    /// The machine-wide open-file table.
    pub files: FileTable,
    /// NFS mounts: host name to machine id, realised under `/n/<host>`.
    pub mounts: BTreeMap<String, MachineId>,
    /// This machine's local clock.
    pub now: SimTime,
    /// Cumulative CPU-busy time (for load statistics).
    pub busy: SimDuration,
    /// The last process that held the CPU (context-switch accounting).
    pub last_run: Option<Pid>,
    /// Pipe buffers.
    pub pipes: Vec<Option<PipeBuf>>,
    /// Socket pairs.
    pub sockets: Vec<Option<SocketPair>>,
    /// §5.2: the global flag `execve()` checks — "if set, indicates that
    /// it is called from within `rest_proc()`".
    pub exec_mig_flag: bool,
    /// §5.2: the companion global holding the exact initial stack to
    /// allocate ("as many bytes as are indicated in another global
    /// variable").
    pub exec_mig_stack: Vec<u8>,
    /// Paths whose inodes are in the buffer cache (namei warm set).
    /// Ordered on purpose: a hash set's iteration order varies run to
    /// run, and nothing in the hottest kernel structure may be a
    /// determinism hazard (enforced by simlint's determinism rule).
    pub warm_paths: BTreeSet<String>,
    /// Event counters.
    pub stats: MachineStats,
    /// The deterministic syscall trace ring (see [`crate::ktrace`]).
    pub ktrace: crate::ktrace::Ktrace,
    /// Peak kernel memory held by file-name strings (§5.1 memory
    /// argument / A3 ablation).
    pub name_bytes_peak: usize,
    /// Kernel timing of the last successful `execve` (Fig. 3).
    pub last_execve: Option<CallTiming>,
    /// Kernel timing of the last successful `rest_proc` (Fig. 3).
    pub last_rest_proc: Option<CallTiming>,
    /// User-level time the last `rest_proc` caller had consumed before
    /// entering the call (the `restart` application's own share).
    pub last_rest_caller: Option<CallTiming>,
    /// Pending sleep/alarm deadlines as a min-heap of `(when, pid)`.
    /// Entries are never removed eagerly — a wake, an `alarm(0)` reset
    /// or an exit just leaves a stale entry behind, which
    /// [`Machine::next_deadline`] discards when it surfaces (lazy
    /// deletion). This replaces a full process-table scan on every
    /// idle-clock jump.
    timers: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Blocked pids whose wait condition may have changed since the
    /// machine was last serviced (event scheduler). Pid-ordered so the
    /// wake pass evaluates candidates in the same order the reference
    /// scan visits the process table.
    pub(crate) wait_pending: BTreeSet<u32>,
    /// Pipe/socket wait index: which blocked pids are parked on which
    /// byte queue. Entries are registered when a process blocks and
    /// cleaned lazily when the queue is next poked.
    pub(crate) queue_waiters: BTreeMap<QueueId, BTreeSet<u32>>,
    /// This machine's key in the world's ready index, if enrolled.
    pub(crate) ready_key: Option<SimTime>,
    /// A slice frozen at the shard boundary, awaiting serial replay by
    /// the coordinator (`Exec::Parallel` only; always `None` at rest).
    pub(crate) staged: Option<StagedTrap>,
    /// The machine clock at the start of the slice currently executing
    /// — scratch the shard gate reads to key a [`StagedTrap`].
    pub(crate) slice_key: SimTime,
    /// Pids that may have `SIGDUMP` artifact files in `/usr/tmp`,
    /// maintained at dump create/unlink time so the reaper sweeps only
    /// machines (and names) that can actually have work — a superset of
    /// the truth, self-cleaning, derived entirely from `fs` contents.
    pub(crate) pending_dumps: BTreeSet<u32>,
    /// Single-entry root-walk cache for `namei` (host cost only).
    pub(crate) namei_cache: Cell<Option<NameiCache>>,
    /// The inode of `/n`, where remote mounts attach.
    pub n_dir: Ino,
    /// The inode of `/dev`.
    pub dev_dir: Ino,
    /// The inode of `/usr/tmp`, where migration dumps land.
    pub dump_dir: Ino,
    next_pid: u32,
}

/// The name prefixes a `SIGDUMP` artifact can carry in `/usr/tmp`.
pub(crate) const DUMP_ARTIFACT_PREFIXES: [&str; 4] = ["a.out", "files", "stack", "delta"];

/// Parses `a.outXXXXX`/`filesXXXXX`/`stackXXXXX`/`deltaXXXXX` into the
/// pid the artifact belongs to; anything else is `None`.
pub(crate) fn dump_artifact_pid(name: &str) -> Option<u32> {
    let suffix = DUMP_ARTIFACT_PREFIXES
        .iter()
        .find_map(|p| name.strip_prefix(p))?;
    if suffix.len() == 5 && suffix.bytes().all(|b| b.is_ascii_digit()) {
        suffix.parse().ok()
    } else {
        None
    }
}

impl Machine {
    /// Boots a machine: builds the filesystem skeleton (`/dev`, `/usr`,
    /// `/usr/tmp`, `/etc`, `/bin`, `/u`, `/tmp`, `/n`) and devices.
    pub fn boot(id: MachineId, name: &str, isa: IsaLevel) -> Machine {
        let mut fs = Filesystem::new();
        let root_cred = Credentials::root();
        let root = fs.root();
        let dev_dir = fs
            .mkdir(root, "dev", FileMode::DIR_DEFAULT, &root_cred)
            .expect("mkdir /dev");
        fs.mknod(dev_dir, "null", DeviceId::Null, &root_cred)
            .expect("mknod /dev/null");
        let usr = fs
            .mkdir(root, "usr", FileMode::DIR_DEFAULT, &root_cred)
            .expect("mkdir /usr");
        let dump_dir = fs
            .mkdir(usr, "tmp", FileMode(0o777), &root_cred)
            .expect("mkdir /usr/tmp");
        fs.mkdir(root, "etc", FileMode::DIR_DEFAULT, &root_cred)
            .expect("mkdir /etc");
        fs.mkdir(root, "bin", FileMode::DIR_DEFAULT, &root_cred)
            .expect("mkdir /bin");
        fs.mkdir(root, "u", FileMode(0o777), &root_cred)
            .expect("mkdir /u");
        fs.mkdir(root, "tmp", FileMode(0o777), &root_cred)
            .expect("mkdir /tmp");
        let n_dir = fs
            .mkdir(root, "n", FileMode::DIR_DEFAULT, &root_cred)
            .expect("mkdir /n");
        Machine {
            id,
            name: name.to_string(),
            isa,
            fs,
            procs: BTreeMap::new(),
            run_queue: VecDeque::new(),
            files: FileTable::new(),
            mounts: BTreeMap::new(),
            now: SimTime::BOOT,
            busy: SimDuration::ZERO,
            last_run: None,
            pipes: Vec::new(),
            sockets: Vec::new(),
            exec_mig_flag: false,
            exec_mig_stack: Vec::new(),
            warm_paths: BTreeSet::new(),
            stats: MachineStats::default(),
            ktrace: crate::ktrace::Ktrace::default(),
            name_bytes_peak: 0,
            last_execve: None,
            last_rest_proc: None,
            last_rest_caller: None,
            timers: BinaryHeap::new(),
            wait_pending: BTreeSet::new(),
            queue_waiters: BTreeMap::new(),
            ready_key: None,
            staged: None,
            slice_key: SimTime::BOOT,
            pending_dumps: BTreeSet::new(),
            namei_cache: Cell::new(None),
            n_dir,
            dev_dir,
            dump_dir,
            next_pid: 2, // 1 is init.
        }
    }

    /// The reaper's pending-dump index: pids that may still have
    /// `SIGDUMP` artifact files in `/usr/tmp` (a superset of the truth;
    /// tests check it against a fresh directory scan).
    pub fn pending_dump_pids(&self) -> Vec<u32> {
        self.pending_dumps.iter().copied().collect()
    }

    /// Records a file landing in `/usr/tmp`: a dump-artifact name adds
    /// its pid to the reaper's pending set.
    pub(crate) fn note_dump_create(&mut self, parent: Ino, name: &str) {
        if parent == self.dump_dir {
            if let Some(pid) = dump_artifact_pid(name) {
                self.pending_dumps.insert(pid);
            }
        }
    }

    /// Records a file leaving `/usr/tmp`: once no artifact of the pid's
    /// triple remains, its pending entry goes too.
    pub(crate) fn note_dump_unlink(&mut self, parent: Ino, name: &str) {
        if parent != self.dump_dir {
            return;
        }
        let Some(pid) = dump_artifact_pid(name) else {
            return;
        };
        let any_left = DUMP_ARTIFACT_PREFIXES
            .iter()
            .any(|p| self.fs.lookup(self.dump_dir, &format!("{p}{pid:05}")).is_ok());
        if !any_left {
            self.pending_dumps.remove(&pid);
        }
    }

    /// The clock the scheduler orders this machine by: a machine with a
    /// frozen slice is keyed at that slice's start (the clock the serial
    /// engine would have picked it at), everyone else at `now`.
    pub(crate) fn sched_key(&self) -> SimTime {
        self.staged.as_ref().map(|s| s.key).unwrap_or(self.now)
    }

    /// The cached root → `/n` resolution, if still valid for this
    /// filesystem generation and these credentials.
    pub(crate) fn namei_cache_get(&self, cred: &Credentials) -> Option<Ino> {
        let c = self.namei_cache.get()?;
        (c.gen == self.fs.generation() && c.cred == cred_key(cred)).then_some(c.ino)
    }

    /// Records the root → `/n` resolution for `cred` at the current
    /// filesystem generation.
    pub(crate) fn namei_cache_fill(&self, cred: &Credentials, ino: Ino) {
        self.namei_cache.set(Some(NameiCache {
            gen: self.fs.generation(),
            cred: cred_key(cred),
            ino,
        }));
    }

    /// Allocates the next pid.
    pub fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// The next pid the allocator will hand out, for the determinism
    /// snapshot.
    pub fn next_pid(&self) -> u32 {
        self.next_pid
    }

    /// Borrows a process.
    pub fn proc_ref(&self, pid: Pid) -> Option<&Proc> {
        self.procs.get(&pid.as_u32())
    }

    /// Mutably borrows a process.
    pub fn proc_mut(&mut self, pid: Pid) -> Option<&mut Proc> {
        self.procs.get_mut(&pid.as_u32())
    }

    /// Charges a cost: CPU time to the clock, the busy counter and (when
    /// `pid` names a live process) the process's system time; wait time
    /// advances the clock only.
    pub fn charge_sys(&mut self, pid: Option<Pid>, cost: Cost) {
        self.now += cost.cpu;
        self.now += cost.wait;
        self.busy += cost.cpu;
        if let Some(pid) = pid {
            if let Some(p) = self.proc_mut(pid) {
                p.stime += cost.cpu;
            }
        }
    }

    /// Charges user-mode CPU time.
    pub fn charge_user(&mut self, pid: Pid, cpu: SimDuration) {
        self.now += cpu;
        self.busy += cpu;
        if let Some(p) = self.proc_mut(pid) {
            p.utime += cpu;
        }
    }

    /// Records a timer deadline for `pid` (a `sleep` wake-up or an
    /// `alarm` expiry). Superseded deadlines need no cancellation: they
    /// become stale heap entries that [`Machine::next_deadline`] skips.
    pub fn push_timer(&mut self, pid: Pid, when: SimTime) {
        self.timers.push(Reverse((when, pid.as_u32())));
    }

    /// The earliest live timer (sleep or alarm) deadline, popping stale
    /// entries off the heap as they surface.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, pid))) = self.timers.peek() {
            let live = self.procs.get(&pid).is_some_and(|p| {
                matches!(p.state, crate::proc::ProcState::Sleeping { until } if until == t)
                    || matches!(p.state, crate::proc::ProcState::PageWait { until, .. } if until == t)
                    || p.alarm_at == Some(t)
            });
            if live {
                return Some(t);
            }
            self.timers.pop();
        }
        None
    }

    /// Pops every timer entry due at the machine's current clock into
    /// `into` (deduplicated, pid-ordered). Stale lazy-deletion entries
    /// are popped too: the wake pass re-checks each pid's actual state,
    /// so surfacing a dead deadline is harmless.
    pub(crate) fn take_due_timers(&mut self, into: &mut BTreeSet<u32>) {
        while let Some(&Reverse((t, pid))) = self.timers.peek() {
            if t > self.now {
                break;
            }
            self.timers.pop();
            into.insert(pid);
        }
    }

    /// Registers a blocked process as waiting on a byte queue.
    pub(crate) fn wait_on_queue(&mut self, q: QueueId, pid: Pid) {
        self.queue_waiters.entry(q).or_default().insert(pid.as_u32());
    }

    /// Moves a queue's waiters into the pending-wake set (the queue's
    /// state changed), dropping registrations whose process is no
    /// longer parked on a pipe. Returns whether anything became pending.
    pub(crate) fn poke_queue(&mut self, q: QueueId) -> bool {
        let procs = &self.procs;
        let Some(waiters) = self.queue_waiters.get_mut(&q) else {
            return false;
        };
        waiters.retain(|pid| {
            matches!(
                procs.get(pid).map(|p| &p.state),
                Some(crate::proc::ProcState::PipeWait)
            )
        });
        if waiters.is_empty() {
            self.queue_waiters.remove(&q);
            return false;
        }
        self.wait_pending.extend(self.queue_waiters[&q].iter().copied());
        true
    }

    /// Run-queue depth — the load metric the policy layer and `simsh
    /// load` read. Served straight from the scheduler's queue rather
    /// than a process-table scan.
    pub fn run_queue_depth(&self) -> usize {
        self.run_queue.len()
    }

    /// Marks a path's inodes as cached, returning whether it was cold.
    pub fn touch_path(&mut self, path: &str) -> bool {
        self.warm_paths.insert(path.to_string())
    }

    /// Updates the name-memory peak statistic.
    pub fn note_name_bytes(&mut self, fixed: bool) {
        let cur = self.files.name_bytes(fixed);
        if cur > self.name_bytes_peak {
            self.name_bytes_peak = cur;
        }
    }

    /// Enqueues a process at the back of the run queue if not present.
    pub fn make_runnable(&mut self, pid: Pid) {
        if let Some(p) = self.proc_mut(pid) {
            p.state = crate::proc::ProcState::Runnable;
        }
        if !self.run_queue.contains(&pid) {
            self.run_queue.push_back(pid);
        }
    }

    /// Ensures an already-runnable process is queued (used after posting
    /// a signal so delivery happens promptly).
    pub fn nudge(&mut self, pid: Pid) {
        let runnable = self
            .proc_ref(pid)
            .map(|p| p.state.is_runnable())
            .unwrap_or(false);
        if runnable && !self.run_queue.contains(&pid) {
            self.run_queue.push_back(pid);
        }
    }

    /// Number of live (non-zombie) processes, the `ps` view.
    pub fn live_procs(&self) -> usize {
        self.procs
            .values()
            .filter(|p| !matches!(p.state, crate::proc::ProcState::Zombie { .. }))
            .count()
    }

    /// CPU utilisation so far: busy time over elapsed time.
    pub fn utilization(&self) -> f64 {
        let elapsed = self.now.as_micros();
        if elapsed == 0 {
            return 0.0;
        }
        self.busy.as_micros() as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::WalkOutcome;

    #[test]
    fn boot_builds_the_skeleton() {
        let m = Machine::boot(0, "brick", IsaLevel::Isa1);
        for path in ["dev", "usr", "etc", "bin", "u", "tmp", "n"] {
            assert!(m.fs.lookup(m.fs.root(), path).is_ok(), "missing /{path}");
        }
        let out =
            m.fs.walk(m.fs.root(), &["usr".into(), "tmp".into()], None)
                .unwrap();
        assert!(matches!(out, WalkOutcome::Done(_)));
        let dev_null =
            m.fs.walk(m.fs.root(), &["dev".into(), "null".into()], None)
                .unwrap();
        assert!(matches!(dev_null, WalkOutcome::Done(_)));
    }

    #[test]
    fn pid_allocation_monotonic() {
        let mut m = Machine::boot(0, "brick", IsaLevel::Isa1);
        let a = m.alloc_pid();
        let b = m.alloc_pid();
        assert!(b > a);
        assert!(a > Pid::INIT);
    }

    #[test]
    fn charging_advances_clock_and_accounting() {
        let mut m = Machine::boot(0, "brick", IsaLevel::Isa1);
        m.charge_sys(None, Cost::cpu_us(100).plus(Cost::wait_us(900)));
        assert_eq!(m.now.as_micros(), 1_000);
        assert_eq!(m.busy.as_micros(), 100);
        assert!((m.utilization() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn warm_path_cache() {
        let mut m = Machine::boot(0, "brick", IsaLevel::Isa1);
        assert!(m.touch_path("/usr/tmp/x"), "first touch is cold");
        assert!(!m.touch_path("/usr/tmp/x"), "second touch is warm");
    }
}
