//! Native processes: Rust utilities running under the simulated kernel.
//!
//! The paper's user-level programs (`dumpproc`, `restart`, `migrate`,
//! daemons) are ordinary imperative code. To let them stay that way while
//! the kernel remains a deterministic single-threaded simulation, each
//! native process runs its program on a dedicated OS thread that
//! **rendezvouses** with the kernel for every system call:
//!
//! 1. the program calls a [`Sys`] method, which sends a request and
//!    blocks on the response channel;
//! 2. when the scheduler next runs the process, the kernel receives the
//!    request, executes it, charges its simulated cost, and replies;
//! 3. the thread resumes.
//!
//! Only one side is ever active for a given process, so execution is
//! deterministic. If the kernel kills the process (signal, shutdown) it
//! drops the channel; every pending and future [`Sys`] call then fails
//! with `EINTR` and the program unwinds naturally.
//!
//! A successful `rest_proc()` (or `execve()`) replies success and then
//! replaces the process body with the VM image; the [`Sys`] wrapper turns
//! that reply into a thread exit, so "there is no return from this system
//! call", exactly as §4.3 specifies.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use sysdefs::{Disposition, Errno, Pid, Signal, SysResult, TtyFlags};

use crate::sys::args::{IoctlReq, Syscall, Whence};

/// A native program body: takes its [`Sys`] handle, returns its exit
/// status.
pub type NativeProgram = Box<dyn FnOnce(&Sys) -> u32 + Send + 'static>;

/// What a native thread sends to the kernel.
pub enum Request {
    /// An ordinary system call.
    Syscall(Syscall),
    /// Run a command on another machine through `rsh`, blocking until it
    /// exits; the reply value is the remote exit status.
    Rsh {
        /// Destination host name.
        host: String,
        /// The remote command body.
        prog: NativeProgram,
        /// Remote command name for diagnostics.
        comm: String,
    },
    /// Spawn a child native process on the *local* machine, blocking
    /// until it exits (how `migrate` runs `dumpproc`/`restart` locally
    /// without the cost of `rsh`). Reply value is the exit status.
    RunLocal {
        /// The command body.
        prog: NativeProgram,
        /// Command name for diagnostics.
        comm: String,
    },
    /// Charge `units` of user-mode CPU (models the program's own
    /// computation between system calls).
    Compute {
        /// Simple-instruction units.
        units: u64,
    },
    /// Ask the migration daemon on another machine to run a command —
    /// the §6.4 proposal: "instead of using rsh to start processes
    /// remotely, applications will simply send messages to the daemon,
    /// who will start the processes on their behalf." One network
    /// message instead of a whole `rsh` session.
    Daemon {
        /// Destination host name.
        host: String,
        /// The remote command body.
        prog: NativeProgram,
        /// Remote command name for diagnostics.
        comm: String,
    },
}

/// The kernel's reply to a request.
#[derive(Clone, Debug)]
pub struct Response {
    /// Numeric result or errno.
    pub val: Result<u32, Errno>,
    /// Returned bytes for buffer-filling calls.
    pub data: Vec<u8>,
    /// True when the process was overlaid by a new image: the thread
    /// must terminate without touching [`Sys`] again.
    pub overlaid: bool,
}

impl Response {
    /// A plain value reply.
    pub fn of(val: Result<u32, Errno>) -> Response {
        Response {
            val,
            data: Vec::new(),
            overlaid: false,
        }
    }
}

/// The kernel's side of a native process: request receiver, response
/// sender, and the thread handle.
#[derive(Debug)]
pub struct NativeChan {
    /// Requests from the program.
    pub req_rx: Receiver<Request>,
    /// Responses to the program.
    pub resp_tx: Sender<Response>,
    /// The program thread (detached on drop).
    pub join: Option<JoinHandle<()>>,
}

/// Panic payload used to unwind a thread whose process was overlaid.
struct OverlayExit;

/// The program's system-call interface.
pub struct Sys {
    req_tx: Sender<Request>,
    resp_rx: Receiver<Response>,
}

impl Sys {
    fn roundtrip(&self, req: Request) -> SysResult<Response> {
        if self.req_tx.send(req).is_err() {
            return Err(Errno::EINTR);
        }
        match self.resp_rx.recv() {
            Ok(resp) if resp.overlaid => resume_unwind(Box::new(OverlayExit)),
            Ok(resp) => Ok(resp),
            Err(_) => Err(Errno::EINTR),
        }
    }

    fn call(&self, sc: Syscall) -> SysResult<Response> {
        self.roundtrip(Request::Syscall(sc))
    }

    fn val(&self, sc: Syscall) -> SysResult<u32> {
        self.call(sc)?.val
    }

    /// Opens a file; returns the descriptor. `mode` gives the
    /// permission bits of a `CREAT` open and is ignored otherwise.
    pub fn open(&self, path: &str, flags: u16, mode: u16) -> SysResult<usize> {
        self.val(Syscall::Open {
            path: path.into(),
            flags,
            mode,
        })
        .map(|v| v as usize)
    }

    /// Creates (truncating) and opens a file for writing.
    pub fn creat(&self, path: &str, mode: u16) -> SysResult<usize> {
        self.val(Syscall::Creat {
            path: path.into(),
            mode,
        })
        .map(|v| v as usize)
    }

    /// Reads up to `len` bytes.
    pub fn read(&self, fd: usize, len: usize) -> SysResult<Vec<u8>> {
        let resp = self.call(Syscall::Read {
            fd,
            len,
            buf_addr: None,
        })?;
        resp.val?;
        Ok(resp.data)
    }

    /// Reads the whole remainder of a file.
    pub fn read_all(&self, fd: usize) -> SysResult<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            let chunk = self.read(fd, 8192)?;
            if chunk.is_empty() {
                return Ok(out);
            }
            out.extend_from_slice(&chunk);
        }
    }

    /// Writes bytes; returns the count written.
    pub fn write(&self, fd: usize, bytes: &[u8]) -> SysResult<usize> {
        self.val(Syscall::Write {
            fd,
            bytes: bytes.to_vec(),
        })
        .map(|v| v as usize)
    }

    /// Closes a descriptor.
    pub fn close(&self, fd: usize) -> SysResult<()> {
        self.val(Syscall::Close { fd }).map(|_| ())
    }

    /// Repositions a descriptor.
    pub fn lseek(&self, fd: usize, offset: i64, whence: Whence) -> SysResult<u64> {
        self.val(Syscall::Lseek { fd, offset, whence })
            .map(|v| v as u64)
    }

    /// Changes the working directory.
    pub fn chdir(&self, path: &str) -> SysResult<()> {
        self.val(Syscall::Chdir { path: path.into() }).map(|_| ())
    }

    /// Returns a file's size, or the error.
    pub fn stat_size(&self, path: &str) -> SysResult<u64> {
        self.val(Syscall::Stat { path: path.into() })
            .map(|v| v as u64)
    }

    /// Removes a name.
    pub fn unlink(&self, path: &str) -> SysResult<()> {
        self.val(Syscall::Unlink { path: path.into() }).map(|_| ())
    }

    /// Hard-links `old` to `new`.
    pub fn link(&self, old: &str, new: &str) -> SysResult<()> {
        self.val(Syscall::Link {
            old: old.into(),
            new: new.into(),
        })
        .map(|_| ())
    }

    /// Creates a symbolic link.
    pub fn symlink(&self, target: &str, link: &str) -> SysResult<()> {
        self.val(Syscall::Symlink {
            target: target.into(),
            link: link.into(),
        })
        .map(|_| ())
    }

    /// Reads a symbolic link's target.
    pub fn readlink(&self, path: &str) -> SysResult<String> {
        let resp = self.call(Syscall::Readlink {
            path: path.into(),
            buf_addr: None,
            buf_len: sysdefs::MAXPATHLEN,
        })?;
        resp.val?;
        Ok(String::from_utf8_lossy(&resp.data).into_owned())
    }

    /// Makes a directory.
    pub fn mkdir(&self, path: &str, mode: u16) -> SysResult<()> {
        self.val(Syscall::Mkdir {
            path: path.into(),
            mode,
        })
        .map(|_| ())
    }

    /// The (possibly virtualised) process id.
    pub fn getpid(&self) -> SysResult<Pid> {
        self.val(Syscall::Getpid).map(Pid)
    }

    /// The real uid.
    pub fn getuid(&self) -> SysResult<u32> {
        self.val(Syscall::Getuid)
    }

    /// Sends a signal.
    pub fn kill(&self, pid: Pid, sig: Signal) -> SysResult<()> {
        self.val(Syscall::Kill {
            pid: pid.as_u32(),
            sig: sig.number(),
        })
        .map(|_| ())
    }

    /// Duplicates a descriptor.
    pub fn dup(&self, fd: usize) -> SysResult<usize> {
        self.val(Syscall::Dup { fd }).map(|v| v as usize)
    }

    /// Sets real and effective uids (`u32::MAX` keeps a value).
    pub fn setreuid(&self, ruid: u32, euid: u32) -> SysResult<()> {
        self.val(Syscall::Setreuid { ruid, euid }).map(|_| ())
    }

    /// The (possibly virtualised) hostname.
    pub fn gethostname(&self) -> SysResult<String> {
        let resp = self.call(Syscall::Gethostname {
            buf_addr: None,
            buf_len: sysdefs::limits::MAXHOSTNAMELEN,
        })?;
        resp.val?;
        Ok(String::from_utf8_lossy(&resp.data).into_owned())
    }

    /// §7 extension: the true pid.
    pub fn getpid_real(&self) -> SysResult<Pid> {
        self.val(Syscall::GetpidReal).map(Pid)
    }

    /// §7 extension: the true hostname.
    pub fn gethostname_real(&self) -> SysResult<String> {
        let resp = self.call(Syscall::GethostnameReal {
            buf_addr: None,
            buf_len: sysdefs::limits::MAXHOSTNAMELEN,
        })?;
        resp.val?;
        Ok(String::from_utf8_lossy(&resp.data).into_owned())
    }

    /// The kernel's current-working-directory string.
    pub fn getwd(&self) -> SysResult<String> {
        let resp = self.call(Syscall::Getwd {
            buf_addr: None,
            buf_len: sysdefs::MAXPATHLEN,
        })?;
        resp.val?;
        Ok(String::from_utf8_lossy(&resp.data).into_owned())
    }

    /// Terminal mode query on a descriptor.
    pub fn gtty(&self, fd: usize) -> SysResult<TtyFlags> {
        self.val(Syscall::Ioctl {
            fd,
            req: IoctlReq::Gtty,
        })
        .map(|v| TtyFlags::from_bits(v as u16))
    }

    /// Terminal mode set on a descriptor.
    pub fn stty(&self, fd: usize, flags: TtyFlags) -> SysResult<()> {
        self.val(Syscall::Ioctl {
            fd,
            req: IoctlReq::Stty(flags),
        })
        .map(|_| ())
    }

    /// Sets a signal disposition.
    pub fn sigvec(&self, sig: Signal, disp: Disposition) -> SysResult<()> {
        self.val(Syscall::Sigvec {
            sig: sig.number(),
            disp,
        })
        .map(|_| ())
    }

    /// Replaces the blocked-signal mask, returning the old one.
    pub fn sigsetmask(&self, mask: u32) -> SysResult<u32> {
        self.val(Syscall::Sigsetmask { mask })
    }

    /// Schedules a `SIGALRM` after `secs` seconds (0 cancels).
    pub fn alarm(&self, secs: u32) -> SysResult<u32> {
        self.val(Syscall::Alarm { secs })
    }

    /// Virtual micro-seconds since world boot.
    pub fn gettimeofday(&self) -> SysResult<u64> {
        // The value is split low/high across val/data to keep u64 range.
        let resp = self.call(Syscall::Gettimeofday)?;
        let lo = resp.val? as u64;
        let hi = if resp.data.len() == 4 {
            u32::from_be_bytes([resp.data[0], resp.data[1], resp.data[2], resp.data[3]]) as u64
        } else {
            0
        };
        Ok((hi << 32) | lo)
    }

    /// Sleeps for `micros` of simulated time.
    pub fn sleep_us(&self, micros: u64) -> SysResult<()> {
        self.val(Syscall::Sleep { micros }).map(|_| ())
    }

    /// Waits for any child; returns `(pid, status)`.
    pub fn wait(&self) -> SysResult<(Pid, u32)> {
        let resp = self.call(Syscall::Wait)?;
        let pid = resp.val?;
        let status = if resp.data.len() == 4 {
            u32::from_be_bytes([resp.data[0], resp.data[1], resp.data[2], resp.data[3]])
        } else {
            0
        };
        Ok((Pid(pid), status))
    }

    /// `execve(2)`: overlays the caller with a fresh program. On
    /// success the calling thread terminates like [`Sys::rest_proc`];
    /// the returned value is the failure errno otherwise.
    pub fn execve(&self, path: &str) -> Errno {
        match self.val(Syscall::Execve { path: path.into() }) {
            Ok(_) => Errno::EIO,
            Err(e) => e,
        }
    }

    /// **The paper's new system call.** Overlays the caller with the
    /// dumped image named by the `a.outXXXXX` and `stackXXXXX` paths.
    ///
    /// On success this call does not return — the calling thread
    /// terminates and the process continues as the restored program. The
    /// returned value is therefore always the failure errno: "if the
    /// system call does return, this means that either the system didn't
    /// have enough resources ... or that something was wrong with the two
    /// files".
    pub fn rest_proc(
        &self,
        aout: &str,
        stack: &str,
        old_pid: Option<Pid>,
        old_host: Option<&str>,
    ) -> Errno {
        self.rest_proc_mode(aout, stack, old_pid, old_host, false)
    }

    /// [`Sys::rest_proc`] with an explicit restore mode: `demand` true
    /// restores only registers + stack + text now and faults the data
    /// pages over from the dump as they are touched.
    pub fn rest_proc_mode(
        &self,
        aout: &str,
        stack: &str,
        old_pid: Option<Pid>,
        old_host: Option<&str>,
        demand: bool,
    ) -> Errno {
        match self.val(Syscall::RestProc {
            aout: aout.into(),
            stack: stack.into(),
            old_pid: old_pid.map(|p| p.as_u32()),
            old_host: old_host.map(str::to_string),
            demand,
        }) {
            // A non-overlaid success reply never happens; treat it as IO
            // weirdness rather than panicking inside a user program.
            Ok(_) => Errno::EIO,
            Err(e) => e,
        }
    }

    fn remote_result(resp: Response) -> SysResult<(u32, Option<Pid>)> {
        let status = resp.val?;
        let pid = if resp.data.len() == 4 {
            Some(Pid(u32::from_be_bytes([
                resp.data[0],
                resp.data[1],
                resp.data[2],
                resp.data[3],
            ])))
        } else {
            None
        };
        Ok((status, pid))
    }

    /// Runs `prog` on `host` through `rsh`, blocking until it finishes;
    /// returns its exit status. All of `rsh`'s connection-establishment
    /// cost is charged to the caller's real time.
    pub fn rsh(
        &self,
        host: &str,
        comm: &str,
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
    ) -> SysResult<u32> {
        self.rsh_pid(host, comm, prog).map(|(status, _)| status)
    }

    /// Like [`Sys::rsh`], also returning the remote process's pid.
    pub fn rsh_pid(
        &self,
        host: &str,
        comm: &str,
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
    ) -> SysResult<(u32, Option<Pid>)> {
        Self::remote_result(self.roundtrip(Request::Rsh {
            host: host.into(),
            prog: Box::new(prog),
            comm: comm.into(),
        })?)
    }

    /// Runs `prog` as a child process on the local machine, blocking
    /// until it finishes; returns its exit status.
    pub fn run_local(
        &self,
        comm: &str,
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
    ) -> SysResult<u32> {
        self.run_local_pid(comm, prog).map(|(status, _)| status)
    }

    /// Like [`Sys::run_local`], also returning the child's pid.
    pub fn run_local_pid(
        &self,
        comm: &str,
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
    ) -> SysResult<(u32, Option<Pid>)> {
        Self::remote_result(self.roundtrip(Request::RunLocal {
            prog: Box::new(prog),
            comm: comm.into(),
        })?)
    }

    /// Runs `prog` on `host` through the migration daemon (the §6.4
    /// improvement over `rsh`): one message to a well-known port instead
    /// of a connection-per-command session.
    pub fn daemon_spawn(
        &self,
        host: &str,
        comm: &str,
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
    ) -> SysResult<(u32, Option<Pid>)> {
        Self::remote_result(self.roundtrip(Request::Daemon {
            host: host.into(),
            prog: Box::new(prog),
            comm: comm.into(),
        })?)
    }

    /// Charges `units` simple-instruction units of user CPU time,
    /// modelling computation the program does between system calls.
    pub fn compute(&self, units: u64) -> SysResult<()> {
        self.roundtrip(Request::Compute { units }).map(|_| ())
    }
}

/// Spawns the program thread and returns the kernel-side channel.
pub fn spawn_native(prog: NativeProgram) -> NativeChan {
    let (req_tx, req_rx) = unbounded::<Request>();
    let (resp_tx, resp_rx) = unbounded::<Response>();
    let sys = Sys { req_tx, resp_rx };
    let join = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| prog(&sys)));
        match result {
            Ok(status) => {
                // Normal return: ask the kernel to exit us. Failure just
                // means the kernel already forgot us.
                let _ = sys.req_tx.send(Request::Syscall(Syscall::Exit { status }));
            }
            Err(payload) => {
                if payload.downcast_ref::<OverlayExit>().is_some() {
                    // rest_proc/execve succeeded; the process lives on as
                    // the restored image. Say nothing.
                } else {
                    // The program panicked: report it as status 255 so
                    // tests see the failure rather than a hang.
                    let _ = sys
                        .req_tx
                        .send(Request::Syscall(Syscall::Exit { status: 255 }));
                }
            }
        }
    });
    NativeChan {
        req_rx,
        resp_tx,
        join: Some(join),
    }
}

// Dropping a `NativeChan` drops the channel endpoints, which unblocks
// the program thread (its `Sys` calls start failing with `EINTR`); the
// thread then detaches harmlessly when its `JoinHandle` is dropped.

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a native program from a fake "kernel" loop, answering each
    /// request with `answer`.
    fn drive(
        prog: impl FnOnce(&Sys) -> u32 + Send + 'static,
        mut answer: impl FnMut(Request) -> Response,
    ) -> Vec<String> {
        let chan = spawn_native(Box::new(prog));
        let mut seen = Vec::new();
        while let Ok(req) = chan.req_rx.recv() {
            let name = match &req {
                Request::Syscall(sc) => sc.name().to_string(),
                Request::Rsh { host, .. } => format!("rsh:{host}"),
                Request::RunLocal { comm, .. } => format!("run:{comm}"),
                Request::Compute { .. } => "compute".to_string(),
                Request::Daemon { host, .. } => format!("daemon:{host}"),
            };
            let is_exit = matches!(&req, Request::Syscall(Syscall::Exit { .. }));
            seen.push(name);
            if is_exit {
                break;
            }
            let resp = answer(req);
            chan.resp_tx.send(resp).unwrap();
        }
        seen
    }

    #[test]
    fn requests_arrive_in_program_order() {
        let seen = drive(
            |sys| {
                let fd = sys.open("/etc/motd", 0, 0).unwrap();
                let _ = sys.read(fd, 10);
                sys.close(fd).unwrap();
                0
            },
            |_| Response::of(Ok(3)),
        );
        assert_eq!(seen, vec!["open", "read", "close", "exit"]);
    }

    #[test]
    fn errno_propagates() {
        let seen = drive(
            |sys| match sys.open("/missing", 0, 0) {
                Err(Errno::ENOENT) => 42,
                other => panic!("unexpected {other:?}"),
            },
            |_| Response::of(Err(Errno::ENOENT)),
        );
        assert_eq!(seen.last().unwrap(), "exit");
    }

    #[test]
    fn overlay_terminates_thread_silently() {
        let chan = spawn_native(Box::new(|sys| {
            let e = sys.rest_proc("/usr/tmp/a.out00002", "/usr/tmp/stack00002", None, None);
            panic!("rest_proc returned {e}");
        }));
        let req = chan.req_rx.recv().unwrap();
        assert!(matches!(req, Request::Syscall(Syscall::RestProc { .. })));
        chan.resp_tx
            .send(Response {
                val: Ok(0),
                data: Vec::new(),
                overlaid: true,
            })
            .unwrap();
        // The thread must end without sending anything else.
        assert!(chan.req_rx.recv().is_err());
    }

    #[test]
    fn killed_process_unwinds_with_eintr() {
        let chan = spawn_native(Box::new(|sys| {
            match sys.open("/x", 0, 0) {
                Err(Errno::EINTR) => {}
                other => panic!("unexpected {other:?}"),
            }
            7
        }));
        let _req = chan.req_rx.recv().unwrap();
        // Kernel kills the process: drop the response sender.
        drop(chan.resp_tx);
        // The thread finishes; its final Exit lands or the channel is gone.
        match chan.req_rx.recv() {
            Ok(Request::Syscall(Syscall::Exit { status })) => assert_eq!(status, 7),
            Ok(_) => panic!("unexpected request"),
            Err(_) => {}
        }
    }

    #[test]
    fn panicking_program_reports_255() {
        let seen = drive(|_sys| panic!("program bug"), |_| Response::of(Ok(0)));
        assert_eq!(seen, vec!["exit"]);
    }
}
