//! Signal delivery, including the paper's `SIGDUMP` action.
//!
//! `SIGQUIT` terminates with a `core` file; **`SIGDUMP`** — the kernel
//! addition — terminates after writing the three migration files. "The
//! code is similar to that of ... SIGQUIT, which causes a process to
//! terminate (dumping a subset of the information we dump for our new
//! signal) in a file named core."

use aout::{encode_executable, CoreFile};
use dumpfmt::{dump_file_names, DeltaFile, DeltaPage, FdRecord, FilesFile, StackFile};
use m68vm::MemoryLayout;
use simnet::FaultSite;
use simtime::cost::Cost;
use sysdefs::limits::NOFILE;
use sysdefs::{DefaultAction, Disposition, Errno, FileMode, Pid, Signal, SysResult, TtyFlags};
use vfs::{path as vpath, Ino};

use crate::machine::MachineId;
use crate::proc::{Body, ProcState};
use crate::sys::args::{SysRetval, SyscallResult};
use crate::world::World;

/// Delivers every deliverable pending signal to `pid`.
///
/// Returns `true` if the process is still alive and runnable afterwards.
pub fn deliver_pending(w: &mut World, mid: MachineId, pid: Pid) -> bool {
    loop {
        let sig = match w.proc_mut(mid, pid) {
            Some(p) => match p.take_signal() {
                Some(s) => s,
                None => return true,
            },
            None => return false,
        };
        w.machine_mut(mid).stats.signals += 1;
        let c = w.config.cost.signal_delivery();
        w.charge_kernel(mid, pid, c);

        let disp = {
            let p = w.proc_ref(mid, pid).expect("checked above");
            if sig.uncatchable() {
                Disposition::Default
            } else {
                p.user.sigs.dispositions[(sig.number() - 1) as usize]
            }
        };
        match disp {
            Disposition::Ignore => continue,
            Disposition::Handler(addr) => {
                // A signal caught while blocked in a system call aborts
                // the call with EINTR first (4.2BSD semantics), so the
                // handler's register state is not clobbered by a stale
                // write-back when the call would otherwise be retried.
                let was_blocked = w
                    .proc_ref(mid, pid)
                    .map(|p| p.pending_syscall.is_some())
                    .unwrap_or(false);
                if was_blocked {
                    w.complete_pending(mid, pid, SysRetval::err(Errno::EINTR));
                }
                push_handler_frame(w, mid, pid, sig, addr);
                continue;
            }
            Disposition::Default => match sig.default_action() {
                DefaultAction::Ignore => continue,
                DefaultAction::Continue => continue,
                DefaultAction::Stop => {
                    if let Some(p) = w.proc_mut(mid, pid) {
                        p.state = ProcState::Stopped;
                    }
                    return false;
                }
                DefaultAction::Terminate => {
                    w.do_exit(mid, pid, 128 + sig.number());
                    return false;
                }
                DefaultAction::CoreDump => {
                    let _ = write_core(w, mid, pid);
                    w.do_exit(mid, pid, 128 + sig.number());
                    return false;
                }
                DefaultAction::MigrationDump => {
                    // The dump happens in the context of the dumped
                    // process — dumpproc must wait for the context
                    // switch, which is Figure 2's real-time story.
                    //
                    // The exit is gated on the dump: a process that
                    // could not be saved (disk full, crash mid-write)
                    // keeps running at the source. Killing it anyway
                    // would leave *no* copy alive anywhere — the
                    // failure-atomicity violation the whole fault layer
                    // exists to catch.
                    match write_migration_dump(w, mid, pid) {
                        Ok(()) => {
                            w.machine_mut(mid).stats.dumps += 1;
                            w.do_exit(mid, pid, 128 + sig.number());
                            return false;
                        }
                        Err(_) => continue,
                    }
                }
            },
        }
    }
}

/// Pushes a signal frame onto a VM process's stack: saved pc, sr and
/// blocked mask, then enters the handler. Native bodies record signals
/// but have no handler text to run, so the signal is dropped.
fn push_handler_frame(w: &mut World, mid: MachineId, pid: Pid, sig: Signal, addr: u32) {
    let Some(p) = w.proc_mut(mid, pid) else {
        return;
    };
    let sig_bit = 1u32 << (sig.number() - 1);
    if let Body::Vm(vm) = &mut p.body {
        let old_blocked = p.user.sigs.blocked;
        let sp = vm.cpu.a[7].wrapping_sub(12);
        let ok = vm.mem.write_u32(sp, vm.cpu.pc).is_ok()
            && vm.mem.write_u32(sp + 4, vm.cpu.sr as u32).is_ok()
            && vm.mem.write_u32(sp + 8, old_blocked).is_ok();
        if !ok {
            // Stack gone: treat like SIGSEGV default.
            return;
        }
        vm.cpu.a[7] = sp;
        vm.cpu.pc = addr;
        // The signal is masked for the duration of the handler.
        p.user.sigs.blocked |= sig_bit;
    }
}

/// `sigreturn(2)`: unwind the frame pushed by the handler entry.
pub fn sys_sigreturn(cx: &mut crate::sys::ctx::SysCtx<'_>) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    let r = (|| -> SysResult<SysRetval> {
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let Body::Vm(vm) = &mut p.body else {
            return Err(Errno::EINVAL);
        };
        let sp = vm.cpu.a[7];
        let pc = vm.mem.read_u32(sp).map_err(|_| Errno::EFAULT)?;
        let sr = vm.mem.read_u32(sp + 4).map_err(|_| Errno::EFAULT)?;
        let blocked = vm.mem.read_u32(sp + 8).map_err(|_| Errno::EFAULT)?;
        vm.cpu.a[7] = sp + 12;
        vm.cpu.pc = pc;
        vm.cpu.sr = sr as u16;
        p.user.sigs.blocked = blocked;
        Ok(SysRetval::ok(0))
    })();
    match r {
        // Successful sigreturn must not clobber the restored d0/carry,
        // so the dispatcher treats it as Gone-like: no write-back.
        Ok(_) => SyscallResult::Gone,
        Err(e) => SyscallResult::Done(SysRetval::err(e)),
    }
}

/// Creates (or truncates) a file at an absolute path on `mid`'s local
/// filesystem as the kernel itself, returning the inode.
fn kernel_create(
    w: &mut World,
    mid: MachineId,
    dir_path: &str,
    name: &str,
    mode: FileMode,
    owner: sysdefs::Credentials,
) -> SysResult<Ino> {
    let m = w.machine_mut(mid);
    let comps = vpath::components(dir_path);
    let dir = match m.fs.walk(m.fs.root(), &comps, None)? {
        vfs::WalkOutcome::Done(ino) => ino,
        _ => return Err(Errno::ENOENT),
    };
    match m.fs.lookup(dir, name) {
        Ok(existing) => {
            m.fs.truncate(existing)?;
            m.note_dump_create(dir, name);
            Ok(existing)
        }
        Err(_) => {
            let ino = m.fs.create_file(dir, name, mode, &owner)?;
            m.note_dump_create(dir, name);
            Ok(ino)
        }
    }
}

/// Writes `bytes` as a fresh dump/core file, charging the synchronous
/// create + streaming write + sync-close this kind of file costs.
#[allow(clippy::too_many_arguments)]
fn kernel_write_file(
    w: &mut World,
    mid: MachineId,
    pid: Pid,
    dir: &str,
    name: &str,
    bytes: &[u8],
    mode: FileMode,
    owner: sysdefs::Credentials,
) -> SysResult<()> {
    let ino = kernel_create(w, mid, dir, name, mode, owner)?;
    w.fs_mut(mid).write(ino, 0, bytes)?;
    let c = w
        .config
        .cost
        .disk_create()
        .plus(w.config.cost.disk_write(bytes.len()))
        .plus(w.config.cost.disk_sync_close());
    w.charge_kernel(mid, pid, c);
    Ok(())
}

/// `SIGQUIT`'s core dump: registers, data and stack into `./core`
/// (written to `/usr/tmp` like the dump files, to keep the simulated
/// kernel path simple — the content is what matters for `undump`).
pub fn write_core(w: &mut World, mid: MachineId, pid: Pid) -> SysResult<()> {
    let (core, owner) = {
        let p = w.proc_ref(mid, pid).ok_or(Errno::ESRCH)?;
        let Body::Vm(vm) = &p.body else {
            return Err(Errno::EINVAL);
        };
        (
            CoreFile {
                regs: vm.cpu.to_regs(),
                data: vm.mem.data().to_vec(),
                stack: vm.mem.stack_from(vm.cpu.sp()).unwrap_or(&[]).to_vec(),
            },
            p.user.cred.clone(),
        )
    };
    let name = format!("core{:05}", pid.as_u32());
    kernel_write_file(
        w,
        mid,
        pid,
        sysdefs::limits::DUMP_DIR,
        &name,
        &core.encode(),
        FileMode(0o600),
        owner,
    )
}

/// **The `SIGDUMP` action**: write `a.outXXXXX`, `filesXXXXX` and
/// `stackXXXXX` into `/usr/tmp` — or, for a process frozen at the end
/// of a pre-copy migration ([`crate::proc::Proc::dump_delta`]),
/// `deltaXXXXX` with only the still-dirty pages in place of the full
/// `a.outXXXXX`.
///
/// Fails without killing the caller: on any error (including injected
/// ENOSPC or a crash torn mid-write) the process's pc is restored so it
/// can keep running at the source.
pub fn write_migration_dump(w: &mut World, mid: MachineId, pid: Pid) -> SysResult<()> {
    if !w.config.track_names {
        return Err(Errno::EINVAL);
    }
    // If the process is blocked inside a system call, back the pc up to
    // the trap instruction so the restarted image re-issues the call
    // (old-Unix syscall restart semantics). The paper's test program is
    // dumped exactly like this: "killed after its first prompt for
    // input". Remember the original pc: a failed dump must leave the
    // survivor exactly as it was.
    let orig_pc = {
        let p = w.proc_mut(mid, pid).ok_or(Errno::ESRCH)?;
        let mut orig = None;
        if let (Some(rpc), Body::Vm(vm)) = (p.restart_pc, &mut p.body) {
            orig = Some(vm.cpu.pc);
            vm.cpu.pc = rpc;
        }
        orig
    };
    let r = dump_files(w, mid, pid);
    if r.is_err() {
        if let (Some(orig), Some(p)) = (orig_pc, w.proc_mut(mid, pid)) {
            if let Body::Vm(vm) = &mut p.body {
                vm.cpu.pc = orig;
            }
        }
    }
    r
}

/// Gathers and writes the three dump files (the fallible middle of
/// [`write_migration_dump`]).
fn dump_files(w: &mut World, mid: MachineId, pid: Pid) -> SysResult<()> {

    let (image_bytes, delta_mode, files_file, stack_file, owner) = {
        let p = w.proc_ref(mid, pid).ok_or(Errno::ESRCH)?;
        let Body::Vm(vm) = &p.body else {
            return Err(Errno::EINVAL);
        };
        // A demand-restored image that still lacks pages has no complete
        // copy *anywhere but the source dump*; dumping the holes would
        // mint a second, wrong "recoverable copy". Refuse — the caller
        // keeps running and keeps faulting pages in.
        if vm.mem.has_absent() {
            return Err(Errno::EFAULT);
        }
        let delta_mode = p.dump_delta;
        let image_bytes = if delta_mode {
            // deltaXXXXX: geometry + only the data pages written since
            // the last pre-copy round. Stack pages may be dirty too but
            // travel in stackXXXXX regardless, so only data pages go
            // here. The dirty set is read, not drained: a failed dump
            // must leave the survivor re-dumpable.
            let data_base = vm.mem.data_base();
            let data_end = data_base + vm.mem.data().len() as u32;
            let pages = vm
                .mem
                .dirty_pages()
                .into_iter()
                .filter(|&pg| {
                    let a = MemoryLayout::page_addr(pg);
                    a >= data_base && a < data_end
                })
                .map(|pg| DeltaPage {
                    page: pg,
                    bytes: vm.mem.page_slice(pg).expect("resident data page").to_vec(),
                })
                .collect();
            let delta = DeltaFile {
                entry: vm.entry,
                machtype: match vm.isa_required {
                    m68vm::IsaLevel::Isa1 => aout::MID_ISA1,
                    m68vm::IsaLevel::Isa2 => aout::MID_ISA2,
                },
                data_base,
                data_len: vm.mem.data().len() as u32,
                pages,
            };
            delta.encode().map_err(|_| Errno::EINVAL)?
        } else {
            // a.outXXXXX: header + text + *current* data (bss folded in,
            // so static variables keep their dumped values).
            encode_executable(
                vm.mem.text(),
                vm.mem.data(),
                0,
                // Entry stays the original one so the file runs standalone
                // ("can be executed as an ordinary program").
                vm.entry,
                vm.isa_required,
            )
        };
        // filesXXXXX: host, cwd, the fixed-size fd table, tty flags.
        let mut fds = vec![FdRecord::Unused; NOFILE];
        for (i, slot) in p.user.fds.iter().enumerate() {
            let Some(idx) = slot else { continue };
            let Some(f) = w.machine(mid).files.get(*idx) else {
                continue;
            };
            fds[i] = if f.kind.dumps_as_socket() {
                FdRecord::Socket
            } else {
                match &f.path {
                    Some(path) => FdRecord::File {
                        path: path.clone(),
                        flags: f.flags,
                        offset: f.offset,
                    },
                    // No recorded name (shouldn't happen on a tracking
                    // kernel): treat like an unusable slot.
                    None => FdRecord::Unused,
                }
            };
        }
        let tty_flags = p
            .user
            .tty
            .map(|t| w.terminal(t).with(|term| term.gtty()))
            .unwrap_or_else(TtyFlags::cooked);
        let files_file = FilesFile {
            host: w.machine(mid).name.clone(),
            cwd: p.user.cwd_path.clone().unwrap_or_else(|| "/".to_string()),
            fds,
            tty_flags,
        };
        // stackXXXXX: credentials, stack, registers, signal state.
        let stack_file = StackFile {
            cred: p.user.cred.clone(),
            stack: vm.mem.stack_from(vm.cpu.sp()).unwrap_or(&[]).to_vec(),
            regs: vm.cpu.to_regs(),
            sigs: p.user.sigs.clone(),
        };
        (image_bytes, delta_mode, files_file, stack_file, p.user.cred.clone())
    };

    // Gathering cost: the kernel walks the fd table copying names.
    let gather_bytes: usize = files_file
        .fds
        .iter()
        .map(|r| match r {
            FdRecord::File { path, .. } => path.len() + 16,
            _ => 4,
        })
        .sum();
    let c = w
        .config
        .cost
        .copy_bytes(gather_bytes)
        .plus(Cost::cpu_us(500));
    w.charge_kernel(mid, pid, c);

    let names = dump_file_names(pid);
    let dir = sysdefs::limits::DUMP_DIR;
    let base = |p: &str| p.rsplit('/').next().unwrap_or(p).to_string();
    let files_bytes = files_file.encode().map_err(|_| Errno::EINVAL)?;
    let stack_bytes = stack_file.encode().map_err(|_| Errno::EINVAL)?;
    // The a.out dump "can be executed as an ordinary program": 0700. A
    // delta is not executable by itself, so it gets plain 0600 — and
    // replaces the a.out in the triple (the name tells restart which).
    let (image_name, image_mode) = if delta_mode {
        (base(&names.delta), FileMode(0o600))
    } else {
        (base(&names.a_out), FileMode(0o700))
    };
    let dumps: [(String, &[u8], FileMode); 3] = [
        (image_name, &image_bytes, image_mode),
        (base(&names.files), &files_bytes, FileMode(0o600)),
        (base(&names.stack), &stack_bytes, FileMode(0o600)),
    ];

    // Consult the fault plan before touching the disk. `/usr/tmp` full:
    // the write at a plan-chosen point fails ENOSPC and the kernel
    // unlinks what it already wrote — a clean, reported failure. Crash
    // mid-dump: writing stops abruptly at a plan-chosen byte of a
    // plan-chosen file, leaving complete earlier files plus one torn
    // one on disk — nobody is left running to clean up, which is what
    // the reaper sweep is for.
    let enospc_roll = w.fault_fire(FaultSite::DumpEnospc, mid, pid, Errno::ENOSPC);
    let crash_roll = if enospc_roll.is_none() {
        w.fault_fire(FaultSite::MidDumpCrash, mid, pid, Errno::EIO)
    } else {
        None
    };
    let broken_at = enospc_roll.or(crash_roll).map(|roll| (roll % 3) as usize);

    for (i, (name, bytes, mode)) in dumps.iter().enumerate() {
        if broken_at == Some(i) {
            if enospc_roll.is_some() {
                // The failing create/write is still a disk round trip.
                let c = w.config.cost.disk_create();
                w.charge_kernel(mid, pid, c);
                for (done, _, _) in dumps.iter().take(i) {
                    kernel_unlink(w, mid, dir, done);
                }
                return Err(Errno::ENOSPC);
            }
            // Torn write: the crash cuts the file mid-byte-stream.
            let roll = crash_roll.expect("crash branch");
            let cut = if bytes.is_empty() {
                0
            } else {
                ((roll / 3) % bytes.len() as u64) as usize
            };
            kernel_write_file(w, mid, pid, dir, name, &bytes[..cut], *mode, owner.clone())?;
            return Err(Errno::EIO);
        }
        kernel_write_file(w, mid, pid, dir, name, bytes, *mode, owner.clone())?;
    }
    Ok(())
}

/// Removes a kernel-written file, ignoring errors (cleanup path).
fn kernel_unlink(w: &mut World, mid: MachineId, dir_path: &str, name: &str) {
    let m = w.machine_mut(mid);
    let comps = vpath::components(dir_path);
    let Ok(vfs::WalkOutcome::Done(dir)) = m.fs.walk(m.fs.root(), &comps, None) else {
        return;
    };
    if m.fs.unlink(dir, name, &sysdefs::Credentials::root()).is_ok() {
        m.note_dump_unlink(dir, name);
    }
}
