//! The VM system-call ABI: decoding `TRAP #0` and writing results back.
//!
//! Convention (old-Unix flavoured):
//!
//! * syscall number in `d0`, arguments in `d1..d5`;
//! * strings are NUL-terminated guest pointers;
//! * on return, `d0` holds the result and the carry flag is clear; on
//!   failure `d0` holds the errno and carry is set.

use m68vm::{Cpu, Memory};
use sysdefs::{Disposition, Errno, Sysno};

use crate::sys::args::{IoctlReq, SysRetval, Syscall, Whence};

/// Carry bit of the status register.
const CARRY: u16 = 0x01;

/// Encoded length of a `trap #0` instruction (base word + immediate
/// extension), used to back the pc up for syscall restart.
pub const TRAP_LEN: u32 = 8;

fn cstr(mem: &Memory, addr: u32) -> Result<String, Errno> {
    if addr == 0 {
        return Err(Errno::EFAULT);
    }
    mem.read_cstr(addr, sysdefs::MAXPATHLEN)
        .map_err(|_| Errno::EFAULT)
}

/// Decodes the system call a VM process just trapped with.
pub fn decode_trap(cpu: &Cpu, mem: &Memory) -> Result<Syscall, Errno> {
    let no = Sysno::from_number(cpu.d[0])?;
    let a1 = cpu.d[1];
    let a2 = cpu.d[2];
    let a3 = cpu.d[3];
    Ok(match no {
        Sysno::Exit => Syscall::Exit { status: a1 },
        Sysno::Fork => Syscall::Fork,
        Sysno::Read => Syscall::Read {
            fd: a1 as usize,
            len: a3 as usize,
            buf_addr: Some(a2),
        },
        Sysno::Write => {
            let bytes = mem.read_bytes(a2, a3).map_err(|_| Errno::EFAULT)?.to_vec();
            Syscall::Write {
                fd: a1 as usize,
                bytes,
            }
        }
        Sysno::Open => Syscall::Open {
            path: cstr(mem, a1)?,
            flags: a2 as u16,
            // Creation mode travels in d3; without CREAT the handler
            // ignores it (and old guests leave the register garbage).
            mode: a3 as u16,
        },
        Sysno::Creat => Syscall::Creat {
            path: cstr(mem, a1)?,
            mode: a2 as u16,
        },
        Sysno::Close => Syscall::Close { fd: a1 as usize },
        Sysno::Wait => Syscall::Wait,
        Sysno::Link => Syscall::Link {
            old: cstr(mem, a1)?,
            new: cstr(mem, a2)?,
        },
        Sysno::Unlink => Syscall::Unlink {
            path: cstr(mem, a1)?,
        },
        Sysno::Chdir => Syscall::Chdir {
            path: cstr(mem, a1)?,
        },
        Sysno::Stat => Syscall::Stat {
            path: cstr(mem, a1)?,
        },
        Sysno::Lseek => Syscall::Lseek {
            fd: a1 as usize,
            offset: a2 as i32 as i64,
            whence: Whence::from_u32(a3)?,
        },
        Sysno::Getpid => Syscall::Getpid,
        Sysno::Getuid => Syscall::Getuid,
        Sysno::Kill => Syscall::Kill { pid: a1, sig: a2 },
        Sysno::Dup => Syscall::Dup { fd: a1 as usize },
        Sysno::Pipe => Syscall::Pipe,
        Sysno::Socket => Syscall::Socket,
        Sysno::Ioctl => Syscall::Ioctl {
            fd: a1 as usize,
            req: match a2 {
                0 => IoctlReq::Gtty,
                1 => IoctlReq::Stty(sysdefs::TtyFlags::from_bits(a3 as u16)),
                _ => return Err(Errno::EINVAL),
            },
        },
        Sysno::Symlink => Syscall::Symlink {
            target: cstr(mem, a1)?,
            link: cstr(mem, a2)?,
        },
        Sysno::Readlink => Syscall::Readlink {
            path: cstr(mem, a1)?,
            buf_addr: Some(a2),
            buf_len: a3 as usize,
        },
        Sysno::Execve => Syscall::Execve {
            path: cstr(mem, a1)?,
        },
        Sysno::Gethostname => Syscall::Gethostname {
            buf_addr: Some(a1),
            buf_len: a2 as usize,
        },
        Sysno::Sigvec => Syscall::Sigvec {
            sig: a1,
            disp: match a2 {
                0 => Disposition::Default,
                1 => Disposition::Ignore,
                addr => Disposition::Handler(addr),
            },
        },
        Sysno::Sigsetmask => Syscall::Sigsetmask { mask: a1 },
        Sysno::Alarm => Syscall::Alarm { secs: a1 },
        Sysno::Gettimeofday => Syscall::Gettimeofday,
        Sysno::Setreuid => Syscall::Setreuid { ruid: a1, euid: a2 },
        Sysno::Mkdir => Syscall::Mkdir {
            path: cstr(mem, a1)?,
            mode: a2 as u16,
        },
        Sysno::Sigreturn => Syscall::Sigreturn,
        Sysno::Sleep => Syscall::Sleep { micros: a1 as u64 },
        Sysno::RestProc => Syscall::RestProc {
            aout: cstr(mem, a1)?,
            stack: cstr(mem, a2)?,
            old_pid: None,
            old_host: None,
            demand: false,
        },
        Sysno::GetpidReal => Syscall::GetpidReal,
        Sysno::GethostnameReal => Syscall::GethostnameReal {
            buf_addr: Some(a1),
            buf_len: a2 as usize,
        },
        Sysno::Getwd => Syscall::Getwd {
            buf_addr: Some(a1),
            buf_len: a2 as usize,
        },
    })
}

/// Writes a completed call's result into the VM: `d0` + carry, plus any
/// returned bytes into the call's guest buffer.
pub fn writeback(cpu: &mut Cpu, mem: &mut Memory, sc: &Syscall, ret: &SysRetval) {
    match ret.val {
        Ok(v) => {
            cpu.d[0] = v;
            cpu.sr &= !CARRY;
        }
        Err(e) => {
            cpu.d[0] = e.as_u16() as u32;
            cpu.sr |= CARRY;
            return;
        }
    }
    // Copy out data for buffer-filling calls.
    let target: Option<u32> = match sc {
        Syscall::Read { buf_addr, .. }
        | Syscall::Readlink { buf_addr, .. }
        | Syscall::Gethostname { buf_addr, .. }
        | Syscall::GethostnameReal { buf_addr, .. }
        | Syscall::Getwd { buf_addr, .. } => *buf_addr,
        // wait(2): the status pointer travels in d1; 0 means "not
        // interested".
        Syscall::Wait => (cpu.d[1] != 0).then_some(cpu.d[1]),
        // gettimeofday: optional u64 buffer in d1 (hi then lo words).
        Syscall::Gettimeofday => (cpu.d[1] != 0).then_some(cpu.d[1]),
        _ => None,
    };
    if let Some(addr) = target {
        if !ret.data.is_empty() {
            let _ = mem.write_bytes(addr, &ret.data);
        }
        if matches!(sc, Syscall::Gettimeofday) {
            // data holds the high word; append the low word after it.
            let _ = mem.write_u32(addr + 4, cpu.d[0]);
        }
    }
}

/// Writes a failure without touching buffers, for decode errors.
pub fn write_errno(cpu: &mut Cpu, e: Errno) {
    cpu.d[0] = e.as_u16() as u32;
    cpu.sr |= CARRY;
}

#[cfg(test)]
mod tests {
    use super::*;
    use m68vm::{Memory, MemoryLayout};

    fn setup() -> (Cpu, Memory) {
        let mem = Memory::new(vec![0; 64], vec![0; 256], 0);
        let cpu = Cpu::at_entry(MemoryLayout::TEXT_BASE);
        (cpu, mem)
    }

    #[test]
    fn decode_open_reads_path_string() {
        let (mut cpu, mut mem) = setup();
        let d = mem.data_base();
        mem.write_bytes(d, b"/etc/motd\0").unwrap();
        cpu.d[0] = Sysno::Open.number();
        cpu.d[1] = d;
        cpu.d[2] = 2;
        cpu.d[3] = 0o640;
        let sc = decode_trap(&cpu, &mem).unwrap();
        assert_eq!(
            sc,
            Syscall::Open {
                path: "/etc/motd".into(),
                flags: 2,
                mode: 0o640
            }
        );
    }

    #[test]
    fn decode_write_copies_bytes() {
        let (mut cpu, mut mem) = setup();
        let d = mem.data_base();
        mem.write_bytes(d, b"hello").unwrap();
        cpu.d[0] = Sysno::Write.number();
        cpu.d[1] = 1;
        cpu.d[2] = d;
        cpu.d[3] = 5;
        let sc = decode_trap(&cpu, &mem).unwrap();
        assert_eq!(
            sc,
            Syscall::Write {
                fd: 1,
                bytes: b"hello".to_vec()
            }
        );
    }

    #[test]
    fn null_pointer_is_efault() {
        let (mut cpu, mem) = setup();
        cpu.d[0] = Sysno::Open.number();
        cpu.d[1] = 0;
        assert_eq!(decode_trap(&cpu, &mem), Err(Errno::EFAULT));
    }

    #[test]
    fn unknown_number_is_einval() {
        let (mut cpu, mem) = setup();
        cpu.d[0] = 9999;
        assert_eq!(decode_trap(&cpu, &mem), Err(Errno::EINVAL));
    }

    #[test]
    fn writeback_success_and_failure() {
        let (mut cpu, mut mem) = setup();
        let sc = Syscall::Getpid;
        writeback(&mut cpu, &mut mem, &sc, &SysRetval::ok(42));
        assert_eq!(cpu.d[0], 42);
        assert_eq!(cpu.sr & CARRY, 0);
        writeback(&mut cpu, &mut mem, &sc, &SysRetval::err(Errno::EBADF));
        assert_eq!(cpu.d[0], Errno::EBADF.as_u16() as u32);
        assert_ne!(cpu.sr & CARRY, 0);
    }

    #[test]
    fn writeback_copies_read_data_to_guest_buffer() {
        let (mut cpu, mut mem) = setup();
        let d = mem.data_base();
        let sc = Syscall::Read {
            fd: 0,
            len: 16,
            buf_addr: Some(d),
        };
        writeback(
            &mut cpu,
            &mut mem,
            &sc,
            &SysRetval::with_data(3, b"abc".to_vec()),
        );
        assert_eq!(cpu.d[0], 3);
        assert_eq!(mem.read_bytes(d, 3).unwrap(), b"abc");
    }

    #[test]
    fn trap_len_matches_encoding() {
        use m68vm::{Instr, Op, Operand, Size};
        let i = Instr::new(Op::Trap, Size::Long, Operand::Imm(0), Operand::None);
        assert_eq!(i.encoded_len(), TRAP_LEN);
    }
}
