//! `execve(2)` and the paper's `rest_proc()` system call.
//!
//! §5.2: "the `execve()` system call has been slightly modified, to check
//! a global flag which, if set, indicates that it is called from within
//! `rest_proc()`. In that case, instead of calculating how much initial
//! stack to allocate for the process, based on the command line arguments
//! and the environment, it simply allocates as many bytes as are
//! indicated in another global variable." Those globals are
//! [`crate::machine::Machine::exec_mig_flag`] and
//! [`crate::machine::Machine::exec_mig_stack`].

use aout::parse_executable;
use dumpfmt::StackFile;
use m68vm::Cpu;
use simnet::NfsOp;
use sysdefs::{Access, Errno, Pid, SysResult};
use vfs::InodeKind;

use crate::namei::{namei, FollowLast};
use crate::proc::{Body, ProcState, VmBody};
use crate::sys::args::{SysRetval, SyscallResult};
use crate::sys::ctx::SysCtx;

fn done(r: SysResult<SysRetval>) -> SyscallResult {
    SyscallResult::Done(match r {
        Ok(v) => v,
        Err(e) => SysRetval::err(e),
    })
}

/// Reads a whole file through the namespace, charging namei plus the
/// image transfer (disk locally, NFS reads remotely).
pub(crate) fn slurp(cx: &mut SysCtx<'_>, path: &str, want_exec: bool) -> SysResult<Vec<u8>> {
    let mid = cx.mid;
    let cred = cx.cred()?;
    let cwd = cx.cwd()?;
    let res = namei(cx.w, mid, &cred, cwd, path, FollowLast::Yes)?;
    let cold = cx.machine_mut().touch_path(&format!("slurp:{mid}:{path}"));
    let c = cx.cost().namei(res.components, cold);
    cx.charge(c);
    let fref = res.fref;
    let node = cx.w.machine(fref.machine).fs.inode(fref.ino)?;
    let data = match &node.kind {
        InodeKind::Regular(bytes) => {
            if want_exec && !node.mode.allows(&cred, node.uid, node.gid, Access::Exec) {
                return Err(Errno::EACCES);
            }
            if !want_exec && !node.mode.allows(&cred, node.uid, node.gid, Access::Read) {
                return Err(Errno::EACCES);
            }
            bytes.clone()
        }
        InodeKind::Directory(_) => return Err(Errno::EISDIR),
        _ => return Err(Errno::EACCES),
    };
    if fref.machine == mid {
        let c = cx.cost().disk_read(data.len());
        cx.charge(c);
    } else {
        // NFS moves the image in 8 KB reads.
        let mut left = data.len();
        while left > 0 {
            let chunk = left.min(8192);
            cx.charge_rpc(NfsOp::Read(chunk))?;
            left -= chunk;
        }
    }
    Ok(data)
}

/// The shared overlay: parse, check ISA, build the new body.
fn overlay(cx: &mut SysCtx<'_>, image: &[u8], comm: &str) -> SysResult<()> {
    let exe = parse_executable(image).map_err(|_| Errno::ENOEXEC)?;
    let isa_required = exe.isa();
    // §7: "Processes can be migrated to a similar CPU or to one whose
    // instruction set is a superset of that of the original machine."
    // The loader enforces the same rule for plain execution.
    if !cx.machine().isa.supports(isa_required) {
        return Err(Errno::ENOEXEC);
    }
    let mut mem = exe.to_memory();
    let mut cpu = Cpu::at_entry(exe.header.a_entry);
    // The §5.2 modified execve: exact initial stack when the migration
    // flag is set, empty stack otherwise.
    let (mig, stack) = {
        let m = cx.machine();
        (m.exec_mig_flag, m.exec_mig_stack.clone())
    };
    if mig {
        let sp = mem.restore_stack(&stack).ok_or(Errno::ENOMEM)?;
        cpu.a[7] = sp;
    }
    let c = cx.cost().exec_base();
    cx.charge(c);
    // Text is write-protected, so decode it once here — at the only
    // place a VM body is born — rather than on every interpreted step.
    // The cache is keyed to the hosting machine's ISA level (the level
    // the live decoder would enforce), not the executable's requirement.
    let icache = if cx.w.config.use_icache {
        let level = cx.machine().isa;
        Some(std::sync::Arc::new(m68vm::ICache::build(mem.text(), level)))
    } else {
        None
    };
    let pid = cx.pid;
    let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
    p.body = Body::Vm(VmBody {
        cpu,
        mem,
        isa_required,
        entry: exe.header.a_entry,
        icache,
        residual: None,
    });
    p.pending_syscall = None;
    p.restart_pc = None;
    p.state = ProcState::Runnable;
    p.comm = comm.to_string();
    let m = cx.machine_mut();
    m.stats.execs += 1;
    m.make_runnable(pid);
    // The overlaid process is runnable with a fresh body: poke so the
    // event scheduler re-keys this machine even when the overlay was
    // driven from a remote-exec daemon rather than a local slice.
    let mid = cx.mid;
    cx.w.poke_proc(mid, pid);
    Ok(())
}

/// The demand-restore overlay: read only the a.out header and text
/// through the namespace (charging just that prefix), leave every data
/// page absent, and record the dump as the new body's residual source.
/// The restored process starts running immediately; each data page is
/// fetched from the dump the first time an instruction touches it.
fn overlay_demand(cx: &mut SysCtx<'_>, path: &str, comm: &str) -> SysResult<()> {
    let mid = cx.mid;
    let cred = cx.cred()?;
    let cwd = cx.cwd()?;
    let res = namei(cx.w, mid, &cred, cwd, path, FollowLast::Yes)?;
    let cold = cx.machine_mut().touch_path(&format!("slurp:{mid}:{path}"));
    let c = cx.cost().namei(res.components, cold);
    cx.charge(c);
    let fref = res.fref;
    let node = cx.w.machine(fref.machine).fs.inode(fref.ino)?;
    let bytes = match &node.kind {
        InodeKind::Regular(bytes) => {
            if !node.mode.allows(&cred, node.uid, node.gid, Access::Exec) {
                return Err(Errno::EACCES);
            }
            bytes.clone()
        }
        InodeKind::Directory(_) => return Err(Errno::EISDIR),
        _ => return Err(Errno::EACCES),
    };
    let exe = parse_executable(&bytes).map_err(|_| Errno::ENOEXEC)?;
    let isa_required = exe.isa();
    if !cx.machine().isa.supports(isa_required) {
        return Err(Errno::ENOEXEC);
    }
    // Charge only the header + text prefix; the data stays behind.
    let prefix = aout::AOUT_HEADER_LEN + exe.text.len();
    if fref.machine == mid {
        let c = cx.cost().disk_read(prefix);
        cx.charge(c);
    } else {
        let mut left = prefix;
        while left > 0 {
            let chunk = left.min(8192);
            cx.charge_rpc(NfsOp::Read(chunk))?;
            left -= chunk;
        }
    }
    // The image: real text, a zeroed data segment with every page
    // absent, and the exact migration stack.
    let data_len = exe.header.a_data + exe.header.a_bss;
    let mut mem = m68vm::Memory::new(exe.text.clone(), Vec::new(), data_len);
    let data_base = mem.data_base();
    let pages: Vec<u32> = {
        let mut v = Vec::new();
        let mut a = data_base;
        while a < data_base + data_len {
            v.push(m68vm::MemoryLayout::page_of(a));
            a += m68vm::MemoryLayout::PAGE;
        }
        v
    };
    mem.set_absent(pages);
    let mut cpu = Cpu::at_entry(exe.header.a_entry);
    let (mig, stack) = {
        let m = cx.machine();
        (m.exec_mig_flag, m.exec_mig_stack.clone())
    };
    if mig {
        let sp = mem.restore_stack(&stack).ok_or(Errno::ENOMEM)?;
        cpu.a[7] = sp;
    }
    let c = cx.cost().exec_base();
    cx.charge(c);
    let icache = if cx.w.config.use_icache {
        let level = cx.machine().isa;
        Some(std::sync::Arc::new(m68vm::ICache::build(mem.text(), level)))
    } else {
        None
    };
    // The residual source is addressed server-locally, so the page
    // fetches keep working even if this machine's mounts change.
    let local_path = if fref.machine == mid {
        path.to_string()
    } else {
        path.strip_prefix("/n/")
            .and_then(|s| s.split_once('/'))
            .map(|(_, rest)| format!("/{rest}"))
            .ok_or(Errno::ENOENT)?
    };
    let pid = cx.pid;
    let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
    p.body = Body::Vm(VmBody {
        cpu,
        mem,
        isa_required,
        entry: exe.header.a_entry,
        icache,
        residual: Some(crate::proc::ResidualSource {
            server: fref.machine,
            aout_path: local_path,
            data_off: aout::AOUT_HEADER_LEN + exe.text.len(),
            tries: 0,
        }),
    });
    p.pending_syscall = None;
    p.restart_pc = None;
    p.state = ProcState::Runnable;
    p.comm = comm.to_string();
    let m = cx.machine_mut();
    m.stats.execs += 1;
    m.make_runnable(pid);
    cx.w.poke_proc(mid, pid);
    Ok(())
}

/// `execve(2)`.
///
/// On success the calling image is destroyed, so the dispatcher sees
/// [`SyscallResult::Gone`]; a native caller's thread is unwound by the
/// `overlaid` reply.
pub fn sys_execve(cx: &mut SysCtx<'_>, path: &str) -> SyscallResult {
    let (t0, c0) = call_entry(cx);
    let image = match slurp(cx, path, true) {
        Ok(i) => i,
        Err(e) => return done(Err(e)),
    };
    let comm = path.rsplit('/').next().unwrap_or(path).to_string();
    match overlay(cx, &image, &comm) {
        Ok(()) => {
            let timing = call_exit(cx, t0, c0);
            cx.machine_mut().last_execve = Some(timing);
            SyscallResult::Gone
        }
        Err(e) => done(Err(e)),
    }
}

/// Snapshot of (machine clock, process CPU) at the start of a timed call.
fn call_entry(cx: &SysCtx<'_>) -> (simtime::SimTime, simtime::SimDuration) {
    let now = cx.machine().now;
    let cpu = cx.proc_ref().map(|p| p.cpu_time()).unwrap_or_default();
    (now, cpu)
}

/// The paper's in-kernel timing code: elapsed real and CPU since entry.
fn call_exit(
    cx: &SysCtx<'_>,
    t0: simtime::SimTime,
    c0: simtime::SimDuration,
) -> crate::machine::CallTiming {
    let now = cx.machine().now;
    let cpu = cx.proc_ref().map(|p| p.cpu_time()).unwrap_or_default();
    crate::machine::CallTiming {
        cpu: cpu.saturating_sub(c0),
        real: now.since(t0),
    }
}

/// **`rest_proc(2)`**, the paper's addition, following §5.2 to the
/// letter.
pub fn sys_rest_proc(
    cx: &mut SysCtx<'_>,
    aout_path: &str,
    stack_path: &str,
    old_pid: Option<u32>,
    old_host: Option<&str>,
    demand: bool,
) -> SyscallResult {
    let (t0, c0) = call_entry(cx);
    // What the calling application (restart) spent before reaching the
    // kernel: its whole life so far.
    if let Some(p) = cx.proc_ref() {
        let started = p.start_time;
        let caller = crate::machine::CallTiming {
            cpu: p.cpu_time(),
            real: t0.since(started),
        };
        cx.machine_mut().last_rest_caller = Some(caller);
    }
    // 1. "It opens the stackXXXXX file, checking access permissions and
    //    verifying its format by checking the magic number."
    let stack_bytes = match slurp(cx, stack_path, false) {
        Ok(b) => b,
        Err(e) => return done(Err(e)),
    };
    // 2. "Reads the user credentials and the size of the stack."
    let stack_file = match StackFile::decode(&stack_bytes) {
        Ok(s) => s,
        Err(_) => return done(Err(Errno::ENOEXEC)),
    };
    // Only the owner of the dumped process (or the superuser) may
    // restart it; the caller's current credentials gate the a.out read
    // below ("The old credentials were used to execute the a.outXXXXX
    // file, so that only the owner of the process or the superuser is
    // able to do it").
    let caller_cred = match cx.cred() {
        Ok(c) => c,
        Err(e) => return done(Err(e)),
    };
    if !caller_cred.may_control(stack_file.cred.ruid) {
        return done(Err(Errno::EPERM));
    }
    // 3. "Sets the global flag indicating process migration and sets the
    //    variable that indicates the desired stack size."
    {
        let m = cx.machine_mut();
        m.exec_mig_flag = true;
        m.exec_mig_stack = stack_file.stack.clone();
    }
    // 4. "Calls execve() to execute the a.outXXXXX file, with the
    //    environment set to null."
    let result = (|| -> SysResult<()> {
        let comm = aout_path
            .rsplit('/')
            .next()
            .unwrap_or(aout_path)
            .to_string();
        if demand {
            // Lazy variant: header + text now, data pages on fault.
            overlay_demand(cx, aout_path, &comm)
        } else {
            let image = slurp(cx, aout_path, true)?;
            overlay(cx, &image, &comm)
        }
    })();
    // 5. "Resets the variable indicating process migration, so that
    //    further calls to execve() will work properly."
    {
        let m = cx.machine_mut();
        m.exec_mig_flag = false;
        m.exec_mig_stack.clear();
    }
    if let Err(e) = result {
        return done(Err(e));
    }
    // 6. "Sets the user credentials to those already read."
    // 7. "Reads in the contents of the stack and registers."
    //    (The stack was already laid down by the modified execve; the
    //    registers are restored here.)
    // 8. "Reads in the information on the disposition of signals."
    {
        let virtualize = cx.w.config.virtualize_ids;
        let p = cx.proc_mut().expect("just overlaid");
        p.user.cred = stack_file.cred.clone();
        if let Body::Vm(vm) = &mut p.body {
            vm.cpu = Cpu::from_regs(&stack_file.regs);
        }
        p.user.sigs = stack_file.sigs.clone();
        // §7 extension: remember the old identity when the kernel is
        // built with virtualization.
        if virtualize {
            p.user.old_pid = old_pid.map(Pid);
            p.user.old_host = old_host.map(str::to_string);
        }
    }
    cx.machine_mut().stats.restores += 1;
    let timing = call_exit(cx, t0, c0);
    cx.machine_mut().last_rest_proc = Some(timing);
    let comm = aout_path
        .rsplit('/')
        .next()
        .unwrap_or(aout_path)
        .to_string();
    cx.w.overlaid.insert((cx.mid, cx.pid.as_u32()), comm);
    // An rsh/run_local waiter treats an overlaid command as complete.
    cx.w.poke_remote_done(cx.mid, cx.pid.as_u32());
    // 9. "Returns. At this point, the process running is a copy of the
    //    old process."
    SyscallResult::Gone
}
