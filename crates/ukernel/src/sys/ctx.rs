//! The kernel-entry context handed to every system-call handler.
//!
//! A [`SysCtx`] bundles the world, the calling machine and process, and
//! the call's accounting. Handlers charge simulated time exclusively
//! through [`SysCtx::charge`] / [`SysCtx::charge_rpc`]; the lint
//! workspace checker enforces structurally that every `sys_*` handler
//! takes a context and that its charges flow through it — the invariant
//! PR 2 could only police syntactically is now carried by the types.

use simnet::NfsOp;
use simtime::cost::{Cost, CostModel};
use sysdefs::{Credentials, Errno, Pid, SysResult};

use crate::machine::{Machine, MachineId};
use crate::proc::Proc;
use crate::user::FileRef;
use crate::world::World;

/// Per-call accounting accumulated while a handler runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SysAccounting {
    /// Simtime charged through this context.
    pub charged: Cost,
    /// Bytes copied from user space into the kernel.
    pub bytes_in: usize,
    /// Bytes copied from the kernel out to user space.
    pub bytes_out: usize,
    /// True when this attempt re-issues a parked call (the classic
    /// sleep/retry pattern; each retry is a fresh context, so this is a
    /// flag rather than a counter).
    pub retry: bool,
}

/// The kernel-entry context: one per dispatch attempt.
pub struct SysCtx<'w> {
    /// The whole installation — handlers may cross machines (NFS) and
    /// process tables (signals, `wait`).
    pub w: &'w mut World,
    /// The calling machine.
    pub mid: MachineId,
    /// The calling process.
    pub pid: Pid,
    /// This attempt's accounting.
    pub acct: SysAccounting,
}

impl<'w> SysCtx<'w> {
    /// A fresh context for one dispatch attempt.
    pub fn new(w: &'w mut World, mid: MachineId, pid: Pid) -> SysCtx<'w> {
        let retry = w
            .proc_ref(mid, pid)
            .map(|p| p.pending_syscall.is_some())
            .unwrap_or(false);
        SysCtx {
            w,
            mid,
            pid,
            acct: SysAccounting {
                retry,
                ..SysAccounting::default()
            },
        }
    }

    /// The kernel build's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.w.config.cost
    }

    /// Charges a cost to the calling machine and process, accumulating
    /// it into the call's accounting. This is the only charge path a
    /// handler should use.
    pub fn charge(&mut self, cost: Cost) {
        self.acct.charged = self.acct.charged.plus(cost);
        self.w.charge_kernel(self.mid, self.pid, cost);
    }

    /// Charges one NFS RPC to the caller as client. Fails with
    /// `ETIMEDOUT` when the fault plan drops the RPC — the charged cost
    /// (including the soft-mount timeout wait) still lands in the call's
    /// accounting either way.
    pub fn charge_rpc(&mut self, op: NfsOp) -> SysResult<()> {
        let (cost, res) = self.w.charge_kernel_rpc(self.mid, self.pid, op);
        self.acct.charged = self.acct.charged.plus(cost);
        res
    }

    /// Notes `n` bytes copied in from user space.
    pub fn copied_in(&mut self, n: usize) {
        self.acct.bytes_in += n;
    }

    /// Notes `n` bytes copied out to user space.
    pub fn copied_out(&mut self, n: usize) {
        self.acct.bytes_out += n;
    }

    /// The calling machine.
    pub fn machine(&self) -> &Machine {
        self.w.machine(self.mid)
    }

    /// The calling machine, mutably.
    pub fn machine_mut(&mut self) -> &mut Machine {
        self.w.machine_mut(self.mid)
    }

    /// The calling process.
    pub fn proc_ref(&self) -> Option<&Proc> {
        self.w.proc_ref(self.mid, self.pid)
    }

    /// The calling process, mutably.
    pub fn proc_mut(&mut self) -> Option<&mut Proc> {
        self.w.proc_mut(self.mid, self.pid)
    }

    /// The caller's credentials.
    pub fn cred(&self) -> SysResult<Credentials> {
        self.w.cred_of(self.mid, self.pid)
    }

    /// The caller's working directory.
    pub fn cwd(&self) -> SysResult<FileRef> {
        self.w.cwd_of(self.mid, self.pid)
    }

    /// Resolves one of the caller's descriptors to a file-table index.
    pub fn file_idx(&self, fd: usize) -> SysResult<usize> {
        self.w.file_idx(self.mid, self.pid, fd)
    }

    /// The caller's best-effort absolute form of a path argument.
    pub fn abs_guess(&self, arg: &str) -> Option<String> {
        self.w.abs_guess(self.mid, self.pid, arg)
    }
}

impl std::fmt::Debug for SysCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SysCtx")
            .field("mid", &self.mid)
            .field("pid", &self.pid)
            .field("acct", &self.acct)
            .finish()
    }
}

/// The `ESRCH` every handler returns for a vanished caller.
pub const GONE: Errno = Errno::ESRCH;
