//! System-call dispatch and handlers.
//!
//! [`dispatch`] is the kernel's single entry path: the entry hook
//! charges the trap cost, bumps the statistics and cuts a
//! [`crate::ktrace`] `enter` record; the routing match hands a
//! [`ctx::SysCtx`] to the handler named by the call's
//! [`sysdefs::SyscallMeta`] row; the exit hook folds the attempt's
//! charged simtime into the per-syscall aggregates, cuts the `exit`
//! record and centralises the `Blocked` bookkeeping (saving the
//! pending call and the VM restart pc) that used to be scattered over
//! the scheduler's trap arms.
//!
//! Handlers receive the whole [`crate::world::World`] through the
//! context because calls may cross machines (NFS) or machines' process
//! tables (signals, `wait`).

pub mod args;
pub mod ctx;
pub mod exec;
pub mod fsops;
pub mod procops;
pub mod vmabi;

use crate::ktrace::{KtraceEvent, KtraceResult};
use crate::machine::MachineId;
use crate::proc::Body;
use crate::world::World;
use args::{Syscall, SyscallResult};
use ctx::SysCtx;
use sysdefs::Pid;

/// Executes one system call for `pid` on machine `mid`.
///
/// Returns [`SyscallResult::Blocked`] when the call cannot complete yet;
/// the handler has parked the process, this function has saved the call
/// as `pending_syscall` (and, for VM bodies, the restart pc), and the
/// scheduler re-issues the same call when the process wakes — the
/// kernel's classic sleep/retry pattern. Every attempt, first or retry,
/// pays the trap cost, exactly as a real kernel re-enters through the
/// trap gate after a `sleep`.
pub fn dispatch(w: &mut World, mid: MachineId, pid: Pid, sc: &Syscall) -> SyscallResult {
    let name = sc.name();
    let t0 = w.machine(mid).now;

    // Entry hook: trap charge, statistics, trace record.
    let retry = w
        .proc_ref(mid, pid)
        .map(|p| p.pending_syscall.is_some())
        .unwrap_or(false);
    let trap = w.config.cost.syscall_trap();
    let m = w.machine_mut(mid);
    m.stats.syscalls += 1;
    m.charge_sys(Some(pid), trap);
    let at = m.now;
    m.ktrace.push(at, pid, name, KtraceEvent::Enter { retry });

    // Route to the handler through a fresh per-attempt context.
    let mut cx = SysCtx::new(w, mid, pid);
    let result = route(&mut cx, sc);

    // Exit hook: per-syscall aggregates, trace record, Blocked
    // bookkeeping. Charged time is the machine-clock delta across the
    // whole attempt so side charges (teardown in `exit`, remote `rsh`
    // legs) are captured too.
    let m = w.machine_mut(mid);
    let charged_us = m.now.since(t0).as_micros();
    m.stats.per_syscall.entry(name).or_default().note(charged_us);
    let at = m.now;
    m.ktrace
        .push(at, pid, name, KtraceEvent::Exit { result: summarize(&result), charged_us });

    if matches!(result, SyscallResult::Blocked) {
        if let Some(p) = w.proc_mut(mid, pid) {
            p.pending_syscall = Some(sc.clone());
            if let Body::Vm(vm) = &p.body {
                // Re-issue restarts the trap instruction; idempotent on
                // repeated parks since the pc is frozen while parked.
                p.restart_pc = Some(vm.cpu.pc.wrapping_sub(vmabi::TRAP_LEN));
            }
        }
    }
    result
}

/// Condenses a dispatch outcome into its trace form.
fn summarize(r: &SyscallResult) -> KtraceResult {
    match r {
        SyscallResult::Done(ret) => match ret.val {
            Ok(v) => KtraceResult::Ok(v),
            Err(e) => KtraceResult::Err(e),
        },
        SyscallResult::Blocked => KtraceResult::Blocked,
        SyscallResult::Gone => KtraceResult::Gone,
    }
}

/// The routing match: one arm per [`Syscall`] variant, each handing the
/// context to the handler for that trap-table row.
fn route(cx: &mut SysCtx<'_>, sc: &Syscall) -> SyscallResult {
    use Syscall::*;
    match sc {
        Exit { status } => procops::sys_exit(cx, *status),
        Fork => procops::sys_fork(cx),
        Read { fd, len, .. } => fsops::sys_read(cx, *fd, *len),
        Write { fd, bytes } => fsops::sys_write(cx, *fd, bytes),
        Open { path, flags, mode } => fsops::sys_open(cx, path, *flags, *mode, false),
        Creat { path, mode } => fsops::sys_creat(cx, path, *mode),
        Close { fd } => fsops::sys_close(cx, *fd),
        Wait => procops::sys_wait(cx),
        Link { old, new } => fsops::sys_link(cx, old, new),
        Unlink { path } => fsops::sys_unlink(cx, path),
        Chdir { path } => fsops::sys_chdir(cx, path),
        Stat { path } => fsops::sys_stat(cx, path),
        Lseek { fd, offset, whence } => fsops::sys_lseek(cx, *fd, *offset, *whence),
        Getpid => procops::sys_getpid(cx, false),
        Getuid => procops::sys_getuid(cx),
        Kill { pid: target, sig } => procops::sys_kill(cx, *target, *sig),
        Dup { fd } => fsops::sys_dup(cx, *fd),
        Pipe => fsops::sys_pipe(cx, false),
        Socket => fsops::sys_pipe(cx, true),
        Ioctl { fd, req } => fsops::sys_ioctl(cx, *fd, *req),
        Symlink { target, link } => fsops::sys_symlink(cx, target, link),
        Readlink { path, buf_len, .. } => fsops::sys_readlink(cx, path, *buf_len),
        Execve { path } => exec::sys_execve(cx, path),
        Gethostname { buf_len, .. } => procops::sys_gethostname(cx, *buf_len, false),
        Sigvec { sig, disp } => procops::sys_sigvec(cx, *sig, *disp),
        Sigsetmask { mask } => procops::sys_sigsetmask(cx, *mask),
        Alarm { secs } => procops::sys_alarm(cx, *secs),
        Gettimeofday => procops::sys_gettimeofday(cx),
        Setreuid { ruid, euid } => procops::sys_setreuid(cx, *ruid, *euid),
        Mkdir { path, mode } => fsops::sys_mkdir(cx, path, *mode),
        Sigreturn => crate::signal::sys_sigreturn(cx),
        Sleep { micros } => procops::sys_sleep(cx, *micros),
        RestProc {
            aout,
            stack,
            old_pid,
            old_host,
            demand,
        } => exec::sys_rest_proc(cx, aout, stack, *old_pid, old_host.as_deref(), *demand),
        GetpidReal => procops::sys_getpid(cx, true),
        GethostnameReal { buf_len, .. } => procops::sys_gethostname(cx, *buf_len, true),
        Getwd { buf_len, .. } => procops::sys_getwd(cx, *buf_len),
    }
}

#[cfg(test)]
mod tests {
    use super::args::Syscall;
    use sysdefs::{CostClass, Disposition, Sysno, SYSCALL_TABLE};

    /// Every [`Syscall`] variant must resolve to a distinct trap-table
    /// row, and the table must not carry rows no variant reaches — the
    /// declarative table and the enum are pinned to each other.
    #[test]
    fn trap_table_is_exhaustive_over_the_syscall_enum() {
        let variants: Vec<Syscall> = vec![
            Syscall::Exit { status: 0 },
            Syscall::Fork,
            Syscall::Read { fd: 0, len: 0, buf_addr: None },
            Syscall::Write { fd: 0, bytes: vec![] },
            Syscall::Open { path: String::new(), flags: 0, mode: 0 },
            Syscall::Creat { path: String::new(), mode: 0 },
            Syscall::Close { fd: 0 },
            Syscall::Wait,
            Syscall::Link { old: String::new(), new: String::new() },
            Syscall::Unlink { path: String::new() },
            Syscall::Chdir { path: String::new() },
            Syscall::Stat { path: String::new() },
            Syscall::Lseek { fd: 0, offset: 0, whence: super::args::Whence::Set },
            Syscall::Getpid,
            Syscall::Getuid,
            Syscall::Kill { pid: 0, sig: 0 },
            Syscall::Dup { fd: 0 },
            Syscall::Pipe,
            Syscall::Ioctl { fd: 0, req: super::args::IoctlReq::Gtty },
            Syscall::Symlink { target: String::new(), link: String::new() },
            Syscall::Readlink { path: String::new(), buf_addr: None, buf_len: 0 },
            Syscall::Execve { path: String::new() },
            Syscall::Gethostname { buf_addr: None, buf_len: 0 },
            Syscall::Socket,
            Syscall::Sigvec { sig: 1, disp: Disposition::Default },
            Syscall::Sigsetmask { mask: 0 },
            Syscall::Alarm { secs: 0 },
            Syscall::Gettimeofday,
            Syscall::Setreuid { ruid: 0, euid: 0 },
            Syscall::Mkdir { path: String::new(), mode: 0 },
            Syscall::Sigreturn,
            Syscall::Sleep { micros: 0 },
            Syscall::RestProc {
                aout: String::new(),
                stack: String::new(),
                old_pid: None,
                old_host: None,
                demand: false,
            },
            Syscall::GetpidReal,
            Syscall::GethostnameReal { buf_addr: None, buf_len: 0 },
            Syscall::Getwd { buf_addr: None, buf_len: 0 },
        ];
        assert_eq!(
            variants.len(),
            SYSCALL_TABLE.len(),
            "one table row per Syscall variant"
        );

        let mut seen = std::collections::BTreeSet::new();
        for sc in &variants {
            let meta = sc.meta();
            assert!(
                seen.insert(meta.no.number()),
                "two variants share trap-table row {}",
                meta.name
            );
            // Round trip: the row the variant names is the row the table
            // holds at that number.
            assert_eq!(Sysno::from_number(meta.no.number()), Ok(meta.no));
        }

        // Cost classing sanity: the paper's expensive process-lifetime
        // calls are marked as such, quick getters are Quick.
        assert_eq!(Syscall::Fork.meta().cost, CostClass::ProcLife);
        assert_eq!(Syscall::Getpid.meta().cost, CostClass::Quick);
        assert_eq!(
            Syscall::Open { path: String::new(), flags: 0, mode: 0 }.meta().cost,
            CostClass::Path
        );
    }

    /// The restartable flag in the table matches the handlers that can
    /// actually return `Blocked` and be re-issued.
    #[test]
    fn restartable_rows_match_parking_handlers() {
        for meta in SYSCALL_TABLE {
            let parks = matches!(meta.name, "read" | "write" | "wait" | "sleep");
            assert_eq!(
                meta.restartable, parks,
                "restartable flag for {} out of sync with its handler",
                meta.name
            );
        }
    }
}
