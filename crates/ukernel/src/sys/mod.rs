//! System-call dispatch and handlers.
//!
//! [`do_syscall`] is the kernel's trap table: it charges the trap cost,
//! bumps the statistics, and routes to a handler. Handlers receive the
//! whole [`crate::world::World`] because calls may cross machines (NFS)
//! or machines' process tables (signals, `wait`).

pub mod args;
pub mod exec;
pub mod fsops;
pub mod procops;
pub mod vmabi;

use crate::machine::MachineId;
use crate::world::World;
use args::{Syscall, SyscallResult};
use sysdefs::Pid;

/// Executes one system call for `pid` on machine `mid`.
///
/// Returns [`SyscallResult::Blocked`] when the call cannot complete yet
/// (the handler has parked the process); the scheduler re-issues the same
/// call when the process wakes, the kernel's classic sleep/retry pattern.
pub fn do_syscall(w: &mut World, mid: MachineId, pid: Pid, sc: &Syscall) -> SyscallResult {
    let trap = w.config.cost.syscall_trap();
    let m = w.machine_mut(mid);
    m.stats.syscalls += 1;
    m.charge_sys(Some(pid), trap);

    use Syscall::*;
    match sc {
        Exit { status } => procops::sys_exit(w, mid, pid, *status),
        Fork => procops::sys_fork(w, mid, pid),
        Read { fd, len, .. } => fsops::sys_read(w, mid, pid, *fd, *len),
        Write { fd, bytes } => fsops::sys_write(w, mid, pid, *fd, bytes),
        Open { path, flags } => fsops::sys_open(w, mid, pid, path, *flags, 0o644, false),
        Creat { path, mode } => fsops::sys_creat(w, mid, pid, path, *mode),
        Close { fd } => fsops::sys_close(w, mid, pid, *fd),
        Wait => procops::sys_wait(w, mid, pid),
        Link { old, new } => fsops::sys_link(w, mid, pid, old, new),
        Unlink { path } => fsops::sys_unlink(w, mid, pid, path),
        Chdir { path } => fsops::sys_chdir(w, mid, pid, path),
        Stat { path } => fsops::sys_stat(w, mid, pid, path),
        Lseek { fd, offset, whence } => fsops::sys_lseek(w, mid, pid, *fd, *offset, *whence),
        Getpid => procops::sys_getpid(w, mid, pid, false),
        Getuid => procops::sys_getuid(w, mid, pid),
        Kill { pid: target, sig } => procops::sys_kill(w, mid, pid, *target, *sig),
        Dup { fd } => fsops::sys_dup(w, mid, pid, *fd),
        Pipe => fsops::sys_pipe(w, mid, pid, false),
        Socket => fsops::sys_pipe(w, mid, pid, true),
        Ioctl { fd, req } => fsops::sys_ioctl(w, mid, pid, *fd, *req),
        Symlink { target, link } => fsops::sys_symlink(w, mid, pid, target, link),
        Readlink { path, buf_len, .. } => fsops::sys_readlink(w, mid, pid, path, *buf_len),
        Execve { path } => exec::sys_execve(w, mid, pid, path),
        Gethostname { buf_len, .. } => procops::sys_gethostname(w, mid, pid, *buf_len, false),
        Sigvec { sig, disp } => procops::sys_sigvec(w, mid, pid, *sig, *disp),
        Sigsetmask { mask } => procops::sys_sigsetmask(w, mid, pid, *mask),
        Alarm { secs } => procops::sys_alarm(w, mid, pid, *secs),
        Gettimeofday => procops::sys_gettimeofday(w, mid, pid),
        Setreuid { ruid, euid } => procops::sys_setreuid(w, mid, pid, *ruid, *euid),
        Mkdir { path, mode } => fsops::sys_mkdir(w, mid, pid, path, *mode),
        Sigreturn => crate::signal::sys_sigreturn(w, mid, pid),
        Sleep { micros } => procops::sys_sleep(w, mid, pid, *micros),
        RestProc {
            aout,
            stack,
            old_pid,
            old_host,
        } => exec::sys_rest_proc(w, mid, pid, aout, stack, *old_pid, old_host.as_deref()),
        GetpidReal => procops::sys_getpid(w, mid, pid, true),
        GethostnameReal { buf_len, .. } => procops::sys_gethostname(w, mid, pid, *buf_len, true),
        Getwd { buf_len, .. } => procops::sys_getwd(w, mid, pid, *buf_len),
    }
}
