//! Typed system-call arguments and results, shared by the VM trap
//! decoder and the native-process API.

use sysdefs::{Disposition, Errno};

/// `lseek(2)` origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Whence {
    /// From the beginning of the file.
    Set,
    /// From the current offset.
    Cur,
    /// From the end of the file.
    End,
}

impl Whence {
    /// Decodes the classic 0/1/2 encoding.
    pub fn from_u32(v: u32) -> Result<Whence, Errno> {
        Ok(match v {
            0 => Whence::Set,
            1 => Whence::Cur,
            2 => Whence::End,
            _ => return Err(Errno::EINVAL),
        })
    }
}

/// The terminal `ioctl`s the kernel understands (old `TIOCGETP` and
/// `TIOCSETP`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoctlReq {
    /// Read the terminal flags (result in the return value).
    Gtty,
    /// Set the terminal flags.
    Stty(sysdefs::TtyFlags),
}

/// A decoded system call.
///
/// Buffer-returning calls carry an optional guest buffer address
/// (`buf_addr`): present for VM callers (the kernel copies the result
/// out), absent for native callers (the bytes travel in the response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// Terminate the caller.
    Exit {
        /// Exit status.
        status: u32,
    },
    /// Duplicate the caller.
    Fork,
    /// Read from a descriptor.
    Read {
        /// Descriptor.
        fd: usize,
        /// Maximum bytes.
        len: usize,
        /// Guest buffer (VM callers).
        buf_addr: Option<u32>,
    },
    /// Write to a descriptor.
    Write {
        /// Descriptor.
        fd: usize,
        /// The bytes to write.
        bytes: Vec<u8>,
    },
    /// Open a file.
    Open {
        /// Path (absolute or cwd-relative).
        path: String,
        /// `OpenFlags` bits.
        flags: u16,
        /// Permission bits for a `CREAT` open (ignored otherwise).
        mode: u16,
    },
    /// Create a file and open it for writing.
    Creat {
        /// Path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor.
        fd: usize,
    },
    /// Wait for a child to exit; returns the pid, status via data.
    Wait,
    /// Hard link.
    Link {
        /// Existing file.
        old: String,
        /// New name.
        new: String,
    },
    /// Remove a name.
    Unlink {
        /// Path.
        path: String,
    },
    /// Change working directory.
    Chdir {
        /// Path.
        path: String,
    },
    /// File status; returns the size.
    Stat {
        /// Path.
        path: String,
    },
    /// Reposition a descriptor.
    Lseek {
        /// Descriptor.
        fd: usize,
        /// Signed offset.
        offset: i64,
        /// Origin.
        whence: Whence,
    },
    /// The (possibly virtualised) process id.
    Getpid,
    /// The real user id.
    Getuid,
    /// Send a signal.
    Kill {
        /// Target pid.
        pid: u32,
        /// Signal number.
        sig: u32,
    },
    /// Duplicate a descriptor.
    Dup {
        /// Descriptor.
        fd: usize,
    },
    /// Create a pipe; returns read fd in the low half of the value and
    /// write fd in the high half.
    Pipe,
    /// Terminal control.
    Ioctl {
        /// Descriptor (must be a terminal).
        fd: usize,
        /// The request.
        req: IoctlReq,
    },
    /// Create a symbolic link.
    Symlink {
        /// Link contents.
        target: String,
        /// Link name.
        link: String,
    },
    /// Read a symbolic link.
    Readlink {
        /// Path.
        path: String,
        /// Guest buffer (VM callers).
        buf_addr: Option<u32>,
        /// Guest buffer size.
        buf_len: usize,
    },
    /// Overlay the caller with a new program.
    Execve {
        /// Path of the executable.
        path: String,
    },
    /// The (possibly virtualised) hostname.
    Gethostname {
        /// Guest buffer (VM callers).
        buf_addr: Option<u32>,
        /// Guest buffer size.
        buf_len: usize,
    },
    /// Create a connected socket pair (enough socket to demonstrate the
    /// migration limitation); returns two fds like `Pipe`.
    Socket,
    /// Set a signal disposition; returns the old one encoded as
    /// 0=default, 1=ignore, handler address otherwise.
    Sigvec {
        /// Signal number.
        sig: u32,
        /// New disposition.
        disp: Disposition,
    },
    /// Replace the blocked-signal mask; returns the old mask.
    Sigsetmask {
        /// New mask (bit n-1 blocks signal n).
        mask: u32,
    },
    /// Schedule a `SIGALRM` in `secs` seconds (0 cancels); returns the
    /// seconds left on any previous alarm.
    Alarm {
        /// Delay in seconds.
        secs: u32,
    },
    /// Virtual time since boot in micro-seconds.
    Gettimeofday,
    /// Set real and effective uid.
    Setreuid {
        /// New real uid (`u32::MAX` leaves it unchanged).
        ruid: u32,
        /// New effective uid (`u32::MAX` leaves it unchanged).
        euid: u32,
    },
    /// Make a directory.
    Mkdir {
        /// Path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// Return from a signal handler (VM callers).
    Sigreturn,
    /// Sleep for a duration.
    Sleep {
        /// Micro-seconds.
        micros: u64,
    },
    /// **The paper's new call**: overlay the caller with a dumped
    /// process image.
    RestProc {
        /// Path of the `a.outXXXXX` file.
        aout: String,
        /// Path of the `stackXXXXX` file.
        stack: String,
        /// §7 extension: pre-migration pid to virtualise.
        old_pid: Option<u32>,
        /// §7 extension: pre-migration hostname to virtualise.
        old_host: Option<String>,
        /// Demand-restore: load only header + text now, leave the data
        /// pages absent to be fetched from the dump on first touch.
        demand: bool,
    },
    /// §7 extension: the true pid regardless of virtualization.
    GetpidReal,
    /// §7 extension: the true hostname regardless of virtualization.
    GethostnameReal {
        /// Guest buffer (VM callers).
        buf_addr: Option<u32>,
        /// Guest buffer size.
        buf_len: usize,
    },
    /// The kernel's current-working-directory string (§5.1 made visible).
    Getwd {
        /// Guest buffer (VM callers).
        buf_addr: Option<u32>,
        /// Guest buffer size.
        buf_len: usize,
    },
}

impl Syscall {
    /// The call's number, keying its [`sysdefs::SyscallMeta`] row.
    pub fn sysno(&self) -> sysdefs::Sysno {
        use sysdefs::Sysno;
        use Syscall::*;
        match self {
            Exit { .. } => Sysno::Exit,
            Fork => Sysno::Fork,
            Read { .. } => Sysno::Read,
            Write { .. } => Sysno::Write,
            Open { .. } => Sysno::Open,
            Creat { .. } => Sysno::Creat,
            Close { .. } => Sysno::Close,
            Wait => Sysno::Wait,
            Link { .. } => Sysno::Link,
            Unlink { .. } => Sysno::Unlink,
            Chdir { .. } => Sysno::Chdir,
            Stat { .. } => Sysno::Stat,
            Lseek { .. } => Sysno::Lseek,
            Getpid => Sysno::Getpid,
            Getuid => Sysno::Getuid,
            Kill { .. } => Sysno::Kill,
            Dup { .. } => Sysno::Dup,
            Pipe => Sysno::Pipe,
            Ioctl { .. } => Sysno::Ioctl,
            Symlink { .. } => Sysno::Symlink,
            Readlink { .. } => Sysno::Readlink,
            Execve { .. } => Sysno::Execve,
            Gethostname { .. } => Sysno::Gethostname,
            Socket => Sysno::Socket,
            Sigvec { .. } => Sysno::Sigvec,
            Sigsetmask { .. } => Sysno::Sigsetmask,
            Alarm { .. } => Sysno::Alarm,
            Gettimeofday => Sysno::Gettimeofday,
            Setreuid { .. } => Sysno::Setreuid,
            Mkdir { .. } => Sysno::Mkdir,
            Sigreturn => Sysno::Sigreturn,
            Sleep { .. } => Sysno::Sleep,
            RestProc { .. } => Sysno::RestProc,
            GetpidReal => Sysno::GetpidReal,
            GethostnameReal { .. } => Sysno::GethostnameReal,
            Getwd { .. } => Sysno::Getwd,
        }
    }

    /// This call's trap-table row.
    pub fn meta(&self) -> &'static sysdefs::SyscallMeta {
        self.sysno().meta()
    }

    /// A short name for traces and statistics (from the trap table).
    pub fn name(&self) -> &'static str {
        self.meta().name
    }
}

/// The value side of a completed system call: a numeric result or an
/// errno, plus any returned bytes (`read`, `readlink`, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SysRetval {
    /// The numeric result or the error.
    pub val: Result<u32, Errno>,
    /// Returned bytes for buffer-filling calls.
    pub data: Vec<u8>,
}

impl SysRetval {
    /// A bare numeric success.
    pub fn ok(v: u32) -> SysRetval {
        SysRetval {
            val: Ok(v),
            data: Vec::new(),
        }
    }

    /// A success carrying bytes.
    pub fn with_data(v: u32, data: Vec<u8>) -> SysRetval {
        SysRetval { val: Ok(v), data }
    }

    /// A failure.
    pub fn err(e: Errno) -> SysRetval {
        SysRetval {
            val: Err(e),
            data: Vec::new(),
        }
    }
}

/// What the dispatcher should do after attempting a system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallResult {
    /// The call completed; deliver the result.
    Done(SysRetval),
    /// The call cannot complete yet: the handler has set the process
    /// state; re-attempt when the process is next scheduled.
    Blocked,
    /// The calling process is gone (`exit`) or was overlaid
    /// (`execve`/`rest_proc` success): deliver nothing.
    Gone,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whence_decoding() {
        assert_eq!(Whence::from_u32(0).unwrap(), Whence::Set);
        assert_eq!(Whence::from_u32(1).unwrap(), Whence::Cur);
        assert_eq!(Whence::from_u32(2).unwrap(), Whence::End);
        assert_eq!(Whence::from_u32(3), Err(Errno::EINVAL));
    }

    #[test]
    fn retval_constructors() {
        assert_eq!(SysRetval::ok(5).val, Ok(5));
        assert_eq!(SysRetval::err(Errno::EBADF).val, Err(Errno::EBADF));
        let d = SysRetval::with_data(3, vec![1, 2, 3]);
        assert_eq!(d.data.len(), 3);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Syscall::RestProc {
                aout: String::new(),
                stack: String::new(),
                old_pid: None,
                old_host: None,
                demand: false
            }
            .name(),
            "rest_proc"
        );
        assert_eq!(Syscall::Fork.name(), "fork");
    }
}
