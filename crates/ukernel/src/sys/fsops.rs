//! File-related system calls: open/creat/close/read/write/lseek/dup,
//! directories, links, pipes and terminal ioctls.
//!
//! The paper's §5.1 bookkeeping lives in [`sys_open`] (name recorded into
//! the file structure via the kernel allocator), [`sys_close`] (name
//! released) and [`sys_chdir`] (the `user`-structure cwd string), each
//! charging the extra work so that Figure 1's overhead emerges.

use simnet::NfsOp;
use simtime::cost::Cost;
use sysdefs::{Access, Errno, FileMode, OpenFlags, Signal, SysResult};
use vfs::{path as vpath, DeviceId, InodeKind};

use crate::file::{FileKind, FileStruct};
use crate::namei::{namei, FollowLast, Resolved};
use crate::proc::ProcState;
use crate::sys::args::{IoctlReq, SysRetval, SyscallResult, Whence};
use crate::sys::ctx::SysCtx;
use crate::user::FileRef;
use crate::world::{CrossCall, CrossRet};

fn done(r: SysResult<SysRetval>) -> SyscallResult {
    SyscallResult::Done(match r {
        Ok(v) => v,
        Err(e) => SysRetval::err(e),
    })
}

/// Splits a raw path argument into (parent-path, final-name) without
/// resolving anything, for creation calls.
fn split_parent(arg: &str) -> (String, String) {
    match arg.rfind('/') {
        None => (".".to_string(), arg.to_string()),
        Some(0) => ("/".to_string(), arg[1..].to_string()),
        Some(i) => (arg[..i].to_string(), arg[i + 1..].to_string()),
    }
}

/// Charges a resolution: CPU per component, disk for cold paths, one RPC
/// per remote lookup.
fn charge_namei(cx: &mut SysCtx<'_>, res: &Resolved, cache_key: &str) -> SysResult<()> {
    let cold = cx.machine_mut().touch_path(cache_key);
    let c = cx.cost().namei(res.components, cold);
    cx.charge(c);
    for _ in 0..res.remote_lookups {
        cx.charge_rpc(NfsOp::Lookup)?;
    }
    Ok(())
}

/// The §5.1 open-file name bookkeeping: allocate, combine and copy.
fn record_file_name(cx: &mut SysCtx<'_>, idx: usize, arg: &str) {
    if !cx.w.config.track_names {
        return;
    }
    let abs = cx.abs_guess(arg);
    let mut cost = cx.cost().kernel_malloc();
    if !vpath::is_absolute(arg) {
        cost = cost.plus(cx.cost().path_combine());
    }
    if let Some(abs) = abs {
        cost = cost.plus(cx.cost().copy_bytes(abs.len() + 1));
        let fixed = cx.w.config.fixed_name_strings;
        let m = cx.machine_mut();
        if let Some(f) = m.files.get_mut(idx) {
            f.path = Some(abs);
        }
        m.note_name_bytes(fixed);
    }
    cx.charge(cost);
}

/// `open(2)` / the open half of `creat(2)`.
pub fn sys_open(
    cx: &mut SysCtx<'_>,
    arg: &str,
    flags_bits: u16,
    mode: u16,
    force_creat: bool,
) -> SyscallResult {
    let flags = match OpenFlags::from_bits(flags_bits) {
        Ok(f) => {
            if force_creat {
                OpenFlags::WRONLY.with(OpenFlags::CREAT | OpenFlags::TRUNC)
            } else {
                f
            }
        }
        Err(e) => return done(Err(e)),
    };
    done(open_common(cx, arg, flags, mode))
}

/// `creat(2)`: "simply calls the same internal routine that open()
/// calls, with slightly different arguments".
pub fn sys_creat(cx: &mut SysCtx<'_>, arg: &str, mode: u16) -> SyscallResult {
    sys_open(cx, arg, 0, mode, true)
}

fn open_common(
    cx: &mut SysCtx<'_>,
    arg: &str,
    flags: OpenFlags,
    mode: u16,
) -> SysResult<SysRetval> {
    let mid = cx.mid;
    let cred = cx.cred()?;
    let cwd = cx.cwd()?;
    let abs_guess = cx.abs_guess(arg);
    let cache_key = format!("{mid}:{}:{}:{arg}", cwd.machine, cwd.ino);
    cx.copied_in(arg.len() + 1);

    // "/dev/tty" names the controlling terminal, whichever it is — the
    // rewrite target dumpproc uses for terminal files.
    if abs_guess.as_deref() == Some("/dev/tty") || arg == "/dev/tty" {
        let tty = cx
            .proc_ref()
            .and_then(|p| p.user.tty)
            .ok_or(Errno::ENXIO)?;
        let idx = cx
            .machine_mut()
            .files
            .insert(FileStruct::new(FileKind::Device(DeviceId::Tty(tty)), flags));
        let fd = install_fd(cx, idx)?;
        let c = cx.cost().file_struct_op();
        cx.charge(c);
        record_file_name(cx, idx, "/dev/tty");
        return Ok(SysRetval::ok(fd as u32));
    }

    let resolved = namei(cx.w, mid, &cred, cwd, arg, FollowLast::Yes);
    let (fref, created) = match resolved {
        Ok(res) => {
            charge_namei(cx, &res, &cache_key)?;
            if flags.creat() && flags.excl() {
                return Err(Errno::EEXIST);
            }
            (res.fref, false)
        }
        Err(Errno::ENOENT) if flags.creat() => {
            let (parent_arg, name) = split_parent(arg);
            let parent = namei(cx.w, mid, &cred, cwd, &parent_arg, FollowLast::Yes)?;
            charge_namei(cx, &parent, &format!("{cache_key}#parent"))?;
            let ret = cx.w.cross_call(
                mid,
                parent.fref.machine,
                &cred,
                CrossCall::FsCreate {
                    parent: parent.fref.ino,
                    name: name.clone(),
                    mode: FileMode(mode),
                },
            )?;
            let CrossRet::Ino(ino) = ret else {
                unreachable!("FsCreate returns an inode");
            };
            let c = cx.cost().disk_create();
            cx.charge(c);
            if parent.fref.machine != mid {
                cx.charge_rpc(NfsOp::Create)?;
            }
            (
                FileRef {
                    machine: parent.fref.machine,
                    ino,
                },
                true,
            )
        }
        Err(e) => return Err(e),
    };

    // Kind and permission checks on the resolved inode.
    let kind = {
        let fs = &cx.w.machine(fref.machine).fs;
        let node = fs.inode(fref.ino)?;
        match &node.kind {
            InodeKind::Directory(_) => return Err(Errno::EISDIR),
            InodeKind::Regular(_) => {
                if !created {
                    let want = if flags.readable() && flags.writable() {
                        Access::ReadWrite
                    } else if flags.writable() {
                        Access::Write
                    } else {
                        Access::Read
                    };
                    if !node.mode.allows(&cred, node.uid, node.gid, want) {
                        return Err(Errno::EACCES);
                    }
                }
                if fref.machine == mid {
                    FileKind::Local(fref.ino)
                } else {
                    FileKind::Remote {
                        host: fref.machine,
                        ino: fref.ino,
                    }
                }
            }
            InodeKind::Device(dev) => FileKind::Device(*dev),
            InodeKind::Symlink(_) => return Err(Errno::ELOOP),
        }
    };

    if flags.trunc() && !created {
        if let FileKind::Local(ino) | FileKind::Remote { ino, .. } = kind {
            cx.w
                .cross_call(mid, fref.machine, &cred, CrossCall::FsTruncate { ino })?;
            if fref.machine != mid {
                cx.charge_rpc(NfsOp::Setattr)?;
            }
        }
    }

    let idx = cx
        .machine_mut()
        .files
        .insert(FileStruct::new(kind, flags));
    let fd = match install_fd(cx, idx) {
        Ok(fd) => fd,
        Err(e) => {
            cx.machine_mut().files.decref(idx);
            return Err(e);
        }
    };
    let c = cx.cost().file_struct_op();
    cx.charge(c);
    record_file_name(cx, idx, arg);
    Ok(SysRetval::ok(fd as u32))
}

/// Puts a file-table index into the lowest free descriptor.
fn install_fd(cx: &mut SysCtx<'_>, idx: usize) -> SysResult<usize> {
    let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
    let fd = p.user.lowest_free_fd().ok_or(Errno::EMFILE)?;
    p.user.fds[fd] = Some(idx);
    Ok(fd)
}

/// `close(2)`: releases the descriptor and, per §5.1, frees the name
/// string through the kernel allocator on the last reference.
pub fn sys_close(cx: &mut SysCtx<'_>, fd: usize) -> SyscallResult {
    done(close_common(cx, fd))
}

pub(crate) fn close_common(cx: &mut SysCtx<'_>, fd: usize) -> SysResult<SysRetval> {
    let idx = {
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let slot = p.user.fds.get_mut(fd).ok_or(Errno::EBADF)?;
        slot.take().ok_or(Errno::EBADF)?
    };
    let mut cost = cx.cost().file_struct_op();
    let freed = cx.machine_mut().files.decref(idx);
    if let Some(f) = freed {
        if f.path.is_some() {
            cost = cost.plus(cx.cost().kernel_free());
        }
        if f.flags.writable() && matches!(f.kind, FileKind::Local(_) | FileKind::Remote { .. }) {
            cost = cost.plus(cx.cost().disk_sync_close());
        }
        release_kind(cx, &f.kind);
    }
    cx.charge(cost);
    Ok(SysRetval::ok(0))
}

/// Drops pipe/socket end references when the last descriptor closes.
fn release_kind(cx: &mut SysCtx<'_>, kind: &FileKind) {
    let m = cx.machine_mut();
    match kind {
        FileKind::Pipe { id, write_end } => {
            if let Some(Some(p)) = m.pipes.get_mut(*id) {
                if *write_end {
                    p.writers = p.writers.saturating_sub(1);
                } else {
                    p.readers = p.readers.saturating_sub(1);
                }
                if p.readers == 0 && p.writers == 0 {
                    m.pipes[*id] = None;
                }
            }
        }
        FileKind::Socket { id, side } => {
            if let Some(Some(s)) = m.sockets.get_mut(*id) {
                // Closing a side removes its reader+writer roles.
                s.bufs[*side].writers = 0;
                s.bufs[1 - *side].readers = 0;
                if s.bufs.iter().all(|b| b.readers == 0 && b.writers == 0) {
                    m.sockets[*id] = None;
                }
            }
        }
        _ => {}
    }
    // A dropped end flips EOF/EPIPE conditions for the other side.
    match kind {
        FileKind::Pipe { id, .. } => cx.w.poke_queue(cx.mid, crate::machine::QueueId::Pipe(*id)),
        FileKind::Socket { id, .. } => {
            cx.w.poke_queue(cx.mid, crate::machine::QueueId::Socket(*id))
        }
        _ => {}
    }
}

/// `read(2)`, with terminal and pipe blocking.
pub fn sys_read(cx: &mut SysCtx<'_>, fd: usize, len: usize) -> SyscallResult {
    let idx = match cx.file_idx(fd) {
        Ok(i) => i,
        Err(e) => return done(Err(e)),
    };
    let (kind, flags, offset) = {
        let f = cx.machine().files.get(idx).expect("live file");
        (f.kind.clone(), f.flags, f.offset)
    };
    if !flags.readable() {
        return done(Err(Errno::EBADF));
    }
    match kind {
        FileKind::Device(DeviceId::Null) => done(Ok(SysRetval::with_data(0, Vec::new()))),
        FileKind::Device(DeviceId::Tty(tty)) => {
            let got = cx.w.terminal(tty).with(|t| t.process_read(len));
            match got {
                Some(bytes) => {
                    let c = cx.cost().copy_bytes(bytes.len());
                    cx.charge(c);
                    cx.copied_out(bytes.len());
                    done(Ok(SysRetval::with_data(bytes.len() as u32, bytes)))
                }
                None => {
                    if let Some(p) = cx.proc_mut() {
                        p.state = ProcState::TtyWait { tty };
                    }
                    cx.w.tty_wait_register(tty, cx.mid, cx.pid);
                    SyscallResult::Blocked
                }
            }
        }
        FileKind::Local(ino) => {
            let data = match cx.machine().fs.read(ino, offset, len) {
                Ok(d) => d,
                Err(e) => return done(Err(e)),
            };
            let first = !std::mem::replace(
                &mut cx.machine_mut().files.get_mut(idx).expect("live").touched,
                true,
            );
            let mut cost = Cost::cpu_us((data.len() / 8) as u64);
            if first {
                cost = cost.plus(cx.cost().disk_read(data.len().max(512)));
            }
            cx.charge(cost);
            cx.copied_out(data.len());
            cx.machine_mut().files.get_mut(idx).expect("live").offset += data.len() as u64;
            done(Ok(SysRetval::with_data(data.len() as u32, data)))
        }
        FileKind::Remote { host, ino } => {
            let data = match cx.w.machine(host).fs.read(ino, offset, len) {
                Ok(d) => d,
                Err(e) => return done(Err(e)),
            };
            // A dropped RPC loses the reply: the client sees ETIMEDOUT
            // and the offset does not advance.
            if let Err(e) = cx.charge_rpc(NfsOp::Read(data.len())) {
                return done(Err(e));
            }
            cx.copied_out(data.len());
            cx.machine_mut().files.get_mut(idx).expect("live").offset += data.len() as u64;
            done(Ok(SysRetval::with_data(data.len() as u32, data)))
        }
        FileKind::Pipe { id, write_end } => {
            if write_end {
                return done(Err(Errno::EBADF));
            }
            read_queue(cx, len, QueueRef::Pipe(id))
        }
        FileKind::Socket { id, side } => read_queue(cx, len, QueueRef::Socket(id, side)),
    }
}

enum QueueRef {
    Pipe(usize),
    /// Socket pair id and *our* side: we read the buffer written by the
    /// peer (`bufs[1 - side]`).
    Socket(usize, usize),
}

impl QueueRef {
    /// The wait-index key for this queue. Sockets share one key for
    /// both sides: a poke may over-wake the opposite side, which is
    /// safe (its condition re-evaluates to no action).
    fn id(&self) -> crate::machine::QueueId {
        match self {
            QueueRef::Pipe(id) => crate::machine::QueueId::Pipe(*id),
            QueueRef::Socket(id, _) => crate::machine::QueueId::Socket(*id),
        }
    }
}

fn read_queue(cx: &mut SysCtx<'_>, len: usize, q: QueueRef) -> SyscallResult {
    let m = cx.machine_mut();
    let buf = match &q {
        QueueRef::Pipe(id) => m.pipes.get_mut(*id).and_then(|p| p.as_mut()),
        QueueRef::Socket(id, side) => m
            .sockets
            .get_mut(*id)
            .and_then(|s| s.as_mut())
            .map(|s| &mut s.bufs[1 - *side]),
    };
    let Some(buf) = buf else {
        return done(Err(Errno::EBADF));
    };
    if buf.data.is_empty() {
        if buf.writers == 0 {
            return done(Ok(SysRetval::with_data(0, Vec::new()))); // EOF.
        }
        if let Some(p) = cx.proc_mut() {
            p.state = ProcState::PipeWait;
        }
        let pid = cx.pid;
        cx.machine_mut().wait_on_queue(q.id(), pid);
        return SyscallResult::Blocked;
    }
    let n = len.min(buf.data.len());
    let bytes: Vec<u8> = buf.data.drain(..n).collect();
    let c = cx.cost().copy_bytes(n);
    cx.charge(c);
    cx.copied_out(n);
    // Draining made room: writers blocked on a full buffer can retry.
    cx.w.poke_queue(cx.mid, q.id());
    done(Ok(SysRetval::with_data(n as u32, bytes)))
}

/// Pipe/socket capacity, as in 4.2BSD.
const PIPE_MAX: usize = 4096;

/// `write(2)`.
pub fn sys_write(cx: &mut SysCtx<'_>, fd: usize, bytes: &[u8]) -> SyscallResult {
    let idx = match cx.file_idx(fd) {
        Ok(i) => i,
        Err(e) => return done(Err(e)),
    };
    let (kind, flags, offset) = {
        let f = cx.machine().files.get(idx).expect("live file");
        (f.kind.clone(), f.flags, f.offset)
    };
    if !flags.writable() {
        return done(Err(Errno::EBADF));
    }
    cx.copied_in(bytes.len());
    match kind {
        FileKind::Device(DeviceId::Null) => done(Ok(SysRetval::ok(bytes.len() as u32))),
        FileKind::Device(DeviceId::Tty(tty)) => {
            let n = cx.w.terminal(tty).with(|t| t.process_write(bytes));
            let c = cx.cost().copy_bytes(n);
            cx.charge(c);
            done(Ok(SysRetval::ok(n as u32)))
        }
        FileKind::Local(ino) => {
            let off = if flags.append() {
                cx.machine().fs.file_len(ino).unwrap_or(offset)
            } else {
                offset
            };
            match cx.w.fs_mut(cx.mid).write(ino, off, bytes) {
                Ok(n) => {
                    // Buffered write: copy CPU plus streaming disk time,
                    // no per-call seek (the sync happens at close).
                    let c = Cost {
                        cpu: simtime::SimDuration::micros((n / 8) as u64),
                        wait: simtime::SimDuration::micros(
                            cx.cost().disk_write_per_byte_us * n as u64,
                        ),
                    };
                    cx.charge(c);
                    cx.machine_mut().files.get_mut(idx).expect("live").offset = off + n as u64;
                    done(Ok(SysRetval::ok(n as u32)))
                }
                Err(e) => done(Err(e)),
            }
        }
        FileKind::Remote { host, ino } => {
            let off = if flags.append() {
                cx.w.machine(host).fs.file_len(ino).unwrap_or(offset)
            } else {
                offset
            };
            let cred = match cx.cred() {
                Ok(c) => c,
                Err(e) => return done(Err(e)),
            };
            let mid = cx.mid;
            let call = CrossCall::FsWrite {
                ino,
                off,
                bytes: bytes.to_vec(),
            };
            match cx.w.cross_call(mid, host, &cred, call) {
                Ok(CrossRet::Len(n)) => {
                    // A dropped reply after the server applied the write:
                    // the data landed but the client sees ETIMEDOUT and
                    // the offset does not advance — NFS's at-least-once
                    // ambiguity, preserved on purpose.
                    if let Err(e) = cx.charge_rpc(NfsOp::Write(n)) {
                        return done(Err(e));
                    }
                    cx.machine_mut().files.get_mut(idx).expect("live").offset = off + n as u64;
                    done(Ok(SysRetval::ok(n as u32)))
                }
                Ok(_) => unreachable!("FsWrite returns a length"),
                Err(e) => done(Err(e)),
            }
        }
        FileKind::Pipe { id, write_end } => {
            if !write_end {
                return done(Err(Errno::EBADF));
            }
            write_queue(cx, bytes, QueueRef::Pipe(id))
        }
        FileKind::Socket { id, side } => write_queue(cx, bytes, QueueRef::Socket(id, side)),
    }
}

fn write_queue(cx: &mut SysCtx<'_>, bytes: &[u8], q: QueueRef) -> SyscallResult {
    let m = cx.machine_mut();
    let buf = match &q {
        QueueRef::Pipe(id) => m.pipes.get_mut(*id).and_then(|p| p.as_mut()),
        // We *write* our own out-buffer: bufs[side].
        QueueRef::Socket(id, side) => m
            .sockets
            .get_mut(*id)
            .and_then(|s| s.as_mut())
            .map(|s| &mut s.bufs[*side]),
    };
    let Some(buf) = buf else {
        return done(Err(Errno::EBADF));
    };
    if buf.readers == 0 {
        if let Some(p) = cx.proc_mut() {
            p.post_signal(Signal::SIGPIPE);
        }
        return done(Err(Errno::EPIPE));
    }
    if buf.data.len() + bytes.len() > PIPE_MAX {
        if let Some(p) = cx.proc_mut() {
            p.state = ProcState::PipeWait;
        }
        let pid = cx.pid;
        cx.machine_mut().wait_on_queue(q.id(), pid);
        return SyscallResult::Blocked;
    }
    buf.data.extend(bytes.iter().copied());
    let c = cx.cost().copy_bytes(bytes.len());
    cx.charge(c);
    // New data: readers blocked on an empty buffer can complete.
    cx.w.poke_queue(cx.mid, q.id());
    done(Ok(SysRetval::ok(bytes.len() as u32)))
}

/// `lseek(2)`.
pub fn sys_lseek(cx: &mut SysCtx<'_>, fd: usize, offset: i64, whence: Whence) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let idx = cx.file_idx(fd)?;
        let (kind, cur) = {
            let f = cx.machine().files.get(idx).expect("live file");
            (f.kind.clone(), f.offset)
        };
        let size = match kind {
            FileKind::Local(ino) => cx.machine().fs.file_len(ino)?,
            FileKind::Remote { host, ino } => cx.w.machine(host).fs.file_len(ino)?,
            FileKind::Device(_) => 0,
            FileKind::Pipe { .. } | FileKind::Socket { .. } => return Err(Errno::ESPIPE),
        };
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => cur as i64,
            Whence::End => size as i64,
        };
        let new = base.checked_add(offset).ok_or(Errno::EINVAL)?;
        if new < 0 {
            return Err(Errno::EINVAL);
        }
        cx.machine_mut().files.get_mut(idx).expect("live").offset = new as u64;
        Ok(SysRetval::ok(new as u32))
    })())
}

/// `dup(2)`.
pub fn sys_dup(cx: &mut SysCtx<'_>, fd: usize) -> SyscallResult {
    done((|| {
        let idx = cx.file_idx(fd)?;
        cx.machine_mut().files.incref(idx);
        match install_fd(cx, idx) {
            Ok(new_fd) => {
                let c = cx.cost().file_struct_op();
                cx.charge(c);
                Ok(SysRetval::ok(new_fd as u32))
            }
            Err(e) => {
                cx.machine_mut().files.decref(idx);
                Err(e)
            }
        }
    })())
}

/// `pipe(2)` — and, with `as_socket`, our minimal `socketpair`.
///
/// Returns the read (or side-0) descriptor in the low half of the value
/// and the write (or side-1) descriptor in the high half.
pub fn sys_pipe(cx: &mut SysCtx<'_>, as_socket: bool) -> SyscallResult {
    done((|| {
        let (kind0, kind1) = if as_socket {
            let m = cx.machine_mut();
            let id = m.sockets.len();
            let mut pair = crate::machine::SocketPair::default();
            for b in &mut pair.bufs {
                b.readers = 1;
                b.writers = 1;
            }
            m.sockets.push(Some(pair));
            (
                FileKind::Socket { id, side: 0 },
                FileKind::Socket { id, side: 1 },
            )
        } else {
            let m = cx.machine_mut();
            let id = m.pipes.len();
            m.pipes.push(Some(crate::machine::PipeBuf {
                data: Default::default(),
                readers: 1,
                writers: 1,
            }));
            (
                FileKind::Pipe {
                    id,
                    write_end: false,
                },
                FileKind::Pipe {
                    id,
                    write_end: true,
                },
            )
        };
        let flags0 = if as_socket {
            OpenFlags::RDWR
        } else {
            OpenFlags::RDONLY
        };
        let flags1 = if as_socket {
            OpenFlags::RDWR
        } else {
            OpenFlags::WRONLY
        };
        let idx0 = cx
            .machine_mut()
            .files
            .insert(FileStruct::new(kind0, flags0));
        let idx1 = cx
            .machine_mut()
            .files
            .insert(FileStruct::new(kind1, flags1));
        let fd0 = install_fd(cx, idx0)?;
        let fd1 = match install_fd(cx, idx1) {
            Ok(f) => f,
            Err(e) => {
                if let Some(p) = cx.proc_mut() {
                    p.user.fds[fd0] = None;
                }
                // Drop the ends through release_kind, or the just-built
                // pipe/socket slot keeps its endpoint counts forever.
                for idx in [idx0, idx1] {
                    if let Some(f) = cx.machine_mut().files.decref(idx) {
                        release_kind(cx, &f.kind);
                    }
                }
                return Err(e);
            }
        };
        let c = cx.cost().file_struct_op().plus(cx.cost().file_struct_op());
        cx.charge(c);
        Ok(SysRetval::ok((fd0 as u32) | ((fd1 as u32) << 16)))
    })())
}

/// `ioctl(2)`: terminal mode get/set.
pub fn sys_ioctl(cx: &mut SysCtx<'_>, fd: usize, req: IoctlReq) -> SyscallResult {
    done((|| {
        let idx = cx.file_idx(fd)?;
        let kind = cx.machine().files.get(idx).expect("live").kind.clone();
        let FileKind::Device(DeviceId::Tty(tty)) = kind else {
            return Err(Errno::ENOTTY);
        };
        let c = Cost::cpu_us(200);
        cx.charge(c);
        match req {
            IoctlReq::Gtty => {
                let flags = cx.w.terminal(tty).with(|t| t.gtty());
                Ok(SysRetval::ok(flags.bits() as u32))
            }
            IoctlReq::Stty(flags) => {
                cx.w.terminal(tty).with(|t| t.stty(flags));
                // A mode change (raw vs cooked) can make buffered input
                // readable for blocked readers.
                cx.w.poke_tty(tty);
                Ok(SysRetval::ok(0))
            }
        }
    })())
}

/// `chdir(2)`, carrying the paper's cwd-string maintenance.
pub fn sys_chdir(cx: &mut SysCtx<'_>, arg: &str) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let cache_key = format!("{mid}:{}:{}:{arg}", cwd.machine, cwd.ino);
        let res = namei(cx.w, mid, &cred, cwd, arg, FollowLast::Yes)?;
        if !cx.w.machine(res.fref.machine).fs.inode(res.fref.ino)?.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        charge_namei(cx, &res, &cache_key)?;

        // §5.1: "After each successful call to chdir() ... if the
        // argument ... is an absolute path name, it is simply copied to
        // the user structure; if it is a relative path name, it is
        // combined with the value of the old current working directory
        // ... with the updating procedure being skipped if the field has
        // not been yet initialised."
        if cx.w.config.track_names {
            let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
            let new_path = if vpath::is_absolute(arg) {
                Some(vpath::normalize(arg))
            } else {
                p.user
                    .cwd_path
                    .as_deref()
                    .map(|old| vpath::combine(old, arg))
            };
            let mut cost = Cost::ZERO;
            if let Some(np) = new_path {
                cost = cost
                    .plus(cx.cost().path_combine())
                    .plus(cx.cost().copy_bytes(np.len() + 1));
                if let Some(p) = cx.proc_mut() {
                    p.user.cwd_path = Some(np);
                }
            }
            cx.charge(cost);
        }
        if let Some(p) = cx.proc_mut() {
            p.user.cwd = res.fref;
        }
        Ok(SysRetval::ok(0))
    })())
}

/// `stat(2)`, reduced to the size query the utilities need.
pub fn sys_stat(cx: &mut SysCtx<'_>, arg: &str) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let cache_key = format!("{mid}:{}:{}:{arg}", cwd.machine, cwd.ino);
        let res = namei(cx.w, mid, &cred, cwd, arg, FollowLast::Yes)?;
        charge_namei(cx, &res, &cache_key)?;
        if res.fref.machine != mid {
            cx.charge_rpc(NfsOp::Getattr)?;
        }
        let size = cx.w.machine(res.fref.machine).fs.file_len(res.fref.ino)?;
        Ok(SysRetval::ok(size as u32))
    })())
}

/// `unlink(2)`.
pub fn sys_unlink(cx: &mut SysCtx<'_>, arg: &str) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let (parent_arg, name) = split_parent(arg);
        let parent = namei(cx.w, mid, &cred, cwd, &parent_arg, FollowLast::Yes)?;
        let cache_key = format!("{mid}:{}:{}:{arg}#unlink", cwd.machine, cwd.ino);
        charge_namei(cx, &parent, &cache_key)?;
        cx.w.cross_call(
            mid,
            parent.fref.machine,
            &cred,
            CrossCall::FsUnlink {
                parent: parent.fref.ino,
                name: name.clone(),
            },
        )?;
        let c = cx.cost().disk_create(); // Directory update, same class.
        cx.charge(c);
        if parent.fref.machine != mid {
            cx.charge_rpc(NfsOp::Remove)?;
        }
        Ok(SysRetval::ok(0))
    })())
}

/// `link(2)` (same machine only, as on the original system).
pub fn sys_link(cx: &mut SysCtx<'_>, old: &str, new: &str) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let target = namei(cx.w, mid, &cred, cwd, old, FollowLast::Yes)?;
        let (parent_arg, name) = split_parent(new);
        let parent = namei(cx.w, mid, &cred, cwd, &parent_arg, FollowLast::Yes)?;
        if target.fref.machine != parent.fref.machine {
            return Err(Errno::EXDEV);
        }
        charge_namei(cx, &target, &format!("{mid}:link:{old}"))?;
        cx.w.cross_call(
            mid,
            parent.fref.machine,
            &cred,
            CrossCall::FsLink {
                parent: parent.fref.ino,
                name: name.clone(),
                target: target.fref.ino,
            },
        )?;
        let c = cx.cost().disk_create();
        cx.charge(c);
        Ok(SysRetval::ok(0))
    })())
}

/// `symlink(2)`.
pub fn sys_symlink(cx: &mut SysCtx<'_>, target: &str, link: &str) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let (parent_arg, name) = split_parent(link);
        let parent = namei(cx.w, mid, &cred, cwd, &parent_arg, FollowLast::Yes)?;
        charge_namei(cx, &parent, &format!("{mid}:symlink:{link}"))?;
        cx.w.cross_call(
            mid,
            parent.fref.machine,
            &cred,
            CrossCall::FsSymlink {
                parent: parent.fref.ino,
                name: name.clone(),
                target: target.to_string(),
            },
        )?;
        let c = cx.cost().disk_create();
        cx.charge(c);
        Ok(SysRetval::ok(0))
    })())
}

/// `readlink(2)`: "can be used iteratively to resolve all symbolic links
/// in a pathname" — the tool `dumpproc` relies on.
pub fn sys_readlink(cx: &mut SysCtx<'_>, arg: &str, buf_len: usize) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let cache_key = format!("{mid}:{}:{}:{arg}#rl", cwd.machine, cwd.ino);
        let res = namei(cx.w, mid, &cred, cwd, arg, FollowLast::No)?;
        charge_namei(cx, &res, &cache_key)?;
        let target = cx.w.machine(res.fref.machine).fs.readlink(res.fref.ino)?;
        if res.fref.machine != mid {
            cx.charge_rpc(NfsOp::Readlink)?;
        }
        let bytes: Vec<u8> = target.into_bytes();
        let n = bytes.len().min(buf_len);
        cx.copied_out(n);
        Ok(SysRetval::with_data(n as u32, bytes[..n].to_vec()))
    })())
}

/// `mkdir(2)`.
pub fn sys_mkdir(cx: &mut SysCtx<'_>, arg: &str, mode: u16) -> SyscallResult {
    done((|| {
        let mid = cx.mid;
        let cred = cx.cred()?;
        let cwd = cx.cwd()?;
        let (parent_arg, name) = split_parent(arg);
        let parent = namei(cx.w, mid, &cred, cwd, &parent_arg, FollowLast::Yes)?;
        charge_namei(cx, &parent, &format!("{mid}:mkdir:{arg}"))?;
        cx.w.cross_call(
            mid,
            parent.fref.machine,
            &cred,
            CrossCall::FsMkdir {
                parent: parent.fref.ino,
                name: name.clone(),
                mode: FileMode(mode),
            },
        )?;
        let c = cx.cost().disk_create();
        cx.charge(c);
        if parent.fref.machine != mid {
            cx.charge_rpc(NfsOp::Create)?;
        }
        Ok(SysRetval::ok(0))
    })())
}
