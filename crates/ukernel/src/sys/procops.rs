//! Process-related system calls: exit, fork, wait, signals, identity.

use simtime::cost::Cost;
use simtime::SimDuration;
use sysdefs::{Disposition, Errno, Pid, Signal, SysResult};

use crate::proc::{Body, Proc, ProcState};
use crate::sys::args::{SysRetval, SyscallResult};
use crate::sys::ctx::SysCtx;

fn done(r: SysResult<SysRetval>) -> SyscallResult {
    SyscallResult::Done(match r {
        Ok(v) => v,
        Err(e) => SysRetval::err(e),
    })
}

/// `exit(2)`.
pub fn sys_exit(cx: &mut SysCtx<'_>, status: u32) -> SyscallResult {
    cx.w.do_exit(cx.mid, cx.pid, status);
    SyscallResult::Gone
}

/// `fork(2)` — VM bodies only; native utilities use `run_local`/`rsh`.
pub fn sys_fork(cx: &mut SysCtx<'_>) -> SyscallResult {
    done((|| {
        let pid = cx.pid;
        let child_pid = cx.machine_mut().alloc_pid();
        let (child_body, image_bytes) = {
            let p = cx.proc_ref().ok_or(Errno::ESRCH)?;
            match &p.body {
                Body::Vm(vm) => {
                    let mut child = vm.clone();
                    // The child sees fork() return 0; the VM dispatcher
                    // will deliver `child_pid` to the parent.
                    child.cpu.d[0] = 0;
                    child.cpu.sr &= !0x01; // Clear carry: success.
                    let bytes = child.mem.data().len()
                        + child.mem.stack_from(child.cpu.sp()).map_or(0, |s| s.len());
                    (Body::Vm(child), bytes)
                }
                _ => return Err(Errno::EINVAL),
            }
        };
        let user = {
            let p = cx.proc_ref().ok_or(Errno::ESRCH)?;
            p.user.clone()
        };
        // Shared file-table entries: bump every referenced entry.
        {
            let m = cx.machine_mut();
            for idx in user.fds.iter().flatten() {
                m.files.incref(*idx);
            }
        }
        let now = cx.machine().now;
        let comm = cx
            .proc_ref()
            .map(|p| p.comm.clone())
            .unwrap_or_default();
        let child = Proc {
            pid: child_pid,
            ppid: pid,
            state: ProcState::Runnable,
            body: child_body,
            user,
            sig_pending: 0,
            utime: SimDuration::ZERO,
            stime: SimDuration::ZERO,
            start_time: now,
            pending_syscall: None,
            restart_pc: None,
            comm,
            alarm_at: None,
            dump_delta: false,
        };
        let m = cx.machine_mut();
        m.procs.insert(child_pid.as_u32(), child);
        m.stats.forks += 1;
        m.make_runnable(child_pid);
        let mid = cx.mid;
        cx.w.poke_proc(mid, child_pid);
        let c = cx.cost().fork(image_bytes);
        cx.charge(c);
        Ok(SysRetval::ok(child_pid.as_u32()))
    })())
}

/// `wait(2)`: reap a zombie child, or block until one appears.
pub fn sys_wait(cx: &mut SysCtx<'_>) -> SyscallResult {
    // The child-table scan below is kernel work, charged per attempt
    // (a blocked wait re-scans every time it is re-issued).
    let c = cx.cost().quick_call();
    cx.charge(c);
    let mut zombie: Option<(Pid, u32)> = None;
    let mut have_children = false;
    {
        let m = cx.machine();
        for p in m.procs.values() {
            if p.ppid == cx.pid {
                have_children = true;
                if let ProcState::Zombie { status } = p.state {
                    zombie = Some((p.pid, status));
                    break;
                }
            }
        }
    }
    match zombie {
        Some((child, status)) => {
            cx.machine_mut().procs.remove(&child.as_u32());
            done(Ok(SysRetval::with_data(
                child.as_u32(),
                status.to_be_bytes().to_vec(),
            )))
        }
        None if have_children => {
            if let Some(p) = cx.proc_mut() {
                p.state = ProcState::ChildWait;
            }
            SyscallResult::Blocked
        }
        // "When such a process is moved to another machine, it ceases
        // being the parent of what used to be its children, and waiting
        // for them will produce undefined results" — concretely, ECHILD.
        None => done(Err(Errno::ECHILD)),
    }
}

/// `getpid(2)`; with `real`, the §7 `getpid_real()` extension.
pub fn sys_getpid(cx: &mut SysCtx<'_>, real: bool) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let pid = cx.pid;
        let virtualize = cx.w.config.virtualize_ids;
        let p = cx.proc_ref().ok_or(Errno::ESRCH)?;
        let answer = if !real && virtualize {
            p.user.old_pid.unwrap_or(pid)
        } else {
            pid
        };
        Ok(SysRetval::ok(answer.as_u32()))
    })())
}

/// `getuid(2)`.
pub fn sys_getuid(cx: &mut SysCtx<'_>) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let p = cx.proc_ref().ok_or(Errno::ESRCH)?;
        Ok(SysRetval::ok(p.user.cred.ruid.as_u32()))
    })())
}

/// `gethostname(2)`; with `real`, the §7 `gethostname_real()` extension.
pub fn sys_gethostname(cx: &mut SysCtx<'_>, buf_len: usize, real: bool) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done({
        let virtualised = if !real && cx.w.config.virtualize_ids {
            cx.proc_ref().and_then(|p| p.user.old_host.clone())
        } else {
            None
        };
        let name = virtualised.unwrap_or_else(|| cx.machine().name.clone());
        let bytes: Vec<u8> = name.into_bytes();
        let n = bytes.len().min(buf_len);
        cx.copied_out(n);
        Ok(SysRetval::with_data(n as u32, bytes[..n].to_vec()))
    })
}

/// `getwd`: the kernel's §5.1 cwd string made visible.
pub fn sys_getwd(cx: &mut SysCtx<'_>, buf_len: usize) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let p = cx.proc_ref().ok_or(Errno::ESRCH)?;
        let cwd = p.user.cwd_path.clone().ok_or(Errno::EINVAL)?;
        let bytes: Vec<u8> = cwd.into_bytes();
        let n = bytes.len().min(buf_len);
        cx.copied_out(n);
        Ok(SysRetval::with_data(n as u32, bytes[..n].to_vec()))
    })())
}

/// `kill(2)`: post a signal, with the paper's ownership rule.
pub fn sys_kill(cx: &mut SysCtx<'_>, target: u32, sig: u32) -> SyscallResult {
    done((|| {
        let sig = Signal::from_number(sig)?;
        let cred = cx.cred()?;
        let target_pid = Pid(target);
        let (owner, is_vm) = {
            let t = cx.w.proc_ref(cx.mid, target_pid).ok_or(Errno::ESRCH)?;
            if matches!(t.state, ProcState::Zombie { .. }) {
                return Err(Errno::ESRCH);
            }
            (t.owner(), matches!(t.body, Body::Vm(_)))
        };
        // "For security reasons, only the superuser or the owner of the
        // process can kill a process in this way."
        if !cred.may_control(owner) {
            return Err(Errno::EPERM);
        }
        // SIGDUMP needs a process image to dump; only VM bodies have
        // one. (And on an unmodified kernel the signal does not exist.)
        if sig == Signal::SIGDUMP {
            if !cx.w.config.track_names {
                return Err(Errno::EINVAL);
            }
            if !is_vm {
                return Err(Errno::EINVAL);
            }
        }
        let c = cx.cost().signal_delivery();
        cx.charge(c);
        if let Some(t) = cx.w.proc_mut(cx.mid, target_pid) {
            if sig == Signal::SIGCONT && matches!(t.state, ProcState::Stopped) {
                t.state = ProcState::Runnable;
            }
            t.post_signal(sig);
        }
        // A runnable target will take the signal when next scheduled;
        // blocked targets are woken at the next wake pass (which the
        // poke guarantees happens under the event scheduler).
        cx.machine_mut().nudge(target_pid);
        cx.w.poke_proc(cx.mid, target_pid);
        Ok(SysRetval::ok(0))
    })())
}

/// `sigvec(2)` (simplified): set one signal's disposition.
pub fn sys_sigvec(cx: &mut SysCtx<'_>, sig: u32, disp: Disposition) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let sig = Signal::from_number(sig)?;
        if sig.uncatchable() && disp != Disposition::Default {
            return Err(Errno::EINVAL);
        }
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let slot = &mut p.user.sigs.dispositions[(sig.number() - 1) as usize];
        let old = std::mem::replace(slot, disp);
        let encoded = match old {
            Disposition::Default => 0,
            Disposition::Ignore => 1,
            Disposition::Handler(a) => a,
        };
        Ok(SysRetval::ok(encoded))
    })())
}

/// `sigsetmask(2)`: replace the blocked mask, returning the old one.
/// `SIGKILL` and `SIGSTOP` cannot be blocked.
pub fn sys_sigsetmask(cx: &mut SysCtx<'_>, mask: u32) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let unblockable =
            (1u32 << (Signal::SIGKILL.number() - 1)) | (1 << (Signal::SIGSTOP.number() - 1));
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let old = p.user.sigs.blocked;
        p.user.sigs.blocked = mask & !unblockable;
        Ok(SysRetval::ok(old))
    })())
}

/// `alarm(2)`: schedule a `SIGALRM`, returning the seconds that
/// remained on any previous alarm (0 if none).
pub fn sys_alarm(cx: &mut SysCtx<'_>, secs: u32) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let pid = cx.pid;
        let now = cx.machine().now;
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let remaining = p
            .alarm_at
            .map(|t| (t.since(now).as_micros() / 1_000_000) as u32)
            .unwrap_or(0);
        p.alarm_at = if secs == 0 {
            None
        } else {
            Some(now + SimDuration::secs(secs as u64))
        };
        let alarm_at = p.alarm_at;
        if let Some(t) = alarm_at {
            cx.machine_mut().push_timer(pid, t);
            // Re-key the machine's deadline in the ready index: an
            // alarm armed on an otherwise-idle machine must still fire.
            let mid = cx.mid;
            cx.w.poke_proc(mid, pid);
        }
        Ok(SysRetval::ok(remaining))
    })())
}

/// `gettimeofday(2)`: virtual micro-seconds since boot, low half in the
/// value, high half in the data bytes.
pub fn sys_gettimeofday(cx: &mut SysCtx<'_>) -> SyscallResult {
    // Charged before the clock is read, so the returned time includes
    // this call's own CPU — as a real kernel's would.
    let c = cx.cost().quick_call();
    cx.charge(c);
    let us = cx.machine().now.as_micros();
    done(Ok(SysRetval::with_data(
        us as u32,
        ((us >> 32) as u32).to_be_bytes().to_vec(),
    )))
}

/// `setreuid(2)`: `u32::MAX` keeps the current value.
pub fn sys_setreuid(cx: &mut SysCtx<'_>, ruid: u32, euid: u32) -> SyscallResult {
    let c = cx.cost().quick_call();
    cx.charge(c);
    done((|| {
        let p = cx.proc_mut().ok_or(Errno::ESRCH)?;
        let cur = p.user.cred.clone();
        let want_r = if ruid == u32::MAX {
            cur.ruid
        } else {
            sysdefs::Uid(ruid)
        };
        let want_e = if euid == u32::MAX {
            cur.euid
        } else {
            sysdefs::Uid(euid)
        };
        let allowed = cur.euid.is_root()
            || ((want_r == cur.ruid || want_r == cur.euid)
                && (want_e == cur.ruid || want_e == cur.euid));
        if !allowed {
            return Err(Errno::EPERM);
        }
        p.user.cred.ruid = want_r;
        p.user.cred.euid = want_e;
        Ok(SysRetval::ok(0))
    })())
}

/// `sleep`: park until a deadline.
pub fn sys_sleep(cx: &mut SysCtx<'_>, micros: u64) -> SyscallResult {
    if micros == 0 {
        return done(Ok(SysRetval::ok(0)));
    }
    let pid = cx.pid;
    let until = cx.machine().now + SimDuration::micros(micros);
    if let Some(p) = cx.proc_mut() {
        p.state = ProcState::Sleeping { until };
        cx.machine_mut().push_timer(pid, until);
        let mid = cx.mid;
        cx.w.poke_proc(mid, pid);
    }
    let c = Cost::cpu_us(100); // Timer setup.
    cx.charge(c);
    SyscallResult::Blocked
}
