//! The per-process `user` structure and its paper modifications.

use sysdefs::limits::NOFILE;
use sysdefs::{Credentials, Pid};
use vfs::Ino;

use dumpfmt::SignalState;

/// A reference to an inode anywhere in the world: the machine that owns
/// the filesystem plus the inode number there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileRef {
    /// Index of the owning machine.
    pub machine: usize,
    /// Inode on that machine.
    pub ino: Ino,
}

/// The swappable per-process data (4.2BSD `struct user`).
#[derive(Clone, Debug)]
pub struct UserArea {
    /// User credentials.
    pub cred: Credentials,
    /// Current working directory as an inode reference (`u_cdir` in the
    /// original kernel — this is all the unmodified kernel keeps, which
    /// is precisely why it "does not keep enough information ... to
    /// deduce in a non-trivial way what these files are").
    pub cwd: FileRef,
    /// **The paper's §5.1 modification**: "A character string of fixed
    /// size was added to this structure, which contains the full path
    /// name of the current directory." `None` until the first absolute
    /// `chdir()` initialises it (or always `None` on an unmodified
    /// kernel).
    pub cwd_path: Option<String>,
    /// Per-process descriptor table: indices into the machine's open
    /// file table. Fixed size, like the dump format requires.
    pub fds: [Option<usize>; NOFILE],
    /// Signal dispositions and blocked mask.
    pub sigs: SignalState,
    /// Controlling terminal (world tty id).
    pub tty: Option<u32>,
    /// **§7 extension**: the process id before migration, served by
    /// `getpid()` when id virtualization is enabled.
    pub old_pid: Option<Pid>,
    /// **§7 extension**: the hostname before migration, served by
    /// `gethostname()` when id virtualization is enabled.
    pub old_host: Option<String>,
}

impl UserArea {
    /// A fresh user area rooted at `cwd` with empty descriptors.
    pub fn new(cred: Credentials, cwd: FileRef) -> UserArea {
        UserArea {
            cred,
            cwd,
            cwd_path: None,
            fds: [None; NOFILE],
            sigs: SignalState::default(),
            tty: None,
            old_pid: None,
            old_host: None,
        }
    }

    /// The lowest free descriptor, as `open(2)` allocates them.
    pub fn lowest_free_fd(&self) -> Option<usize> {
        self.fds.iter().position(|f| f.is_none())
    }

    /// Count of live descriptors.
    pub fn open_fd_count(&self) -> usize {
        self.fds.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysdefs::{Gid, Uid};

    fn ua() -> UserArea {
        UserArea::new(
            Credentials::user(Uid(10), Gid(10)),
            FileRef { machine: 0, ino: 0 },
        )
    }

    #[test]
    fn fd_allocation_is_lowest_first() {
        let mut u = ua();
        assert_eq!(u.lowest_free_fd(), Some(0));
        u.fds[0] = Some(7);
        u.fds[1] = Some(8);
        assert_eq!(u.lowest_free_fd(), Some(2));
        u.fds[0] = None;
        assert_eq!(u.lowest_free_fd(), Some(0));
        assert_eq!(u.open_fd_count(), 1);
    }

    #[test]
    fn fd_table_is_fixed_size() {
        let mut u = ua();
        for i in 0..NOFILE {
            u.fds[i] = Some(i);
        }
        assert_eq!(u.lowest_free_fd(), None);
    }

    #[test]
    fn cwd_path_starts_uninitialised() {
        let u = ua();
        assert!(u.cwd_path.is_none());
        assert!(u.old_pid.is_none());
    }
}
