//! `ktrace`: a bounded, per-machine ring buffer of system-call records.
//!
//! Every record is derived purely from simulated state — the machine's
//! virtual clock, the pid, the trap-table name and the charged simtime —
//! so tracing is fully deterministic: two identical runs produce
//! bit-identical rings, and the determinism test asserts exactly that.
//! The ring is always on; at a fixed capacity its cost is a few pointer
//! moves per syscall, and the newest records are the ones a failing
//! test or a `simsh ktrace` dump wants.

use std::collections::VecDeque;

use simtime::SimTime;
use sysdefs::{Errno, Pid};

/// How a dispatch attempt (or a parked call's completion) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KtraceResult {
    /// Completed with a numeric result.
    Ok(u32),
    /// Completed with an errno.
    Err(Errno),
    /// Parked; the call will be re-issued when the process wakes.
    Blocked,
    /// The caller is gone (`exit`) or was overlaid (`execve`/`rest_proc`).
    Gone,
}

/// What happened at a hook point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KtraceEvent {
    /// Dispatch entry. `retry` marks a re-issue of a parked call.
    Enter {
        /// True when this attempt re-issues a parked `pending_syscall`.
        retry: bool,
    },
    /// Dispatch exit: the attempt's outcome and the simtime it charged
    /// (machine-clock delta across the handler, in micro-seconds).
    Exit {
        /// The attempt's outcome.
        result: KtraceResult,
        /// Micro-seconds of simulated time charged by this attempt.
        charged_us: u64,
    },
    /// A parked call finished outside dispatch: a sleep expired, a
    /// remote command returned, or a signal aborted the call (`EINTR`).
    Complete {
        /// The delivered result.
        result: KtraceResult,
    },
    /// The fault-injection plan fired: `site` names the injection point
    /// and `err` is the errno the faulted operation surfaced. Recording
    /// every injection keeps faulty runs inside the determinism
    /// contract — the snapshot includes these records.
    Fault {
        /// The injection site's canonical short name.
        site: &'static str,
        /// The errno the injected failure surfaced as.
        err: Errno,
    },
}

/// One ring entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KtraceRecord {
    /// Monotonic per-machine sequence number (never reused).
    pub seq: u64,
    /// The machine clock when the record was cut.
    pub at: SimTime,
    /// The calling process.
    pub pid: Pid,
    /// The call's trap-table name.
    pub name: &'static str,
    /// What happened.
    pub ev: KtraceEvent,
}

impl KtraceRecord {
    /// One canonical text line, used by `simsh ktrace`, the
    /// dump-on-failure helper and the determinism snapshot.
    pub fn render(&self) -> String {
        let ev = match self.ev {
            KtraceEvent::Enter { retry: false } => "enter".to_string(),
            KtraceEvent::Enter { retry: true } => "enter retry".to_string(),
            KtraceEvent::Exit { result, charged_us } => {
                format!("exit {} charged={charged_us}us", render_result(result))
            }
            KtraceEvent::Complete { result } => {
                format!("complete {}", render_result(result))
            }
            KtraceEvent::Fault { site, err } => {
                format!("fault {site} err={err:?}")
            }
        };
        format!(
            "#{} {}us pid={} {} {}",
            self.seq,
            self.at.as_micros(),
            self.pid.as_u32(),
            self.name,
            ev
        )
    }
}

fn render_result(r: KtraceResult) -> String {
    match r {
        KtraceResult::Ok(v) => format!("ok={v}"),
        KtraceResult::Err(e) => format!("err={e:?}"),
        KtraceResult::Blocked => "blocked".to_string(),
        KtraceResult::Gone => "gone".to_string(),
    }
}

/// Default ring capacity: enough to hold the syscall tail of any of the
/// paper's scenarios without growing the per-machine footprint.
pub const KTRACE_CAP: usize = 256;

/// The per-machine ring.
#[derive(Clone, Debug)]
pub struct Ktrace {
    ring: VecDeque<KtraceRecord>,
    cap: usize,
    /// Total records ever cut (the next record's `seq`).
    pub seq: u64,
    /// Records pushed out of the ring by newer ones.
    pub dropped: u64,
}

impl Default for Ktrace {
    fn default() -> Ktrace {
        Ktrace::with_capacity(KTRACE_CAP)
    }
}

impl Ktrace {
    /// A ring holding at most `cap` records.
    pub fn with_capacity(cap: usize) -> Ktrace {
        Ktrace {
            ring: VecDeque::with_capacity(cap.min(KTRACE_CAP)),
            cap,
            seq: 0,
            dropped: 0,
        }
    }

    /// Cuts a record.
    pub fn push(&mut self, at: SimTime, pid: Pid, name: &'static str, ev: KtraceEvent) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(KtraceRecord {
            seq: self.seq,
            at,
            pid,
            name,
            ev,
        });
        self.seq += 1;
    }

    /// The buffered records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &KtraceRecord> {
        self.ring.iter()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Renders the newest `last` records (all of them when `last` is
    /// `None`), one line each, oldest first.
    pub fn render(&self, last: Option<usize>) -> String {
        let n = last.unwrap_or(self.ring.len()).min(self.ring.len());
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier records dropped\n", self.dropped));
        }
        for r in self.ring.iter().skip(self.ring.len() - n) {
            out.push_str(&r.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &mut Ktrace, n: u64) {
        k.push(
            SimTime::BOOT + simtime::SimDuration::micros(n),
            Pid(2),
            "read",
            KtraceEvent::Enter { retry: false },
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut k = Ktrace::with_capacity(4);
        for n in 0..10 {
            rec(&mut k, n);
        }
        assert_eq!(k.len(), 4);
        assert_eq!(k.dropped, 6);
        assert_eq!(k.seq, 10);
        let seqs: Vec<u64> = k.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn render_takes_a_tail() {
        let mut k = Ktrace::with_capacity(8);
        for n in 0..3 {
            rec(&mut k, n);
        }
        let all = k.render(None);
        assert_eq!(all.lines().count(), 3);
        let tail = k.render(Some(1));
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("#2"), "newest record: {tail}");
    }

    #[test]
    fn record_lines_are_canonical() {
        let mut k = Ktrace::default();
        k.push(
            SimTime::BOOT,
            Pid(3),
            "open",
            KtraceEvent::Exit {
                result: KtraceResult::Err(Errno::ENOENT),
                charged_us: 300,
            },
        );
        let line = k.render(None);
        assert_eq!(line.trim(), "#0 0us pid=3 open exit err=ENOENT charged=300us");
    }

    #[test]
    fn fault_lines_are_canonical() {
        let mut k = Ktrace::default();
        k.push(
            SimTime::BOOT,
            Pid(5),
            "fault",
            KtraceEvent::Fault {
                site: "nfs",
                err: Errno::ETIMEDOUT,
            },
        );
        let line = k.render(None);
        assert_eq!(line.trim(), "#0 0us pid=5 fault fault nfs err=ETIMEDOUT");
    }
}
