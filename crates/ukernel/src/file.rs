//! The system-wide open-file table and its paper modification.

use sysdefs::OpenFlags;
use vfs::{DeviceId, Ino};

/// A process-local descriptor number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub usize);

impl Fd {
    /// Standard input.
    pub const STDIN: Fd = Fd(0);
    /// Standard output.
    pub const STDOUT: Fd = Fd(1);
    /// Standard error.
    pub const STDERR: Fd = Fd(2);
}

impl core::fmt::Display for Fd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What an open-file-table entry refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// An inode on this machine's filesystem.
    Local(Ino),
    /// An inode on another machine, reached through an NFS mount; the
    /// pair is effectively the NFS file handle.
    Remote {
        /// The serving machine (index into the world's machine table).
        host: usize,
        /// The inode on the server.
        ino: Ino,
    },
    /// A character device (tty id is global to the world).
    Device(DeviceId),
    /// One end of a pipe.
    Pipe {
        /// Pipe table index on this machine.
        id: usize,
        /// True for the write end.
        write_end: bool,
    },
    /// A socket. Only implemented far enough to demonstrate the paper's
    /// limitation: a migrated socket comes back as `/dev/null`.
    Socket {
        /// Socket-pair table index on this machine.
        id: usize,
        /// Which end of the pair.
        side: usize,
    },
}

impl FileKind {
    /// Is this entry recorded as a socket-like object in dumps? The
    /// paper's format has only file/socket/unused tags, and neither
    /// pipes nor sockets can be migrated.
    pub fn dumps_as_socket(&self) -> bool {
        matches!(self, FileKind::Pipe { .. } | FileKind::Socket { .. })
    }
}

/// One entry of the machine-wide open-file table (4.2BSD `struct file`).
#[derive(Clone, Debug)]
pub struct FileStruct {
    /// Reference count: descriptors (across processes, after `fork` or
    /// `dup`) sharing this entry — and therefore sharing its offset.
    pub refcount: u32,
    /// Access flags.
    pub flags: OpenFlags,
    /// Current file offset, shared by all referencing descriptors.
    pub offset: u64,
    /// What the entry refers to.
    pub kind: FileKind,
    /// Has this file been read through this entry yet? The first read
    /// pays the buffer-cache miss.
    pub touched: bool,
    /// **The paper's §5.1 modification**: "Each file structure has been
    /// augmented with a pointer to a dynamically allocated character
    /// string containing the absolute path name of the file to which it
    /// refers." `None` when the kernel is built without name tracking
    /// (and the paper's allocator initialises the pointer to null).
    pub path: Option<String>,
}

impl FileStruct {
    /// A fresh entry with a single reference.
    pub fn new(kind: FileKind, flags: OpenFlags) -> FileStruct {
        FileStruct {
            refcount: 1,
            flags,
            offset: 0,
            kind,
            touched: false,
            path: None,
        }
    }
}

/// The machine-wide open-file table.
#[derive(Clone, Debug, Default)]
pub struct FileTable {
    entries: Vec<Option<FileStruct>>,
}

impl FileTable {
    /// An empty table.
    pub fn new() -> FileTable {
        FileTable::default()
    }

    /// Installs an entry, returning its index.
    pub fn insert(&mut self, file: FileStruct) -> usize {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return i;
            }
        }
        self.entries.push(Some(file));
        self.entries.len() - 1
    }

    /// Borrows an entry.
    pub fn get(&self, idx: usize) -> Option<&FileStruct> {
        self.entries.get(idx).and_then(|s| s.as_ref())
    }

    /// Mutably borrows an entry.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut FileStruct> {
        self.entries.get_mut(idx).and_then(|s| s.as_mut())
    }

    /// Adds a reference (for `dup`/`fork`).
    pub fn incref(&mut self, idx: usize) {
        if let Some(f) = self.get_mut(idx) {
            f.refcount += 1;
        }
    }

    /// Drops a reference; returns the entry when the last reference goes
    /// away so the caller can release resources (and, per §5.1, free the
    /// name string via the kernel allocator).
    pub fn decref(&mut self, idx: usize) -> Option<FileStruct> {
        let free = match self.get_mut(idx) {
            Some(f) => {
                f.refcount -= 1;
                f.refcount == 0
            }
            None => false,
        };
        if free {
            self.entries[idx].take()
        } else {
            None
        }
    }

    /// Live entries (for statistics and leak tests).
    pub fn live(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Live entries with their slot indexes, for the determinism
    /// snapshot: slot reuse order is itself simulated state.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &FileStruct)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|f| (i, f)))
    }

    /// Total bytes of kernel memory currently held by name strings —
    /// the quantity the paper's §5.1 dynamic-allocation argument is
    /// about. With fixed-size strings each live entry would pin
    /// `MAXPATHLEN` bytes regardless of the actual name length.
    pub fn name_bytes(&self, fixed: bool) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|f| {
                if fixed {
                    sysdefs::MAXPATHLEN
                } else {
                    f.path.as_ref().map_or(0, |p| p.len() + 1)
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> FileStruct {
        FileStruct::new(FileKind::Local(3), OpenFlags::RDWR)
    }

    #[test]
    fn insert_reuses_free_slots() {
        let mut t = FileTable::new();
        let a = t.insert(file());
        let b = t.insert(file());
        assert_ne!(a, b);
        t.decref(a);
        let c = t.insert(file());
        assert_eq!(c, a);
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn refcounting_shares_offsets() {
        let mut t = FileTable::new();
        let i = t.insert(file());
        t.incref(i);
        t.get_mut(i).unwrap().offset = 100;
        assert!(t.decref(i).is_none(), "still referenced");
        assert_eq!(t.get(i).unwrap().offset, 100);
        let last = t.decref(i).expect("last reference frees");
        assert_eq!(last.offset, 100);
        assert!(t.get(i).is_none());
    }

    #[test]
    fn name_bytes_dynamic_vs_fixed() {
        let mut t = FileTable::new();
        let i = t.insert(file());
        t.get_mut(i).unwrap().path = Some("/usr/foo".into());
        assert_eq!(t.name_bytes(false), "/usr/foo".len() + 1);
        assert_eq!(t.name_bytes(true), sysdefs::MAXPATHLEN);
    }

    #[test]
    fn pipes_and_sockets_dump_as_sockets() {
        assert!(FileKind::Pipe {
            id: 0,
            write_end: true
        }
        .dumps_as_socket());
        assert!(FileKind::Socket { id: 0, side: 0 }.dumps_as_socket());
        assert!(!FileKind::Local(1).dumps_as_socket());
    }
}
