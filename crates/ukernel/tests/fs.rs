//! File-descriptor and filesystem edge cases at the system-call level:
//! offset sharing, append semantics, table limits, pipe lifecycles and
//! terminal plumbing.

use m68vm::{assemble, IsaLevel};
use sysdefs::limits::NOFILE;
use sysdefs::{Credentials, Errno, Gid, Uid};
use ukernel::{KernelConfig, Sys, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn world() -> (World, usize) {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    (w, m)
}

/// Runs a native program and returns its exit status; asserts inside the
/// closure do the real checking.
fn run(w: &mut World, m: usize, f: impl FnOnce(&Sys) -> u32 + Send + 'static) -> u32 {
    let pid = w.spawn_native_proc(m, "t", None, Credentials::root(), Box::new(f));
    w.run_until_exit(m, pid, 2_000_000)
        .expect("native exits")
        .status
}

#[test]
fn dup_shares_the_file_offset() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        let fd = sys.creat("/tmp/x", 0o644).unwrap();
        sys.write(fd, b"abcdef").unwrap();
        sys.close(fd).unwrap();
        let fd = sys.open("/tmp/x", 0, 0).unwrap();
        let dup = sys.dup(fd).unwrap();
        assert_eq!(sys.read(fd, 2).unwrap(), b"ab");
        // The duplicate continues where the original stopped: one file
        // table entry, one offset — 4.2BSD semantics.
        assert_eq!(sys.read(dup, 2).unwrap(), b"cd");
        assert_eq!(sys.read(fd, 2).unwrap(), b"ef");
        sys.close(fd).unwrap();
        // Still readable through the survivor.
        sys.lseek(dup, 0, ukernel::Whence::Set).unwrap();
        assert_eq!(sys.read(dup, 1).unwrap(), b"a");
        sys.close(dup).unwrap();
        0
    });
    assert_eq!(status, 0);
}

#[test]
fn append_mode_always_writes_at_the_end() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        let fd = sys.creat("/tmp/log", 0o644).unwrap();
        sys.write(fd, b"one\n").unwrap();
        sys.close(fd).unwrap();
        let fd = sys
            .open(
                "/tmp/log",
                sysdefs::OpenFlags::WRONLY
                    .with(sysdefs::OpenFlags::APPEND)
                    .bits(),
                0,
            )
            .unwrap();
        // Seeking somewhere else does not defeat append.
        sys.lseek(fd, 0, ukernel::Whence::Set).unwrap();
        sys.write(fd, b"two\n").unwrap();
        sys.close(fd).unwrap();
        let fd = sys.open("/tmp/log", 0, 0).unwrap();
        assert_eq!(sys.read_all(fd).unwrap(), b"one\ntwo\n");
        sys.close(fd).unwrap();
        0
    });
    assert_eq!(status, 0);
}

#[test]
fn descriptor_table_is_fixed_size() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        let mut opened = Vec::new();
        loop {
            match sys.open("/dev/null", 2, 0) {
                Ok(fd) => opened.push(fd),
                Err(Errno::EMFILE) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        // No stdio attached, so the whole table was ours.
        assert_eq!(opened.len(), NOFILE);
        // Closing one slot frees exactly one descriptor, reused lowest-first.
        sys.close(opened[3]).unwrap();
        assert_eq!(sys.open("/dev/null", 2, 0).unwrap(), opened[3]);
        0
    });
    assert_eq!(status, 0);
}

#[test]
fn pipe_eof_after_writer_closes() {
    let (mut w, m) = world();
    let obj = assemble(
        r#"
        start:  move.l  #42, d0     | pipe()
                trap    #0
                move.l  d0, d5
                and.l   #0xffff, d5 | read end
                move.l  d0, d6
                lsr.l   #16, d6     | write end
                move.l  #4, d0      | write 3 bytes
                move.l  d6, d1
                move.l  #msg, d2
                move.l  #3, d3
                trap    #0
                move.l  #6, d0      | close the write end
                move.l  d6, d1
                trap    #0
                move.l  #3, d0      | read: gets the 3 bytes
                move.l  d5, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                move.l  d0, d7
                move.l  #3, d0      | read again: EOF (0)
                move.l  d5, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                add.l   d0, d7      | d7 = 3 + 0
                move.l  #1, d0
                move.l  d7, d1
                trap    #0
                .data
        msg:    .ascii  "abc"
                .bss
        buf:    .space  16
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/pipes", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/pipes", None, alice()).unwrap();
    let info = w.run_until_exit(m, pid, 100_000).expect("exits");
    assert_eq!(info.status, 3, "3 bytes then EOF");
}

#[test]
fn write_to_readonly_fd_rejected() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        sys.creat("/tmp/ro", 0o644)
            .map(|fd| sys.close(fd))
            .unwrap()
            .unwrap();
        let fd = sys.open("/tmp/ro", 0, 0).unwrap();
        match sys.write(fd, b"nope") {
            Err(Errno::EBADF) => 0,
            other => {
                let _ = other;
                1
            }
        }
    });
    assert_eq!(status, 0);
}

#[test]
fn lseek_whence_and_sparse_files() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        let fd = sys.creat("/tmp/sparse", 0o644).unwrap();
        sys.write(fd, b"head").unwrap();
        // Seek past EOF and write: the gap reads back as zeros.
        assert_eq!(sys.lseek(fd, 4, ukernel::Whence::Cur).unwrap(), 8);
        sys.write(fd, b"tail").unwrap();
        assert_eq!(sys.lseek(fd, 0, ukernel::Whence::End).unwrap(), 12);
        sys.close(fd).unwrap();
        let fd = sys.open("/tmp/sparse", 0, 0).unwrap();
        let all = sys.read_all(fd).unwrap();
        assert_eq!(all, b"head\0\0\0\0tail");
        // Negative result is rejected.
        assert_eq!(
            sys.lseek(fd, -100, ukernel::Whence::Set),
            Err(Errno::EINVAL)
        );
        sys.close(fd).unwrap();
        0
    });
    assert_eq!(status, 0);
}

#[test]
fn fork_shares_offsets_with_parent() {
    let (mut w, m) = world();
    // Parent opens a 4-byte file, forks; child reads 2, parent reads the
    // remaining 2 — because fork shares the file-table entry.
    let obj = assemble(
        r#"
        start:  move.l  #5, d0      | open("/tmp/shared", RDONLY)
                move.l  #path, d1
                move.l  #0, d2
                trap    #0
                move.l  d0, d7
                move.l  #2, d0      | fork
                trap    #0
                tst.l   d0
                beq     child
                move.l  #7, d0      | wait for the child
                move.l  #0, d1
                trap    #0
                move.l  #3, d0      | parent reads 2 bytes
                move.l  d7, d1
                move.l  #buf, d2
                move.l  #2, d3
                trap    #0
                move.b  buf, d4     | first byte the PARENT saw
                move.l  #1, d0
                move.l  d4, d1      | exit status = that byte
                trap    #0
        child:  move.l  #3, d0      | child reads 2 bytes first
                move.l  d7, d1
                move.l  #buf, d2
                move.l  #2, d3
                trap    #0
                move.l  #1, d0
                move.l  #0, d1
                trap    #0
                .data
        path:   .asciz  "/tmp/shared"
                .bss
        buf:    .space  8
        "#,
    )
    .unwrap();
    w.host_write_file(m, "/tmp/shared", b"ABCD").unwrap();
    w.install_program(m, "/bin/sharer", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/sharer", None, alice()).unwrap();
    let info = w.run_until_exit(m, pid, 200_000).expect("exits");
    assert_eq!(
        info.status, b'C' as u32,
        "child consumed AB, parent starts at C: shared offset"
    );
}

#[test]
fn ps_listing_names_processes() {
    let (mut w, m) = world();
    let obj = assemble(&pmig::workloads::cpu_hog_program(500)).unwrap();
    w.install_program(m, "/bin/hog", &obj).unwrap();
    let _pid = w.spawn_vm_proc(m, "/bin/hog", None, alice()).unwrap();
    w.run_slices(5);
    let listing = w.ps(m);
    assert!(listing.contains("hog"), "{listing}");
    assert!(listing.contains("init"), "{listing}");
    assert!(listing.contains("PID"), "{listing}");
}

#[test]
fn getwd_tracks_chdir_on_modified_kernel_only() {
    let (mut w, m) = world();
    let status = run(&mut w, m, |sys| {
        sys.mkdir("/u/deep", 0o755).unwrap();
        sys.chdir("/u/deep").unwrap();
        assert_eq!(sys.getwd().unwrap(), "/u/deep");
        sys.chdir("..").unwrap();
        assert_eq!(sys.getwd().unwrap(), "/u");
        sys.chdir(".").unwrap();
        assert_eq!(sys.getwd().unwrap(), "/u");
        0
    });
    assert_eq!(status, 0);

    // The unmodified kernel has no cwd string to report.
    let mut w2 = World::new(KernelConfig::original());
    let m2 = w2.add_machine("plain", IsaLevel::Isa1);
    let status = run(&mut w2, m2, |sys| match sys.getwd() {
        Err(Errno::EINVAL) => 0,
        other => {
            let _ = other;
            1
        }
    });
    assert_eq!(status, 0);
}
