//! End-to-end kernel tests: guest programs, blocking I/O, signals,
//! `SIGDUMP` and `rest_proc()` at the raw kernel level.

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Gid, Pid, Signal, Uid};
use ukernel::{KernelConfig, World};

/// The paper's §6.2 test program: "increments and prints three counters
/// (a register, a static variable allocated on the data segment and a
/// variable allocated on the stack). On each iteration it inputs a line
/// and appends it to an output file."
pub const TEST_PROGRAM: &str = r#"
        .equ    E_EXIT, 1
        .equ    E_READ, 3
        .equ    E_WRITE, 4
        .equ    E_CREAT, 8

start:  move.l  #E_CREAT, d0
        move.l  #outname, d1
        move.l  #420, d2            | 0644
        trap    #0
        move.l  d0, d7              | output fd
        move.l  #0, d6              | register counter
        move.l  #0, -(sp)           | stack counter

loop:   add.l   #1, d6              | register counter++
        add.l   #1, scount          | static counter++
        add.l   #1, (sp)            | stack counter++

        move.l  d6, d0
        jsr     digit
        move.b  d0, rdig
        move.l  scount, d0
        jsr     digit
        move.b  d0, sdig
        move.l  (sp), d0
        jsr     digit
        move.b  d0, kdig

        move.l  #E_WRITE, d0        | print the status line
        move.l  #1, d1
        move.l  #msg, d2
        move.l  #msglen, d3
        trap    #0

        move.l  #E_READ, d0         | prompt for a line
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #128, d3
        trap    #0
        bcs     done
        tst.l   d0
        beq     done                | EOF
        move.l  d0, d3              | append the line to the output file
        move.l  #E_WRITE, d0
        move.l  d7, d1
        move.l  #buf, d2
        trap    #0
        bra     loop

done:   move.l  #E_EXIT, d0
        move.l  #0, d1
        trap    #0

| digit: d0 = '0' + d0 % 10 (clobbers d1)
digit:  move.l  d0, d1
        divs.l  #10, d1
        muls.l  #10, d1
        sub.l   d1, d0
        add.l   #'0', d0
        rts

        .data
outname:.asciz  "/tmp/testout"
msg:    .ascii  "R"
rdig:   .byte   '0'
        .ascii  " S"
sdig:   .byte   '0'
        .ascii  " K"
kdig:   .byte   '0'
        .ascii  "\n> "
        .equ    msglen, 11
scount: .long   0
        .bss
buf:    .space  128
"#;

fn world_one_machine() -> (World, usize) {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    (w, brick)
}

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

#[test]
fn hello_world_guest() {
    let (mut w, m) = world_one_machine();
    let obj = assemble(
        r#"
        start:  move.l  #4, d0      | write
                move.l  #1, d1
                move.l  #msg, d2
                move.l  #14, d3
                trap    #0
                move.l  #1, d0      | exit
                move.l  #0, d1
                trap    #0
                .data
        msg:    .ascii  "hello, world!\n"
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/hello", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/hello", Some(tty), alice())
        .unwrap();
    let info = w.run_until_exit(m, pid, 10_000).expect("program exits");
    assert_eq!(info.status, 0);
    assert!(handle.output_text().contains("hello, world!"));
    assert!(info.cpu() > simtime::SimDuration::ZERO);
}

#[test]
fn test_program_reads_lines_and_appends() {
    let (mut w, m) = world_one_machine();
    let obj = assemble(TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    // Run until it blocks on input.
    w.run_slices(10_000);
    assert!(handle.output_text().contains("R1 S1 K1"));
    handle.type_input("first line\n");
    w.run_slices(10_000);
    assert!(handle.output_text().contains("R2 S2 K2"));
    handle.type_input("second line\n");
    w.run_slices(10_000);
    assert!(handle.output_text().contains("R3 S3 K3"));
    // EOF terminates it.
    handle.with(|t| t.close());
    let info = w.run_until_exit(m, pid, 10_000).expect("exit on EOF");
    assert_eq!(info.status, 0);
    // The appended lines are in the output file (cwd is /).
    let out = w.host_read_file(m, "/tmp/testout").unwrap();
    assert_eq!(out, b"first line\nsecond line\n");
}

#[test]
fn sigdump_writes_three_files_and_rest_proc_resumes() {
    let (mut w, m) = world_one_machine();
    let obj = assemble(TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    // Iterate twice, then dump at the third input prompt.
    w.run_slices(10_000);
    handle.type_input("one\n");
    w.run_slices(10_000);
    handle.type_input("two\n");
    w.run_slices(10_000);
    assert!(handle.output_text().contains("R3 S3 K3"));

    w.host_post_signal(m, pid, Signal::SIGDUMP);
    let info = w.run_until_exit(m, pid, 10_000).expect("dumped and died");
    assert_eq!(info.status, 128 + Signal::SIGDUMP.number());

    // The three files exist with their magic numbers.
    let names = dumpfmt::dump_file_names(pid);
    let aout_bytes = w.host_read_file(m, &names.a_out).expect("a.out dump");
    let files_bytes = w.host_read_file(m, &names.files).expect("files dump");
    let stack_bytes = w.host_read_file(m, &names.stack).expect("stack dump");
    assert!(aout::parse_executable(&aout_bytes).is_ok());
    let files = dumpfmt::FilesFile::decode(&files_bytes).expect("magic 0445");
    let stack = dumpfmt::StackFile::decode(&stack_bytes).expect("magic 0444");
    assert_eq!(files.host, "brick");
    assert_eq!(files.cwd, "/");
    assert_eq!(stack.cred.ruid, Uid(100));
    // fd 3 is the output file with its recorded path and offset.
    match &files.fds[3] {
        dumpfmt::FdRecord::File { path, offset, .. } => {
            assert_eq!(path, "/tmp/testout");
            assert_eq!(*offset, 8); // "one\ntwo\n"
        }
        other => panic!("fd3 should be the output file, got {other:?}"),
    }

    // Restart at the kernel level: a native process reopens stdio on a
    // *new* terminal and calls rest_proc(); counters must continue.
    let (tty2, handle2) = w.add_terminal(m);
    let aout_path = names.a_out.clone();
    let stack_path = names.stack.clone();
    let restarter = w.spawn_native_proc(
        m,
        "mini-restart",
        Some(tty2),
        Credentials::user(Uid(100), Gid(10)),
        Box::new(move |sys| {
            let e = sys.rest_proc(&aout_path, &stack_path, None, None);
            panic!("rest_proc failed: {e}");
        }),
    );
    w.run_slices(50_000);
    // The restored process re-issues its blocked read on the new tty.
    handle2.type_input("three\n");
    w.run_slices(50_000);
    let out2 = handle2.output_text();
    assert!(
        out2.contains("R4 S4 K4"),
        "restored counters must continue: {out2:?}"
    );
    handle2.with(|t| t.close());
    let info2 = w
        .run_until_exit(m, restarter, 50_000)
        .expect("restored exit");
    assert_eq!(info2.status, 0);
}

#[test]
fn fork_and_wait() {
    let (mut w, m) = world_one_machine();
    // Parent forks; child exits with status 7; parent waits and writes
    // the child's status digit.
    let obj = assemble(
        r#"
        start:  move.l  #2, d0      | fork
                trap    #0
                tst.l   d0
                beq     child
                move.l  #7, d0      | wait (status into stat)
                move.l  #stat, d1
                trap    #0
                move.l  stat, d2
                add.l   #'0', d2
                move.b  d2, dig
                move.l  #4, d0      | write the digit
                move.l  #1, d1
                move.l  #dig, d2
                move.l  #2, d3
                trap    #0
                move.l  #1, d0
                move.l  #0, d1
                trap    #0
        child:  move.l  #1, d0      | exit(7)
                move.l  #7, d1
                trap    #0
                .data
        stat:   .long   0
        dig:    .byte   '0'
                .byte   '\n'
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/forker", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/forker", Some(tty), alice())
        .unwrap();
    let info = w.run_until_exit(m, pid, 100_000).expect("parent exits");
    assert_eq!(info.status, 0);
    assert!(handle.output_text().contains('7'));
}

#[test]
fn native_process_full_syscall_tour() {
    let (mut w, m) = world_one_machine();
    let pid = w.spawn_native_proc(
        m,
        "tour",
        None,
        Credentials::root(),
        Box::new(|sys| {
            sys.mkdir("/u/alice", 0o755).unwrap();
            sys.chdir("/u/alice").unwrap();
            assert_eq!(sys.getwd().unwrap(), "/u/alice");
            let fd = sys.creat("notes.txt", 0o644).unwrap();
            sys.write(fd, b"line one\n").unwrap();
            sys.write(fd, b"line two\n").unwrap();
            sys.close(fd).unwrap();
            let fd = sys.open("notes.txt", 0, 0).unwrap();
            assert_eq!(sys.read_all(fd).unwrap(), b"line one\nline two\n");
            sys.lseek(fd, 5, ukernel::Whence::Set).unwrap();
            assert_eq!(sys.read(fd, 3).unwrap(), b"one");
            sys.close(fd).unwrap();
            sys.symlink("/u/alice/notes.txt", "/u/alice/ln").unwrap();
            assert_eq!(sys.readlink("/u/alice/ln").unwrap(), "/u/alice/notes.txt");
            assert_eq!(sys.stat_size("/u/alice/ln").unwrap(), 18);
            sys.unlink("ln").unwrap();
            assert!(sys.open("/u/alice/ln", 0, 0).is_err());
            assert_eq!(sys.gethostname().unwrap(), "brick");
            assert!(sys.getpid().unwrap() > Pid(1));
            0
        }),
    );
    let info = w.run_until_exit(m, pid, 100_000).expect("tour exits");
    assert_eq!(info.status, 0, "native tour must pass all asserts");
}

#[test]
fn nfs_read_write_across_machines() {
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("brick", IsaLevel::Isa1);
    let _b = w.add_machine("schooner", IsaLevel::Isa1);
    let pid = w.spawn_native_proc(
        m_id(a),
        "nfswriter",
        None,
        Credentials::root(),
        Box::new(|sys| {
            let fd = sys.creat("/n/schooner/tmp/shared", 0o644).unwrap();
            sys.write(fd, b"over the wire").unwrap();
            sys.close(fd).unwrap();
            let fd = sys.open("/n/schooner/tmp/shared", 0, 0).unwrap();
            let back = sys.read_all(fd).unwrap();
            assert_eq!(back, b"over the wire");
            sys.close(fd).unwrap();
            0
        }),
    );
    let info = w.run_until_exit(a, pid, 100_000).expect("exits");
    assert_eq!(info.status, 0);
    // The file is on schooner's local fs.
    let remote = w.host_read_file(1, "/tmp/shared").unwrap();
    assert_eq!(remote, b"over the wire");
    assert!(w.machine(a).stats.nfs_rpcs > 0, "must have used NFS");
}

fn m_id(x: usize) -> usize {
    x
}

#[test]
fn sockets_pipe_data_and_limitation_tag() {
    let (mut w, m) = world_one_machine();
    // A VM program creates a socket pair, writes through it, reads back.
    let obj = assemble(
        r#"
        start:  move.l  #97, d0     | socket (socketpair)
                trap    #0
                move.l  d0, d5      | low half: fd0
                and.l   #0xffff, d5
                move.l  d0, d6      | high half: fd1
                lsr.l   #16, d6
                move.l  #4, d0      | write "ping" on side 0
                move.l  d5, d1
                move.l  #ping, d2
                move.l  #4, d3
                trap    #0
                move.l  #3, d0      | read from side 1
                move.l  d6, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                move.l  #4, d0      | echo what arrived to stdout
                move.l  #1, d1
                move.l  #buf, d2
                move.l  #4, d3
                trap    #0
                move.l  #3, d0      | now block reading the empty reverse path
                move.l  d5, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                move.l  #1, d0
                move.l  #0, d1
                trap    #0
                .data
        ping:   .ascii  "ping"
                .bss
        buf:    .space  16
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/sock", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w.spawn_vm_proc(m, "/bin/sock", Some(tty), alice()).unwrap();
    w.run_slices(20_000);
    assert!(handle.output_text().contains("ping"));
    // Blocked on the empty direction now; dump it and check the socket
    // fds are tagged as sockets ("no extra information is kept").
    w.host_post_signal(m, pid, Signal::SIGDUMP);
    w.run_until_exit(m, pid, 20_000).expect("dumped");
    let names = dumpfmt::dump_file_names(pid);
    let files = dumpfmt::FilesFile::decode(&w.host_read_file(m, &names.files).unwrap()).unwrap();
    assert_eq!(files.fds[3], dumpfmt::FdRecord::Socket);
    assert_eq!(files.fds[4], dumpfmt::FdRecord::Socket);
}

#[test]
fn sigquit_core_dump_and_undump() {
    let (mut w, m) = world_one_machine();
    let obj = assemble(TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(10_000);
    handle.type_input("x\n");
    w.run_slices(10_000);
    w.host_post_signal(m, pid, Signal::SIGQUIT);
    let info = w.run_until_exit(m, pid, 10_000).expect("core dumped");
    assert_eq!(info.status, 128 + Signal::SIGQUIT.number());
    let core = w
        .host_read_file(m, &format!("/usr/tmp/core{:05}", pid.as_u32()))
        .expect("core file");
    let exe = w.host_read_file(m, "/bin/testprog").unwrap();
    // undump: exe + core -> runnable exe with static state preserved.
    let merged = aout::undump(&exe, &core).expect("undump combines");
    let exe2 = aout::parse_executable(&merged).unwrap();
    assert_eq!(exe2.header.a_bss, 0, "bss folded into data");
}

#[test]
fn kill_permissions_follow_the_paper() {
    let (mut w, m) = world_one_machine();
    let obj = assemble("start: bra start\n").unwrap();
    w.install_program(m, "/bin/spin", &obj).unwrap();
    let victim = w.spawn_vm_proc(m, "/bin/spin", None, alice()).unwrap();
    // A different non-root user may not dump it; the owner may.
    let mallory = w.spawn_native_proc(
        m,
        "mallory",
        None,
        Credentials::user(Uid(666), Gid(6)),
        Box::new(move |sys| match sys.kill(victim, Signal::SIGDUMP) {
            Err(sysdefs::Errno::EPERM) => 0,
            other => {
                let _ = other;
                1
            }
        }),
    );
    let info = w.run_until_exit(m, mallory, 50_000).expect("mallory done");
    assert_eq!(info.status, 0, "non-owner must get EPERM");
    let owner = w.spawn_native_proc(
        m,
        "owner",
        None,
        alice(),
        Box::new(move |sys| match sys.kill(victim, Signal::SIGDUMP) {
            Ok(()) => 0,
            Err(_) => 1,
        }),
    );
    let info = w.run_until_exit(m, owner, 50_000).expect("owner done");
    assert_eq!(info.status, 0, "owner may dump");
    let vinfo = w.run_until_exit(m, victim, 50_000).expect("victim dumped");
    assert_eq!(vinfo.status, 128 + Signal::SIGDUMP.number());
}

#[test]
fn isa_superset_rule_at_exec() {
    let mut w = World::new(KernelConfig::paper());
    let sun2 = w.add_machine("sun2", IsaLevel::Isa1);
    let sun3 = w.add_machine("sun3", IsaLevel::Isa2);
    let obj = assemble(
        r"
        start:  move.l  #0xff, d0
                extb2   d0
                move.l  #1, d0
                move.l  #0, d1
                trap    #0
        ",
    )
    .unwrap();
    assert_eq!(obj.required_isa, IsaLevel::Isa2);
    w.install_program(sun2, "/bin/only020", &obj).unwrap();
    w.install_program(sun3, "/bin/only020", &obj).unwrap();
    // Loads fine on the 68020 machine.
    let ok = w.spawn_vm_proc(sun3, "/bin/only020", None, alice());
    assert!(ok.is_ok());
    // Refused on the 68010 machine (exec format check).
    let err = w.spawn_vm_proc(sun2, "/bin/only020", None, alice());
    assert_eq!(err.unwrap_err(), sysdefs::Errno::ENOEXEC);
}

#[test]
fn unmodified_kernel_rejects_sigdump() {
    let mut w = World::new(KernelConfig::original());
    let m = w.add_machine("plain", IsaLevel::Isa1);
    let obj = assemble("start: bra start\n").unwrap();
    w.install_program(m, "/bin/spin", &obj).unwrap();
    let victim = w.spawn_vm_proc(m, "/bin/spin", None, alice()).unwrap();
    let killer = w.spawn_native_proc(
        m,
        "killer",
        None,
        Credentials::root(),
        Box::new(move |sys| match sys.kill(victim, Signal::SIGDUMP) {
            Err(sysdefs::Errno::EINVAL) => 0,
            _ => 1,
        }),
    );
    let info = w.run_until_exit(m, killer, 50_000).expect("killer done");
    assert_eq!(info.status, 0, "SIGDUMP must not exist on the old kernel");
}

#[test]
fn rsh_runs_remote_command_with_degraded_tty() {
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("brick", IsaLevel::Isa1);
    let _b = w.add_machine("schooner", IsaLevel::Isa1);
    let start = w.machine(a).now;
    let pid = w.spawn_native_proc(
        a,
        "rsh-test",
        None,
        Credentials::root(),
        Box::new(|sys| {
            sys.rsh("schooner", "remote-touch", |rsys| {
                // Runs on schooner: create a file there, locally.
                let fd = rsys.creat("/tmp/made-by-rsh", 0o644).unwrap();
                rsys.write(fd, b"hi").unwrap();
                rsys.close(fd).unwrap();
                assert_eq!(rsys.gethostname().unwrap(), "schooner");
                // Terminal modes cannot be changed through the pipe.
                let _ = rsys.stty(0, sysdefs::TtyFlags::raw_noecho());
                assert!(!rsys.gtty(0).unwrap().is_raw());
                0
            })
            .unwrap()
        }),
    );
    let info = w.run_until_exit(a, pid, 100_000).expect("rsh completes");
    assert_eq!(info.status, 0);
    assert_eq!(w.host_read_file(1, "/tmp/made-by-rsh").unwrap(), b"hi");
    // rsh costs seconds of real time.
    let elapsed = w.machine(a).now.since(start);
    assert!(
        elapsed > simtime::SimDuration::secs(5),
        "rsh must be expensive, took {elapsed}"
    );
}
