//! Signal-handling tests: VM handlers, `sigreturn`, EINTR semantics,
//! masks, stop/continue, and the dump/restore of dispositions that
//! `stackXXXXX` carries.

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Disposition, Gid, Pid, Signal, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn world() -> (World, usize) {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    (w, m)
}

/// A program that catches SIGUSR1 in a handler which increments a
/// counter, then prints the count each time its terminal read is
/// interrupted or satisfied.
const HANDLER_PROGRAM: &str = r#"
start:  move.l  #108, d0            | sigvec(SIGUSR1=30, handler)
        move.l  #30, d1
        move.l  #onusr1, d2
        trap    #0
loop:   move.l  #3, d0              | read the terminal (blocks)
        move.l  #0, d1
        move.l  #buf, d2
        move.l  #32, d3
        trap    #0
        bcs     poked               | EINTR: a signal interrupted us
        tst.l   d0
        beq     out                 | EOF
        bra     loop
poked:  move.l  hits, d4            | print '0'+hits
        add.l   #'0', d4
        move.b  d4, digit
        move.l  #4, d0
        move.l  #1, d1
        move.l  #digit, d2
        move.l  #2, d3
        trap    #0
        bra     loop
out:    move.l  #1, d0
        move.l  hits, d1            | exit status = handler hits
        trap    #0

| SIGUSR1 handler: count the hit, then sigreturn.
onusr1: add.l   #1, hits
        move.l  #139, d0            | sigreturn
        trap    #0
        | (not reached)

        .data
hits:   .long   0
digit:  .byte   '0'
        .byte   '\n'
        .bss
buf:    .space  32
"#;

#[test]
fn vm_handler_runs_and_sigreturn_resumes() {
    let (mut w, m) = world();
    let obj = assemble(HANDLER_PROGRAM).unwrap();
    w.install_program(m, "/bin/handler", &obj).unwrap();
    let (tty, console) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/handler", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000); // Blocked in read.

    // Poke it twice: each SIGUSR1 aborts the read with EINTR, runs the
    // handler, and the main loop prints the running count.
    w.host_post_signal(m, pid, Signal::SIGUSR1);
    w.run_slices(20_000);
    w.host_post_signal(m, pid, Signal::SIGUSR1);
    w.run_slices(20_000);
    let out = console.output_text();
    assert!(
        out.contains('1') && out.contains('2'),
        "handler counted: {out:?}"
    );

    // Ordinary input still works after handlers.
    console.type_input("hello\n");
    w.run_slices(20_000);
    console.with(|t| t.close());
    let info = w.run_until_exit(m, pid, 50_000).expect("clean exit");
    assert_eq!(info.status, 2, "two handler hits");
}

#[test]
fn handler_survives_migration_via_stack_file() {
    // The §4.3 stackXXXXX contents include "which functions are handling
    // those signals that are caught" — after rest_proc the handler
    // address must still work (the text segment is identical).
    let (mut w, m) = world();
    let obj = assemble(HANDLER_PROGRAM).unwrap();
    w.install_program(m, "/bin/handler", &obj).unwrap();
    let (tty, _console) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/handler", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    // One hit before migration.
    w.host_post_signal(m, pid, Signal::SIGUSR1);
    w.run_slices(20_000);

    let status = pmig::api::run_dumpproc(&mut w, m, pid, alice()).unwrap();
    assert_eq!(status, 0);
    // The dumped dispositions record the handler.
    let names = dumpfmt::dump_file_names(pid);
    let stack = dumpfmt::StackFile::decode(&w.host_read_file(m, &names.stack).unwrap()).unwrap();
    match stack.sigs.dispositions[(Signal::SIGUSR1.number() - 1) as usize] {
        Disposition::Handler(addr) => assert!(addr >= m68vm::MemoryLayout::TEXT_BASE),
        other => panic!("handler disposition not dumped: {other:?}"),
    }

    let (tty2, console2) = w.add_terminal(m);
    let new_pid = pmig::api::run_restart(
        &mut w,
        m,
        pmig::commands::RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart");
    w.run_slices(50_000);
    // Poke the restored process: the handler must still fire.
    w.host_post_signal(m, new_pid, Signal::SIGUSR1);
    w.run_slices(50_000);
    console2.with(|t| t.close());
    let info = w.run_until_exit(m, new_pid, 100_000).expect("exits");
    assert_eq!(info.status, 2, "one hit before + one after migration");
}

#[test]
fn ignored_signals_survive_migration() {
    // Disposition::Ignore is also part of the dumped signal state.
    let (mut w, m) = world();
    let obj = assemble(
        r#"
        start:  move.l  #108, d0    | sigvec(SIGTERM=15, ignore)
                move.l  #15, d1
                move.l  #1, d2
                trap    #0
        loop:   move.l  #3, d0      | block on the terminal
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #16, d3
                trap    #0
                bcs     loop
                tst.l   d0
                bne     loop
                move.l  #1, d0
                move.l  #0, d1
                trap    #0
                .bss
        buf:    .space  16
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/stoic", &obj).unwrap();
    let (tty, _c) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/stoic", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    // SIGTERM is shrugged off before migration...
    w.host_post_signal(m, pid, Signal::SIGTERM);
    w.run_slices(20_000);
    assert!(w.proc_ref(m, pid).is_some(), "ignored before migration");

    let status = pmig::api::run_dumpproc(&mut w, m, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let (tty2, console2) = w.add_terminal(m);
    let new_pid = pmig::api::run_restart(
        &mut w,
        m,
        pmig::commands::RestartArgs {
            pid,
            dump_host: None,
            demand: false,
        },
        Some(tty2),
        alice(),
    )
    .expect("restart");
    w.run_slices(50_000);
    // ...and after.
    w.host_post_signal(m, new_pid, Signal::SIGTERM);
    w.run_slices(50_000);
    assert!(
        w.proc_ref(m, new_pid).is_some(),
        "still ignored after migration"
    );
    console2.with(|t| t.close());
    let info = w.run_until_exit(m, new_pid, 100_000).expect("EOF exit");
    assert_eq!(info.status, 0);
}

#[test]
fn stop_and_continue() {
    let (mut w, m) = world();
    let obj = assemble(&pmig::workloads::cpu_hog_program(50)).unwrap();
    w.install_program(m, "/bin/hog", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/hog", None, alice()).unwrap();
    w.run_slices(10);
    w.host_post_signal(m, pid, Signal::SIGSTOP);
    w.run_slices(100);
    assert!(matches!(
        w.proc_ref(m, pid).unwrap().state,
        ukernel::ProcState::Stopped
    ));
    let clock_before = w.machine(m).now;
    w.run_slices(1_000);
    // A stopped machine with no other work is idle: no progress burned.
    assert_eq!(w.machine(m).now, clock_before);
    w.host_post_signal(m, pid, Signal::SIGCONT);
    let info = w.run_until_exit(m, pid, 50_000_000).expect("finishes");
    assert_eq!(info.status, 0);
}

#[test]
fn sigkill_cannot_be_caught() {
    let (mut w, m) = world();
    // A program that tries to catch and ignore SIGKILL.
    let obj = assemble(
        r#"
        start:  move.l  #108, d0    | sigvec(SIGKILL=9, ignore) -> EINVAL
                move.l  #9, d1
                move.l  #1, d2
                trap    #0
                bcs     good
                move.l  #1, d0      | exit(1): kernel let us!
                move.l  #1, d1
                trap    #0
        good:   bra     good        | spin until killed
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/immortal", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/immortal", None, alice()).unwrap();
    w.run_slices(50);
    w.host_post_signal(m, pid, Signal::SIGKILL);
    let info = w.run_until_exit(m, pid, 10_000).expect("killed");
    assert_eq!(info.status, 128 + Signal::SIGKILL.number());
}

#[test]
fn fault_signals_map_correctly() {
    let (mut w, m) = world();
    for (src, sig) in [
        ("start: move.l 0, d0\n", Signal::SIGSEGV),
        ("start: move.l #0, d1\n divs.l d1, d2\n", Signal::SIGFPE),
        (
            "start: move.l #1, 0x1000\n", // Text base: write to text.
            Signal::SIGBUS,
        ),
        ("start: extb2 d0\n", Signal::SIGILL), // ISA-2 op on ISA-1 CPU.
    ] {
        let obj = assemble(src).unwrap();
        // Force the object to load on the ISA-1 machine even when it
        // contains ISA-2 instructions, to exercise the runtime fault:
        // encode with the baseline machine id.
        let file =
            aout::encode_executable(&obj.text, &obj.data, obj.bss_len, obj.entry, IsaLevel::Isa1);
        w.host_write_file(m, "/bin/faulty", &file).unwrap();
        let pid = w.spawn_vm_proc(m, "/bin/faulty", None, alice()).unwrap();
        let info = w.run_until_exit(m, pid, 10_000).expect("faults and dies");
        assert_eq!(info.status, 128 + sig.number(), "wrong signal for {src:?}");
    }
}

#[test]
fn sigpipe_on_write_to_closed_pipe() {
    let (mut w, m) = world();
    let obj = assemble(
        r#"
        start:  move.l  #42, d0     | pipe()
                trap    #0
                move.l  d0, d5
                and.l   #0xffff, d5 | read end
                move.l  d0, d6
                lsr.l   #16, d6     | write end
                move.l  #6, d0      | close the read end
                move.l  d5, d1
                trap    #0
                move.l  #4, d0      | write -> EPIPE + SIGPIPE
                move.l  d6, d1
                move.l  #msg, d2
                move.l  #4, d3
                trap    #0
                bra     start       | not reached: SIGPIPE kills us
                .data
        msg:    .ascii  "data"
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/pipewriter", &obj).unwrap();
    let pid = w
        .spawn_vm_proc(m, "/bin/pipewriter", None, alice())
        .unwrap();
    let info = w.run_until_exit(m, pid, 10_000).expect("dies of SIGPIPE");
    assert_eq!(info.status, 128 + Signal::SIGPIPE.number());
}

#[test]
fn pending_signal_mask_survives_dump() {
    // The blocked mask travels in the stack file too.
    let (mut w, m) = world();
    let obj = assemble(HANDLER_PROGRAM).unwrap();
    w.install_program(m, "/bin/handler", &obj).unwrap();
    let (tty, _c) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/handler", Some(tty), alice())
        .unwrap();
    w.run_slices(20_000);
    // Block SIGUSR2 by hand (as a sigsetmask would).
    w.proc_mut(m, pid).unwrap().user.sigs.blocked = 1 << (Signal::SIGUSR2.number() - 1);
    let status = pmig::api::run_dumpproc(&mut w, m, pid, alice()).unwrap();
    assert_eq!(status, 0);
    let names = dumpfmt::dump_file_names(pid);
    let stack = dumpfmt::StackFile::decode(&w.host_read_file(m, &names.stack).unwrap()).unwrap();
    assert_eq!(
        stack.sigs.blocked,
        1 << (Signal::SIGUSR2.number() - 1),
        "blocked mask dumped"
    );
    let _ = Pid(0);
}

#[test]
fn alarm_posts_sigalrm_and_interrupts_sleep() {
    let (mut w, m) = world();
    // A program that arms a 2-second alarm with a handler, then sleeps
    // 10 seconds; the alarm handler lets it exit early with status 7.
    let obj = assemble(
        r#"
        start:  move.l  #108, d0    | sigvec(SIGALRM=14, handler)
                move.l  #14, d1
                move.l  #onalrm, d2
                trap    #0
                move.l  #27, d0     | alarm(2)
                move.l  #2, d1
                trap    #0
                move.l  #150, d0    | sleep(10s)
                move.l  #10000000, d1
                trap    #0
                bcs     early       | EINTR from the alarm
                move.l  #1, d0      | slept the whole way: status 1
                move.l  #1, d1
                trap    #0
        early:  tst.l   rang
                beq     bad
                move.l  #1, d0      | exit(7): handler ran + sleep cut
                move.l  #7, d1
                trap    #0
        bad:    move.l  #1, d0
                move.l  #2, d1
                trap    #0
        onalrm: move.l  #1, rang
                move.l  #139, d0    | sigreturn
                trap    #0
                .data
        rang:   .long   0
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/alarming", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/alarming", None, alice()).unwrap();
    let t0 = w.machine(m).now;
    let info = w.run_until_exit(m, pid, 1_000_000).expect("exits");
    assert_eq!(info.status, 7, "alarm handler ran and sleep was cut short");
    let elapsed = w.machine(m).now.since(t0);
    assert!(
        elapsed >= simtime::SimDuration::secs(2) && elapsed < simtime::SimDuration::secs(5),
        "woke at the alarm, not the sleep: {elapsed}"
    );
}

#[test]
fn sigsetmask_defers_delivery() {
    let (mut w, m) = world();
    let obj = assemble(
        r#"
        start:  move.l  #108, d0    | sigvec(SIGUSR1=30, handler)
                move.l  #30, d1
                move.l  #onusr, d2
                trap    #0
                move.l  #110, d0    | sigsetmask(block SIGUSR1)
                move.l  #0x20000000, d1
                trap    #0
                move.l  #150, d0    | sleep 3s while the signal arrives
                move.l  #3000000, d1
                trap    #0
                tst.l   hits
                bne     bad         | delivered while blocked!
                move.l  #110, d0    | unblock: delivery happens now
                move.l  #0, d1
                trap    #0
                move.l  #150, d0    | give the kernel a beat
                move.l  #1000, d1
                trap    #0
                move.l  #1, d0
                move.l  hits, d1    | exit status = hits (want 1)
                trap    #0
        bad:    move.l  #1, d0
                move.l  #9, d1
                trap    #0
        onusr:  add.l   #1, hits
                move.l  #139, d0
                trap    #0
                .data
        hits:   .long   0
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/masker", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/masker", None, alice()).unwrap();
    // Step until the process is parked in its first sleep, so the
    // signal demonstrably arrives while SIGUSR1 is blocked.
    for _ in 0..10_000 {
        if matches!(
            w.proc_ref(m, pid).map(|p| &p.state),
            Some(ukernel::ProcState::Sleeping { .. })
        ) {
            break;
        }
        w.run_slices(1);
    }
    assert!(matches!(
        w.proc_ref(m, pid).unwrap().state,
        ukernel::ProcState::Sleeping { .. }
    ));
    w.host_post_signal(m, pid, Signal::SIGUSR1);
    let info = w.run_until_exit(m, pid, 1_000_000).expect("exits");
    assert_eq!(info.status, 1, "delivered exactly once, after unblocking");
}
