//! Blocked→retry and signal-interruption coverage for the kernel entry
//! path, asserted through the `ktrace` ring.
//!
//! The dispatcher parks a blocked call (`pending_syscall`), and every
//! re-issue is a full dispatch attempt: trap charge, stats bump, an
//! `enter retry` trace record. A signal caught while parked aborts the
//! call with `EINTR` (4.2BSD semantics), which surfaces as a `complete
//! err=EINTR` record cut by `complete_pending`. These tests pin both
//! behaviours, and every assertion failure dumps the machine's trace
//! ring so the syscall tail is attached to the report.

use m68vm::{assemble, IsaLevel};
use sysdefs::{Credentials, Errno, Gid, Pid, Signal, Uid};
use ukernel::{KernelConfig, KtraceEvent, KtraceResult, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn world() -> (World, usize) {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    (w, m)
}

/// The dump-on-failure helper: asserts `cond`, attaching the machine's
/// ktrace ring to the panic message so a failing run reports the
/// syscall tail that led up to it.
#[track_caller]
fn assert_traced(w: &World, m: usize, cond: bool, msg: &str) {
    assert!(
        cond,
        "{msg}\n--- ktrace (machine {m}) ---\n{}",
        w.machine(m).ktrace.render(None)
    );
}

/// `run_until_exit` with the same trace dump when the process fails to
/// finish in budget.
fn exit_traced(w: &mut World, m: usize, pid: Pid, slices: u64) -> u32 {
    match w.run_until_exit(m, pid, slices) {
        Some(info) => info.status,
        None => panic!(
            "pid {pid} did not exit\n--- ktrace (machine {m}) ---\n{}",
            w.machine(m).ktrace.render(None)
        ),
    }
}

/// Counts ring records for syscall `name` matching `pred`.
fn count_records(
    w: &World,
    m: usize,
    name: &str,
    pred: impl Fn(&KtraceEvent) -> bool,
) -> usize {
    w.machine(m)
        .ktrace
        .records()
        .filter(|r| r.name == name && pred(&r.ev))
        .count()
}

#[test]
fn parked_read_charges_trap_per_dispatch_attempt() {
    let (mut w, m) = world();
    // read(0) into a buffer, then exit(bytes-read).
    let obj = assemble(
        r#"
        start:  move.l  #3, d0      | read(0, buf, 8): parks on the tty
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #8, d3
                trap    #0
                move.l  d0, d1      | exit(bytes read)
                move.l  #1, d0
                trap    #0
                .bss
        buf:    .space  8
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/reader", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w.spawn_vm_proc(m, "/bin/reader", Some(tty), alice()).unwrap();
    w.run_slices(50_000);

    // Parked: one dispatch attempt so far, ending blocked.
    let first_try = count_records(&w, m, "read", |ev| {
        matches!(ev, KtraceEvent::Enter { retry: false })
    });
    assert_traced(&w, m, first_try == 1, "expected exactly one initial read attempt");
    let blocked_charged = w
        .machine(m)
        .ktrace
        .records()
        .find_map(|r| match r.ev {
            KtraceEvent::Exit {
                result: KtraceResult::Blocked,
                charged_us,
            } if r.name == "read" => Some(charged_us),
            _ => None,
        });
    assert_traced(
        &w,
        m,
        blocked_charged.is_some_and(|us| us > 0),
        "the blocked attempt must still charge (trap cost at minimum)",
    );
    let agg_parked = w.machine(m).stats.per_syscall["read"];
    assert_eq!(agg_parked.count, 1, "one attempt folded into the aggregate");
    let syscalls_parked = w.machine(m).stats.syscalls;

    // Wake it: the retry is a second full dispatch attempt.
    handle.type_input("hi\n");
    let status = exit_traced(&mut w, m, pid, 100_000);
    assert_eq!(status, 3, "read returns the 3 typed bytes");

    let retries = count_records(&w, m, "read", |ev| {
        matches!(ev, KtraceEvent::Enter { retry: true })
    });
    assert_traced(&w, m, retries == 1, "the wakeup re-issues the parked read once");
    let agg = w.machine(m).stats.per_syscall["read"];
    assert_eq!(agg.count, 2, "blocked attempt + retry each charged");
    assert!(agg.total_us >= 2 * blocked_charged.unwrap().min(1));
    // Per-attempt accounting in the machine counter too: the retry and
    // the final exit are the only dispatches after the park.
    assert_eq!(w.machine(m).stats.syscalls, syscalls_parked + 2);
    // The retry completes the parked call: exactly one ok completion.
    let completions = count_records(&w, m, "read", |ev| {
        matches!(
            ev,
            KtraceEvent::Complete {
                result: KtraceResult::Ok(3)
            }
        )
    });
    assert_traced(&w, m, completions == 1, "parked read completes with ok=3");
}

#[test]
fn parked_wait_is_reissued_after_child_exit() {
    let (mut w, m) = world();
    // Parent forks and waits; the child sleeps first so the wait has to
    // park and be re-dispatched when the child finally exits.
    let obj = assemble(
        r#"
        start:  move.l  #2, d0      | fork
                trap    #0
                tst.l   d0
                beq     child
                move.l  #7, d0      | wait: parks (child is asleep)
                move.l  #0, d1
                trap    #0
                move.l  #1, d0      | exit 0
                move.l  #0, d1
                trap    #0
        child:  move.l  #150, d0    | sleep 5000us
                move.l  #5000, d1
                trap    #0
                move.l  #1, d0      | exit 9
                move.l  #9, d1
                trap    #0
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/waiter", &obj).unwrap();
    let pid = w.spawn_vm_proc(m, "/bin/waiter", None, alice()).unwrap();
    let status = exit_traced(&mut w, m, pid, 500_000);
    assert_eq!(status, 0);

    let first = count_records(&w, m, "wait", |ev| {
        matches!(ev, KtraceEvent::Enter { retry: false })
    });
    let retries = count_records(&w, m, "wait", |ev| {
        matches!(ev, KtraceEvent::Enter { retry: true })
    });
    assert_traced(&w, m, first == 1, "one initial wait attempt");
    assert_traced(&w, m, retries >= 1, "child exit re-issues the parked wait");
    let agg = w.machine(m).stats.per_syscall["wait"];
    assert_eq!(
        agg.count as usize,
        first + retries,
        "every dispatch attempt of wait lands in the aggregate"
    );
    // The child's sleep parked too and completed on timer expiry,
    // outside dispatch.
    let sleep_done = count_records(&w, m, "sleep", |ev| {
        matches!(
            ev,
            KtraceEvent::Complete {
                result: KtraceResult::Ok(_)
            }
        )
    });
    assert_traced(&w, m, sleep_done == 1, "sleep completes via its timer");
}

#[test]
fn signal_while_parked_surfaces_eintr() {
    let (mut w, m) = world();
    // Install a SIGINT handler, then park on a tty read. The signal
    // must abort the read with EINTR (not restart it), run the handler,
    // and return into the mainline with the error visible.
    let obj = assemble(
        r#"
        start:  move.l  #108, d0    | sigvec(SIGINT, handler)
                move.l  #2, d1
                move.l  #handler, d2
                trap    #0
                move.l  #3, d0      | read(0, buf, 8): parks
                move.l  #0, d1
                move.l  #buf, d2
                move.l  #8, d3
                trap    #0
                move.l  d6, d1      | exit(errno the handler saw in d0)
                move.l  #1, d0
                trap    #0
        handler:
                move.l  d0, d6      | the frame restores pc/sr only, so
                move.l  #139, d0    | stash the EINTR before sigreturn
                trap    #0
                .bss
        buf:    .space  8
        "#,
    )
    .unwrap();
    w.install_program(m, "/bin/victim", &obj).unwrap();
    let (tty, _handle) = w.add_terminal(m);
    let victim = w.spawn_vm_proc(m, "/bin/victim", Some(tty), alice()).unwrap();
    w.run_slices(50_000);
    assert_traced(
        &w,
        m,
        count_records(&w, m, "read", |ev| {
            matches!(
                ev,
                KtraceEvent::Exit {
                    result: KtraceResult::Blocked,
                    ..
                }
            )
        }) == 1,
        "victim parked on the read",
    );

    // Another process interrupts it.
    let killer = w.spawn_native_proc(
        m,
        "killer",
        None,
        Credentials::root(),
        Box::new(move |sys| match sys.kill(victim, Signal::SIGINT) {
            Ok(()) => 0,
            Err(e) => e.as_u16() as u32,
        }),
    );
    assert_eq!(exit_traced(&mut w, m, killer, 100_000), 0, "kill succeeds");

    let status = exit_traced(&mut w, m, victim, 100_000);
    assert_eq!(
        status,
        Errno::EINTR.as_u16() as u32,
        "the aborted read hands EINTR back to the program"
    );
    // The abort happened outside dispatch, cut by complete_pending.
    let eintr = count_records(&w, m, "read", |ev| {
        matches!(
            ev,
            KtraceEvent::Complete {
                result: KtraceResult::Err(Errno::EINTR)
            }
        )
    });
    assert_traced(&w, m, eintr == 1, "signal abort cuts a complete err=EINTR record");
    // No retry: an EINTR-aborted call is not re-issued.
    let retries = count_records(&w, m, "read", |ev| {
        matches!(ev, KtraceEvent::Enter { retry: true })
    });
    assert_traced(&w, m, retries == 0, "aborted call must not be retried");
}
