//! Fixture snapshot builder: folds every World/Machine/MachineStats
//! field *except* the two seeded gaps (`World::cache_idx`,
//! `Machine::lazy_index`). The stats fields are folded only through
//! the `fold_stats` helper — transitive coverage is a trap the rule
//! must not fall into.

fn snapshot_world(w: &World) -> String {
    let mut out = String::new();
    for m in &w.machines {
        out.push_str(&format!("machine {} now={}\n", m.id, m.now));
        out.push_str(&fold_stats(&m.stats));
    }
    out.push_str(&format!(
        "ether={} finished={:?}\n",
        w.ether.frames, w.finished
    ));
    out
}

/// Coverage through a helper counts: the builder reaches this by name.
fn fold_stats(s: &MachineStats) -> String {
    format!("sys={} ctx={}\n", s.syscalls, s.ctx_switches)
}
