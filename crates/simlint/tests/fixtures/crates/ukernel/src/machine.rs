//! Fixture Machine: a seeded wake-poke violation (`drop_writer`), a
//! seeded snapshot-coverage gap (`lazy_index`), and the traps — a
//! block-direction transition and a `#[cfg(test)]` module — that must
//! not be flagged.

pub struct Machine {
    pub id: usize,
    pub now: SimTime,
    pub stats: MachineStats,
    // Seeded violation: never folded, not allowlisted.
    pub lazy_index: Vec<usize>,
}

pub struct MachineStats {
    pub syscalls: u64,
    pub ctx_switches: u64,
}

impl Machine {
    /// Seeded violation: flips a pipe's endpoint count — the EOF wake
    /// condition for blocked readers — without reaching any poke.
    pub fn drop_writer(&mut self, q: usize) {
        if let Some(buf) = self.pipes[q].as_mut() {
            buf.writers -= 1;
        }
    }

    /// Trap: a block-direction transition is a wait *registration*,
    /// not a wake condition; no poke obligation.
    pub fn park(&mut self, p: &mut Proc) {
        p.state = ProcState::Sleeping;
    }
}

#[cfg(test)]
mod tests {
    // Trap: unit tests mutate kernel state directly by design and
    // never run under the event scheduler's run loops.
    #[test]
    fn poke_free_mutation_is_fine_here() {
        let mut m = Machine::default();
        m.pipes[0].as_mut().unwrap().writers = 0;
        p.state = ProcState::Runnable;
        p.sig_pending |= 1;
    }
}
