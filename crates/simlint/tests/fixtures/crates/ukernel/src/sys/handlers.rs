//! Fixture syscall handlers: a seeded coupling violation (`sys_peek`),
//! a seeded wake-poke violation (`sys_revive`), and the traps — own-mid
//! access, the Machine-level pid accessor, and a properly poked twin.

/// Seeded violation (coupling): holds one machine's context but reads
/// a peer machine's state directly instead of going through World.
pub fn sys_peek(cx: &mut SysCtx<'_>, dst: usize) -> SyscallResult {
    let n = cx.w.machine(dst).stats.syscalls;
    done(Ok(SysRetval::ok(n as i64)))
}

/// Trap: indexing by the context's own `mid` is not coupling, and the
/// single-argument `proc_mut(pid)` is the Machine-level pid-indexed
/// accessor — same-machine by construction.
pub fn sys_self(cx: &mut SysCtx<'_>) -> SyscallResult {
    let m = cx.w.machine(cx.mid);
    let p = m.proc_mut(cx.pid);
    done(Ok(SysRetval::ok(p.pid.0 as i64)))
}

/// Seeded violation (wake-poke): makes a process runnable but never
/// tells the scheduler — under the event world this wakeup stalls.
pub fn sys_revive(cx: &mut SysCtx<'_>, pid: u32) -> SyscallResult {
    cx.machine_mut().make_runnable(Pid(pid));
    done(Ok(SysRetval::ok(0)))
}

/// Trap: the same marker, discharged through the poke hook.
pub fn sys_revive_poked(cx: &mut SysCtx<'_>, pid: u32) -> SyscallResult {
    cx.machine_mut().make_runnable(Pid(pid));
    cx.w.poke_proc(cx.mid, Pid(pid));
    done(Ok(SysRetval::ok(0)))
}

/// Seeded violation (cross-shard): mutates a foreign machine's
/// filesystem directly instead of routing through World::cross_call.
pub fn sys_smash(cx: &mut SysCtx<'_>, dst: usize) -> SyscallResult {
    cx.w.fs_mut(dst).truncate(ino)?;
    done(Ok(SysRetval::ok(0)))
}

/// Trap: the same mutable accessor aimed at the handler's own machine
/// is plain local work, not a seam.
pub fn sys_sync_local(cx: &mut SysCtx<'_>) -> SyscallResult {
    cx.w.fs_mut(cx.mid).truncate(ino)?;
    done(Ok(SysRetval::ok(0)))
}
