//! Fixture World: one poke hook, one mechanism function, one seeded
//! snapshot-coverage gap (`cache_idx`).

pub struct World {
    pub ether: EtherStats,
    pub finished: BTreeMap<(usize, u32), ExitInfo>,
    // Seeded violation: a "cache" nobody folded or declared.
    pub cache_idx: BTreeSet<usize>,
}

impl World {
    /// The poke hook itself: the `wake_queue` insert IS the poke, so
    /// reaching this function discharges a writer's obligation.
    pub fn poke_proc(&mut self, mid: usize, _pid: Pid) {
        self.wake_queue.insert(mid);
    }

    /// Wake machinery (structurally exempt): consumes pokes and calls
    /// the leaf setters — its markers are its job, not a violation.
    pub fn wake_one(&mut self, server: usize, pid: Pid) {
        self.machines[server].make_runnable(pid);
        self.finished.remove(&(server, pid.0));
    }
}
