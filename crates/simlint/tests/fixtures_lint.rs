//! End-to-end rule tests over the seeded fixture workspace in
//! `tests/fixtures/` (see its README): each dataflow rule must find
//! exactly the planted true positives and none of the traps, the
//! per-rule allowlist must scope the way `simlint.toml` promises, and
//! the checked-in coupling inventory must match a fresh render.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use simlint::rules::{coupling, crossshard, snapcov, wakepoke};
use simlint::workspace::{load_workspace, SourceFile};
use simlint::Config;

fn fixture_files() -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    load_workspace(&root).expect("fixture workspace loads")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn subjects(diags: &[simlint::Diagnostic]) -> BTreeSet<String> {
    diags.iter().map(|d| d.subject.clone()).collect()
}

#[test]
fn wake_poke_finds_the_seeded_violations_and_skips_the_traps() {
    let d = wakepoke::check(&fixture_files());
    assert_eq!(
        subjects(&d),
        BTreeSet::from(["drop_writer".to_string(), "sys_revive".to_string()]),
        "traps tripped or plants missed: {d:?}"
    );
}

#[test]
fn snapshot_coverage_finds_the_two_unfolded_fields() {
    let d = snapcov::check(&fixture_files());
    assert_eq!(
        subjects(&d),
        BTreeSet::from([
            "Machine::lazy_index".to_string(),
            "World::cache_idx".to_string(),
        ]),
        "transitive helper coverage failed or plants missed: {d:?}"
    );
}

#[test]
fn cross_shard_flags_only_the_foreign_mutation() {
    let d = crossshard::check(&fixture_files());
    assert_eq!(
        subjects(&d),
        BTreeSet::from(["sys_smash".to_string()]),
        "own-mid trap or seam-layer exemption failed: {d:?}"
    );
}

#[test]
fn coupling_lint_flags_only_the_foreign_index() {
    let d = coupling::check(&fixture_files());
    assert_eq!(
        subjects(&d),
        BTreeSet::from(["sys_peek".to_string()]),
        "own-mid or pid-accessor trap tripped: {d:?}"
    );
}

#[test]
fn coupling_report_inventories_the_world_layer_too() {
    let rows = coupling::report(&fixture_files());
    let got: Vec<(&str, &str, &str)> = rows
        .iter()
        .map(|r| (r.symbol.as_str(), r.kind, r.detail.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("sys_peek", "foreign-index", "machine(dst)"),
            ("poke_proc", "shared-state", "wake_queue"),
            ("wake_one", "foreign-index", "machines(server)"),
            ("wake_one", "shared-state", "finished"),
        ],
        "{rows:?}"
    );
}

/// The per-rule allowlist scoping contract: an entry names its rule,
/// its file, and one subject — it silences exactly that finding and
/// nothing else, and an entry matching nothing is reported stale.
#[test]
fn allowlist_entries_are_scoped_to_rule_file_and_subject() {
    let mut diags = snapcov::check(&fixture_files());
    diags.extend(wakepoke::check(&fixture_files()));
    let cfg = Config::parse(
        "[[allow]]\n\
         rule = \"snapshot-coverage\"\n\
         path = \"crates/ukernel/src/world/mod.rs\"\n\
         ident = \"World::cache_idx\"\n\
         reason = \"fixture: declared pure-cache\"\n\
         [[allow]]\n\
         rule = \"wake-poke\"\n\
         path = \"crates/ukernel/src/world.rs\"\n\
         ident = \"drop_writer\"\n\
         reason = \"fixture: wrong file on purpose — must be stale\"\n",
    )
    .expect("valid allowlist");
    let f = cfg.apply(diags);
    assert_eq!(
        subjects(&f.silenced),
        BTreeSet::from(["World::cache_idx".to_string()]),
        "entry silenced more than its scoped subject"
    );
    assert_eq!(
        subjects(&f.kept),
        BTreeSet::from([
            "Machine::lazy_index".to_string(),
            "drop_writer".to_string(),
            "sys_revive".to_string(),
        ])
    );
    // drop_writer lives in machine.rs, not world.rs: the mis-scoped
    // entry silences nothing and must surface as stale.
    assert_eq!(f.stale.len(), 1, "{:?}", f.stale);
    assert_eq!(f.stale[0].ident.as_deref(), Some("drop_writer"));
}

/// The checked-in inventory is part of the contract: `ci.sh` diffs it,
/// and this test catches staleness from `cargo test` alone.
#[test]
fn checked_in_coupling_inventory_is_fresh() {
    let root = workspace_root();
    let fresh = simlint::coupling_report(&root).expect("report renders");
    let pinned = std::fs::read_to_string(root.join("simlint.coupling.json"))
        .expect("simlint.coupling.json is checked in");
    assert_eq!(
        fresh, pinned,
        "simlint.coupling.json is stale — regenerate with:\n  \
         cargo run -p simlint --release -- --coupling-report > simlint.coupling.json"
    );
}
