//! Rule `wake-poke`: every wake-condition mutation reaches a poke.
//!
//! The event scheduler (PR 5) replaced the reference scan's per-slice
//! sweep of every blocked process with wait indexes and a poke
//! discipline. Its correctness rests on one invariant the compiler
//! cannot see: **any state change that can flip a blocked process's
//! wake condition true must be followed by a poke**, or the wakeup the
//! scan would have delivered stalls forever. Over-poking is harmless (a
//! false condition evaluates to no action); a *missed* poke is the only
//! hazard — exactly the bug class `tests/wake_parity.rs` exists to
//! catch dynamically, checked statically here.
//!
//! The rule computes, per kernel function, the set of wake-condition
//! *writer markers* in its body:
//!
//! * `x.state = ... Runnable/Zombie ...` — a wake-direction `ProcState`
//!   transition (block-direction writes like `Sleeping`/`PipeWait` are
//!   registrations, not wake conditions);
//! * pipe/socket buffer mutations — `.data` through a mutating method,
//!   and `readers`/`writers` endpoint-count writes (EOF/EPIPE flips);
//! * `.sig_pending` writes and calls to the leaf setters that perform
//!   them for callers: `post_signal`, `make_runnable`, `nudge`,
//!   `push_timer` (arming a timer the ready index must learn about).
//!
//! Every function with a marker must **reach a poke sink** through the
//! kernel's call graph (the same may-reach name fixpoint as the
//! charging rule): one of the `World` poke hooks, or a direct insert
//! into `wake_queue`/`wait_pending`. The wake machinery itself — the
//! evaluators that *consume* pokes and the `Machine`/`Proc` leaf
//! setters that cannot see the `World` — is structurally exempt, like
//! the determinism rule's hostclock quarantine: the exemption is part
//! of the rule, not the allowlist, because moving those functions
//! does not change what they are.
//!
//! In-source `#[cfg(test)]` modules are skipped: unit tests mutate
//! kernel state directly by design and never run under the event
//! scheduler's run loops.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::Tok;
use crate::visitor::{calls_in, field_writes, fn_items, in_ranges, test_mod_ranges, FnItem};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "wake-poke";

/// Leaf setters whose *callers* carry the poke obligation.
const MARKER_CALLS: [&str; 4] = ["post_signal", "make_runnable", "nudge", "push_timer"];

/// Buffer/endpoint fields whose writes flip pipe wake conditions.
const BUFFER_FIELDS: [&str; 3] = ["data", "readers", "writers"];

/// The `World` poke hooks: calling one (transitively) discharges the
/// obligation.
const SINK_CALLS: [&str; 5] = [
    "poke_proc",
    "poke_queue",
    "poke_tty",
    "poke_remote_done",
    "enter_run",
];

/// Fields whose insert/extend IS the poke (the hooks' own bodies).
const SINK_FIELDS: [&str; 2] = ["wake_queue", "wait_pending"];

/// The wake machinery: evaluators that consume pokes (calling the leaf
/// setters is their job) and the `Machine`/`Proc` leaf setters
/// themselves, which cannot reach the `World` to poke. Structural, not
/// allowlisted — see the module docs.
const MECHANISM: [(&str, &str); 9] = [
    ("crates/ukernel/src/machine.rs", "make_runnable"),
    ("crates/ukernel/src/machine.rs", "nudge"),
    ("crates/ukernel/src/machine.rs", "push_timer"),
    ("crates/ukernel/src/proc.rs", "post_signal"),
    ("crates/ukernel/src/proc.rs", "take_signal"),
    ("crates/ukernel/src/world/mod.rs", "wake_one"),
    ("crates/ukernel/src/world/mod.rs", "fire_alarm"),
    ("crates/ukernel/src/world/mod.rs", "wake_scan"),
    ("crates/ukernel/src/world/mod.rs", "service_machine"),
];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    struct FnInfo {
        file: String,
        line: u32,
        name: String,
        calls: BTreeSet<String>,
        markers: Vec<String>,
        direct_sink: bool,
        mechanism: bool,
    }

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src {
            continue;
        }
        let test_ranges = test_mod_ranges(&f.toks);
        for item in fn_items(&f.toks) {
            if in_ranges(item.body_start, &test_ranges) {
                continue;
            }
            let calls: BTreeSet<String> = calls_in(&f.toks, item.body_start, item.body_end)
                .into_iter()
                .map(|c| c.name)
                .collect();
            let markers = markers_in(&f.toks, &item, &calls);
            let direct_sink = field_writes(&f.toks, item.body_start, item.body_end)
                .iter()
                .any(|w| {
                    SINK_FIELDS.contains(&w.field.as_str())
                        && matches!(w.via_method.as_deref(), Some("insert" | "extend"))
                });
            let mechanism = MECHANISM
                .iter()
                .any(|&(path, name)| f.rel_path.ends_with(path) && item.name == name);
            by_name.entry(item.name.clone()).or_default().push(fns.len());
            fns.push(FnInfo {
                file: f.rel_path.clone(),
                line: item.line,
                name: item.name.clone(),
                calls,
                markers,
                direct_sink,
                mechanism,
            });
        }
    }

    // May-reach fixpoint: a function pokes if its body hits a sink
    // directly or calls (by name) any kernel function that pokes.
    let mut pokes: Vec<bool> = fns
        .iter()
        .map(|f| f.direct_sink || f.calls.iter().any(|c| SINK_CALLS.contains(&c.as_str())))
        .collect();
    loop {
        let mut changed = false;
        for (i, info) in fns.iter().enumerate() {
            if pokes[i] {
                continue;
            }
            let reaches = info.calls.iter().any(|callee| {
                by_name
                    .get(callee)
                    .is_some_and(|idxs| idxs.iter().any(|&j| pokes[j]))
            });
            if reaches {
                pokes[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (i, info) in fns.iter().enumerate() {
        if info.markers.is_empty() || info.mechanism || pokes[i] {
            continue;
        }
        out.push(Diagnostic {
            file: info.file.clone(),
            line: info.line,
            rule: RULE,
            subject: info.name.clone(),
            message: format!(
                "{} mutates a wake condition ({}) but never reaches a poke \
                 (poke_proc/poke_queue/poke_tty/poke_remote_done or a \
                 wake_queue/wait_pending insert): under the event scheduler \
                 the wakeup this mutation enables would stall",
                info.name,
                info.markers.join(", ")
            ),
        });
    }
    out.sort();
    out
}

/// The wake-condition writer markers in one function's body.
fn markers_in(toks: &[Tok], item: &FnItem, calls: &BTreeSet<String>) -> Vec<String> {
    let mut markers = Vec::new();
    for w in field_writes(toks, item.body_start, item.body_end) {
        let hit = match w.field.as_str() {
            // Wake-direction ProcState transitions only: the RHS (up to
            // the `;`) names Runnable or Zombie. Block-direction writes
            // are registrations and carry no poke obligation.
            "state" if w.via_method.is_none() => {
                let rhs_end = (w.idx + 2..toks.len().min(w.idx + 40))
                    .find(|&k| toks[k].is_punct(";"))
                    .unwrap_or(toks.len().min(w.idx + 40));
                toks[w.idx + 2..rhs_end]
                    .iter()
                    .any(|t| t.is_ident("Runnable") || t.is_ident("Zombie"))
            }
            f if BUFFER_FIELDS.contains(&f) => true,
            "sig_pending" => true,
            _ => false,
        };
        if hit {
            markers.push(format!("{}:{}", w.field, w.line));
        }
    }
    for c in calls {
        if MARKER_CALLS.contains(&c.as_str()) {
            markers.push(format!("{c}()"));
        }
    }
    markers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn unpoked_wake_transition_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_resume(cx: &mut SysCtx<'_>, pid: u32) -> SyscallResult {
                 if let Some(t) = cx.w.proc_mut(cx.mid, Pid(pid)) {
                     t.state = ProcState::Runnable;
                 }
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "sys_resume");
        assert!(d[0].message.contains("state:"), "{}", d[0].message);
    }

    #[test]
    fn direct_poke_discharges_the_obligation() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_resume(cx: &mut SysCtx<'_>, pid: u32) -> SyscallResult {
                 if let Some(t) = cx.w.proc_mut(cx.mid, Pid(pid)) {
                     t.state = ProcState::Runnable;
                     t.post_signal(sig);
                 }
                 cx.w.poke_proc(cx.mid, Pid(pid));
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn transitive_poke_through_a_helper_passes() {
        let helper = file_at(
            "crates/ukernel/src/world.rs",
            "impl World { pub fn finish(&mut self, mid: usize, pid: Pid) {
                 self.wake_queue.insert(mid);
             } }",
        );
        let writer = file_at(
            "crates/ukernel/src/sys/exec.rs",
            "fn exec_common(cx: &mut SysCtx<'_>) {
                 p.state = ProcState::Runnable;
                 m.make_runnable(pid);
                 cx.w.finish(cx.mid, cx.pid);
             }",
        );
        assert!(check(&[helper, writer]).is_empty());
    }

    #[test]
    fn block_direction_transitions_are_not_writers() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "fn read_queue(cx: &mut SysCtx<'_>) {
                 p.state = ProcState::PipeWait;
                 m.wait_on_queue(q, pid);
             }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn buffer_mutation_without_poke_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "fn write_queue(cx: &mut SysCtx<'_>, bytes: &[u8]) {
                 buf.data.extend(bytes.iter().copied());
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "write_queue");
    }

    #[test]
    fn timer_arming_without_poke_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_alarm(cx: &mut SysCtx<'_>) -> SyscallResult {
                 cx.machine_mut().push_timer(pid, t);
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("push_timer"), "{}", d[0].message);
    }

    #[test]
    fn mechanism_and_test_modules_are_exempt() {
        let world = file_at(
            "crates/ukernel/src/world/mod.rs",
            "impl World { fn wake_one(&mut self, mid: usize, pid: Pid) {
                 self.machines[mid].make_runnable(pid);
             } }",
        );
        let leaf = file_at(
            "crates/ukernel/src/proc.rs",
            "impl Proc { pub fn post_signal(&mut self, sig: Signal) {
                 self.sig_pending |= 1 << (sig.number() - 1);
             } }
             #[cfg(test)]
             mod tests {
                 fn t() { p.state = ProcState::Runnable; p.post_signal(s); }
             }",
        );
        assert!(check(&[world, leaf]).is_empty());
    }

    #[test]
    fn non_kernel_crates_are_out_of_scope() {
        let f = file_at(
            "crates/pmig/src/commands.rs",
            "pub fn probe(s: &dyn Sys) { target.state = ProcState::Runnable; }",
        );
        assert!(check(&[f]).is_empty());
    }
}
