//! Rule `determinism`: no iteration-order or wall-clock nondeterminism
//! in the simulation.
//!
//! Two sub-checks share the rule id:
//!
//! * **Unordered containers.** `HashMap`/`HashSet` iterate in a
//!   per-process-random order (`RandomState`), so any simulation state
//!   held in one is a determinism landmine — exactly the
//!   `Machine::warm_paths` bug this rule was written against. Forbidden
//!   in every crate except `bench` (whose host-side measurement tables
//!   never feed back into simulated state).
//! * **Ambient host time and randomness.** `std::time::Instant`,
//!   `SystemTime`, `thread_rng` and friends read the host, so two runs
//!   of the same scenario would diverge. Forbidden *everywhere*,
//!   including `bench` — with one exemption baked into the rule
//!   itself: `bench::hostclock` is the designated quarantine module
//!   for host-side wall-clock measurement (it times the simulator;
//!   nothing it produces feeds back into simulated state), so
//!   `Instant` is legal there and only there.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::workspace::SourceFile;

/// Rule id.
pub const RULE: &str = "determinism";

/// Crates whose state is (or feeds) the simulation. Everything except
/// `bench`: even the linter itself sticks to ordered containers.
fn is_sim_crate(name: &str) -> bool {
    name != "bench"
}

const UNORDERED_CONTAINERS: [&str; 2] = ["HashMap", "HashSet"];

/// The one place the host monotonic clock may be read: the bench
/// crate's measurement stopwatch. A structural quarantine, not an
/// allowlist entry — moving the `Instant` anywhere else (or bringing a
/// second nondeterminism source into this file) trips the rule again.
const HOSTCLOCK_QUARANTINE: (&str, &str) = ("crates/bench/src/hostclock.rs", "Instant");

/// Identifier → why it is nondeterministic.
const AMBIENT_SOURCES: [(&str, &str); 6] = [
    ("Instant", "reads the host monotonic clock"),
    ("SystemTime", "reads the host wall clock"),
    ("thread_rng", "draws ambient host randomness"),
    ("ThreadRng", "draws ambient host randomness"),
    ("from_entropy", "seeds from host entropy"),
    ("RandomState", "hashes with a per-process random seed"),
];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        for t in &f.toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if is_sim_crate(&f.crate_name) && UNORDERED_CONTAINERS.contains(&t.text.as_str()) {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    subject: t.text.clone(),
                    message: format!(
                        "{} iterates in per-process-random order; simulation state must \
                         use BTreeMap/BTreeSet (or a Vec) so runs are bit-for-bit \
                         reproducible",
                        t.text
                    ),
                });
            }
            if f.rel_path == HOSTCLOCK_QUARANTINE.0 && t.text == HOSTCLOCK_QUARANTINE.1 {
                continue;
            }
            if let Some((_, why)) = AMBIENT_SOURCES.iter().find(|(id, _)| *id == t.text) {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: t.line,
                    rule: RULE,
                    subject: t.text.clone(),
                    message: format!(
                        "{} {why}; simulated time must come from SimTime/SimClock only \
                         (host-side measurement belongs in bench's hostclock module)",
                        t.text
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn flags_hash_containers_in_sim_crates() {
        let f = file_at(
            "crates/ukernel/src/machine.rs",
            "use std::collections::HashSet;\npub struct M { warm: HashSet<String> }\n",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 2, "the use and the field");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
        assert_eq!(d[0].subject, "HashSet");
    }

    #[test]
    fn bench_may_use_hash_containers_but_not_the_clock() {
        let f = file_at(
            "crates/bench/src/scenarios.rs",
            "use std::collections::HashMap;\nfn t() { let _ = std::time::Instant::now(); }\n",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "Instant");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn comments_and_strings_do_not_trip_the_rule() {
        let f = file_at(
            "crates/vfs/src/fs.rs",
            "// A HashMap would be wrong here.\nconst WHY: &str = \"no Instant\";\n",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn hostclock_quarantine_is_built_in() {
        // `Instant` inside the designated stopwatch module is legal
        // with no allowlist at all...
        let f = file_at(
            "crates/bench/src/hostclock.rs",
            "pub struct HostStopwatch(std::time::Instant);\n",
        );
        assert!(check(&[f]).is_empty());
        // ...but the quarantine covers exactly that identifier: other
        // ambient sources in the same file still trip the rule.
        let f = file_at(
            "crates/bench/src/hostclock.rs",
            "fn t() { let _ = std::time::SystemTime::now(); }\n",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "SystemTime");
    }
}
