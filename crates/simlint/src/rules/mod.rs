//! The rule set: this repo's contracts, encoded.
//!
//! Each rule is a workspace-level pass: it sees every lexed source file
//! at once (the charging rule genuinely needs the whole kernel call
//! graph; the others just iterate). Rules emit [`Diagnostic`]s; the
//! allowlist in `simlint.toml` is applied afterwards by the caller, so a
//! rule never needs to know about exemptions.

pub mod charging;
pub mod coupling;
pub mod crossshard;
pub mod determinism;
pub mod errno;
pub mod magics;
pub mod snapcov;
pub mod wakepoke;

use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// Runs every rule over `files`, returning diagnostics sorted by
/// file, line and rule.
pub fn run_all(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(determinism::check(files));
    out.extend(charging::check(files));
    out.extend(errno::check(files));
    out.extend(magics::check(files));
    out.extend(wakepoke::check(files));
    out.extend(snapcov::check(files));
    out.extend(coupling::check(files));
    out.extend(crossshard::check(files));
    out.sort();
    out
}

#[cfg(test)]
pub(crate) mod fixtures {
    //! Helpers for rule unit tests: build a [`SourceFile`] from an
    //! inline snippet at a pretend path.

    use crate::lexer::lex;
    use crate::workspace::{Role, SourceFile};

    /// Lexes `src` as if it lived at `rel_path`.
    pub fn file_at(rel_path: &str, src: &str) -> SourceFile {
        let (crate_name, role) = match rel_path.strip_prefix("crates/") {
            Some(rest) => {
                let name = rest.split('/').next().unwrap_or("").to_string();
                let role = if rest.contains("/tests/") {
                    Role::Test
                } else if rest.contains("/benches/") {
                    Role::Bench
                } else {
                    Role::Src
                };
                (name, role)
            }
            None => ("process-migration".to_string(), Role::Test),
        };
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            role,
            toks: lex(src),
        }
    }
}
