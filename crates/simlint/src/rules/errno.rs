//! Rule `errno-vocabulary`: syscall failures speak `Errno`, not magic
//! integers.
//!
//! The dump/restore pipeline and the paper's error narrative (`EREMOTE`
//! for NFS mount crossings, `ECHILD` for orphaned waits) depend on every
//! handler using the named 4.2BSD constants from `sysdefs`. A raw
//! integer smuggled through `Err(...)`/`SysRetval::err(...)` bypasses
//! the vocabulary and silently drifts from the paper. The rule scans
//! kernel syscall-handler files for an error constructor applied to an
//! integer literal.

use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// Rule id.
pub const RULE: &str = "errno-vocabulary";

/// Is this file part of the kernel's syscall surface?
fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/ukernel/src/sys/")
        || rel_path == "crates/ukernel/src/signal.rs"
}

/// Error constructors whose argument must be an `Errno` path.
const ERROR_CTORS: [&str; 2] = ["Err", "err"];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !in_scope(&f.rel_path) {
            continue;
        }
        for w in f.toks.windows(3) {
            let [ctor, paren, arg] = w else { continue };
            if ERROR_CTORS.contains(&ctor.text.as_str())
                && ctor.kind == crate::lexer::TokKind::Ident
                && paren.is_punct("(")
                && arg.int_value().is_some()
            {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: arg.line,
                    rule: RULE,
                    subject: arg.text.clone(),
                    message: format!(
                        "raw integer {} passed to {}(): syscall errors must use the \
                         named Errno constants from sysdefs",
                        arg.text, ctor.text
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn named_errno_constants_pass() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "fn f() -> SysResult<u32> { Err(Errno::EBADF) }\n\
             fn g() -> SysRetval { SysRetval::err(Errno::ENOENT) }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn raw_integer_errno_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "fn f() -> SysResult<u32> {\n    Err(9)\n}",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].subject, "9");
    }

    #[test]
    fn raw_integer_in_retval_err_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/signal.rs",
            "fn f() -> SysRetval { SysRetval::err(22) }",
        );
        assert_eq!(check(&[f]).len(), 1);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        // m68vm's assembler has its own err() helper taking a line
        // number; the errno vocabulary does not apply there.
        let f = file_at("crates/m68vm/src/asm.rs", "fn f() { err(0, \"bad\"); }");
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn ok_with_integers_passes() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "fn f() -> SysRetval { SysRetval::ok(0) }",
        );
        assert!(check(&[f]).is_empty());
    }
}
