//! Rule `simtime-charging`: no syscall handler runs for free.
//!
//! The paper's figures are simulated-time measurements, so a handler
//! that mutates kernel state without charging simulated time silently
//! deflates every number downstream. Since the `SysCtx` refactor the
//! kernel has exactly one accounted entry path, and this rule pins both
//! halves of that contract structurally:
//!
//! * **Signature.** Every `sys_*` handler in the kernel takes
//!   `&mut SysCtx`. The context is what carries the per-call
//!   accounting; a handler reverting to a raw `&mut World` (plus loose
//!   machine/pid arguments) would charge time the dispatcher cannot
//!   see.
//! * **Reachability.** Each handler can reach a charge through the
//!   kernel's own call graph. The sinks are the `SysCtx` accounting
//!   methods — `charge` and `charge_rpc` — and only those: the
//!   `World` primitives they wrap are named `charge_kernel` /
//!   `charge_kernel_rpc` precisely so a bare `charge(...)` call in
//!   kernel code can only be the accounted context method.
//!
//! The reachability analysis is a may-reach fixpoint over function
//! names: a function charges if its body calls a sink directly, or
//! calls (by name) any kernel function that charges. Matching by bare
//! name over-approximates (two kernel functions sharing a name merge),
//! which can only produce false negatives for *other* functions, never
//! false positives — a flagged handler genuinely has no charging call
//! anywhere in its reachable name set. The dispatcher's per-trap charge
//! in `dispatch()` is deliberately not credited to handlers: the trap
//! prices kernel entry/exit, not the handler's own work.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::visitor::{calls_in, fn_items};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "simtime-charging";

/// The `SysCtx` accounting methods. `World`'s kernel-internal
/// primitives are spelled `charge_kernel`/`charge_kernel_rpc` so these
/// names are unambiguous in kernel code.
const SINKS: [&str; 2] = ["charge", "charge_rpc"];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    struct FnInfo {
        file: String,
        line: u32,
        calls: BTreeSet<String>,
        direct_charge: bool,
    }

    let mut out = Vec::new();

    // Collect every function in the kernel crate's shipped sources.
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src {
            continue;
        }
        for item in fn_items(&f.toks) {
            // Signature half of the contract: handlers take the
            // accounted context, by exclusive reference.
            if item.name.starts_with("sys_") && !takes_mut_sysctx(&f.toks, &item) {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: item.line,
                    rule: RULE,
                    subject: item.name.clone(),
                    message: format!(
                        "{} does not take `&mut SysCtx`: syscall handlers must go \
                         through the accounted kernel-entry context, not a raw \
                         World/machine/pid triple",
                        item.name
                    ),
                });
            }
            let calls: BTreeSet<String> = calls_in(&f.toks, item.body_start, item.body_end)
                .into_iter()
                .map(|c| c.name)
                .collect();
            let direct_charge = calls.iter().any(|c| SINKS.contains(&c.as_str()));
            by_name.entry(item.name.clone()).or_default().push(fns.len());
            fns.push(FnInfo {
                file: f.rel_path.clone(),
                line: item.line,
                calls,
                direct_charge,
            });
        }
    }

    // Fixpoint: propagate "charges" backwards along call edges.
    let mut charges: Vec<bool> = fns.iter().map(|f| f.direct_charge).collect();
    loop {
        let mut changed = false;
        for (i, info) in fns.iter().enumerate() {
            if charges[i] {
                continue;
            }
            let reaches = info.calls.iter().any(|callee| {
                by_name
                    .get(callee)
                    .is_some_and(|idxs| idxs.iter().any(|&j| charges[j]))
            });
            if reaches {
                charges[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Handlers are the kernel's syscall entry points: `sys_*` functions.
    for (name, idxs) in &by_name {
        if !name.starts_with("sys_") {
            continue;
        }
        for &i in idxs {
            if !charges[i] {
                out.push(Diagnostic {
                    file: fns[i].file.clone(),
                    line: fns[i].line,
                    rule: RULE,
                    subject: name.clone(),
                    message: format!(
                        "{name} never reaches a charge/cost-model call: every syscall \
                         handler must charge simulated time for its own work \
                         (SysCtx::charge or a helper that does)"
                    ),
                });
            }
        }
    }
    out.sort();
    out
}

/// Does the signature `toks[sig_start..body_start]` contain a
/// `&mut ... SysCtx` parameter? The path between `mut` and `SysCtx` is
/// free (`&mut SysCtx`, `&mut crate::sys::ctx::SysCtx` both match).
fn takes_mut_sysctx(toks: &[crate::lexer::Tok], item: &crate::visitor::FnItem) -> bool {
    let sig = &toks[item.sig_start..item.body_start];
    let Some(k) = sig.iter().position(|t| t.is_ident("SysCtx")) else {
        return false;
    };
    sig[..k]
        .windows(2)
        .any(|w| w[0].is_punct("&") && w[1].is_ident("mut"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    const CHARGING_HANDLER: &str = "
        pub fn sys_open(cx: &mut SysCtx<'_>) -> SyscallResult {
            let c = cx.cost().file_struct_op();
            cx.charge(c);
            done(Ok(SysRetval::ok(0)))
        }";

    #[test]
    fn direct_charge_passes() {
        let f = file_at("crates/ukernel/src/sys/fsops.rs", CHARGING_HANDLER);
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn transitive_charge_through_a_helper_passes() {
        let helper = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "pub(crate) fn close_common(cx: &mut SysCtx<'_>, fd: usize) -> SysResult<SysRetval> \
             { cx.charge(c); Ok(SysRetval::ok(0)) }",
        );
        let handler = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_close(cx: &mut SysCtx<'_>, fd: usize) -> SyscallResult \
             { done(close_common(cx, fd)) }",
        );
        assert!(check(&[helper, handler]).is_empty());
    }

    #[test]
    fn zero_cost_handler_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_getpid(cx: &mut SysCtx<'_>) -> SyscallResult { done(Ok(SysRetval::ok(1))) }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "sys_getpid");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn raw_world_handler_is_flagged_even_if_it_charges() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "pub fn sys_open(w: &mut World, mid: usize, pid: Pid) -> SyscallResult \
             { w.charge(mid, pid, c); done(Ok(SysRetval::ok(0))) }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "sys_open");
        assert!(d[0].message.contains("&mut SysCtx"), "{}", d[0].message);
    }

    #[test]
    fn world_kernel_primitives_are_not_sinks() {
        // A handler that only reaches World::charge_kernel (the
        // dispatcher-invisible primitive) has bypassed per-call
        // accounting and is flagged.
        let helper = file_at(
            "crates/ukernel/src/world.rs",
            "impl World { pub fn charge_kernel(&mut self, mid: usize) { self.tick(mid); } }",
        );
        let handler = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_alarm(cx: &mut SysCtx<'_>) -> SyscallResult \
             { cx.w.charge_kernel(0); done(Ok(SysRetval::ok(0))) }",
        );
        let d = check(&[helper, handler]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "sys_alarm");
    }

    #[test]
    fn fully_qualified_sysctx_path_matches() {
        let f = file_at(
            "crates/ukernel/src/signal.rs",
            "pub fn sys_sigreturn(cx: &mut crate::sys::ctx::SysCtx<'_>) -> SyscallResult \
             { cx.charge(c); done(Ok(SysRetval::ok(0))) }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn non_kernel_and_test_code_is_out_of_scope() {
        let app = file_at(
            "crates/apps/src/loadbal.rs",
            "pub fn sys_like_but_not_kernel() { nothing(); }",
        );
        let test = file_at(
            "crates/ukernel/tests/kernel.rs",
            "fn sys_fixture() { no_charge_needed(); }",
        );
        assert!(check(&[app, test]).is_empty());
    }
}
