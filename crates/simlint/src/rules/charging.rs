//! Rule `simtime-charging`: no syscall handler runs for free.
//!
//! The paper's figures are simulated-time measurements, so a handler
//! that mutates kernel state without charging simulated time silently
//! deflates every number downstream. This rule checks that each
//! `sys_*` handler in the kernel can reach a cost-model charge —
//! `World::charge`, `World::charge_rpc`, `Machine::charge_sys` or
//! `Machine::charge_user` — through the kernel's own call graph.
//!
//! The analysis is a may-reach fixpoint over function names: a function
//! charges if its body calls a charge sink directly, or calls (by name)
//! any kernel function that charges. Matching by bare name
//! over-approximates (two kernel functions sharing a name merge), which
//! can only produce false negatives for *other* functions, never false
//! positives — a flagged handler genuinely has no charging call
//! anywhere in its reachable name set. The dispatcher's per-trap charge
//! in `do_syscall` is deliberately not credited to handlers: the trap
//! prices kernel entry/exit, not the handler's own work.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::visitor::{calls_in, fn_items};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "simtime-charging";

/// Calls that charge simulated time.
const SINKS: [&str; 4] = ["charge", "charge_sys", "charge_user", "charge_rpc"];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    struct FnInfo {
        file: String,
        line: u32,
        calls: BTreeSet<String>,
        direct_charge: bool,
    }

    // Collect every function in the kernel crate's shipped sources.
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src {
            continue;
        }
        for item in fn_items(&f.toks) {
            let calls: BTreeSet<String> = calls_in(&f.toks, item.body_start, item.body_end)
                .into_iter()
                .map(|c| c.name)
                .collect();
            let direct_charge = calls.iter().any(|c| SINKS.contains(&c.as_str()));
            by_name.entry(item.name.clone()).or_default().push(fns.len());
            fns.push(FnInfo {
                file: f.rel_path.clone(),
                line: item.line,
                calls,
                direct_charge,
            });
        }
    }

    // Fixpoint: propagate "charges" backwards along call edges.
    let mut charges: Vec<bool> = fns.iter().map(|f| f.direct_charge).collect();
    loop {
        let mut changed = false;
        for (i, info) in fns.iter().enumerate() {
            if charges[i] {
                continue;
            }
            let reaches = info.calls.iter().any(|callee| {
                by_name
                    .get(callee)
                    .is_some_and(|idxs| idxs.iter().any(|&j| charges[j]))
            });
            if reaches {
                charges[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Handlers are the kernel's syscall entry points: `sys_*` functions.
    let mut out = Vec::new();
    for (name, idxs) in &by_name {
        if !name.starts_with("sys_") {
            continue;
        }
        for &i in idxs {
            if !charges[i] {
                out.push(Diagnostic {
                    file: fns[i].file.clone(),
                    line: fns[i].line,
                    rule: RULE,
                    subject: name.clone(),
                    message: format!(
                        "{name} never reaches a charge/cost-model call: every syscall \
                         handler must charge simulated time for its own work \
                         (World::charge or a helper that does)"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    const CHARGING_HANDLER: &str = "
        pub fn sys_open(w: &mut World) -> SyscallResult {
            let c = w.config.cost.file_struct_op();
            w.charge(mid, pid, c);
            done(Ok(SysRetval::ok(0)))
        }";

    #[test]
    fn direct_charge_passes() {
        let f = file_at("crates/ukernel/src/sys/fsops.rs", CHARGING_HANDLER);
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn transitive_charge_through_a_helper_passes() {
        let helper = file_at(
            "crates/ukernel/src/world.rs",
            "impl World { pub fn do_exit(&mut self, mid: usize) { self.charge(mid, pid, c); } }",
        );
        let handler = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_exit(w: &mut World) -> SyscallResult { w.do_exit(0); SyscallResult::Gone }",
        );
        assert!(check(&[helper, handler]).is_empty());
    }

    #[test]
    fn zero_cost_handler_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_getpid(w: &mut World) -> SyscallResult { done(Ok(SysRetval::ok(1))) }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "sys_getpid");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn non_kernel_and_test_code_is_out_of_scope() {
        let app = file_at(
            "crates/apps/src/loadbal.rs",
            "pub fn sys_like_but_not_kernel() { nothing(); }",
        );
        let test = file_at(
            "crates/ukernel/tests/kernel.rs",
            "fn sys_fixture() { no_charge_needed(); }",
        );
        assert!(check(&[app, test]).is_empty());
    }
}
