//! Rule `coupling`: cross-machine reach-through, flagged and inventoried.
//!
//! ROADMAP item 2 (parallel deterministic simulation) will want to step
//! machines on separate threads; every place one machine's execution
//! context reaches into another machine's state — or into world-shared
//! maps — is a seam that `World::run_parallel` must turn into a
//! message. This module does two jobs with one scan:
//!
//! * **The lint.** A *syscall handler* (a function in
//!   `ukernel/src/sys/` whose signature takes `SysCtx`) holds exactly
//!   one machine's context (`cx.mid`). If its body indexes a
//!   *different* machine — `machine_mut(dst)`, `proc_mut(other, ..)`,
//!   `machines[peer]` — it has bypassed the `World` routing layer, and
//!   the future parallel step would race. Handlers must go through
//!   `World` methods (the remote-exec and signal paths already do).
//!   This is a hard rule; sanctioned exceptions go in `simlint.toml`.
//!
//! * **The report.** `simlint --coupling-report` inventories every
//!   kernel function that indexes a foreign machine or touches a
//!   world-shared structure (`ether`, `finished`, the waiter maps, …),
//!   world layer included — there the coupling is *by design*; the
//!   point is to enumerate it. The report is checked in at
//!   `simlint.coupling.json` and `ci.sh` fails when it is stale, so
//!   the parallel-sim refactor starts from a current map, and growth
//!   of the seam list shows up in review like any other diff.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::visitor::{dot_mentions, fn_items, in_ranges, test_mod_ranges};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "coupling";

/// World-level accessors that take a machine id as their first
/// argument; a non-`mid` first argument is a foreign-machine index.
const INDEXERS: [&str; 5] = ["machine", "machine_mut", "proc_ref", "proc_mut", "machine_name"];

/// World-owned structures shared across machines: mutating or reading
/// these from a per-machine step is exactly what a parallel world must
/// route through messages.
const SHARED: [&str; 8] = [
    "ether",
    "terminals",
    "finished",
    "overlaid",
    "daemon_waiters",
    "tty_waiters",
    "remote_waiters",
    "wake_queue",
];

/// One row of the coupling inventory.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Coupling {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the function.
    pub line: u32,
    /// Function name.
    pub symbol: String,
    /// `foreign-index` or `shared-state`.
    pub kind: &'static str,
    /// What was reached: the indexing call or the shared fields.
    pub detail: String,
}

/// The lint: syscall handlers indexing a machine other than their own.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src || !f.rel_path.contains("/sys/") {
            continue;
        }
        let test_ranges = test_mod_ranges(&f.toks);
        for item in fn_items(&f.toks) {
            if in_ranges(item.body_start, &test_ranges) {
                continue;
            }
            let sig_has_ctx = f.toks[item.sig_start..item.body_start]
                .iter()
                .any(|t| t.is_ident("SysCtx"));
            if !sig_has_ctx {
                continue;
            }
            for (callee, arg) in foreign_indexes(&f.toks, item.body_start, item.body_end) {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: item.line,
                    rule: RULE,
                    subject: item.name.clone(),
                    message: format!(
                        "{} holds one machine's context (SysCtx) but indexes \
                         another machine's state via {callee}({arg}): route \
                         cross-machine effects through a World method so the \
                         parallel step can turn them into messages",
                        item.name
                    ),
                });
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The inventory: every kernel function that couples machines.
pub fn report(files: &[SourceFile]) -> Vec<Coupling> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src {
            continue;
        }
        let test_ranges = test_mod_ranges(&f.toks);
        for item in fn_items(&f.toks) {
            if in_ranges(item.body_start, &test_ranges) {
                continue;
            }
            let foreign = foreign_indexes(&f.toks, item.body_start, item.body_end);
            if !foreign.is_empty() {
                let mut detail: Vec<String> =
                    foreign.iter().map(|(c, a)| format!("{c}({a})")).collect();
                detail.dedup();
                out.push(Coupling {
                    file: f.rel_path.clone(),
                    line: item.line,
                    symbol: item.name.clone(),
                    kind: "foreign-index",
                    detail: detail.join(" "),
                });
            }
            let mentions = dot_mentions(&f.toks, item.body_start, item.body_end);
            let shared: Vec<&str> = SHARED
                .iter()
                .copied()
                .filter(|s| mentions.contains(*s))
                .collect();
            if !shared.is_empty() {
                out.push(Coupling {
                    file: f.rel_path.clone(),
                    line: item.line,
                    symbol: item.name.clone(),
                    kind: "shared-state",
                    detail: shared.join(" "),
                });
            }
        }
    }
    out.sort();
    out
}

/// Renders the inventory as deterministic JSON lines inside an array,
/// one object per row — diffable, and parseable without a JSON crate.
pub fn render_report(rows: &[Coupling]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"symbol\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\"}}{}\n",
            r.file,
            r.line,
            r.symbol,
            r.kind,
            r.detail,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("]\n");
    s
}

/// Every `indexer(arg, ..)` or `machines[arg]` in the range whose
/// machine-id argument is not the context's own `mid`. Returns
/// `(indexer, arg-text)` pairs.
///
/// `proc_ref`/`proc_mut` exist at two levels: the `World` form takes
/// `(mid, pid)`, the `Machine` form takes `(pid)` — same-machine by
/// construction. Only the multi-argument form indexes by machine, so
/// single-argument calls to those two names are skipped.
fn foreign_indexes(toks: &[Tok], start: usize, end: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let indexed = (INDEXERS.contains(&name)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("(")))
            || (name == "machines" && toks.get(i + 1).is_some_and(|t| t.is_punct("[")));
        if !indexed {
            continue;
        }
        let open = i + 1;
        // First argument (tokens up to a top-level `,` or the closer),
        // plus whether a second argument follows.
        let mut depth = 0usize;
        let mut arg: Vec<&str> = Vec::new();
        let mut multi_arg = false;
        for t in &toks[open + 1..end] {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && t.is_punct(",") {
                multi_arg = true;
                break;
            }
            arg.push(&t.text);
        }
        if matches!(name, "proc_ref" | "proc_mut") && !multi_arg {
            continue;
        }
        // `mid`, `cx.mid`, `self.mid`, … — anything whose final path
        // segment is `mid` is the context's own machine.
        if arg.last().is_some_and(|last| *last == "mid") || arg.is_empty() {
            continue;
        }
        out.push((toks[i].text.clone(), arg.concat()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn handler_indexing_foreign_machine_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/migrate.rs",
            "pub fn sys_msend(cx: &mut SysCtx<'_>, dst: usize) -> SyscallResult {
                 let peer = cx.w.machine_mut(dst);
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "sys_msend");
        assert!(d[0].message.contains("machine_mut(dst)"), "{}", d[0].message);
    }

    #[test]
    fn own_mid_access_is_not_coupling() {
        let f = file_at(
            "crates/ukernel/src/sys/procops.rs",
            "pub fn sys_getpid(cx: &mut SysCtx<'_>) -> SyscallResult {
                 let m = cx.w.machine(cx.mid);
                 let p = cx.w.proc_ref(cx.mid, cx.pid);
                 done(Ok(SysRetval::ok(p.pid.0 as i64)))
             }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn world_layer_is_reported_but_not_linted() {
        let f = file_at(
            "crates/ukernel/src/world.rs",
            "impl World { pub fn wake_one(&mut self, target: usize, pid: Pid) {
                 self.machines[target].make_runnable(pid);
                 self.finished.insert((target, pid.0), info);
             } }",
        );
        assert!(check(std::slice::from_ref(&f)).is_empty());
        let rows = report(&[f]);
        assert_eq!(rows.len(), 2, "{rows:?}");
        assert_eq!(rows[0].kind, "foreign-index");
        assert_eq!(rows[0].detail, "machines(target)");
        assert_eq!(rows[1].kind, "shared-state");
        assert_eq!(rows[1].detail, "finished");
    }

    #[test]
    fn machine_level_proc_accessors_are_not_machine_indexes() {
        // Machine::proc_mut(pid) is pid-indexed on the same machine;
        // only the World form proc_mut(mid, pid) takes a machine id.
        let f = file_at(
            "crates/ukernel/src/machine.rs",
            "impl Machine { pub fn charge_sys(&mut self, pid: Pid, c: Cost) {
                 if let Some(p) = self.proc_mut(pid) { p.stime += c.cpu; }
             } }",
        );
        assert!(report(&[f]).is_empty());
        let w = file_at(
            "crates/ukernel/src/world.rs",
            "impl World { fn reroute(&mut self, dst: usize, pid: Pid) {
                 if let Some(p) = self.proc_mut(dst, pid) { p.sig_pending = 0; }
             } }",
        );
        let rows = report(&[w]);
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert_eq!(rows[0].detail, "proc_mut(dst)");
    }

    #[test]
    fn non_ctx_helpers_in_sys_are_not_linted() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "fn queue_stats(w: &World, other: usize) -> usize {
                 w.machine(other).pipes.len()
             }",
        );
        assert!(check(std::slice::from_ref(&f)).is_empty());
        assert_eq!(report(&[f]).len(), 1);
    }

    #[test]
    fn report_rendering_is_stable_json(){
        let rows = vec![Coupling {
            file: "crates/ukernel/src/world.rs".into(),
            line: 7,
            symbol: "wake_one".into(),
            kind: "foreign-index",
            detail: "machines(target)".into(),
        }];
        let s = render_report(&rows);
        assert!(s.starts_with("[\n"), "{s}");
        assert!(s.contains("\"symbol\":\"wake_one\""), "{s}");
        assert!(s.ends_with("]\n"), "{s}");
    }
}
