//! Rule `snapshot-coverage`: every sim-state field is in the oracle.
//!
//! The dual-run determinism tests are only an oracle for the state
//! they fold: a `World`/`Machine` field added without a matching line
//! in the snapshot builder is invisible to them, and a divergence in
//! it goes undetected until it leaks into something folded. Yodaiken's
//! argument (PAPERS.md) is that such claims about state must be
//! checked mechanically; this rule does so at the struct level.
//!
//! For each field of `World`, `Machine` and `MachineStats` the rule
//! requires one of:
//!
//! * **folded** — some snapshot builder (a root-tests function whose
//!   name starts with `snapshot`, or any helper it reaches within the
//!   test tree) mentions the field as `.field`; or
//! * **declared pure-cache** — an allowlist entry in `simlint.toml`
//!   scoped to this rule names `Struct::field` with a reason. This is
//!   the Milanés exemption: derived or reconstructible state
//!   (scheduler wait indexes, host-side perf counters) may be excluded
//!   from the snapshot, but the exclusion must be a reviewed,
//!   documented decision — never an accident of omission. Stale
//!   entries fail like any other allowlist entry.
//!
//! Coverage is name-based like the rest of simlint: a builder that
//! reads `m.stats.syscalls` covers both `stats` and `syscalls`. That
//! is deliberate — the rule polices *omission*, the cheap-to-make and
//! expensive-to-notice mistake; it does not try to prove the folded
//! value is meaningful.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::visitor::{calls_in, dot_mentions, fn_items, match_brace};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "snapshot-coverage";

/// The structs whose fields constitute the determinism-relevant sim
/// state. `Proc` is covered transitively: builders fold it per-field
/// while iterating `procs`, and new `Proc` fields show up in migration
/// pack/unpack parity long before they could hide.
const STRUCTS: [&str; 3] = ["World", "Machine", "MachineStats"];

/// One parsed struct field.
struct Field {
    file: String,
    line: u32,
    strukt: &'static str,
    name: String,
}

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let fields = struct_fields(files);
    if fields.is_empty() {
        return Vec::new();
    }
    let (covered, found_builder) = builder_mentions(files);
    let mut out = Vec::new();
    if !found_builder {
        // Without a builder nothing is folded; one diagnostic per
        // struct beats one per field.
        let mut seen = BTreeSet::new();
        for f in &fields {
            if seen.insert(f.strukt) {
                out.push(Diagnostic {
                    file: f.file.clone(),
                    line: f.line,
                    rule: RULE,
                    subject: format!("{}::<builder>", f.strukt),
                    message: format!(
                        "no snapshot builder found in the root tests: every \
                         {} field is outside the determinism oracle",
                        f.strukt
                    ),
                });
            }
        }
        out.sort();
        return out;
    }
    for f in &fields {
        if covered.contains(&f.name) {
            continue;
        }
        out.push(Diagnostic {
            file: f.file.clone(),
            line: f.line,
            rule: RULE,
            subject: format!("{}::{}", f.strukt, f.name),
            message: format!(
                "{}::{} is neither folded into a determinism snapshot \
                 builder nor declared pure-cache in simlint.toml: a \
                 divergence in it is invisible to the dual-run oracle",
                f.strukt, f.name
            ),
        });
    }
    out.sort();
    out
}

/// Parses the named structs' field lists out of the kernel sources.
fn struct_fields(files: &[SourceFile]) -> Vec<Field> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src {
            continue;
        }
        let toks = &f.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("struct") {
                continue;
            }
            let Some(name) = STRUCTS
                .iter()
                .find(|s| toks.get(i + 1).is_some_and(|t| t.is_ident(s)))
            else {
                continue;
            };
            // `struct Name {` — none of ours carry generics. A `;` or
            // `(` next would be a unit/tuple struct: skip.
            let Some(open) = toks.get(i + 2).filter(|t| t.is_punct("{")) else {
                continue;
            };
            let _ = open;
            let body_end = match_brace(toks, i + 2);
            out.extend(fields_in_body(toks, i + 3, body_end - 1, name, &f.rel_path));
        }
    }
    out
}

/// Extracts field names from a struct body: an identifier directly
/// followed by a single `:` at brace depth 0, preceded by `{`, `,` or
/// a visibility (`pub` / the `)` closing `pub(crate)`). The lexer
/// keeps `::` as one token, so path types never look like fields.
fn fields_in_body(
    toks: &[Tok],
    start: usize,
    end: usize,
    strukt: &'static str,
    file: &str,
) -> Vec<Field> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    for i in start..end.min(toks.len()) {
        match () {
            _ if toks[i].is_punct("{") => depth += 1,
            _ if toks[i].is_punct("}") => depth = depth.saturating_sub(1),
            _ => {}
        }
        if depth > 0 || toks[i].kind != TokKind::Ident {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        let lead_ok = i == start
            || toks[i - 1].is_punct(",")
            || toks[i - 1].is_punct(")")
            || toks[i - 1].is_ident("pub");
        if lead_ok {
            out.push(Field {
                file: file.to_string(),
                line: toks[i].line,
                strukt,
                name: toks[i].text.clone(),
            });
        }
    }
    out
}

/// Collects every `.field` mention reachable from a snapshot builder:
/// root-tests functions named `snapshot*` plus, transitively, any
/// function in the root test tree they call by name.
fn builder_mentions(files: &[SourceFile]) -> (BTreeSet<String>, bool) {
    struct TestFn {
        mentions: BTreeSet<String>,
        calls: BTreeSet<String>,
        root: bool,
    }
    let mut fns: Vec<TestFn> = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for f in files {
        if f.crate_name != "process-migration" || f.role != Role::Test {
            continue;
        }
        for item in fn_items(&f.toks) {
            let calls = calls_in(&f.toks, item.body_start, item.body_end)
                .into_iter()
                .map(|c| c.name)
                .collect();
            by_name.entry(item.name.clone()).or_default().push(fns.len());
            fns.push(TestFn {
                mentions: dot_mentions(&f.toks, item.body_start, item.body_end),
                calls,
                root: item.name.starts_with("snapshot"),
            });
        }
    }
    let mut live: Vec<bool> = fns.iter().map(|f| f.root).collect();
    loop {
        let mut changed = false;
        for i in 0..fns.len() {
            if !live[i] {
                continue;
            }
            for callee in fns[i].calls.clone() {
                if let Some(idxs) = by_name.get(&callee) {
                    for &j in idxs {
                        if !live[j] {
                            live[j] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut covered = BTreeSet::new();
    let mut found = false;
    for (i, f) in fns.iter().enumerate() {
        if live[i] {
            covered.extend(f.mentions.iter().cloned());
            found = found || f.root;
        }
    }
    (covered, found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    const STRUCT_SRC: &str = "pub struct Machine {
         pub now: SimTime,
         pub(crate) wait_pending: BTreeSet<Pid>,
         secret: u64,
     }";

    #[test]
    fn unfolded_field_is_flagged() {
        let m = file_at("crates/ukernel/src/machine.rs", STRUCT_SRC);
        let t = file_at(
            "tests/determinism.rs",
            "fn snapshot(w: &World) -> String {
                 format!(\"{} {}\", m.now, m.wait_pending.len())
             }",
        );
        let d = check(&[m, t]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "Machine::secret");
    }

    #[test]
    fn helper_folding_counts_transitively() {
        let m = file_at("crates/ukernel/src/machine.rs", STRUCT_SRC);
        let t = file_at(
            "tests/determinism.rs",
            "fn snapshot(w: &World) -> String { fold_machine(m) }
             fn fold_machine(m: &Machine) -> String {
                 format!(\"{} {} {}\", m.now, m.wait_pending.len(), m.secret)
             }",
        );
        assert!(check(&[m, t]).is_empty());
    }

    #[test]
    fn mention_outside_builder_closure_does_not_count() {
        let m = file_at("crates/ukernel/src/machine.rs", STRUCT_SRC);
        let t = file_at(
            "tests/determinism.rs",
            "fn snapshot(w: &World) -> String {
                 format!(\"{} {}\", m.now, m.wait_pending.len())
             }
             fn unrelated(m: &Machine) { let _ = m.secret; }",
        );
        let d = check(&[m, t]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "Machine::secret");
    }

    #[test]
    fn missing_builder_reports_once_per_struct() {
        let m = file_at("crates/ukernel/src/machine.rs", STRUCT_SRC);
        let t = file_at("tests/determinism.rs", "fn run() {}");
        let d = check(&[m, t]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "Machine::<builder>");
    }

    #[test]
    fn type_paths_and_nested_braces_are_not_fields() {
        // `ExitInfo::Code` must not read as a field, nor idents inside
        // a nested brace (none occur in real defs, but be safe).
        let m = file_at(
            "crates/ukernel/src/world.rs",
            "pub struct World {
                 pub finished: BTreeMap<(MachineId, u32), ExitInfo>,
                 pub config: WorldConfig,
             }",
        );
        let t = file_at(
            "tests/determinism.rs",
            "fn snapshot(w: &World) -> String {
                 format!(\"{:?} {:?}\", w.finished, w.config)
             }",
        );
        assert!(check(&[m, t]).is_empty());
    }

    #[test]
    fn other_structs_are_out_of_scope() {
        let m = file_at(
            "crates/ukernel/src/file.rs",
            "pub struct FileStruct { pub refcount: u32 }",
        );
        let t = file_at("tests/determinism.rs", "fn snapshot(w: &World) -> String {}");
        assert!(check(&[m, t]).is_empty());
    }
}
