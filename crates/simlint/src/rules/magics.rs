//! Rule `magic-literals`: the paper's magic numbers have exactly one
//! home.
//!
//! The dump-file magics (octal `0444` for `stackXXXXX`, `0445` for
//! `filesXXXXX`), the descriptor-table size `NOFILE` and the signal
//! numbering are contracts between the kernel's dump writer and the
//! command-side readers (`dumpproc`, `restart`, `undump`). If a second
//! copy of any of them appears outside `sysdefs`/`dumpfmt`, the writer
//! and a reader can drift apart while both still compile. Three
//! sub-checks share the rule id:
//!
//! * the literal magic values (in any base) outside `sysdefs`/`dumpfmt`;
//! * `const` redefinitions of the named limit/magic constants;
//! * signal construction from an integer literal (`from_number(17)`)
//!   outside `sysdefs` — callers must use the named `Signal` constants.
//!
//! `simlint` itself is exempt alongside `sysdefs`/`dumpfmt`: this file
//! necessarily spells the values it polices.

use crate::diag::Diagnostic;
use crate::workspace::SourceFile;

/// Rule id.
pub const RULE: &str = "magic-literals";

/// Crates allowed to spell the contract values.
fn is_definition_crate(name: &str) -> bool {
    matches!(name, "sysdefs" | "dumpfmt" | "simlint")
}

/// The dump magics, by value so `0o444`, `292` and `0x124` all match.
const MAGIC_VALUES: [(u128, &str); 2] = [
    (0o444, "the stackXXXXX dump magic (0444)"),
    (0o445, "the filesXXXXX dump magic (0445)"),
];

/// Constants that must not be redefined outside their home crate.
const PROTECTED_CONSTS: [&str; 5] = [
    "NOFILE",
    "MAXPATHLEN",
    "MAXSYMLINKS",
    "STACK_MAGIC",
    "FILES_MAGIC",
];

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if is_definition_crate(&f.crate_name) {
            continue;
        }
        let toks = &f.toks;
        for (i, t) in toks.iter().enumerate() {
            // Magic values in any base.
            if let Some(v) = t.int_value() {
                if let Some((_, what)) = MAGIC_VALUES.iter().find(|(m, _)| *m == v) {
                    out.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: t.line,
                        rule: RULE,
                        subject: t.text.clone(),
                        message: format!(
                            "literal {} is {what}; use dumpfmt::STACK_MAGIC/FILES_MAGIC \
                             so the writer and readers cannot drift",
                            t.text
                        ),
                    });
                }
            }
            // `const NOFILE ...` redefinitions.
            if t.is_ident("const")
                && toks
                    .get(i + 1)
                    .is_some_and(|n| PROTECTED_CONSTS.contains(&n.text.as_str()))
            {
                let n = &toks[i + 1];
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: n.line,
                    rule: RULE,
                    subject: n.text.clone(),
                    message: format!(
                        "{} is defined by sysdefs/dumpfmt; redefining it here lets the \
                         kernel and the commands disagree",
                        n.text
                    ),
                });
            }
            // Signal-from-integer-literal outside sysdefs.
            if f.crate_name != "sysdefs"
                && t.is_ident("from_number")
                && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
                && toks.get(i + 2).is_some_and(|a| a.int_value().is_some())
            {
                let a = &toks[i + 2];
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: a.line,
                    rule: RULE,
                    subject: a.text.clone(),
                    message: format!(
                        "from_number({}) hardcodes a signal/syscall number; use the \
                         named constants from sysdefs",
                        a.text
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn magic_values_flagged_in_any_base_outside_home_crates() {
        let f = file_at(
            "crates/ukernel/src/signal.rs",
            "fn f() { let a = 0o444; let b = 293; }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].subject, "0o444");
        assert_eq!(d[1].subject, "293");
    }

    #[test]
    fn home_crates_may_define_the_values() {
        let stack = file_at(
            "crates/dumpfmt/src/stack_file.rs",
            "pub const STACK_MAGIC: u16 = 0o444;",
        );
        let limits = file_at("crates/sysdefs/src/limits.rs", "pub const NOFILE: usize = 30;");
        assert!(check(&[stack, limits]).is_empty());
    }

    #[test]
    fn const_redefinition_is_flagged() {
        let f = file_at(
            "crates/pmig/src/commands.rs",
            "const NOFILE: usize = 30;\nfn f() {}",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "NOFILE");
    }

    #[test]
    fn literal_signal_numbers_are_flagged() {
        let f = file_at(
            "crates/apps/src/loadbal.rs",
            "fn f() { let s = Signal::from_number(17); }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].subject, "17");
    }

    #[test]
    fn runtime_signal_numbers_pass() {
        let f = file_at(
            "crates/ukernel/src/sys/vmabi.rs",
            "fn f(sig: u32) { let s = Signal::from_number(sig); }",
        );
        assert!(check(&[f]).is_empty());
    }
}
