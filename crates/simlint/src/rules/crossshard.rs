//! Rule `cross-shard`: foreign `&mut` stays inside the seam layer.
//!
//! Sharded execution (`Exec::Parallel`, DESIGN.md §14) moves machines
//! into per-thread worlds for most of their slices. That is only sound
//! because every cross-machine *mutation* funnels through the world's
//! seam layer (`crates/ukernel/src/world/`): `World::cross_call` for
//! foreign-filesystem effects, the `poke_*` hooks (which queue a
//! `CrossEffect` when the target is not resident) for wakes. A handler
//! that takes a foreign machine's `&mut` directly — `fs_mut(host)`,
//! `machine_mut(dst)`, `proc_mut(other, pid)`, `machines[peer]` —
//! bypasses the funnel: under a shard it panics on the vacated slot at
//! best and races at worst.
//!
//! The `coupling` rule already polices *syscall handlers* and
//! inventories reads; this rule is the mutation ratchet for the whole
//! kernel crate: outside `src/world/`, a machine-id-indexed mutable
//! accessor whose argument is not the context's own `mid` is a
//! violation. Reads (`machine(dst)`, `proc_ref`) stay legal — shards
//! never export a machine whose state someone else may read
//! mid-window, so reads only happen in the serial phase where they
//! are safe.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::visitor::{fn_items, in_ranges, test_mod_ranges};
use crate::workspace::{Role, SourceFile};

/// Rule id.
pub const RULE: &str = "cross-shard";

/// Mutable accessors indexed by machine id. `proc_mut` only in its
/// two-argument `World` form — the single-argument `Machine` form is
/// same-machine by construction.
const MUT_INDEXERS: [&str; 3] = ["machine_mut", "fs_mut", "proc_mut"];

/// The sanctioned funnel: the world layer itself, where cross-machine
/// mutation is the module's whole job.
const SEAM_DIR: &str = "crates/ukernel/src/world/";

/// Runs the rule over the workspace.
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if f.crate_name != "ukernel" || f.role != Role::Src || f.rel_path.starts_with(SEAM_DIR) {
            continue;
        }
        let test_ranges = test_mod_ranges(&f.toks);
        for item in fn_items(&f.toks) {
            if in_ranges(item.body_start, &test_ranges) {
                continue;
            }
            for (callee, arg) in foreign_mut_indexes(&f.toks, item.body_start, item.body_end) {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: item.line,
                    rule: RULE,
                    subject: item.name.clone(),
                    message: format!(
                        "{} takes a foreign machine's `&mut` via {callee}({arg}) \
                         outside the seam layer: route the mutation through \
                         World::cross_call (or a poke hook) so sharded \
                         execution can order it",
                        item.name
                    ),
                });
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Every mutable machine-indexed access in the range whose machine-id
/// argument is not the context's own `mid`: `machine_mut(x)`,
/// `fs_mut(x)`, two-argument `proc_mut(x, ..)` and `machines[x]`.
fn foreign_mut_indexes(toks: &[Tok], start: usize, end: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let indexed = (MUT_INDEXERS.contains(&name)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("(")))
            || (name == "machines" && toks.get(i + 1).is_some_and(|t| t.is_punct("[")));
        if !indexed {
            continue;
        }
        // First argument up to a top-level `,` or the closer.
        let mut depth = 0usize;
        let mut arg: Vec<&str> = Vec::new();
        let mut multi_arg = false;
        for t in &toks[i + 2..end] {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && t.is_punct(",") {
                multi_arg = true;
                break;
            }
            arg.push(&t.text);
        }
        if name == "proc_mut" && !multi_arg {
            continue;
        }
        if arg.last().is_some_and(|last| *last == "mid") || arg.is_empty() {
            continue;
        }
        out.push((toks[i].text.clone(), arg.concat()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::fixtures::file_at;

    #[test]
    fn foreign_fs_mut_outside_the_seam_layer_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "pub fn sys_clobber(cx: &mut SysCtx<'_>, host: usize) -> SyscallResult {
                 cx.w.fs_mut(host).truncate(ino)?;
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].subject, "sys_clobber");
        assert!(d[0].message.contains("fs_mut(host)"), "{}", d[0].message);
    }

    #[test]
    fn own_mid_mutation_is_legal() {
        let f = file_at(
            "crates/ukernel/src/sys/fsops.rs",
            "pub fn sys_write_local(cx: &mut SysCtx<'_>) -> SyscallResult {
                 cx.w.fs_mut(cx.mid).write(ino, off, bytes)?;
                 let p = cx.machine_mut().proc_mut(cx.pid);
                 done(Ok(SysRetval::ok(0)))
             }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn the_seam_layer_itself_is_exempt() {
        let f = file_at(
            "crates/ukernel/src/world/seam.rs",
            "pub fn cross_call(&mut self, server: usize) {
                 self.machines[server].fs.truncate(ino);
                 self.fs_mut(server);
             }",
        );
        assert!(check(&[f]).is_empty());
    }

    #[test]
    fn direct_foreign_machines_indexing_is_flagged() {
        let f = file_at(
            "crates/ukernel/src/signal.rs",
            "pub fn dump_to(w: &mut World, server: usize) {
                 w.machines[server].make_runnable(pid);
             }",
        );
        let d = check(&[f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("machines(server)") || d[0].message.contains("machines[server]") || d[0].message.contains("(server)"), "{}", d[0].message);
    }
}
