//! Item- and call-level views over a token stream.
//!
//! The rules need two structural facts the flat token stream does not
//! give directly: where each `fn` item's body starts and ends (for the
//! charging rule's call graph) and which identifiers are *called* inside
//! a range (ident immediately applied with `(`). Both are recovered here
//! by brace matching — no full parse.

use crate::lexer::{Tok, TokKind};

/// One `fn` item: its name and the token ranges of its signature and
/// body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword; `sig_start..body_start` covers
    /// the whole signature (name, generics, parameters, return type).
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
}

/// A call site: an identifier applied with `(`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (the last path segment: `fsops::close_common(..)`
    /// records `close_common`).
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Extracts every `fn` item (free functions and methods alike) from a
/// token stream. Bodiless declarations (trait methods ending in `;`)
/// are skipped.
pub fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut items = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Scan forward for the body's `{`, skipping the parameter
            // list and any return type / where clause. A `;` first means
            // a declaration without a body.
            let mut j = i + 2;
            let mut paren_depth = 0usize;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") {
                    paren_depth += 1;
                } else if t.is_punct(")") {
                    paren_depth = paren_depth.saturating_sub(1);
                } else if paren_depth == 0 && t.is_punct("{") {
                    body_start = Some(j);
                    break;
                } else if paren_depth == 0 && t.is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let end = match_brace(toks, start);
                items.push(FnItem {
                    name,
                    line,
                    sig_start: i,
                    body_start: start,
                    body_end: end,
                });
                // Continue scanning *inside* the body too: nested fns
                // and closures containing fns are still fns.
                i = start + 1;
                continue;
            }
        }
        i += 1;
    }
    items
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Every call site in `toks[range]`: an identifier directly followed by
/// `(`. Macro invocations (`name!(...)`) and `fn` definitions are not
/// calls and are excluded; `a.method(..)` and `path::func(..)` both
/// record the final name.
pub fn calls_in(toks: &[Tok], start: usize, end: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // Definition, not a call.
        if i > start && toks[i - 1].is_ident("fn") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.is_punct("(") {
            calls.push(CallSite {
                name: toks[i].text.clone(),
                line: toks[i].line,
            });
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_their_calls() {
        let toks = lex(
            "pub fn alpha(w: &mut World) -> u32 { beta(w); w.charge(1, 2); 0 }\n\
             fn beta(w: &mut World) { format!(\"no{}\", 1); }\n\
             trait T { fn decl(&self); }\n",
        );
        let items = fn_items(&toks);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);

        let alpha = &items[0];
        let calls = calls_in(&toks, alpha.body_start, alpha.body_end);
        let called: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(called.contains(&"beta"));
        assert!(called.contains(&"charge"));

        let beta = &items[1];
        let calls = calls_in(&toks, beta.body_start, beta.body_end);
        // `format!` is a macro, not a call — but the linter sees the
        // ident before `!` has no `(` directly after it.
        assert!(calls.iter().all(|c| c.name != "format"));
    }

    #[test]
    fn signature_range_covers_the_parameter_list() {
        let toks = lex("pub fn sys_open(cx: &mut SysCtx<'_>, path: &str) -> SyscallResult { x() }");
        let items = fn_items(&toks);
        assert_eq!(items.len(), 1);
        let sig = &toks[items[0].sig_start..items[0].body_start];
        assert!(sig.iter().any(|t| t.is_ident("SysCtx")));
        assert!(sig.iter().all(|t| !t.is_ident("x")), "body excluded");
    }

    #[test]
    fn nested_functions_are_found() {
        let toks = lex("fn outer() { fn inner() { charge(); } inner(); }");
        let items = fn_items(&toks);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn where_clauses_and_return_types_are_skipped() {
        let toks = lex("fn g<T: Clone>(x: T) -> Vec<T> where T: Default { work(x) }");
        let items = fn_items(&toks);
        assert_eq!(items.len(), 1);
        let calls = calls_in(&toks, items[0].body_start, items[0].body_end);
        assert_eq!(calls, vec![CallSite { name: "work".into(), line: 1 }]);
    }
}
