//! Item- and call-level views over a token stream.
//!
//! The rules need structural facts the flat token stream does not give
//! directly: where each `fn` item's body starts and ends (for the
//! call-graph rules), which identifiers are *called* inside a range
//! (ident immediately applied with `(`), which fields are *written*
//! (the dataflow layer the wake-poke and snapshot-coverage rules share),
//! and which token ranges belong to `#[cfg(test)]` modules (in-source
//! unit tests legitimately reach into kernel state without poking). All
//! are recovered here by brace matching — no full parse.

use crate::lexer::{Tok, TokKind};

/// One `fn` item: its name and the token ranges of its signature and
/// body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword; `sig_start..body_start` covers
    /// the whole signature (name, generics, parameters, return type).
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub body_end: usize,
}

/// A call site: an identifier applied with `(`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The called name (the last path segment: `fsops::close_common(..)`
    /// records `close_common`).
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Extracts every `fn` item (free functions and methods alike) from a
/// token stream. Bodiless declarations (trait methods ending in `;`)
/// are skipped.
pub fn fn_items(toks: &[Tok]) -> Vec<FnItem> {
    let mut items = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            // Scan forward for the body's `{`, skipping the parameter
            // list and any return type / where clause. A `;` first means
            // a declaration without a body.
            let mut j = i + 2;
            let mut paren_depth = 0usize;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") {
                    paren_depth += 1;
                } else if t.is_punct(")") {
                    paren_depth = paren_depth.saturating_sub(1);
                } else if paren_depth == 0 && t.is_punct("{") {
                    body_start = Some(j);
                    break;
                } else if paren_depth == 0 && t.is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let end = match_brace(toks, start);
                items.push(FnItem {
                    name,
                    line,
                    sig_start: i,
                    body_start: start,
                    body_end: end,
                });
                // Continue scanning *inside* the body too: nested fns
                // and closures containing fns are still fns.
                i = start + 1;
                continue;
            }
        }
        i += 1;
    }
    items
}

/// One field write: `expr.field = ...`, `expr.field += ...`, or a
/// mutating method applied to a field (`expr.field.insert(..)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldWrite {
    /// The written field's name.
    pub field: String,
    /// 1-based line of the write.
    pub line: u32,
    /// Token index of the field identifier.
    pub idx: usize,
    /// For direct assignments, the method is `None`; for mutations
    /// through a method call (`.field.push(..)`), the method's name.
    pub via_method: Option<String>,
}

/// Token ranges (start..end, token indices) of `#[cfg(test)] mod ... {}`
/// bodies. The dataflow rules skip these: in-source unit tests poke
/// kernel state directly by design.
pub fn test_mod_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        let is_cfg_test = toks[i].is_ident("cfg")
            && toks[i + 1].is_punct("(")
            && toks[i + 2].is_ident("test")
            && toks[i + 3].is_punct(")");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan a short window forward for `mod <name> {` (skipping the
        // closing `]` of the attribute and any visibility keywords).
        let mut j = i + 4;
        let window_end = (j + 8).min(toks.len());
        while j < window_end {
            if toks[j].is_ident("mod") {
                // `mod name {` or `mod name;` (out-of-line test mods
                // have no body here).
                if let Some(open) = toks.get(j + 2) {
                    if open.is_punct("{") {
                        let end = match_brace(toks, j + 2);
                        ranges.push((j + 2, end));
                        j = end;
                    }
                }
                break;
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    ranges
}

/// Is token index `idx` inside any of `ranges`?
pub fn in_ranges(idx: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(s, e)| idx >= s && idx < e)
}

/// Mutating container/collection methods: applying one of these to a
/// field counts as writing that field.
const MUTATORS: [&str; 14] = [
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_first",
    "pop_front",
    "pop_back",
    "extend",
    "clear",
    "drain",
    "retain",
    "append",
];

/// Every field write in `toks[start..end]`.
///
/// Three shapes are recognised, all anchored on `.` + identifier:
///
/// * `x.f = v`   — plain assignment (`==` comparison is excluded);
/// * `x.f += v`  — compound assignment (any `op=` shape; the lexer
///   emits multi-character operators one `Punct` at a time);
/// * `x.f.m(..)` — mutation through a method in [`MUTATORS`].
///
/// Reads (`let y = x.f`, `x.f == v`, `x.f.len()`) are not writes.
pub fn field_writes(toks: &[Tok], start: usize, end: usize) -> Vec<FieldWrite> {
    let mut out = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        if !(toks[i].kind == TokKind::Ident && i > start && toks[i - 1].is_punct(".")) {
            continue;
        }
        let field = toks[i].text.clone();
        let line = toks[i].line;
        // `.f.m(` — a mutator applied directly to the field.
        if let (Some(dot), Some(m), Some(paren)) = (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
        {
            if dot.is_punct(".")
                && m.kind == TokKind::Ident
                && paren.is_punct("(")
                && MUTATORS.contains(&m.text.as_str())
            {
                out.push(FieldWrite {
                    field,
                    line,
                    idx: i,
                    via_method: Some(m.text.clone()),
                });
                continue;
            }
        }
        // `.f =` (not `==`) or `.f <op>= `.
        let Some(n1) = toks.get(i + 1) else { continue };
        let direct = n1.is_punct("=") && !toks.get(i + 2).is_some_and(|t| t.is_punct("="));
        let compound = {
            const OPS: [&str; 9] = ["+", "-", "*", "/", "%", "|", "&", "^", "<"];
            let one = OPS.contains(&n1.text.as_str())
                && n1.kind == TokKind::Punct
                && toks.get(i + 2).is_some_and(|t| t.is_punct("="));
            // `<<=` / `>>=`: two shift chars then `=`.
            let two = (n1.is_punct("<") || n1.is_punct(">"))
                && toks.get(i + 2).is_some_and(|t| t.text == n1.text)
                && toks.get(i + 3).is_some_and(|t| t.is_punct("="));
            // `x.f < y` comparison guard: `<` followed by `=` is `<=`,
            // a comparison, not an assignment — require the token after
            // the `=` of a single-char compound not to make it `<=`.
            if one && (n1.is_punct("<")) {
                two
            } else {
                one || two
            }
        };
        if direct || compound {
            out.push(FieldWrite {
                field,
                line,
                idx: i,
                via_method: None,
            });
        }
    }
    out
}

/// Every identifier mentioned as a field/method access (`.name`) in
/// `toks[start..end]`, deduplicated. The snapshot-coverage rule treats
/// a mention anywhere in the builder's transitive body as coverage.
pub fn dot_mentions(toks: &[Tok], start: usize, end: usize) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    let end = end.min(toks.len());
    for i in start.max(1)..end {
        if toks[i].kind == TokKind::Ident && toks[i - 1].is_punct(".") {
            out.insert(toks[i].text.clone());
        }
    }
    out
}

/// Index one past the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Every call site in `toks[range]`: an identifier directly followed by
/// `(`. Macro invocations (`name!(...)`) and `fn` definitions are not
/// calls and are excluded; `a.method(..)` and `path::func(..)` both
/// record the final name.
pub fn calls_in(toks: &[Tok], start: usize, end: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    let end = end.min(toks.len());
    for i in start..end {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // Definition, not a call.
        if i > start && toks[i - 1].is_ident("fn") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        if next.is_punct("(") {
            calls.push(CallSite {
                name: toks[i].text.clone(),
                line: toks[i].line,
            });
        }
    }
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_their_calls() {
        let toks = lex(
            "pub fn alpha(w: &mut World) -> u32 { beta(w); w.charge(1, 2); 0 }\n\
             fn beta(w: &mut World) { format!(\"no{}\", 1); }\n\
             trait T { fn decl(&self); }\n",
        );
        let items = fn_items(&toks);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);

        let alpha = &items[0];
        let calls = calls_in(&toks, alpha.body_start, alpha.body_end);
        let called: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert!(called.contains(&"beta"));
        assert!(called.contains(&"charge"));

        let beta = &items[1];
        let calls = calls_in(&toks, beta.body_start, beta.body_end);
        // `format!` is a macro, not a call — but the linter sees the
        // ident before `!` has no `(` directly after it.
        assert!(calls.iter().all(|c| c.name != "format"));
    }

    #[test]
    fn signature_range_covers_the_parameter_list() {
        let toks = lex("pub fn sys_open(cx: &mut SysCtx<'_>, path: &str) -> SyscallResult { x() }");
        let items = fn_items(&toks);
        assert_eq!(items.len(), 1);
        let sig = &toks[items[0].sig_start..items[0].body_start];
        assert!(sig.iter().any(|t| t.is_ident("SysCtx")));
        assert!(sig.iter().all(|t| !t.is_ident("x")), "body excluded");
    }

    #[test]
    fn nested_functions_are_found() {
        let toks = lex("fn outer() { fn inner() { charge(); } inner(); }");
        let items = fn_items(&toks);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }

    #[test]
    fn field_writes_cover_assignment_shapes() {
        let toks = lex(
            "fn f(m: &mut Machine) {\n\
                 m.busy = t;\n\
                 p.sig_pending |= bit;\n\
                 m.peak <<= 1;\n\
                 m.timers.push(x);\n\
                 if m.now == t { read(m.now); }\n\
                 let _ = m.run_queue.len();\n\
                 if m.depth <= 3 { }\n\
             }",
        );
        let w = field_writes(&toks, 0, toks.len());
        let names: Vec<(&str, Option<&str>)> = w
            .iter()
            .map(|f| (f.field.as_str(), f.via_method.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("busy", None),
                ("sig_pending", None),
                ("peak", None),
                ("timers", Some("push")),
            ]
        );
        assert_eq!(w[0].line, 2);
    }

    #[test]
    fn reads_and_comparisons_are_not_writes() {
        let toks = lex("fn f() { if a.state == Runnable { b.push(a.state); } let x = c.f; }");
        assert!(field_writes(&toks, 0, toks.len()).is_empty());
    }

    #[test]
    fn test_mod_ranges_cover_cfg_test_modules() {
        let toks = lex(
            "fn shipped() { p.state = Runnable; }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { p.state = Runnable; }\n\
             }\n",
        );
        let ranges = test_mod_ranges(&toks);
        assert_eq!(ranges.len(), 1);
        let writes = field_writes(&toks, 0, toks.len());
        assert_eq!(writes.len(), 2);
        assert!(!in_ranges(writes[0].idx, &ranges), "shipped write outside");
        assert!(in_ranges(writes[1].idx, &ranges), "test write inside");
    }

    #[test]
    fn dot_mentions_collect_field_accesses() {
        let toks = lex("fn snap(w: &World) { go(w.finished.len(), m.stats, fs_hash(&m.fs)); }");
        let m = dot_mentions(&toks, 0, toks.len());
        for f in ["finished", "stats", "fs", "len"] {
            assert!(m.contains(f), "missing {f}");
        }
        assert!(!m.contains("snap"));
    }

    #[test]
    fn where_clauses_and_return_types_are_skipped() {
        let toks = lex("fn g<T: Clone>(x: T) -> Vec<T> where T: Default { work(x) }");
        let items = fn_items(&toks);
        assert_eq!(items.len(), 1);
        let calls = calls_in(&toks, items[0].body_start, items[0].body_end);
        assert_eq!(calls, vec![CallSite { name: "work".into(), line: 1 }]);
    }
}
