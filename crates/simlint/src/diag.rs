//! Diagnostics: what a rule reports and how it prints.

use core::fmt;

/// One finding: a contract violation at a `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/ukernel/src/machine.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule identifier (`determinism`, `simtime-charging`, ...).
    pub rule: &'static str,
    /// The offending identifier or literal, used for allowlist scoping.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/ukernel/src/machine.rs".into(),
            line: 105,
            rule: "determinism",
            subject: "HashSet".into(),
            message: "HashSet iterates in arbitrary order".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/ukernel/src/machine.rs:105: [determinism] HashSet iterates in arbitrary order"
        );
    }
}
