//! Diagnostics: what a rule reports and how it prints.

use core::fmt;

/// One finding: a contract violation at a `file:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/ukernel/src/machine.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule identifier (`determinism`, `simtime-charging`, ...).
    pub rule: &'static str,
    /// The offending identifier or literal, used for allowlist scoping.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the ISSUE 7 machine-readable record:
    /// `{"rule","file","line","symbol","reason"}`. Hand-rolled (no
    /// serde, per the offline vendored-stub policy); field values are
    /// escaped for `"` and `\`, which is all our messages can contain.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"symbol\":\"{}\",\"reason\":\"{}\"}}",
            esc(self.rule),
            esc(&self.file),
            self.line,
            esc(&self.subject),
            esc(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_file_line_rule_message() {
        let d = Diagnostic {
            file: "crates/ukernel/src/machine.rs".into(),
            line: 105,
            rule: "determinism",
            subject: "HashSet".into(),
            message: "HashSet iterates in arbitrary order".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/ukernel/src/machine.rs:105: [determinism] HashSet iterates in arbitrary order"
        );
    }

    #[test]
    fn json_record_has_the_issue_schema() {
        let d = Diagnostic {
            file: "crates/ukernel/src/world.rs".into(),
            line: 7,
            rule: "wake-poke",
            subject: "sys_alarm".into(),
            message: "says \"poke\"".into(),
        };
        assert_eq!(
            d.to_json(),
            "{\"rule\":\"wake-poke\",\"file\":\"crates/ukernel/src/world.rs\",\
             \"line\":7,\"symbol\":\"sys_alarm\",\"reason\":\"says \\\"poke\\\"\"}"
        );
    }
}
