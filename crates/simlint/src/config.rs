//! `simlint.toml`: per-rule allowlists with mandatory justifications.
//!
//! The config is a sequence of `[[allow]]` tables:
//!
//! ```toml
//! # Host-side wall-clock measurement; never touches simulated state.
//! [[allow]]
//! rule = "determinism"
//! path = "crates/bench/src/hostclock.rs"
//! ident = "Instant"
//! reason = "host-side wall-clock measurement helper"
//! ```
//!
//! `rule` and `path` are required; `ident` optionally narrows the entry
//! to one identifier/literal so that, say, allowing `Instant` in a file
//! does not also allow `HashMap` there. Every entry must carry a
//! justification — a non-empty `reason` — and loading fails otherwise:
//! an unexplained exemption is itself a contract violation. The parser
//! is a deliberately tiny TOML subset (array-of-tables headers, string
//! values, `#` comments), hand-rolled like the lexer so the crate stays
//! dependency-free.

use crate::diag::Diagnostic;

/// One allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id this entry silences.
    pub rule: String,
    /// Workspace-relative file path it applies to.
    pub path: String,
    /// Optional: only this identifier/literal (diagnostic subject).
    pub ident: Option<String>,
    /// Why the exemption is sound. Required.
    pub reason: String,
    /// Line of the `[[allow]]` header, for error messages.
    pub line: u32,
}

impl AllowEntry {
    /// Does this entry silence `d`?
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule
            && self.path == d.file
            && self.ident.as_ref().is_none_or(|i| *i == d.subject)
    }
}

/// The parsed configuration.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// All allowlist entries, in file order.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses `simlint.toml` text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut allows: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    finish_entry(e, &mut allows)?;
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    ident: None,
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "simlint.toml:{lineno}: unknown table {line}; only [[allow]] is understood"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("simlint.toml:{lineno}: expected `key = \"value\"`"));
            };
            let key = key.trim();
            let value = parse_string(value.trim())
                .ok_or_else(|| format!("simlint.toml:{lineno}: {key} needs a quoted string"))?;
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "simlint.toml:{lineno}: `{key}` outside an [[allow]] table"
                ));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "ident" => entry.ident = Some(value),
                "reason" => entry.reason = value,
                other => {
                    return Err(format!("simlint.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(e) = current.take() {
            finish_entry(e, &mut allows)?;
        }
        Ok(Config { allows })
    }

    /// Splits `diags` into (kept, silenced-by-allowlist) and reports
    /// entries that silenced nothing (stale exemptions worth pruning).
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Filtered {
        let mut kept = Vec::new();
        let mut silenced = Vec::new();
        let mut used = vec![false; self.allows.len()];
        for d in diags {
            match self.allows.iter().position(|a| a.matches(&d)) {
                Some(i) => {
                    used[i] = true;
                    silenced.push(d);
                }
                None => kept.push(d),
            }
        }
        let stale = self
            .allows
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(a, _)| a.clone())
            .collect();
        Filtered {
            kept,
            silenced,
            stale,
        }
    }
}

/// Result of filtering diagnostics through the allowlist.
#[derive(Clone, Debug, Default)]
pub struct Filtered {
    /// Diagnostics no entry matched: these fail the run.
    pub kept: Vec<Diagnostic>,
    /// Diagnostics an entry silenced.
    pub silenced: Vec<Diagnostic>,
    /// Entries that silenced nothing this run.
    pub stale: Vec<AllowEntry>,
}

fn finish_entry(e: AllowEntry, out: &mut Vec<AllowEntry>) -> Result<(), String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!(
            "simlint.toml:{}: [[allow]] needs both `rule` and `path`",
            e.line
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "simlint.toml:{}: [[allow]] for {} in {} has no `reason`; \
             every exemption must carry a justification",
            e.line, e.rule, e.path
        ));
    }
    out.push(e);
    Ok(())
}

/// `"..."` with simple escapes; trailing same-line comments tolerated.
fn parse_string(v: &str) -> Option<String> {
    let rest = v.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => {
                let tail = chars.as_str().trim();
                if tail.is_empty() || tail.starts_with('#') {
                    return Some(out);
                }
                return None;
            }
            _ => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, subject: &str) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            line: 1,
            rule,
            subject: subject.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_filters() {
        let cfg = Config::parse(
            "# why: the bench crate measures host time\n\
             [[allow]]\n\
             rule = \"determinism\"\n\
             path = \"crates/bench/src/hostclock.rs\"\n\
             ident = \"Instant\"\n\
             reason = \"host-side measurement\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 1);
        let f = cfg.apply(vec![
            diag("determinism", "crates/bench/src/hostclock.rs", "Instant"),
            diag("determinism", "crates/bench/src/hostclock.rs", "HashMap"),
            diag("determinism", "crates/ukernel/src/machine.rs", "Instant"),
        ]);
        assert_eq!(f.silenced.len(), 1, "only the scoped ident is silenced");
        assert_eq!(f.kept.len(), 2);
        assert!(f.stale.is_empty());
    }

    #[test]
    fn entries_without_justification_are_rejected() {
        let err = Config::parse(
            "[[allow]]\nrule = \"determinism\"\npath = \"crates/x/src/lib.rs\"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "got: {err}");
    }

    #[test]
    fn stale_entries_are_reported() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"determinism\"\npath = \"a.rs\"\nreason = \"obsolete\"\n",
        )
        .unwrap();
        let f = cfg.apply(vec![]);
        assert_eq!(f.stale.len(), 1);
    }

    #[test]
    fn unknown_keys_and_tables_error() {
        assert!(Config::parse("[[allow]]\nbogus = \"x\"\n").is_err());
        assert!(Config::parse("[lint]\n").is_err());
    }
}
