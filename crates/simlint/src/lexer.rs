//! A small Rust lexer: just enough tokens for the invariant rules.
//!
//! The lexer intentionally models a *subset* of the language: it
//! distinguishes identifiers, integer/float/string/char literals,
//! lifetimes and punctuation, and it skips comments and whitespace while
//! tracking line numbers. That is all the rules need — they reason about
//! identifier and literal tokens, never full expressions — and it keeps
//! the pass dependency-free (no `syn`, per the offline vendored-stub
//! policy).

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `charge`, ...).
    Ident,
    /// An integer literal; `value` holds the parsed magnitude when the
    /// literal fits in a `u128` (underscores and base prefixes handled).
    Int {
        /// Parsed value, if representable.
        value: Option<u128>,
    },
    /// A float literal (`1.5`, `2e3`).
    Float,
    /// A string or byte-string literal (contents not retained).
    Str,
    /// A character literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation. Multi-character operators are emitted one character
    /// at a time except `::`, which the path-aware rules need whole.
    Punct,
}

/// One token with its source text and 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// The parsed value of an integer literal, if any.
    pub fn int_value(&self) -> Option<u128> {
        match self.kind {
            TokKind::Int { value } => value,
            _ => None,
        }
    }
}

/// Lexes `src`, skipping comments and whitespace.
///
/// Unterminated constructs (a string running off the end of the file)
/// terminate the token stream early rather than erroring: the linter
/// runs on code that `rustc` has already accepted, so malformed input
/// only ever comes from fixture snippets in tests.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

/// Is `text` an exponent-form float like `1e3` or `2E-5`? Suffixed
/// integers (`27usize`) contain an `e` too, so the digits-exponent-digits
/// shape must be checked, not just the letter.
fn has_exponent(text: &str) -> bool {
    let Some(split) = text.find(['e', 'E']) else {
        return false;
    };
    let (mantissa, exp) = text.split_at(split);
    let exp = &exp[1..];
    let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
    !mantissa.is_empty()
        && mantissa.chars().all(|c| c.is_ascii_digit() || c == '_')
        && !exp.is_empty()
        && exp.chars().all(|c| c.is_ascii_digit() || c == '_')
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        // `src` is kept only so fixture snippets show up in panics.
        debug_assert!(self.src.len() >= self.chars.len());
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => self.lex_string(),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.lex_string(),
                '\'' => self.lex_quote(),
                _ if c.is_ascii_digit() => self.lex_number(),
                _ if c.is_alphanumeric() || c == '_' => self.lex_ident(),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Punct, "::".into(), line);
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn skip_block_comment(&mut self) {
        // Rust block comments nest.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Does the stream start with `r"`, `r#`, `b"`, `br"` or `br#`?
    fn starts_raw_or_byte_string(&self) -> bool {
        let mut i = 0;
        if self.peek(i) == Some('b') {
            i += 1;
        }
        if self.peek(i) == Some('r') {
            i += 1;
            matches!(self.peek(i), Some('"') | Some('#'))
        } else {
            // `b"..."` only: a bare identifier starting with b/r falls
            // through to `lex_ident` via the caller's guard.
            i == 1 && self.peek(i) == Some('"')
        }
    }

    fn lex_string(&mut self) {
        let line = self.line;
        // Optional b, optional r, optional #s.
        if self.peek(0) == Some('b') {
            self.bump();
        }
        let raw = self.peek(0) == Some('r');
        if raw {
            self.bump();
        }
        let mut hashes = 0usize;
        while raw && self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // Not actually a string (e.g. `r#foo` raw identifier): emit
            // what we consumed as punctuation and continue.
            self.push(TokKind::Punct, "#".repeat(hashes), line);
            return;
        }
        self.bump(); // Opening quote.
        loop {
            match self.bump() {
                None => break,
                Some('\\') if !raw => {
                    self.bump();
                }
                Some('"') => {
                    if !raw || hashes == 0 {
                        break;
                    }
                    // Need `"` followed by `hashes` `#`s to close.
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    /// A `'` starts either a char literal or a lifetime.
    fn lex_quote(&mut self) {
        let line = self.line;
        self.bump(); // The quote.
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // The escaped character (enough for \n, \', \\ ...).
                while let Some(c) = self.peek(0) {
                    // Covers \u{...} and \x7f tails.
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                // `'a'` is a char literal; `'a` (no closing quote right
                // after one ident) is a lifetime.
                let mut ident = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                    self.push(TokKind::Char, ident, line);
                } else {
                    self.push(TokKind::Lifetime, format!("'{ident}"), line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, String::new(), line);
            }
            None => {}
        }
    }

    fn lex_number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let radix = match (self.peek(0), self.peek(1)) {
            (Some('0'), Some('x')) | (Some('0'), Some('X')) => 16,
            (Some('0'), Some('o')) | (Some('0'), Some('O')) => 8,
            (Some('0'), Some('b')) | (Some('0'), Some('B')) => 2,
            _ => 10,
        };
        if radix != 10 {
            text.push(self.bump().unwrap());
            text.push(self.bump().unwrap());
        }
        let mut is_float = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && radix == 10 && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` is a float; `1..5` is a range and stops here.
                is_float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float || (radix == 10 && has_exponent(&text)) {
            self.push(TokKind::Float, text, line);
            return;
        }
        let digits: String = text
            .trim_start_matches("0x")
            .trim_start_matches("0X")
            .trim_start_matches("0o")
            .trim_start_matches("0O")
            .trim_start_matches("0b")
            .trim_start_matches("0B")
            .chars()
            .filter(|c| *c != '_')
            .take_while(|c| c.is_digit(radix))
            .collect();
        let value = u128::from_str_radix(&digits, radix).ok();
        self.push(TokKind::Int { value }, text, line);
    }

    fn lex_ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_paths_and_lines() {
        let toks = lex("use std::collections::HashMap;\nfn main() {}\n");
        let hm = toks.iter().find(|t| t.is_ident("HashMap")).unwrap();
        assert_eq!(hm.line, 1);
        let main = toks.iter().find(|t| t.is_ident("main")).unwrap();
        assert_eq!(main.line, 2);
        assert!(toks.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let b = b"HashMap bytes";
        "##;
        assert!(!idents(src).iter().any(|i| i == "HashMap"));
        assert!(idents(src).iter().any(|i| i == "let"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            2,
            "two char literals"
        );
    }

    #[test]
    fn integer_literal_values_across_bases() {
        let toks = lex("let a = 0o444; let b = 292; let c = 0x124; let d = 293u16;");
        let vals: Vec<u128> = toks.iter().filter_map(|t| t.int_value()).collect();
        assert_eq!(vals, vec![292, 292, 292, 293]);
    }

    #[test]
    fn suffixed_integers_are_not_floats() {
        let toks = lex("let n = 27usize; let f = 1e3;");
        assert_eq!(toks.iter().filter_map(|t| t.int_value()).next(), Some(27));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Float).count(), 1);
    }

    #[test]
    fn floats_and_ranges() {
        let toks = lex("let x = 1.5; for i in 0..10 {}");
        assert!(toks.iter().any(|t| t.kind == TokKind::Float));
        let ints: Vec<u128> = toks.iter().filter_map(|t| t.int_value()).collect();
        assert_eq!(ints, vec![0, 10]);
    }
}
