//! `simlint` — the workspace's invariant checker.
//!
//! Clippy knows Rust; it does not know this repo. The reproduction's
//! claims rest on contracts that no compiler checks:
//!
//! * **Determinism.** Two runs of the same scenario must be bit-for-bit
//!   identical — the icache coherence tests compare simulated clocks
//!   directly. Unordered containers and host clocks break this silently.
//! * **Simtime charging.** Every syscall handler must charge simulated
//!   time for its work, or the paper's figures quietly deflate.
//! * **Errno vocabulary.** Failures speak the named 4.2BSD `Errno`
//!   constants from `sysdefs`, never raw integers.
//! * **Magic literals.** The dump magics (0444/0445), `NOFILE` and the
//!   signal numbering live in `sysdefs`/`dumpfmt` only, so the dump
//!   writer and the command-side readers cannot drift apart.
//! * **Wake-poke discipline.** Under the event scheduler, every
//!   wake-condition mutation must reach a `poke_*`/`wake_queue`
//!   insert, or a blocked process stalls that the reference scan would
//!   have woken (DESIGN.md §12).
//! * **Snapshot coverage.** Every `World`/`Machine`/`MachineStats`
//!   field is folded into the determinism snapshot or declared
//!   pure-cache in `simlint.toml` with a reason — the Milanés
//!   exemption, made explicit.
//! * **Cross-machine coupling.** Syscall handlers must not index a
//!   foreign machine's state directly; `--coupling-report` inventories
//!   every such seam (world layer included) for the parallel-sim
//!   refactor.
//!
//! The pass hand-rolls a small Rust lexer and item visitor (no `syn`,
//! per the offline vendored-stub policy), runs each rule over the lexed
//! workspace, then filters the findings through the per-rule allowlist
//! in `simlint.toml` — where every entry must carry a justification.
//! `cargo run -p simlint --release` exits nonzero on any unallowlisted
//! diagnostic; ci.sh runs it between clippy and the bench smoke step.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod visitor;
pub mod workspace;

use std::path::Path;

pub use config::{Config, Filtered};
pub use diag::Diagnostic;

/// Lints the workspace at `root` with `cfg`, returning the allowlist-
/// filtered result.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Filtered, String> {
    let files = workspace::load_workspace(root)?;
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — wrong --root?",
            root.display()
        ));
    }
    Ok(cfg.apply(rules::run_all(&files)))
}

/// Renders the cross-machine coupling inventory for the workspace at
/// `root` — the JSON `simlint --coupling-report` prints and ci.sh
/// diffs against the checked-in `simlint.coupling.json`.
pub fn coupling_report(root: &Path) -> Result<String, String> {
    let files = workspace::load_workspace(root)?;
    Ok(rules::coupling::render_report(&rules::coupling::report(
        &files,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real workspace must lint clean: this is the same invocation
    /// ci.sh performs, kept as a test so `cargo test` alone catches a
    /// violation before CI does.
    #[test]
    fn real_workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let toml = std::fs::read_to_string(root.join("simlint.toml")).expect("simlint.toml");
        let cfg = Config::parse(&toml).expect("valid simlint.toml");
        let filtered = lint_workspace(&root, &cfg).expect("lint runs");
        assert!(
            filtered.kept.is_empty(),
            "workspace has invariant violations:\n{}",
            filtered
                .kept
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            filtered.stale.is_empty(),
            "stale simlint.toml entries: {:?}",
            filtered.stale
        );
    }
}
