//! The `simlint` binary: lint the workspace, print `file:line`
//! diagnostics, exit nonzero on any unallowlisted violation.
//!
//! Usage: `cargo run -p simlint --release [-- --root <dir>] [--json]
//! [--coupling-report]`. With no `--root` the current directory is used
//! (ci.sh runs from the workspace root).
//!
//! `--json` swaps the human `file:line` lines for one
//! `{"rule","file","line","symbol","reason"}` record per finding —
//! kept findings first, then allowlist-silenced ones marked by a
//! `"silenced by simlint.toml: "` reason prefix — so ci.sh can count
//! and ratchet against `simlint.baseline` without parsing prose. Exit
//! status is unchanged by the flag.
//!
//! `--coupling-report` prints the cross-machine coupling inventory
//! (see `rules::coupling`) and exits 0; it performs no linting.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{coupling_report, lint_workspace, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut coupling = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("simlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--coupling-report" => coupling = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: simlint [--root <workspace-dir>] [--json] [--coupling-report]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    if coupling {
        return match coupling_report(&root) {
            Ok(rendered) => {
                print!("{rendered}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simlint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let cfg = match std::fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        },
        // No allowlist is fine: everything is then a hard violation.
        Err(_) => Config::default(),
    };

    let filtered = match lint_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        for d in &filtered.kept {
            println!("{}", d.to_json());
        }
        for d in &filtered.silenced {
            let mut marked = d.clone();
            marked.message = format!("silenced by simlint.toml: {}", d.message);
            println!("{}", marked.to_json());
        }
    } else {
        for d in &filtered.kept {
            println!("{d}");
        }
    }
    // A stale entry is itself a failure: an exemption that matches
    // nothing is either obsolete (delete it) or mis-scoped (in which
    // case it is silently *not* covering what its author thought).
    for a in &filtered.stale {
        eprintln!(
            "simlint: stale simlint.toml entry (line {}): rule {} in {} matched nothing",
            a.line, a.rule, a.path
        );
    }
    if filtered.kept.is_empty() && filtered.stale.is_empty() {
        eprintln!(
            "simlint: clean ({} exemption{} applied)",
            filtered.silenced.len(),
            if filtered.silenced.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} violation(s), {} stale exemption(s)",
            filtered.kept.len(),
            filtered.stale.len()
        );
        ExitCode::FAILURE
    }
}
