//! The `simlint` binary: lint the workspace, print `file:line`
//! diagnostics, exit nonzero on any unallowlisted violation.
//!
//! Usage: `cargo run -p simlint --release [-- --root <dir>]`. With no
//! `--root` the current directory is used (ci.sh runs from the
//! workspace root).

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{lint_workspace, Config};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("simlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: simlint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = match std::fs::read_to_string(root.join("simlint.toml")) {
        Ok(text) => match Config::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        },
        // No allowlist is fine: everything is then a hard violation.
        Err(_) => Config::default(),
    };

    let filtered = match lint_workspace(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &filtered.kept {
        println!("{d}");
    }
    // A stale entry is itself a failure: an exemption that matches
    // nothing is either obsolete (delete it) or mis-scoped (in which
    // case it is silently *not* covering what its author thought).
    for a in &filtered.stale {
        eprintln!(
            "simlint: stale simlint.toml entry (line {}): rule {} in {} matched nothing",
            a.line, a.rule, a.path
        );
    }
    if filtered.kept.is_empty() && filtered.stale.is_empty() {
        eprintln!(
            "simlint: clean ({} exemption{} applied)",
            filtered.silenced.len(),
            if filtered.silenced.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} violation(s), {} stale exemption(s)",
            filtered.kept.len(),
            filtered.stale.len()
        );
        ExitCode::FAILURE
    }
}
