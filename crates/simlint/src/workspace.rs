//! Workspace discovery: which `.rs` files to lint and how to classify
//! them.
//!
//! Linted roots are `crates/`, `tests/` and `examples/`. `stubs/` is
//! excluded wholesale: those crates are API stand-ins for *external*
//! dependencies (criterion legitimately reads the host clock), so the
//! repo's simulation contracts do not apply to them. `target/` is build
//! output. `fixtures/` directories hold simlint's own seeded-violation
//! test trees (`crates/simlint/tests/fixtures/`), which exist to be
//! dirty — linting them would fail the real workspace on purpose-built
//! true positives.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok};

/// What part of a crate a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// `src/`: shipped code.
    Src,
    /// `tests/`: integration tests.
    Test,
    /// `benches/`: benchmarks.
    Bench,
    /// `examples/`: examples.
    Example,
}

/// One lexed source file plus its workspace coordinates.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Owning crate name (`ukernel`, ...); the root package's `tests/`
    /// and `examples/` report `process-migration`.
    pub crate_name: String,
    /// Which tree of the crate the file sits in.
    pub role: Role,
    /// The token stream.
    pub toks: Vec<Tok>,
}

/// Lexes every lintable `.rs` file under `root`.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    // Deterministic order (the determinism linter had better be
    // deterministic itself).
    paths.sort();
    let mut files = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .map_err(|_| "path outside root".to_string())?;
        let rel_path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (crate_name, role) = classify(&rel_path);
        let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        files.push(SourceFile {
            rel_path,
            crate_name,
            role,
            toks: lex(&text),
        });
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "stubs" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to (crate, role).
fn classify(rel_path: &str) -> (String, Role) {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 2
    {
        (parts[1].to_string(), &parts[2..])
    } else {
        // Root-package `tests/` and `examples/`.
        ("process-migration".to_string(), &parts[..])
    };
    let role = match rest.first().copied() {
        Some("tests") => Role::Test,
        Some("benches") => Role::Bench,
        Some("examples") => Role::Example,
        _ => Role::Src,
    };
    (crate_name, role)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/ukernel/src/machine.rs"),
            ("ukernel".to_string(), Role::Src)
        );
        assert_eq!(
            classify("crates/bench/benches/simulator.rs"),
            ("bench".to_string(), Role::Bench)
        );
        assert_eq!(
            classify("crates/pmig/tests/migration.rs"),
            ("pmig".to_string(), Role::Test)
        );
        assert_eq!(
            classify("tests/determinism.rs"),
            ("process-migration".to_string(), Role::Test)
        );
        assert_eq!(
            classify("examples/quickstart.rs"),
            ("process-migration".to_string(), Role::Example)
        );
    }

    #[test]
    fn fixture_trees_are_not_collected() {
        // The seeded-violation fixtures under crates/simlint/tests/
        // must never reach the real lint run.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let files = load_workspace(&root).expect("workspace loads");
        assert!(
            files.iter().all(|f| !f.rel_path.contains("/fixtures/")),
            "fixture files leaked into the lint set"
        );
    }
}
