//! Criterion benchmarks of the substrate itself: VM interpretation
//! throughput, the assembler, dump-format codecs, a.out parsing and
//! cross-machine path resolution.

use bench::interp::{self, Engine};
use criterion::{criterion_group, Criterion, Throughput};
use m68vm::{assemble, ICache, IsaLevel};
use std::hint::black_box;

fn bench_vm_interpreter(c: &mut Criterion) {
    // How many instructions per second does the interpreter manage on
    // the host? The headline number uses the production configuration
    // (icache + superblocks); the engine trio below isolates what each
    // layer buys over the per-step byte-window decoder. The measurement
    // loops live in `bench::interp`, shared with `figures interp`.
    let obj = interp::interp_loop();
    let icache = ICache::build(&obj.text, IsaLevel::Isa1);
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(interp::INSTRUCTIONS_PER_RUN));
    g.bench_function("interpret_500k_instructions", |b| {
        b.iter(|| black_box(interp::run_once(&obj, Engine::Superblock(&icache))))
    });
    g.bench_function("vm_superblock", |b| {
        b.iter(|| black_box(interp::run_once(&obj, Engine::Superblock(&icache))))
    });
    g.bench_function("vm_cached", |b| {
        b.iter(|| black_box(interp::run_once(&obj, Engine::Cached(&icache))))
    });
    g.bench_function("vm_uncached", |b| {
        b.iter(|| black_box(interp::run_once(&obj, Engine::Uncached)))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let src = pmig::workloads::TEST_PROGRAM;
    c.bench_function("assemble_test_program", |b| {
        b.iter(|| black_box(assemble(black_box(src)).unwrap()))
    });
}

fn bench_dump_codecs(c: &mut Criterion) {
    use dumpfmt::{FdRecord, FilesFile, SignalState, StackFile};
    use sysdefs::{Credentials, Gid, OpenFlags, TtyFlags, Uid};
    let mut fds = vec![FdRecord::Unused; sysdefs::NOFILE];
    for (i, f) in fds.iter_mut().enumerate().take(10) {
        *f = FdRecord::File {
            path: format!("/n/brick/u/alice/project/file{i}"),
            flags: OpenFlags::RDWR,
            offset: i as u64 * 4096,
        };
    }
    let files = FilesFile {
        host: "brick".into(),
        cwd: "/u/alice/project".into(),
        fds,
        tty_flags: TtyFlags::raw_noecho(),
    };
    let stack = StackFile {
        cred: Credentials::user(Uid(100), Gid(10)),
        stack: vec![0xAB; 16 * 1024],
        regs: [7; 18],
        sigs: SignalState::default(),
    };
    let files_bytes = files.encode().unwrap();
    let stack_bytes = stack.encode().unwrap();
    let mut g = c.benchmark_group("dumpfmt");
    g.bench_function("files_encode", |b| b.iter(|| black_box(files.encode())));
    g.bench_function("files_decode", |b| {
        b.iter(|| black_box(FilesFile::decode(black_box(&files_bytes)).unwrap()))
    });
    g.bench_function("stack_encode", |b| b.iter(|| black_box(stack.encode())));
    g.bench_function("stack_decode", |b| {
        b.iter(|| black_box(StackFile::decode(black_box(&stack_bytes)).unwrap()))
    });
    g.finish();
}

fn bench_aout(c: &mut Criterion) {
    let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
    let file = aout::encode_object(&obj);
    c.bench_function("aout_parse", |b| {
        b.iter(|| black_box(aout::parse_executable(black_box(&file)).unwrap()))
    });
}

fn bench_namei(c: &mut Criterion) {
    use sysdefs::Credentials;
    use ukernel::{KernelConfig, World};
    let mut w = World::new(KernelConfig::paper());
    let a = w.add_machine("brick", IsaLevel::Isa1);
    let _b = w.add_machine("brador", IsaLevel::Isa1);
    w.host_mkdir_p(1, "/u/alice/deep/tree/of/dirs").unwrap();
    w.host_write_file(1, "/u/alice/deep/tree/of/dirs/leaf", b"x")
        .unwrap();
    let cred = Credentials::root();
    let cwd = ukernel::FileRef {
        machine: a,
        ino: w.machine(a).fs.root(),
    };
    c.bench_function("namei_cross_machine", |b| {
        b.iter(|| {
            black_box(
                ukernel::namei::namei(
                    &w,
                    a,
                    &cred,
                    cwd,
                    black_box("/n/brador/u/alice/deep/tree/of/dirs/leaf"),
                    ukernel::namei::FollowLast::Yes,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_full_migration(c: &mut Criterion) {
    // The whole §4.2 story as one benchmark: how fast can the simulator
    // dump and restart a process (host time)?
    use pmig::commands::RestartArgs;
    use sysdefs::{Credentials, Gid, Uid};
    use ukernel::{KernelConfig, World};
    let mut g = c.benchmark_group("migration");
    g.sample_size(10);
    g.bench_function("dump_and_restart_cycle", |b| {
        b.iter(|| {
            let alice = Credentials::user(Uid(100), Gid(10));
            let mut w = World::new(KernelConfig::paper());
            let brick = w.add_machine("brick", IsaLevel::Isa1);
            let schooner = w.add_machine("schooner", IsaLevel::Isa1);
            let obj = assemble(pmig::workloads::TEST_PROGRAM).unwrap();
            w.install_program(brick, "/bin/testprog", &obj).unwrap();
            let (tty, _h) = w.add_terminal(brick);
            let pid = w
                .spawn_vm_proc(brick, "/bin/testprog", Some(tty), alice.clone())
                .unwrap();
            w.run_slices(50_000);
            let status = pmig::api::run_dumpproc(&mut w, brick, pid, alice.clone()).unwrap();
            assert_eq!(status, 0);
            let (tty2, _h2) = w.add_terminal(schooner);
            let new_pid = pmig::api::run_restart(
                &mut w,
                schooner,
                RestartArgs {
                    pid,
                    dump_host: Some("brick".into()),
                    demand: false,
                },
                Some(tty2),
                alice,
            )
            .unwrap();
            black_box(new_pid)
        })
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_vm_interpreter,
    bench_assembler,
    bench_dump_codecs,
    bench_aout,
    bench_namei,
    bench_full_migration,
);

fn main() {
    if std::env::args().any(|a| a == "--json") {
        // Kept as an alias: `figures interp --json` is the canonical
        // writer of BENCH_interp.json (and what ci.sh runs).
        let report = interp::InterpReport::measure();
        let text = bench::json::to_string_pretty(&report.to_json());
        // Always land at the workspace root, independent of the cwd
        // cargo gives the bench binary.
        let dest =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interp.json");
        std::fs::write(&dest, &text).expect("write BENCH_interp.json");
        println!("{text}");
        return;
    }
    simulator();
}
