//! Criterion benchmarks: one per paper figure (host-time profile of the
//! scenario that regenerates it) plus the ablations.
//!
//! The *simulated-time* series the paper plots come from the `figures`
//! binary; these benchmarks track how expensive the scenarios themselves
//! are to run, guarding the simulator's performance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig1_syscalls(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("open_close_overhead", |b| {
        b.iter(|| black_box(bench::fig1()))
    });
    g.finish();
}

fn bench_fig2_dump(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("sigquit_sigdump_dumpproc", |b| {
        b.iter(|| black_box(bench::fig2()))
    });
    g.finish();
}

fn bench_fig3_restart(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("execve_restproc_restart", |b| {
        b.iter(|| black_box(bench::fig3()))
    });
    g.finish();
}

fn bench_fig4_migrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("migrate_all_placements", |b| {
        b.iter(|| black_box(bench::fig4()))
    });
    g.finish();
}

fn bench_ablation_daemon(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("daemon_vs_rsh", |b| {
        b.iter(|| black_box(bench::ablation_daemon()))
    });
    g.bench_function("name_strings", |b| {
        b.iter(|| black_box(bench::ablation_names()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1_syscalls,
    bench_fig2_dump,
    bench_fig3_restart,
    bench_fig4_migrate,
    bench_ablation_daemon,
);
criterion_main!(figures);
