//! Hand-rolled JSON emission for the figure/bench harness.
//!
//! The offline build has no `serde`/`serde_json` (see `stubs/README.md`);
//! the harness only ever *writes* JSON, so a small value tree plus a
//! field-listing macro per row struct covers everything.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug)]
pub enum Json {
    Str(String),
    Num(f64),
    Int(i64),
    UInt(u64),
    Bool(bool),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Conversion into a [`Json`] tree; implemented for the row structs via
/// [`impl_to_json!`] and for primitives/collections here.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_int {
    ($($t:ty => $variant:ident as $wide:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::$variant(*self as $wide)
            }
        }
    )*};
}

to_json_int!(u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64, usize => UInt as u64,
             i16 => Int as i64, i32 => Int as i64, i64 => Int as i64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(Fig1Row { syscall, original_ms, ... });`
macro_rules! impl_to_json {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

pub(crate) use impl_to_json;

impl std::fmt::Display for Json {
    /// Compact rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl Json {
    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Num(n) => {
                if n.is_finite() {
                    // Keep integral floats readable and round-trippable.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", n);
                    } else {
                        let _ = write!(out, "{}", n);
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Pretty-prints any [`ToJson`] value (rows print as a JSON array).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nesting() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n".into())),
            ("xs".into(), Json::Arr(vec![Json::Int(-3), Json::UInt(7), Json::Bool(true)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"a\"b\\c\n","xs":[-3,7,true],"empty":[]}"#
        );
    }

    #[test]
    fn floats_round_trip_readably() {
        assert_eq!(Json::Num(1.0).to_string(), "1.0");
        assert_eq!(Json::Num(1.25).to_string(), "1.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_indents() {
        let v = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }
}
