//! The evaluation harness: every figure in the paper's §6, plus the
//! ablations from DESIGN.md, as reusable scenario functions.
//!
//! Each `figN()` function builds a fresh world, runs the paper's §6
//! measurement procedure, and returns the series the paper plots —
//! simulated milliseconds and the normalised ratios. The `figures`
//! binary prints them (and JSON for EXPERIMENTS.md); the criterion
//! benches re-run them under the host-time profiler.

pub mod hostclock;
pub mod interp;
pub mod json;
pub mod scenarios;

pub use scenarios::{
    ablation_checkpoint, ablation_daemon, ablation_loadbal, ablation_names, ablation_virt,
    cluster, cluster_soak, fault_soak, fig1, fig2, fig3, fig4, ClusterRow, ClusterSoakRow,
    FaultSoakRow, Fig1Row, Fig2Row, Fig3Row, Fig4Row,
};
