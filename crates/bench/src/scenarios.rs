//! Scenario implementations for Figures 1-4 and the ablations.

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::{api, workloads};
use crate::json::impl_to_json;
use simtime::{SimDuration, SimTime};
use sysdefs::{Credentials, Gid, Pid, Signal, Uid};
use ukernel::{KernelConfig, World};

fn alice() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn ms(d: SimDuration) -> f64 {
    d.as_millis_f64()
}

// ---------------------------------------------------------------------
// Figure 1: overhead of the modified system calls.
// ---------------------------------------------------------------------

/// One bar pair of Figure 1.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// Which system call(s).
    pub syscall: String,
    /// Per-operation system CPU time on the original kernel (ms).
    pub original_ms: f64,
    /// Per-operation system CPU time on the modified kernel (ms).
    pub modified_ms: f64,
    /// modified / original.
    pub ratio: f64,
    /// The paper's measured ratio.
    pub paper_ratio: f64,
}

/// Runs one Figure-1 workload and returns the marginal system CPU time
/// per operation set, in simulated time.
fn fig1_measure(config: &KernelConfig, source_of: impl Fn(u32) -> String) -> SimDuration {
    let run = |iters: u32| -> SimDuration {
        let mut w = World::new(config.clone());
        let m = w.add_machine("brick", IsaLevel::Isa1);
        w.host_write_file(m, "/tmp/f", b"x").unwrap();
        let obj = assemble(&source_of(iters)).expect("assemble fig1 workload");
        w.install_program(m, "/bin/bench", &obj).unwrap();
        let pid = w.spawn_vm_proc(m, "/bin/bench", None, alice()).unwrap();
        let info = w.run_until_exit(m, pid, 10_000_000).expect("bench exits");
        assert_eq!(info.status, 0, "fig1 workload must succeed");
        info.stime
    };
    // Marginal cost: difference between 110 and 10 iterations, per
    // operation — this cancels program start-up exactly, like the
    // paper's per-iteration averaging.
    let hi = run(110);
    let lo = run(10);
    SimDuration::micros(hi.saturating_sub(lo).as_micros() / 100)
}

/// Figure 1: "our measurements show an overhead of about forty per cent
/// (44% for open()/close(), 36% for chdir())".
pub fn fig1() -> Vec<Fig1Row> {
    let orig = KernelConfig::original();
    let paper = KernelConfig::paper();
    let mut rows = Vec::new();
    let oc_orig = fig1_measure(&orig, workloads::openclose_program);
    let oc_mod = fig1_measure(&paper, workloads::openclose_program);
    rows.push(Fig1Row {
        syscall: "open()/close() pair".into(),
        original_ms: ms(oc_orig),
        modified_ms: ms(oc_mod),
        ratio: oc_mod.ratio_to(oc_orig),
        paper_ratio: 1.44,
    });
    let cd_orig = fig1_measure(&orig, workloads::chdir_program);
    let cd_mod = fig1_measure(&paper, workloads::chdir_program);
    rows.push(Fig1Row {
        syscall: "chdir() triple".into(),
        original_ms: ms(cd_orig),
        modified_ms: ms(cd_mod),
        ratio: cd_mod.ratio_to(cd_orig),
        paper_ratio: 1.36,
    });
    rows
}

// ---------------------------------------------------------------------
// Figure 2: dumping a process.
// ---------------------------------------------------------------------

/// One bar pair of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// SIGQUIT, SIGDUMP or dumpproc.
    pub case: String,
    /// CPU time (ms).
    pub cpu_ms: f64,
    /// Real time (ms).
    pub real_ms: f64,
    /// CPU normalised to SIGQUIT.
    pub cpu_ratio: f64,
    /// Real normalised to SIGQUIT.
    pub real_ratio: f64,
    /// The paper's approximate ratios (read off Fig. 2).
    pub paper_cpu_ratio: f64,
    /// Paper real-time ratio.
    pub paper_real_ratio: f64,
}

/// Builds the standard victim: the §6.2 test program stopped at its
/// first input prompt.
fn victim_at_first_prompt(w: &mut World, m: usize) -> (Pid, tty::TtyHandle) {
    let obj = assemble(workloads::TEST_PROGRAM).unwrap();
    w.install_program(m, "/bin/testprog", &obj).unwrap();
    let (tty, handle) = w.add_terminal(m);
    let pid = w
        .spawn_vm_proc(m, "/bin/testprog", Some(tty), alice())
        .unwrap();
    w.run_slices(50_000);
    (pid, handle)
}

/// Measures one Figure-2 kill variant: (cpu, real) in simulated time.
fn fig2_measure(kind: &str) -> (SimDuration, SimDuration) {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    let (victim, _handle) = victim_at_first_prompt(&mut w, m);
    let victim_cpu_before = w.proc_ref(m, victim).unwrap().cpu_time();
    let t0 = w.machine(m).now;
    match kind {
        "SIGQUIT" | "SIGDUMP" => {
            let sig = if kind == "SIGQUIT" {
                Signal::SIGQUIT
            } else {
                Signal::SIGDUMP
            };
            let killer = w.spawn_native_proc(
                m,
                "kill",
                None,
                alice(),
                Box::new(move |sys| match sys.kill(victim, sig) {
                    Ok(()) => 0,
                    Err(e) => e.as_u16() as u32,
                }),
            );
            let vinfo = w.run_until_exit(m, victim, 1_000_000).expect("victim dies");
            let kinfo = w
                .run_until_exit(m, killer, 1_000_000)
                .expect("killer exits");
            let cpu = vinfo.cpu().saturating_sub(victim_cpu_before) + kinfo.cpu();
            let real = vinfo.ended.since(t0);
            (cpu, real)
        }
        "dumpproc" => {
            let cmd = w.spawn_native_proc(
                m,
                "dumpproc",
                None,
                alice(),
                Box::new(move |sys| match pmig::dumpproc(sys, victim) {
                    Ok(()) => 0,
                    Err(e) => e.as_u16() as u32,
                }),
            );
            let dinfo = w.run_until_exit(m, cmd, 2_000_000).expect("dumpproc exits");
            assert_eq!(dinfo.status, 0, "dumpproc must succeed");
            let vinfo = w.finished[&(m, victim.as_u32())].clone();
            let cpu = vinfo.cpu().saturating_sub(victim_cpu_before) + dinfo.cpu();
            let real = dinfo.ended.since(t0);
            (cpu, real)
        }
        other => unreachable!("unknown fig2 case {other}"),
    }
}

/// Figure 2: SIGDUMP ≈ 3x SIGQUIT; dumpproc ≈ 4x CPU / 6x real.
pub fn fig2() -> Vec<Fig2Row> {
    let (q_cpu, q_real) = fig2_measure("SIGQUIT");
    let mut rows = vec![Fig2Row {
        case: "SIGQUIT".into(),
        cpu_ms: ms(q_cpu),
        real_ms: ms(q_real),
        cpu_ratio: 1.0,
        real_ratio: 1.0,
        paper_cpu_ratio: 1.0,
        paper_real_ratio: 1.0,
    }];
    for (case, paper_cpu, paper_real) in [("SIGDUMP", 3.0, 3.0), ("dumpproc", 4.0, 6.0)] {
        let (cpu, real) = fig2_measure(case);
        rows.push(Fig2Row {
            case: case.into(),
            cpu_ms: ms(cpu),
            real_ms: ms(real),
            cpu_ratio: cpu.ratio_to(q_cpu),
            real_ratio: real.ratio_to(q_real),
            paper_cpu_ratio: paper_cpu,
            paper_real_ratio: paper_real,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 3: restarting a process.
// ---------------------------------------------------------------------

/// One bar pair of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// execve(), rest_proc() or restart.
    pub case: String,
    /// CPU time (ms).
    pub cpu_ms: f64,
    /// Real time (ms).
    pub real_ms: f64,
    /// CPU normalised to execve().
    pub cpu_ratio: f64,
    /// Real normalised to execve().
    pub real_ratio: f64,
    /// Paper CPU ratio (approximate, read off Fig. 3).
    pub paper_cpu_ratio: f64,
    /// Paper real ratio.
    pub paper_real_ratio: f64,
}

/// Figure 3: rest_proc() slightly above execve(); the restart
/// application ≈ 5x CPU / 6x real.
pub fn fig3() -> Vec<Fig3Row> {
    // Shared setup: dump the test program so the a.outXXXXX exists.
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    let (victim, _handle) = victim_at_first_prompt(&mut w, m);
    let status = api::run_dumpproc(&mut w, m, victim, alice()).expect("dumpproc runs");
    assert_eq!(status, 0);
    let names = dumpfmt::dump_file_names(victim);

    // execve() of the dumped a.out, timed inside the kernel.
    let aout = names.a_out.clone();
    let (tty_e, _he) = w.add_terminal(m);
    let runner = w.spawn_native_proc(
        m,
        "execrun",
        Some(tty_e),
        alice(),
        Box::new(move |sys| {
            let e = sys.execve(&aout);
            e.as_u16() as u32
        }),
    );
    w.run_slices(200_000);
    let exec_t = w.machine(m).last_execve.expect("execve timed");
    // The exec'ed program now runs from scratch; stop it.
    w.host_post_signal(m, runner, Signal::SIGKILL);
    w.run_slices(50_000);

    // restart (and rest_proc inside it), timed both ways.
    let (tty_r, _hr) = w.add_terminal(m);
    let restored = api::run_restart(
        &mut w,
        m,
        RestartArgs {
            pid: victim,
            dump_host: None,
            demand: false,
        },
        Some(tty_r),
        alice(),
    )
    .expect("restart succeeds");
    let rest_t = w.machine(m).last_rest_proc.expect("rest_proc timed");
    let caller_t = w.machine(m).last_rest_caller.expect("restart app timed");
    w.host_post_signal(m, restored, Signal::SIGKILL);
    w.run_slices(50_000);

    let restart_cpu = rest_t.cpu + caller_t.cpu;
    let restart_real = rest_t.real + caller_t.real;
    vec![
        Fig3Row {
            case: "execve()".into(),
            cpu_ms: ms(exec_t.cpu),
            real_ms: ms(exec_t.real),
            cpu_ratio: 1.0,
            real_ratio: 1.0,
            paper_cpu_ratio: 1.0,
            paper_real_ratio: 1.0,
        },
        Fig3Row {
            case: "rest_proc()".into(),
            cpu_ms: ms(rest_t.cpu),
            real_ms: ms(rest_t.real),
            cpu_ratio: rest_t.cpu.ratio_to(exec_t.cpu),
            real_ratio: rest_t.real.ratio_to(exec_t.real),
            paper_cpu_ratio: 1.2,
            paper_real_ratio: 1.2,
        },
        Fig3Row {
            case: "restart".into(),
            cpu_ms: ms(restart_cpu),
            real_ms: ms(restart_real),
            cpu_ratio: restart_cpu.ratio_to(exec_t.cpu),
            real_ratio: restart_real.ratio_to(exec_t.real),
            paper_cpu_ratio: 5.0,
            paper_real_ratio: 6.0,
        },
    ]
}

// ---------------------------------------------------------------------
// Figure 4: the migrate application.
// ---------------------------------------------------------------------

/// One bar of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Where dumpproc and restart execute relative to the migrate
    /// command: L-L, L-R, R-L or R-R.
    pub case: String,
    /// Real time of the whole migration (ms).
    pub real_ms: f64,
    /// Normalised to the dumpproc+restart baseline.
    pub ratio: f64,
    /// Paper ratio (approximate; the text gives "as much as ten times"
    /// for the worst case, "almost half a minute").
    pub paper_ratio: f64,
}

/// Builds the two-machine world with a dumped-ready victim on brick.
fn fig4_world() -> (World, usize, usize, usize, Pid) {
    let mut w = World::new(KernelConfig::paper());
    let brick = w.add_machine("brick", IsaLevel::Isa1);
    let schooner = w.add_machine("schooner", IsaLevel::Isa1);
    let third = w.add_machine("third", IsaLevel::Isa1);
    let (victim, _h) = victim_at_first_prompt(&mut w, brick);
    (w, brick, schooner, third, victim)
}

/// The baseline: dumpproc then restart "on the appropriate machines",
/// no migrate wrapper. Returns total real time.
fn fig4_baseline() -> SimDuration {
    let (mut w, brick, schooner, _third, victim) = fig4_world();
    let t0 = w.machine(brick).now;
    let status = api::run_dumpproc(&mut w, brick, victim, alice()).unwrap();
    assert_eq!(status, 0);
    let dump_done = w.machine(brick).now;
    let (tty, _h) = w.add_terminal(schooner);
    api::run_restart(
        &mut w,
        schooner,
        RestartArgs {
            pid: victim,
            dump_host: Some("brick".into()),
            demand: false,
        },
        Some(tty),
        alice(),
    )
    .expect("baseline restart");
    let rt = w.machine(schooner).last_rest_proc.expect("timed");
    let ct = w.machine(schooner).last_rest_caller.expect("timed");
    dump_done.since(t0) + rt.real + ct.real
}

/// One migrate case. `from`/`to`/`cmd` pick the machines.
fn fig4_case(case: &str) -> SimDuration {
    let (mut w, brick, schooner, third, victim) = fig4_world();
    let (from, to, cmd_machine) = match case {
        "L-L" => (brick, brick, brick),
        "L-R" => (brick, schooner, brick),
        "R-L" => (brick, schooner, schooner),
        "R-R" => (brick, schooner, third),
        other => unreachable!("unknown fig4 case {other}"),
    };
    let from_name = w.machine(from).name.clone();
    let to_name = w.machine(to).name.clone();
    let cmd = w.spawn_native_proc(
        cmd_machine,
        "migrate",
        None,
        alice(),
        Box::new(
            move |sys| match pmig::migrate(sys, victim, &from_name, &to_name) {
                Ok(status) => status,
                Err(e) => e.as_u16() as u32,
            },
        ),
    );
    let info = w
        .run_until_exit(cmd_machine, cmd, 8_000_000)
        .expect("migrate exits");
    assert_eq!(info.status, 0, "migrate ({case}) must succeed");
    info.real()
}

/// Figure 4: migrate vs dumpproc+restart, by command placement.
pub fn fig4() -> Vec<Fig4Row> {
    let baseline = fig4_baseline();
    let mut rows = vec![Fig4Row {
        case: "dumpproc+restart".into(),
        real_ms: ms(baseline),
        ratio: 1.0,
        paper_ratio: 1.0,
    }];
    for (case, paper_ratio) in [("L-L", 1.3), ("L-R", 5.0), ("R-L", 6.0), ("R-R", 10.0)] {
        let real = fig4_case(case);
        rows.push(Fig4Row {
            case: case.into(),
            real_ms: ms(real),
            ratio: real.ratio_to(baseline),
            paper_ratio,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

/// A1: migrate over rsh vs over the §6.4 daemon (both halves remote).
#[derive(Clone, Debug)]
pub struct AblationDaemonRow {
    /// Transport used.
    pub transport: String,
    /// Real time (ms).
    pub real_ms: f64,
}

/// A1: rsh vs daemon transport for a remote-remote migration.
pub fn ablation_daemon() -> Vec<AblationDaemonRow> {
    let mut rows = Vec::new();
    for transport in ["rsh", "daemon"] {
        let (mut w, brick, schooner, third, victim) = fig4_world();
        let from_name = w.machine(brick).name.clone();
        let to_name = w.machine(schooner).name.clone();
        let use_daemon = transport == "daemon";
        let cmd = w.spawn_native_proc(
            third,
            "migrate",
            None,
            alice(),
            Box::new(move |sys| {
                let r = if use_daemon {
                    apps::migrate_via_daemon(sys, victim, &from_name, &to_name)
                } else {
                    pmig::migrate(sys, victim, &from_name, &to_name)
                };
                match r {
                    Ok(status) => status,
                    Err(e) => e.as_u16() as u32,
                }
            }),
        );
        let info = w
            .run_until_exit(third, cmd, 8_000_000)
            .expect("migrate exits");
        assert_eq!(info.status, 0);
        rows.push(AblationDaemonRow {
            transport: transport.into(),
            real_ms: ms(info.real()),
        });
    }
    rows
}

/// A2: does the pid-dependent program survive migration?
#[derive(Clone, Debug)]
pub struct AblationVirtRow {
    /// Kernel flavour.
    pub kernel: String,
    /// Exit status of the migrated pid-dependent program (0 = survived,
    /// 3 = lost its temp file).
    pub status: u32,
}

/// A2: §7 id virtualization on vs off, same-machine migration of the
/// pid-tempfile program.
pub fn ablation_virt() -> Vec<AblationVirtRow> {
    let mut rows = Vec::new();
    for (label, config) in [
        ("stock", KernelConfig::paper()),
        ("virtualized", KernelConfig::with_virtualized_ids()),
    ] {
        let mut w = World::new(config);
        let m = w.add_machine("brick", IsaLevel::Isa1);
        let obj = assemble(workloads::PID_TEMPFILE_PROGRAM).unwrap();
        w.install_program(m, "/bin/pidprog", &obj).unwrap();
        let (tty, handle) = w.add_terminal(m);
        let pid = w
            .spawn_vm_proc(m, "/bin/pidprog", Some(tty), alice())
            .unwrap();
        w.run_slices(50_000);
        handle.type_input("go\n");
        w.run_slices(50_000);
        let status = api::run_dumpproc(&mut w, m, pid, alice()).unwrap();
        assert_eq!(status, 0);
        let (tty2, handle2) = w.add_terminal(m);
        let new_pid = api::run_restart(
            &mut w,
            m,
            RestartArgs {
                pid,
                dump_host: None,
                demand: false,
            },
            Some(tty2),
            alice(),
        )
        .expect("restart runs");
        w.run_slices(100_000);
        handle2.type_input("go\n");
        w.run_slices(100_000);
        handle2.with(|t| t.close());
        let info = w.run_until_exit(m, new_pid, 1_000_000).expect("exits");
        rows.push(AblationVirtRow {
            kernel: label.into(),
            status: info.status,
        });
    }
    rows
}

/// A3: kernel memory for name strings, dynamic vs fixed-size.
#[derive(Clone, Debug)]
pub struct AblationNamesRow {
    /// Allocation strategy.
    pub strategy: String,
    /// Peak kernel bytes pinned by open-file name strings.
    pub peak_bytes: usize,
}

/// A3: the §5.1 dynamic-vs-fixed name-string memory argument.
pub fn ablation_names() -> Vec<AblationNamesRow> {
    let mut rows = Vec::new();
    for (label, fixed) in [("dynamic", false), ("fixed MAXPATHLEN", true)] {
        let mut config = KernelConfig::paper();
        config.fixed_name_strings = fixed;
        let mut w = World::new(config);
        let m = w.add_machine("brick", IsaLevel::Isa1);
        // Twenty processes each holding five open files with typical
        // short-ish names.
        for i in 0..20 {
            let holder = w.spawn_native_proc(
                m,
                "holder",
                None,
                Credentials::root(),
                Box::new(move |sys| {
                    sys.mkdir(&format!("/u/dir{i}"), 0o777).ok();
                    for j in 0..5 {
                        let path = format!("/u/dir{i}/data-file-{j}");
                        let _ = sys.creat(&path, 0o644);
                    }
                    // Hold them open while the measurement happens.
                    let _ = sys.sleep_us(5_000_000);
                    0
                }),
            );
            let _ = holder;
        }
        w.run_slices(200_000);
        let peak = w.machine(m).name_bytes_peak;
        w.run_until_time(w.machine(m).now + SimDuration::secs(10), 2_000_000);
        rows.push(AblationNamesRow {
            strategy: label.into(),
            peak_bytes: peak,
        });
    }
    rows
}

/// A4: checkpoint interval sweep.
#[derive(Clone, Debug)]
pub struct AblationCheckpointRow {
    /// Interval between snapshots (ms), 0 = no checkpointing.
    pub interval_ms: u64,
    /// Job completion time (ms).
    pub completion_ms: f64,
    /// Overhead vs the unprotected run (fraction).
    pub overhead: f64,
    /// Expected recomputation lost to a crash at a random instant (ms):
    /// half the interval with checkpoints, half the runtime without.
    pub expected_loss_ms: f64,
}

/// A4: snapshot cost vs recomputation saved, over the interval.
pub fn ablation_checkpoint() -> Vec<AblationCheckpointRow> {
    fn run_hog(interval_us: u64) -> SimDuration {
        let mut w = World::new(KernelConfig::paper());
        let m = w.add_machine("brick", IsaLevel::Isa1);
        let obj = assemble(&workloads::cpu_hog_program(300)).unwrap();
        w.install_program(m, "/bin/hog", &obj).unwrap();
        let pid = w.spawn_vm_proc(m, "/bin/hog", None, alice()).unwrap();
        let t0 = w.machine(m).now;
        if interval_us == 0 {
            w.run_until_exit(m, pid, 50_000_000).expect("hog exits");
            return w.machine(m).now.since(t0);
        }
        // Snapshot for the job's whole life: shorter intervals mean
        // more snapshots.
        let count = ((26_000_000 / interval_us) as u32).clamp(1, 12);
        let plan = apps::CheckpointPlan {
            pid,
            interval_us,
            count,
            dir: "/u/ck".into(),
        };
        let daemon = w.spawn_native_proc(
            m,
            "checkpointd",
            None,
            Credentials::root(),
            Box::new(move |sys| match apps::run_checkpointer(sys, &plan) {
                Ok(_) => 0,
                Err(e) => e.as_u16() as u32,
            }),
        );
        let dinfo = w.run_until_exit(m, daemon, 50_000_000).expect("daemon");
        assert_eq!(dinfo.status, 0, "checkpointer must succeed");
        // Let the final incarnation finish.
        for _ in 0..10_000 {
            let done = !w
                .machine(m)
                .procs
                .values()
                .any(|p| p.comm.contains("hog") || p.comm.starts_with("a.out"));
            if done {
                break;
            }
            w.run_slices(10_000);
        }
        w.machine(m).now.since(t0)
    }
    let base = run_hog(0);
    let mut rows = vec![AblationCheckpointRow {
        interval_ms: 0,
        completion_ms: ms(base),
        overhead: 0.0,
        expected_loss_ms: ms(base) / 2.0,
    }];
    for interval_ms in [2_000u64, 4_000, 8_000] {
        let total = run_hog(interval_ms * 1_000);
        rows.push(AblationCheckpointRow {
            interval_ms,
            completion_ms: ms(total),
            overhead: (ms(total) - ms(base)) / ms(base),
            expected_loss_ms: interval_ms as f64 / 2.0,
        });
    }
    rows
}

/// A5: load balancing makespan.
#[derive(Clone, Debug)]
pub struct AblationLoadbalRow {
    /// Scheduling policy.
    pub policy: String,
    /// Time until all jobs finish (ms).
    pub makespan_ms: f64,
    /// Migrations performed.
    pub migrations: usize,
}

/// A5: six CPU hogs on one of three machines, with and without the
/// balancer.
pub fn ablation_loadbal() -> Vec<AblationLoadbalRow> {
    fn build() -> World {
        let mut w = World::new(KernelConfig::paper());
        let a = w.add_machine("node0", IsaLevel::Isa1);
        let _ = w.add_machine("node1", IsaLevel::Isa1);
        let _ = w.add_machine("node2", IsaLevel::Isa1);
        let obj = assemble(&workloads::cpu_hog_program(80)).unwrap();
        w.install_program(a, "/bin/hog", &obj).unwrap();
        for _ in 0..6 {
            w.spawn_vm_proc(a, "/bin/hog", None, alice()).unwrap();
        }
        w
    }
    let all_done = |w: &World| -> bool {
        (0..w.machine_count()).all(|m| {
            !w.machine(m)
                .procs
                .values()
                .any(|p| p.comm.contains("hog") || p.comm.starts_with("a.out"))
        })
    };

    let mut w1 = build();
    while !all_done(&w1) {
        let t = w1.machine(0).now + SimDuration::secs(2);
        if w1.run_until_time(t, 50_000_000) == ukernel::RunOutcome::BudgetExhausted {
            break;
        }
    }
    let unbalanced = (0..3).map(|m| w1.machine(m).now).max().unwrap();

    let mut w2 = build();
    let lb = apps::LoadBalancer {
        min_age: SimDuration::millis(500),
        imbalance_threshold: 2,
        cred: Credentials::root(),
    };
    let recs = lb.run_balanced(&mut w2, 1_500_000, 300, all_done);
    let balanced = (0..3).map(|m| w2.machine(m).now).max().unwrap();

    vec![
        AblationLoadbalRow {
            policy: "unbalanced".into(),
            makespan_ms: ms(unbalanced.since(SimTime::BOOT)),
            migrations: 0,
        },
        AblationLoadbalRow {
            policy: "balanced".into(),
            makespan_ms: ms(balanced.since(SimTime::BOOT)),
            migrations: recs.len(),
        },
    ]
}

// ---------------------------------------------------------------------
// Fault soak: failure atomicity of migrate under injected faults.
// ---------------------------------------------------------------------

/// One row of the fault-injection soak matrix: a remote-remote `migrate`
/// run against one injection site, with the failure-atomicity invariant
/// ("exactly one live copy, no dump files left behind") measured after
/// the dust settles.
#[derive(Clone, Debug)]
pub struct FaultSoakRow {
    /// Injection case label (site, plus `-persistent` for an unbounded
    /// fault budget).
    pub case: String,
    /// The migrate command's exit status (0 = migrated).
    pub status: u32,
    /// Where the live copy ended up: `target`, `source` or `lost`.
    pub survivor: String,
    /// Faults actually injected, summed over all machines.
    pub injected: u64,
    /// Live copies of the victim afterwards — the invariant demands
    /// exactly 1.
    pub live_copies: usize,
    /// Dump files left in `/usr/tmp` on any machine afterwards — the
    /// invariant demands 0 (counted by the orphan reaper, which also
    /// removes them).
    pub dumps_left: usize,
}

/// Runs the fault matrix: every injection site against a remote-remote
/// migration (command on a third machine, the paper's worst case), each
/// with a bounded fault budget, plus one persistent-rsh case where the
/// transport never comes back.
pub fn fault_soak(seed: u64) -> Vec<FaultSoakRow> {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    let cases: [(&str, FaultSite, u32); 5] = [
        ("nfs", FaultSite::NfsOp, 3),
        ("rsh", FaultSite::Rsh, 1),
        ("middump", FaultSite::MidDumpCrash, 1),
        ("enospc", FaultSite::DumpEnospc, 1),
        ("rsh-persistent", FaultSite::Rsh, u32::MAX),
    ];
    let mut rows = Vec::new();
    for (label, site, max_hits) in cases {
        let (mut w, brick, schooner, third, victim) = fig4_world();
        w.faults = FaultPlan::seeded(seed).with(FaultSpec::always(site, max_hits));
        let from_name = w.machine(brick).name.clone();
        let to_name = w.machine(schooner).name.clone();
        let cmd = w.spawn_native_proc(
            third,
            "migrate",
            None,
            alice(),
            Box::new(
                move |sys| match pmig::migrate(sys, victim, &from_name, &to_name) {
                    Ok(status) => status,
                    Err(e) => e.as_u16() as u32,
                },
            ),
        );
        // Generous budget: injected NFS timeouts (2.1 s each) and the
        // engine's backoffs stretch the faulty runs well past Fig. 4.
        let info = w
            .run_until_exit(third, cmd, 60_000_000)
            .expect("migrate exits even under faults");
        let src_alive = w.proc_ref(brick, victim).is_some();
        let on_target = api::find_restarted(&w, schooner, victim).is_some();
        let back_on_source = api::find_restarted(&w, brick, victim).is_some();
        let live_copies = src_alive as usize + on_target as usize + back_on_source as usize;
        let survivor = if on_target {
            "target"
        } else if src_alive || back_on_source {
            "source"
        } else {
            "lost"
        };
        let injected: u64 = (0..w.machine_count())
            .map(|m| w.machine(m).stats.faults_injected)
            .sum();
        let dumps_left: usize = (0..w.machine_count())
            .map(|m| w.host_reap_orphan_dumps(m).len())
            .sum();
        rows.push(FaultSoakRow {
            case: label.into(),
            status: info.status,
            survivor: survivor.into(),
            injected,
            live_copies,
            dumps_left,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Cluster-scale scheduler bench: events/sec and migrations/sec as the
// installation grows, event-driven scheduler vs the reference scan.
// ---------------------------------------------------------------------

/// One (host count, scheduler) cell of the cluster bench.
#[derive(Clone, Debug)]
pub struct ClusterRow {
    /// Number of simulated hosts in the installation.
    pub hosts: u64,
    /// `event` (ready index + wait indexes) or `scan` (reference path).
    pub sched: String,
    /// Migrations the load-gradient policy completed.
    pub migrations: u64,
    /// Migration attempts the engine evicted after a pipeline failure.
    pub failures: u64,
    /// Host wall-clock spent in the migration phase, seconds.
    pub mig_host_secs: f64,
    /// Completed migrations per host second of the migration phase.
    pub migrations_per_sec: f64,
    /// Scheduling slices executed in the steady-state phase.
    pub slices: u64,
    /// Host wall-clock spent in the steady-state phase, seconds.
    pub host_secs: f64,
    /// Simulated events per host second.
    pub events_per_sec: f64,
    /// Host microseconds per simulated event — the per-slice scheduler
    /// cost; near-flat across host counts for the event scheduler,
    /// linear in machines × procs for the scan.
    pub us_per_event: f64,
}

/// A periodic "interactive" process: `beats` short sleeps in a loop.
/// Each expiry is one small scheduling event — exactly the traffic an
/// installation of mostly-idle workstations generates, and the case
/// where a per-slice all-machines scan is pure overhead.
fn cluster_tick_program(beats: u32) -> String {
    format!(
        r#"
start:  move.l  #{beats}, d7
beat:   move.l  #150, d0
        move.l  #2000, d1
        trap    #0
        sub.l   #1, d7
        bgt     beat
        move.l  #1, d0
        move.l  #0, d1
        trap    #0
"#
    )
}

/// Builds an N-host installation: every host runs one ticker and four
/// tty readers blocked at their terminals (dead weight the scan path
/// re-evaluates every slice), and every sixteenth host carries three
/// CPU hogs — the load imbalance the gradient policy then works off.
/// All workloads outlive the measured window, so the process
/// population stays constant.
fn cluster_world(hosts: usize, sched: ukernel::Sched, exec: ukernel::Exec) -> World {
    let mut config = KernelConfig::paper();
    config.sched = sched;
    config.exec = exec;
    let mut w = World::new(config);
    for i in 0..hosts {
        w.add_machine(&format!("h{i}"), IsaLevel::Isa1);
    }
    let hog = assemble(&workloads::cpu_hog_program(1_000_000)).expect("assemble hog");
    let tick = assemble(&cluster_tick_program(100_000)).expect("assemble tick");
    let reader = assemble(workloads::TEST_PROGRAM).expect("assemble reader");
    for i in 0..hosts {
        if i % 16 == 0 {
            w.install_program(i, "/bin/hog", &hog).unwrap();
            for _ in 0..3 {
                w.spawn_vm_proc(i, "/bin/hog", None, alice()).unwrap();
            }
        }
        w.install_program(i, "/bin/tick", &tick).unwrap();
        w.spawn_vm_proc(i, "/bin/tick", None, alice()).unwrap();
        w.install_program(i, "/bin/reader", &reader).unwrap();
        for _ in 0..4 {
            let (tty, _handle) = w.add_terminal(i);
            w.spawn_vm_proc(i, "/bin/reader", Some(tty), alice()).unwrap();
        }
    }
    w
}

/// Live workload processes across the whole installation. Restarted
/// incarnations come back named `a.out`, like in the A5 ablation.
fn cluster_live_procs(w: &World) -> u64 {
    (0..w.machine_count())
        .map(|m| {
            w.machine(m)
                .procs
                .values()
                .filter(|p| {
                    ["hog", "tick", "reader"].iter().any(|c| p.comm.contains(c))
                        || p.comm.starts_with("a.out")
                })
                .count() as u64
        })
        .sum()
}

fn cluster_engine() -> apps::PolicyEngine<apps::LoadGradient> {
    apps::PolicyEngine::new(apps::LoadGradient {
        min_age: SimDuration::millis(200),
        imbalance_threshold: 2,
    })
}

/// One cell, measured in two phases: the load-gradient engine runs
/// `rounds` decision rounds of `period_us` each (migration
/// throughput), then one second of steady-state simulated time is
/// timed on its own (scheduling throughput) so the per-slice scheduler
/// cost is not buried under the migration pipeline's native-process
/// overhead.
fn cluster_run(hosts: usize, sched: ukernel::Sched, rounds: u32, period_us: u64) -> ClusterRow {
    let mut w = cluster_world(hosts, sched, ukernel::Exec::Serial);
    let mut engine = cluster_engine();
    let sw = crate::hostclock::HostStopwatch::start();
    let migrations = engine.run(&mut w, period_us, rounds, |_| false) as u64;
    let mig_host_secs = sw.elapsed_secs().max(1e-9);

    let slices_before = w.slices;
    let deadline = (0..w.machine_count())
        .map(|m| w.machine(m).now)
        .max()
        .unwrap_or_default()
        + SimDuration::secs(1);
    let sw = crate::hostclock::HostStopwatch::start();
    w.run_until_time(deadline, 50_000_000);
    let host_secs = sw.elapsed_secs().max(1e-9);
    let slices = w.slices - slices_before;
    ClusterRow {
        hosts: hosts as u64,
        sched: match sched {
            ukernel::Sched::Event => "event",
            ukernel::Sched::Scan => "scan",
        }
        .into(),
        migrations,
        failures: engine.failures,
        mig_host_secs,
        migrations_per_sec: migrations as f64 / mig_host_secs,
        slices,
        host_secs,
        events_per_sec: slices as f64 / host_secs,
        us_per_event: host_secs * 1e6 / slices.max(1) as f64,
    }
}

/// The cluster bench matrix: the event scheduler at every size in
/// `sizes`, and the reference scan alongside it up to `scan_max` hosts
/// (the scan's O(machines × procs) slices make 1024 hosts pointless to
/// wait for — that cliff is the point of the comparison).
pub fn cluster(sizes: &[usize], scan_max: usize) -> Vec<ClusterRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        rows.push(cluster_run(n, ukernel::Sched::Event, 6, 500_000));
        if n <= scan_max {
            rows.push(cluster_run(n, ukernel::Sched::Scan, 6, 500_000));
        }
    }
    rows
}

/// One thread-count cell of the sharded-execution bench.
#[derive(Clone, Debug)]
pub struct ParallelRow {
    /// Installation size.
    pub hosts: u64,
    /// Shard threads (`Exec::Parallel { threads }`).
    pub threads: u64,
    /// Scheduling slices executed in the measured window.
    pub slices: u64,
    /// Host wall-clock for the window, seconds.
    pub host_secs: f64,
    /// Simulated events per host second.
    pub events_per_sec: f64,
    /// `events_per_sec` relative to this matrix's 1-thread row.
    pub speedup: f64,
}

/// The sharded-execution scaling matrix: one steady-state simulated
/// second of the cluster workload (pure-VM — no native utilities, so
/// the coupling partition leaves every machine shardable) at each
/// thread count. The windowed engine guarantees every cell is
/// bit-identical to `Exec::Serial`; this measures only how fast the
/// identical answer arrives.
pub fn cluster_parallel(hosts: usize, threads: &[usize]) -> Vec<ParallelRow> {
    let mut rows: Vec<ParallelRow> = Vec::new();
    for &t in threads {
        let mut w = cluster_world(
            hosts,
            ukernel::Sched::Event,
            ukernel::Exec::Parallel { threads: t },
        );
        let deadline = SimTime::BOOT + SimDuration::secs(1);
        let sw = crate::hostclock::HostStopwatch::start();
        w.run_until_time(deadline, 500_000_000);
        let host_secs = sw.elapsed_secs().max(1e-9);
        let slices = w.slices;
        let events_per_sec = slices as f64 / host_secs;
        let speedup = match rows.first() {
            Some(base) => events_per_sec / base.events_per_sec,
            None => 1.0,
        };
        rows.push(ParallelRow {
            hosts: hosts as u64,
            threads: t as u64,
            slices,
            host_secs,
            events_per_sec,
            speedup,
        });
    }
    rows
}

/// One fault-site row of the at-scale soak.
#[derive(Clone, Debug)]
pub struct ClusterSoakRow {
    /// Injection site label.
    pub case: String,
    /// Installation size.
    pub hosts: u64,
    /// Migrations the engine completed despite the faults.
    pub migrations: u64,
    /// Attempts that failed (candidate evicted).
    pub failures: u64,
    /// Faults actually injected across all machines.
    pub injected: u64,
    /// Live workload copies after the dust settles.
    pub live: u64,
    /// Workload copies there should be — one per spawned process, no
    /// loss and no duplication, whatever the pipeline hit.
    pub expected: u64,
    /// Orphaned dump files left in any /usr/tmp.
    pub dumps_left: u64,
}

/// The PR-4 failure-atomicity soak run inside the cluster scenario:
/// the policy engine keeps migrating while each fault site fires, and
/// afterwards every hog must still exist exactly once with no dump
/// litter anywhere in the installation.
pub fn cluster_soak(seed: u64) -> Vec<ClusterSoakRow> {
    use simnet::{FaultPlan, FaultSite, FaultSpec};
    const HOSTS: usize = 16;
    let cases: [(&str, FaultSite, u32); 4] = [
        ("nfs", FaultSite::NfsOp, 3),
        ("rsh", FaultSite::Rsh, 2),
        ("middump", FaultSite::MidDumpCrash, 2),
        ("enospc", FaultSite::DumpEnospc, 2),
    ];
    let mut rows = Vec::new();
    for (label, site, budget) in cases {
        let mut w = cluster_world(HOSTS, ukernel::Sched::Event, ukernel::Exec::Serial);
        w.faults = FaultPlan::seeded(seed).with(FaultSpec::always(site, budget));
        let expected = cluster_live_procs(&w);
        let mut engine = cluster_engine();
        engine.run(&mut w, 500_000, 10, |_| false);
        let injected: u64 = (0..w.machine_count())
            .map(|m| w.machine(m).stats.faults_injected)
            .sum();
        let dumps_left: u64 = (0..w.machine_count())
            .map(|m| w.host_reap_orphan_dumps(m).len() as u64)
            .sum();
        rows.push(ClusterSoakRow {
            case: label.into(),
            hosts: HOSTS as u64,
            migrations: engine.records.len() as u64,
            failures: engine.failures,
            injected,
            live: cluster_live_procs(&w),
            expected,
            dumps_left,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Kernel-side per-syscall aggregates.
// ---------------------------------------------------------------------

/// One row of the dispatcher's per-syscall accounting table
/// (`Machine::stats.per_syscall`, maintained by the exit hook).
#[derive(Clone, Debug)]
pub struct KernelSyscallRow {
    /// Trap-table name.
    pub syscall: String,
    /// Dispatch attempts (blocked retries count separately).
    pub count: u64,
    /// Total simulated time charged across attempts, micro-seconds.
    pub total_us: u64,
    /// The single most expensive attempt, micro-seconds.
    pub max_us: u64,
}

/// Runs the Figure-1 workloads (100 open/close pairs, then 100 chdir
/// triples) on the modified kernel and returns the dispatcher's
/// exit-hook aggregates — kernel-side numbers to sit beside the
/// bench-side timings in the figures JSON. Everything here is simulated
/// state, so the table is deterministic row for row.
pub fn kernel_syscalls() -> Vec<KernelSyscallRow> {
    let mut w = World::new(KernelConfig::paper());
    let m = w.add_machine("brick", IsaLevel::Isa1);
    w.host_write_file(m, "/tmp/f", b"x").unwrap();
    for (path, src) in [
        ("/bin/openclose", workloads::openclose_program(100)),
        ("/bin/chdir", workloads::chdir_program(100)),
    ] {
        let obj = assemble(&src).expect("assemble kernel-syscall workload");
        w.install_program(m, path, &obj).unwrap();
        let pid = w.spawn_vm_proc(m, path, None, alice()).unwrap();
        let info = w.run_until_exit(m, pid, 10_000_000).expect("workload exits");
        assert_eq!(info.status, 0, "kernel-syscall workload must succeed");
    }
    w.machine(m)
        .stats
        .per_syscall
        .iter()
        .map(|(name, agg)| KernelSyscallRow {
            syscall: (*name).to_string(),
            count: agg.count,
            total_us: agg.total_us,
            max_us: agg.max_us,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Live-migration protocol comparison: downtime vs total per protocol.
// ---------------------------------------------------------------------

/// One protocol's run of the live-migration comparison: the dirty-page
/// hog moved off the loaded machine of a three-node installation.
#[derive(Clone, Debug)]
pub struct MigrationRow {
    /// `eager`, `precopy` or `demand`.
    pub protocol: String,
    /// Freeze-to-runnable: how long no copy of the hog could run.
    pub downtime_ms: f64,
    /// Engine start to finish, including pre-copy rounds and the
    /// residual drain.
    pub total_ms: f64,
    /// Pre-copy rounds run (0 for the other protocols).
    pub rounds: u32,
    /// Pages streamed live before the freeze.
    pub pages_precopied: u64,
    /// Residual pages the engine pulled after the restart.
    pub pages_fetched: u64,
    /// Page payload moved outside the dump files, bytes.
    pub bytes_sent: u64,
    /// Where the live copy ended up.
    pub survivor: String,
    /// Engine status (0 = migrated).
    pub status: u32,
}

/// Runs each protocol against a fresh copy of the load-balancing shape:
/// three machines, the dirty-page hog on `node0`, migrated to the idle
/// `node1`. Identical worlds per protocol, so downtime and total are
/// directly comparable.
pub fn migration(smoke: bool) -> Vec<MigrationRow> {
    use pmig::proto::{migrate_proto, Protocol};
    use pmig::Survivor;
    // The full tier carries four times the ballast the smoke tier does:
    // enough that eager's frozen copy of the whole image visibly costs.
    let (rounds, ballast) = if smoke {
        (1_500u32, 10 * 0x2000u32)
    } else {
        (6_000u32, 40 * 0x2000u32)
    };
    let mut out = Vec::new();
    for proto in Protocol::ALL {
        let mut w = World::new(KernelConfig::paper());
        let node0 = w.add_machine("node0", IsaLevel::Isa1);
        let node1 = w.add_machine("node1", IsaLevel::Isa1);
        let _ = w.add_machine("node2", IsaLevel::Isa1);
        let obj = assemble(&workloads::dirty_hog_program(rounds, ballast)).unwrap();
        w.install_program(node0, "/bin/hog", &obj).unwrap();
        let pid = w.spawn_vm_proc(node0, "/bin/hog", None, alice()).unwrap();
        w.run_slices(10);
        let report =
            migrate_proto(&mut w, pid, node0, node1, proto, alice()).expect("engine completes");
        let survivor = match report.survivor {
            Survivor::Target => "target",
            Survivor::Source => "source",
            Survivor::Lost => "lost",
        };
        out.push(MigrationRow {
            protocol: proto.name().into(),
            downtime_ms: report.downtime_us as f64 / 1_000.0,
            total_ms: report.total_us as f64 / 1_000.0,
            rounds: report.rounds,
            pages_precopied: report.pages_precopied,
            pages_fetched: report.pages_fetched,
            bytes_sent: report.bytes_sent,
            survivor: survivor.into(),
            status: report.status,
        });
    }
    out
}

// ---------------------------------------------------------------------
// JSON field listings for the `figures --json` output.
// ---------------------------------------------------------------------

impl_to_json!(Fig1Row { syscall, original_ms, modified_ms, ratio, paper_ratio });
impl_to_json!(Fig2Row { case, cpu_ms, real_ms, cpu_ratio, real_ratio, paper_cpu_ratio, paper_real_ratio });
impl_to_json!(Fig3Row { case, cpu_ms, real_ms, cpu_ratio, real_ratio, paper_cpu_ratio, paper_real_ratio });
impl_to_json!(Fig4Row { case, real_ms, ratio, paper_ratio });
impl_to_json!(AblationDaemonRow { transport, real_ms });
impl_to_json!(AblationVirtRow { kernel, status });
impl_to_json!(AblationNamesRow { strategy, peak_bytes });
impl_to_json!(AblationCheckpointRow { interval_ms, completion_ms, overhead, expected_loss_ms });
impl_to_json!(AblationLoadbalRow { policy, makespan_ms, migrations });
impl_to_json!(KernelSyscallRow { syscall, count, total_us, max_us });
impl_to_json!(FaultSoakRow { case, status, survivor, injected, live_copies, dumps_left });
impl_to_json!(MigrationRow {
    protocol,
    downtime_ms,
    total_ms,
    rounds,
    pages_precopied,
    pages_fetched,
    bytes_sent,
    survivor,
    status,
});
impl_to_json!(ClusterRow {
    hosts,
    sched,
    migrations,
    failures,
    mig_host_secs,
    migrations_per_sec,
    slices,
    host_secs,
    events_per_sec,
    us_per_event
});
impl_to_json!(ClusterSoakRow { case, hosts, migrations, failures, injected, live, expected, dumps_left });
impl_to_json!(ParallelRow { hosts, threads, slices, host_secs, events_per_sec, speedup });
