//! Interpreter-throughput measurement, shared by `figures interp`
//! (which records `BENCH_interp.json`) and the `vm` criterion group.
//!
//! Three engines over the same ~500k-instruction arithmetic loop:
//! the per-step byte-window decoder, the predecoded icache, and the
//! superblock engine that retires whole fused blocks. All three are
//! host-side accelerators — the coherence suite proves they share one
//! guest-visible trajectory — so the only thing measured here is host
//! instructions per second.

use crate::hostclock::HostStopwatch;
use crate::json::Json;
use m68vm::{assemble, Cpu, ICache, IsaLevel, SbExit, StepEvent};
use std::hint::black_box;

/// The loop retires 100_000 iterations of five instructions plus the
/// prologue move and the final trap.
pub const INSTRUCTIONS_PER_RUN: u64 = 500_002;

/// A tight arithmetic loop whose body fuses into one superblock.
pub fn interp_loop() -> m68vm::Object {
    assemble(
        r"
        start:  move.l  #100000, d6
        loop:   add.l   #1, d5
                eor.l   d5, d4
                lsr.l   #1, d4
                sub.l   #1, d6
                bgt     loop
                trap    #0
        ",
    )
    .unwrap()
}

/// Which interpreter path a measurement exercises.
#[derive(Clone, Copy)]
pub enum Engine<'a> {
    /// `Cpu::step`: live byte-window decode every instruction.
    Uncached,
    /// `Cpu::step_cached`: predecoded slot per instruction.
    Cached(&'a ICache),
    /// `Cpu::step_superblock`: fused straight-line blocks over the
    /// same slots, slot-stepping only at block boundaries.
    Superblock(&'a ICache),
}

/// Times one full run of the loop, returning `(instructions, seconds)`.
pub fn run_once(obj: &m68vm::Object, engine: Engine<'_>) -> (u64, f64) {
    // Host time comes only from the quarantined hostclock module; a
    // bare Instant::now() here would (rightly) fail simlint.
    let start = HostStopwatch::start();
    let mut mem = obj.to_memory();
    let mut cpu = Cpu::at_entry(obj.entry);
    match engine {
        Engine::Superblock(ic) => {
            // An unbounded budget never pauses, so the engine returns
            // only at the final trap.
            let (_used, exit) = cpu.step_superblock(&mut mem, ic, u64::MAX);
            assert!(matches!(exit, SbExit::Trap { vector: 0 }), "loop ends in trap #0");
        }
        Engine::Cached(ic) => {
            while let StepEvent::Executed { .. } = cpu.step_cached(&mut mem, ic) {}
        }
        Engine::Uncached => {
            while let StepEvent::Executed { .. } = cpu.step(&mut mem, IsaLevel::Isa1) {}
        }
    }
    black_box(cpu.d[4]);
    (INSTRUCTIONS_PER_RUN, start.elapsed_secs())
}

/// Best observed instructions/second over repeated runs spanning at
/// least ~300 ms of measurement.
pub fn insn_per_sec(obj: &m68vm::Object, engine: Engine<'_>) -> f64 {
    let mut best = 0f64;
    let mut total = 0f64;
    let _ = run_once(obj, engine); // Warm-up (and superblock translation).
    while total < 0.3 {
        let (n, secs) = run_once(obj, engine);
        total += secs;
        best = best.max(n as f64 / secs);
    }
    best
}

/// The three throughputs of one measurement session.
pub struct InterpReport {
    pub uncached_insn_per_sec: f64,
    pub cached_insn_per_sec: f64,
    pub superblock_insn_per_sec: f64,
}

impl InterpReport {
    /// Measures all three engines on this host.
    pub fn measure() -> InterpReport {
        let obj = interp_loop();
        let icache = ICache::build(&obj.text, IsaLevel::Isa1);
        InterpReport {
            uncached_insn_per_sec: insn_per_sec(&obj, Engine::Uncached),
            cached_insn_per_sec: insn_per_sec(&obj, Engine::Cached(&icache)),
            superblock_insn_per_sec: insn_per_sec(&obj, Engine::Superblock(&icache)),
        }
    }

    /// Superblock speedup over the uncached decoder (the CI gate).
    pub fn superblock_speedup(&self) -> f64 {
        self.superblock_insn_per_sec / self.uncached_insn_per_sec
    }

    /// The `BENCH_interp.json` record. Key set is the schema ci.sh's
    /// freshness check pins (the numbers are host-dependent).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::Str("vm_interpreter".into())),
            ("instructions_per_run".into(), Json::UInt(INSTRUCTIONS_PER_RUN)),
            ("uncached_insn_per_sec".into(), Json::Num(self.uncached_insn_per_sec)),
            ("cached_insn_per_sec".into(), Json::Num(self.cached_insn_per_sec)),
            (
                "superblock_insn_per_sec".into(),
                Json::Num(self.superblock_insn_per_sec),
            ),
            (
                "speedup".into(),
                Json::Num(self.cached_insn_per_sec / self.uncached_insn_per_sec),
            ),
            ("superblock_speedup".into(), Json::Num(self.superblock_speedup())),
            (
                "superblock_vs_cached".into(),
                Json::Num(self.superblock_insn_per_sec / self.cached_insn_per_sec),
            ),
        ])
    }
}
