//! Host-side wall-clock measurement, quarantined.
//!
//! This is the **only** place in the workspace allowed to read the host
//! clock (`std::time::Instant`), and `simlint.toml` carries the single
//! scoped exemption that says so. Everything simulated runs on
//! `SimTime`; the stopwatch here exists purely to measure how fast the
//! *host* executes the simulator (instructions/second in
//! `BENCH_interp.json`), a number that never feeds back into simulated
//! state.
//!
//! Keeping the type here, instead of letting benches call
//! `Instant::now()` directly, means a new host-time use site shows up
//! as a simlint diagnostic in review instead of as a determinism bug in
//! a migration test.

use std::time::Instant;

/// A started stopwatch over host time.
#[derive(Clone, Copy, Debug)]
pub struct HostStopwatch {
    start: Instant,
}

impl HostStopwatch {
    /// Starts timing now.
    pub fn start() -> HostStopwatch {
        HostStopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds of host time since [`HostStopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = HostStopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
