//! `simsh` — a line-oriented driver for the simulated installation.
//!
//! Reads commands from stdin (scriptable through a pipe), letting you
//! boot machines, run the paper's workloads, type at their terminals and
//! migrate them by hand:
//!
//! ```text
//! $ cargo run -p bench --bin simsh <<'EOF'
//! boot brick
//! boot schooner
//! install brick /bin/testprog testprog
//! spawn brick /bin/testprog
//! run 50000
//! type 0 hello world
//! run 50000
//! screen 0
//! dumpproc brick 2
//! restart schooner 2 brick
//! run 100000
//! ps schooner
//! EOF
//! ```
//!
//! Commands: `boot <host> [isa2]`, `install <host> <path> <workload>`,
//! `spawn <host> <path>`, `type <tty> <text>`, `keys <tty> <chars>`,
//! `eof <tty>`, `screen <tty>`, `run <slices> [--threads N]`, `ps <host>`, `load`,
//! `time <host>`, `ktrace <host> [n]`, `dumpproc <host> <pid>`,
//! `restart <host> <pid> [dumphost]`, `migrate <pid> <from> <to>
//! [cmdhost]`, `cat <host> <path>`, `help`, `quit`. Workloads: `testprog`, `editor`, `pidprog`,
//! `envprog`, `waiter`, `hog:<rounds>`, `openclose:<n>`, `chdir:<n>`.

use std::io::BufRead;

use m68vm::{assemble, IsaLevel};
use pmig::commands::RestartArgs;
use pmig::proto::{migrate_proto, Protocol};
use simnet::{FaultPlan, FaultSite, FaultSpec};
use pmig::{api, workloads};
use sysdefs::{Credentials, Gid, Pid, Uid};
use ukernel::{KernelConfig, World};

fn user() -> Credentials {
    Credentials::user(Uid(100), Gid(10))
}

fn workload_source(name: &str) -> Option<String> {
    if let Some(rounds) = name.strip_prefix("hog:") {
        return Some(workloads::cpu_hog_program(rounds.parse().ok()?));
    }
    if let Some(n) = name.strip_prefix("openclose:") {
        return Some(workloads::openclose_program(n.parse().ok()?));
    }
    if let Some(n) = name.strip_prefix("chdir:") {
        return Some(workloads::chdir_program(n.parse().ok()?));
    }
    Some(
        match name {
            "testprog" => workloads::TEST_PROGRAM,
            "editor" => workloads::EDITOR_PROGRAM,
            "pidprog" => workloads::PID_TEMPFILE_PROGRAM,
            "envprog" => workloads::ENV_DEPENDENT_PROGRAM,
            "waiter" => workloads::WAITING_PARENT_PROGRAM,
            _ => return None,
        }
        .to_string(),
    )
}

const HELP: &str = "\
commands:
  boot <host> [isa2]              add a machine (default ISA-1 / 68010)
  install <host> <path> <wl>      assemble a workload onto a machine
  spawn <host> <path>             start a program on a fresh terminal
  run <slices> [--threads N]      advance the simulation; --threads
                                  switches to sharded execution with N
                                  host threads (1 = serial), and the
                                  choice sticks for later run commands
  type <tty> <text...>            type a line at a terminal
  keys <tty> <chars>              type raw characters (no newline)
  eof <tty>                       close a terminal (EOF to readers)
  screen <tty>                    show what a terminal displays
  ps <host>                       process listing
  load                            per-host run-queue depth
  time <host>                     the machine's virtual clock
  ktrace <host> [n]               newest syscall trace records (all if no n)
  cat <host> <path>               print a file
  dumpproc <host> <pid>           run dumpproc there
  restart <host> <pid> [dumphost] run restart there (new terminal)
  migrate <pid> <from> <to> [on] [--proto eager|precopy|demand]
                                  run the migrate command; --proto picks
                                  the live-migration protocol engine and
                                  reports downtime vs total
  fault seed <n>                  (re)seed the fault-injection plan
  fault add <site> <host|*> <from_us> <until_us> <permille> <hits>
                                  arm an injection rule; sites: nfs rsh
                                  middump enospc page-fetch
  fault list                      show the plan and its counters
  reap <host>                     sweep orphaned dump files in /usr/tmp
  help                            this text
  quit                            leave
workloads: testprog editor pidprog envprog waiter hog:<n> openclose:<n> chdir:<n>";

fn main() {
    let mut world = World::new(KernelConfig::paper());
    let stdin = std::io::stdin();
    println!("simsh — simulated Sun UNIX 3.0 with process migration. `help` lists commands.");
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = dispatch(&mut world, &parts);
        if let Err(msg) = result {
            println!("error: {msg}");
        }
        if parts[0] == "quit" {
            break;
        }
    }
}

fn machine_by_name(world: &World, name: &str) -> Result<usize, String> {
    world
        .find_machine(name)
        .ok_or_else(|| format!("no machine `{name}` (boot it first)"))
}

fn dispatch(world: &mut World, parts: &[&str]) -> Result<(), String> {
    match parts {
        ["help"] => println!("{HELP}"),
        ["quit"] => {}
        ["boot", name] | ["boot", name, "isa1"] => {
            let id = world.add_machine(name, IsaLevel::Isa1);
            println!("machine {id}: {name} (68010), NFS-mounted as /n/{name}");
        }
        ["boot", name, "isa2"] => {
            let id = world.add_machine(name, IsaLevel::Isa2);
            println!("machine {id}: {name} (68020), NFS-mounted as /n/{name}");
        }
        ["install", host, path, wl] => {
            let m = machine_by_name(world, host)?;
            let src = workload_source(wl).ok_or_else(|| format!("unknown workload `{wl}`"))?;
            let obj = assemble(&src).map_err(|e| e.to_string())?;
            world
                .install_program(m, path, &obj)
                .map_err(|e| e.to_string())?;
            println!("installed {wl} as {host}:{path}");
        }
        ["spawn", host, path] => {
            let m = machine_by_name(world, host)?;
            let (tty, _handle) = world.add_terminal(m);
            let pid = world
                .spawn_vm_proc(m, path, Some(tty), user())
                .map_err(|e| e.to_string())?;
            println!("pid {pid} on {host}, terminal tty{tty}");
        }
        ["run", n] | ["run", n, "--threads", _] => {
            let n: u64 = n.parse().map_err(|_| "bad slice count".to_string())?;
            if let Some(t) = parts.get(3) {
                let t: usize = t.parse().map_err(|_| "bad thread count".to_string())?;
                world.config.exec = if t <= 1 {
                    ukernel::Exec::Serial
                } else {
                    ukernel::Exec::Parallel { threads: t }
                };
                println!("exec mode: {:?} (sticky until changed)", world.config.exec);
            }
            let outcome = world.run_slices(n);
            println!("ran ({outcome:?})");
        }
        ["type", tty, rest @ ..] => {
            let tty: u32 = tty.parse().map_err(|_| "bad tty".to_string())?;
            world
                .terminal(tty)
                .type_input(&format!("{}\n", rest.join(" ")));
            println!("typed");
        }
        ["keys", tty, chars] => {
            let tty: u32 = tty.parse().map_err(|_| "bad tty".to_string())?;
            world.terminal(tty).type_input(chars);
            println!("typed raw");
        }
        ["eof", tty] => {
            let tty: u32 = tty.parse().map_err(|_| "bad tty".to_string())?;
            world.terminal(tty).with(|t| t.close());
            println!("closed");
        }
        ["screen", tty] => {
            let tty: u32 = tty.parse().map_err(|_| "bad tty".to_string())?;
            println!("--- tty{tty} ---");
            print!("{}", world.terminal(tty).output_text());
            println!("\n---------------");
        }
        ["ps", host] => {
            let m = machine_by_name(world, host)?;
            print!("{}", world.ps(m));
        }
        ["load"] => {
            for (m, depth) in world.run_queue_depths().into_iter().enumerate() {
                println!("{:<12} {:>4} runnable", world.machine(m).name, depth);
            }
        }
        ["time", host] => {
            let m = machine_by_name(world, host)?;
            println!("{}", world.machine(m).now);
        }
        ["ktrace", host] | ["ktrace", host, _] => {
            let m = machine_by_name(world, host)?;
            let last = match parts.get(2) {
                Some(n) => Some(n.parse().map_err(|_| "bad record count".to_string())?),
                None => None,
            };
            let k = &world.machine(m).ktrace;
            if k.is_empty() {
                println!("(no syscall records on {host} yet)");
            } else {
                print!("{}", k.render(last));
            }
        }
        ["cat", host, path] => {
            let m = machine_by_name(world, host)?;
            let bytes = world.host_read_file(m, path).map_err(|e| e.to_string())?;
            println!("{}", String::from_utf8_lossy(&bytes));
        }
        ["dumpproc", host, pid] => {
            let m = machine_by_name(world, host)?;
            let pid = Pid(pid.parse().map_err(|_| "bad pid".to_string())?);
            let status = api::run_dumpproc(world, m, pid, user()).map_err(|e| e.to_string())?;
            if status == 0 {
                let names = dumpfmt::dump_file_names(pid);
                println!("dumped: {} {} {}", names.a_out, names.files, names.stack);
            } else {
                println!("dumpproc failed with status {status}");
            }
        }
        ["restart", host, pid] | ["restart", host, pid, _] => {
            let m = machine_by_name(world, host)?;
            let dump_host = parts.get(3).map(|s| s.to_string());
            let pid = Pid(pid.parse().map_err(|_| "bad pid".to_string())?);
            let (tty, _handle) = world.add_terminal(m);
            let new_pid =
                api::run_restart(
                    world,
                    m,
                    RestartArgs { pid, dump_host, demand: false },
                    Some(tty),
                    user(),
                )
                    .map_err(|e| e.to_string())?;
            println!("restored as pid {new_pid} on {host}, terminal tty{tty}");
        }
        ["migrate", rest @ ..] if rest.len() >= 3 => {
            let mut rest: Vec<&str> = rest.to_vec();
            let mut proto = None;
            if let Some(i) = rest.iter().position(|a| *a == "--proto") {
                let name = *rest
                    .get(i + 1)
                    .ok_or_else(|| "--proto needs a protocol".to_string())?;
                proto = Some(Protocol::parse(name).ok_or_else(|| {
                    format!("unknown protocol `{name}` (eager precopy demand)")
                })?);
                rest.drain(i..=i + 1);
            }
            let [pid, from, to, on @ ..] = rest.as_slice() else {
                return Err("usage: migrate <pid> <from> <to> [on] [--proto p]".into());
            };
            let from_m = machine_by_name(world, from)?;
            let to_m = machine_by_name(world, to)?;
            let pid = Pid(pid.parse().map_err(|_| "bad pid".to_string())?);
            match proto {
                None => {
                    let cmd_m = match on.first() {
                        Some(h) => machine_by_name(world, h)?,
                        None => to_m,
                    };
                    let (tty, _handle) = world.add_terminal(cmd_m);
                    let new_pid =
                        api::migrate_process(world, pid, from_m, to_m, cmd_m, Some(tty), user())
                            .map_err(|e| e.to_string())?;
                    println!("migrated: now pid {new_pid} on {to}");
                }
                Some(p) => {
                    let report = migrate_proto(world, pid, from_m, to_m, p, user())
                        .map_err(|e| e.to_string())?;
                    println!(
                        "{}: status {} survivor {:?} pid {:?}",
                        p.name(),
                        report.status,
                        report.survivor,
                        report.new_pid
                    );
                    println!(
                        "downtime {:.1} ms, total {:.1} ms, {} rounds, {} precopied, {} fetched",
                        report.downtime_us as f64 / 1_000.0,
                        report.total_us as f64 / 1_000.0,
                        report.rounds,
                        report.pages_precopied,
                        report.pages_fetched
                    );
                }
            }
        }
        ["fault", "seed", n] => {
            let seed: u64 = n.parse().map_err(|_| "bad seed".to_string())?;
            world.faults = FaultPlan::seeded(seed);
            println!("fault plan reseeded ({seed}); rules cleared");
        }
        ["fault", "add", site, host, from_us, until_us, per_mille, hits] => {
            let site = FaultSite::parse(site)
                .ok_or_else(|| format!("unknown site `{site}` (nfs rsh middump enospc page-fetch)"))?;
            let machine = match *host {
                "*" => None,
                name => Some(machine_by_name(world, name)?),
            };
            let spec = FaultSpec {
                site,
                machine,
                from_us: from_us.parse().map_err(|_| "bad from_us".to_string())?,
                until_us: until_us.parse().map_err(|_| "bad until_us".to_string())?,
                per_mille: per_mille.parse().map_err(|_| "bad permille".to_string())?,
                max_hits: hits.parse().map_err(|_| "bad hit budget".to_string())?,
                hits: 0,
            };
            world.faults = std::mem::take(&mut world.faults).with(spec);
            println!("armed: {} on {host} in [{from_us}us,{until_us}us) {per_mille}/1000, budget {hits}", site.name());
        }
        ["fault", "list"] => {
            let plan = &world.faults;
            if plan.is_empty() {
                println!("no fault rules armed (seed {})", plan.seed);
            } else {
                for s in &plan.specs {
                    let host = match s.machine {
                        Some(m) => world.machine(m).name.clone(),
                        None => "*".into(),
                    };
                    println!(
                        "{:<8} {host:<10} [{},{})us {}/1000 hits {}/{}",
                        s.site.name(),
                        s.from_us,
                        s.until_us,
                        s.per_mille,
                        s.hits,
                        s.max_hits
                    );
                }
                println!("injected so far: {}", plan.injected);
            }
        }
        ["reap", host] => {
            let m = machine_by_name(world, host)?;
            let reaped = world.host_reap_orphan_dumps(m);
            if reaped.is_empty() {
                println!("no orphaned dump files on {host}");
            } else {
                println!("reaped from {host}:/usr/tmp: {}", reaped.join(" "));
            }
        }
        _ => return Err(format!("unknown command `{}` (try help)", parts.join(" "))),
    }
    Ok(())
}
